//! Offline shim for the `crossbeam` API subset used by this workspace:
//! unbounded MPMC channels and `CachePadded`.

/// Multi-producer multi-consumer channels, modeled on `crossbeam-channel`.
///
/// Built over `std::sync::mpsc` (whose `Sender` is `Sync` since Rust 1.72);
/// the receiver is wrapped in a mutex so it can be cloned and shared, giving
/// crossbeam's competing-consumer semantics.
pub mod channel {
    use std::fmt;
    use std::sync::{mpsc, Arc, Mutex, PoisonError};

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender { inner: tx },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
            },
        )
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, failing only if all receivers disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|e| SendError(e.0))
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.pad("Sender { .. }")
        }
    }

    /// The receiving half of a channel; cloneable, consumers compete.
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .recv()
                .map_err(|_| RecvError)
        }

        /// Blocks until a message arrives, all senders disconnected, or the
        /// timeout elapses — whichever comes first.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .recv_timeout(timeout)
                .map_err(|e| match e {
                    mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                    mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
                })
        }

        /// Receives a pending message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .try_recv()
                .map_err(|e| match e {
                    mpsc::TryRecvError::Empty => TryRecvError::Empty,
                    mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
                })
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.pad("Receiver { .. }")
        }
    }

    /// Error returned by [`Sender::send`]; carries the unsent message.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.pad("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.pad("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is drained and
    /// all senders disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.pad("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the deadline.
        Timeout,
        /// Channel drained and all senders disconnected.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.pad("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    f.pad("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message currently queued.
        Empty,
        /// Channel drained and all senders disconnected.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.pad("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.pad("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}
}

/// Utilities, modeled on `crossbeam-utils`.
pub mod utils {
    use std::fmt;
    use std::ops::{Deref, DerefMut};

    /// Pads and aligns a value to (at least) one cache line so neighboring
    /// values never share a line (false-sharing avoidance). 128 bytes covers
    /// the adjacent-line prefetcher on modern x86 and Apple silicon.
    #[derive(Default, Clone, Copy, PartialEq, Eq)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Wraps a value.
        pub const fn new(value: T) -> Self {
            CachePadded { value }
        }

        /// Unwraps the value.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_tuple("CachePadded").field(&self.value).finish()
        }
    }

    impl<T> From<T> for CachePadded<T> {
        fn from(value: T) -> Self {
            CachePadded::new(value)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError, TryRecvError};
    use super::utils::CachePadded;

    #[test]
    fn mpmc_competing_consumers() {
        let (tx, rx) = unbounded::<usize>();
        let rx2 = rx.clone();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut got = Vec::new();
        loop {
            match rx.try_recv() {
                Ok(v) => got.push(v),
                Err(TryRecvError::Disconnected) => break,
                Err(TryRecvError::Empty) => break,
            }
            match rx2.try_recv() {
                Ok(v) => got.push(v),
                Err(_) => continue,
            }
        }
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn senders_are_sync() {
        fn assert_sync<T: Sync>(_: &T) {}
        let (tx, rx) = unbounded::<i32>();
        assert_sync(&tx);
        assert_sync(&rx);
    }

    #[test]
    fn recv_timeout_times_out_then_disconnects() {
        let (tx, rx) = unbounded::<i32>();
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(std::time::Duration::from_millis(5)), Ok(9));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn cache_padded_aligns() {
        let p = CachePadded::new(5u8);
        assert_eq!(*p, 5);
        assert_eq!(std::mem::align_of_val(&p), 128);
        assert_eq!(p.into_inner(), 5);
    }
}
