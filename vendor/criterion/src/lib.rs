//! Offline shim for the `criterion` API subset used by this workspace.
//!
//! Each benchmark runs one warm-up call followed by `sample_size` timed
//! samples; a sample times a batch of iterations sized so short benchmarks
//! are not dominated by timer resolution. The report prints min / median /
//! max per-iteration wall time (and element throughput when configured).
//! No statistics beyond order statistics, no plots, no baseline storage.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

/// Entry point handed to benchmark functions by `criterion_group!`.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\nbenchmark group: {name}");
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
            throughput: None,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let report = run_benchmark(self.default_sample_size, &mut f);
        print_report(&id.into(), &report, None);
        self
    }
}

/// A group of benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Declares work-per-iteration so the report can show a rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` with `input`, labeled by `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let report = run_benchmark(self.sample_size, &mut |b| f(b, input));
        let label = format!("{}/{}", self.name, id);
        print_report(&label, &report, self.throughput.as_ref());
        self
    }

    /// Benchmarks a closure taking no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let report = run_benchmark(self.sample_size, &mut f);
        let label = format!("{}/{}", self.name, id.into());
        print_report(&label, &report, self.throughput.as_ref());
        self
    }

    /// Ends the group (explicit, to mirror the real API).
    pub fn finish(self) {}
}

/// Times the body passed to [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the harness-chosen number of iterations, timing the
    /// whole batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// A benchmark label: function name plus a parameter rendered with
/// `Display`.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id like `axpy/65536`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Work performed per iteration, for rate reporting.
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

struct Report {
    min: f64,
    median: f64,
    max: f64,
}

/// Picks an iteration count so one sample takes roughly a millisecond, then
/// collects `sample_size` samples of per-iteration time (in ns).
fn run_benchmark<F: FnMut(&mut Bencher)>(sample_size: usize, f: &mut F) -> Report {
    // Warm-up and calibration: time a single iteration.
    let mut bench = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bench);
    let single_ns = bench.elapsed.as_nanos().max(1) as u64;
    let iters = (1_000_000 / single_ns).clamp(1, 10_000);

    let mut samples_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bench = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut bench);
        samples_ns.push(bench.elapsed.as_nanos() as f64 / iters as f64);
    }
    samples_ns.sort_by(|a, b| a.total_cmp(b));
    Report {
        min: samples_ns[0],
        median: samples_ns[samples_ns.len() / 2],
        max: samples_ns[samples_ns.len() - 1],
    }
}

fn fmt_time(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn print_report(label: &str, report: &Report, throughput: Option<&Throughput>) {
    let rate = throughput
        .map(|t| match t {
            Throughput::Elements(n) => {
                format!("  thrpt: {:.3} Melem/s", *n as f64 / report.median * 1e3)
            }
            Throughput::Bytes(n) => {
                format!(
                    "  thrpt: {:.3} MiB/s",
                    *n as f64 / report.median * 1e9 / 1048576.0
                )
            }
        })
        .unwrap_or_default();
    eprintln!(
        "  {label:<40} time: [{} {} {}]{rate}",
        fmt_time(report.min),
        fmt_time(report.median),
        fmt_time(report.max),
    );
}

/// Declares a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench target (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_addition(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim-smoke");
        group.sample_size(3);
        group.throughput(Throughput::Elements(64));
        group.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(smoke, bench_addition);

    #[test]
    fn group_runs_to_completion() {
        smoke();
    }

    #[test]
    fn report_formats_scale() {
        assert_eq!(fmt_time(12.0), "12.0 ns");
        assert_eq!(fmt_time(1_500.0), "1.500 µs");
        assert_eq!(fmt_time(2_000_000.0), "2.000 ms");
        assert_eq!(fmt_time(3e9), "3.000 s");
    }
}
