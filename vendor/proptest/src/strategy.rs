//! The `Strategy` trait and its adapters (map, filter, union, recursion).
//!
//! Shim semantics: a strategy is just a value generator driven by the
//! deterministic [`TestRng`]; there is no shrinking and no rejection-aware
//! search. `BoxedStrategy` erases the concrete type so heterogeneous
//! strategies (e.g. the arms of `prop_oneof!`) can be stored together.

use std::ops::Range;
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Applies `f` to every generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values for which `f` returns true, regenerating others.
    /// `whence` names the predicate in the panic raised if the filter
    /// rejects too many candidates in a row.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Builds a recursive strategy: `recurse` maps a strategy for depth-`k`
    /// values to one for depth-`k+1` values; generation picks a depth in
    /// `0..=depth` uniformly. `desired_size` and `expected_branch_size` are
    /// accepted for API compatibility but not used by the shim.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut levels: Vec<BoxedStrategy<Self::Value>> = vec![self.boxed()];
        for _ in 0..depth {
            let deeper = recurse(levels.last().expect("at least the base level").clone());
            levels.push(deeper.boxed());
        }
        BoxedStrategy::from_fn(move |rng| {
            let pick = rng.below(levels.len() as u64) as usize;
            levels[pick].generate(rng)
        })
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy::from_fn(move |rng| self.generate(rng))
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T> {
    generator: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> BoxedStrategy<T> {
    fn from_fn(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        BoxedStrategy {
            generator: Rc::new(f),
        }
    }
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            generator: Rc::clone(&self.generator),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.generator)(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1024 {
            let candidate = self.inner.generate(rng);
            if (self.f)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter '{}' rejected 1024 consecutive candidates",
            self.whence
        );
    }
}

/// Uniform choice among several strategies; the expansion of `prop_oneof!`.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given (non-empty) options.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.below(self.options.len() as u64) as usize;
        self.options[pick].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($ty:ty),* $(,)?) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Spans here always fit u64 (the widest source type is 64-bit).
                let offset = rng.below(span as u64) as i128;
                (self.start as i128 + offset) as $ty
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}
