//! `any::<T>()` — canonical strategies for primitive types.
//!
//! Like the real crate, `any` covers the *whole* value domain, boundary
//! values included: integer strategies emit `MIN`/`0`/`MAX` with elevated
//! probability and float strategies emit `NaN`/infinities/signed zero, so
//! tests that must survive those cases (bit-exact round-trips, filters)
//! actually see them.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A type with a canonical generation strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T> {
    _marker: PhantomData<T>,
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.flip()
    }
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),* $(,)?) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                // One case in eight is a boundary value.
                if rng.below(8) == 0 {
                    match rng.below(4) {
                        0 => <$ty>::MIN,
                        1 => <$ty>::MAX,
                        2 => 0,
                        _ => 1,
                    }
                } else {
                    rng.next_u64() as $ty
                }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_arbitrary_float {
    ($($ty:ty),* $(,)?) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                if rng.below(8) == 0 {
                    match rng.below(8) {
                        0 => 0.0,
                        1 => -0.0,
                        2 => <$ty>::INFINITY,
                        3 => <$ty>::NEG_INFINITY,
                        4 => <$ty>::NAN,
                        5 => <$ty>::MIN,
                        6 => <$ty>::MAX,
                        _ => <$ty>::EPSILON,
                    }
                } else {
                    // Sign * mantissa * 2^exponent with a wide exponent range,
                    // approximating the real crate's full-domain coverage.
                    let sign = if rng.flip() { 1.0 } else { -1.0 };
                    let exponent = rng.below(129) as i32 - 64;
                    let mantissa = rng.unit_f64() as $ty;
                    sign * mantissa * (2.0 as $ty).powi(exponent)
                }
            }
        }
    )*};
}

impl_arbitrary_float!(f32, f64);

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        crate::string::generate_matching("\\PC", rng)
            .chars()
            .next()
            .expect("\\PC generates exactly one char")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_cover_specials_and_finites() {
        let mut rng = TestRng::new(11);
        let (mut nan, mut finite) = (false, false);
        for _ in 0..4000 {
            let x = f64::arbitrary(&mut rng);
            nan |= x.is_nan();
            finite |= x.is_finite() && x != 0.0;
        }
        assert!(nan && finite);
    }

    #[test]
    fn ints_cover_boundaries() {
        let mut rng = TestRng::new(13);
        let mut saw_min = false;
        for _ in 0..4000 {
            saw_min |= i64::arbitrary(&mut rng) == i64::MIN;
        }
        assert!(saw_min);
    }
}
