//! Deterministic case runner and RNG for the proptest shim.

/// A small, fast, deterministic RNG (xorshift64* core, splitmix64 seeding).
///
/// Not cryptographic; good enough distribution for test-case generation.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG from a seed; any seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        // splitmix64 step so that consecutive seeds give unrelated streams.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        TestRng {
            state: (z ^ (z >> 31)) | 1,
        }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// The next 32 uniformly distributed bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift range reduction (Lemire); bias is negligible for
        // test-generation purposes.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// A uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A fair coin flip.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Configuration for a `proptest!` block; only `cases` is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases each test must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; the shim keeps CI time modest.
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// A `prop_assert*` failed: the property is violated.
    Fail(String),
    /// A `prop_assume!` failed: the case does not count, try another.
    Reject(String),
}

impl TestCaseError {
    /// A property failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// An input rejection with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

/// Derives the per-case seed. Folding in the test name gives each test its
/// own deterministic stream; folding in the iteration index gives each case
/// its own seed that a failure message can report for replay.
fn case_seed(name: &str, iteration: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ iteration.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Runs `config.cases` successful cases of `case`, panicking on the first
/// property failure. Rejected cases are retried (with a global cap so a
/// too-strict `prop_assume!` cannot loop forever).
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut passed: u32 = 0;
    let mut rejected: u64 = 0;
    let mut iteration: u64 = 0;
    let reject_cap = 1024 + 64 * config.cases as u64;
    while passed < config.cases {
        let seed = case_seed(name, iteration);
        iteration += 1;
        let mut rng = TestRng::new(seed);
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= reject_cap,
                    "proptest '{name}': too many rejected cases ({rejected}); \
                     prop_assume! condition is too strict"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest '{name}' failed (case {passed}, seed {seed:#018x}): {msg}")
            }
        }
    }
}
