//! Offline shim for the `proptest` API subset used by this workspace.
//!
//! Differences from the real crate, by design (see `vendor/README.md`):
//!
//! * **No shrinking.** A failing case panics with the case number and the
//!   deterministic per-case seed instead of a minimized input.
//! * **Deterministic runs.** The seed stream is a pure function of the test
//!   name and case index, so CI failures reproduce locally.
//! * **Subset regex.** String strategies support character classes, `\PC`,
//!   `.`, literals, and bounded repetition — the patterns this workspace
//!   uses — and panic on anything else.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace mirror of the real crate's `prop` re-export, so
    /// `prop::collection::vec(...)` works.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn addition_commutes(a in 0u32..100, b in 0u32..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run_cases(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                let __case = move || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                };
                __case()
            });
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not the
/// whole process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right` (left: `{:?}`, right: `{:?}`)",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right` (left: `{:?}`, right: `{:?}`): {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Asserts two expressions are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `left != right` (both: `{:?}`)",
            left
        );
    }};
}

/// Rejects the current case (it is regenerated, not failed) when the
/// condition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_stay_in_bounds(a in 5usize..10, x in -2.0f64..3.0) {
            prop_assert!((5..10).contains(&a));
            prop_assert!((-2.0..3.0).contains(&x));
        }

        #[test]
        fn assume_rejects_not_fails(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn vectors_and_tuples(v in prop::collection::vec((0i32..4, any::<bool>()), 0..16)) {
            prop_assert!(v.len() < 16);
            for (i, _) in &v {
                prop_assert!((0..4).contains(i));
            }
        }

        #[test]
        fn oneof_and_map(s in prop_oneof![
            (0u8..10).prop_map(|n| n.to_string()),
            "[a-c]{2}",
        ]) {
            prop_assert!(!s.is_empty());
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Clone, Debug, PartialEq)]
        enum Tree {
            Leaf(i64),
            Node(Vec<Tree>),
        }
        let strat = any::<i64>()
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 4, |inner| {
                crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let mut rng = crate::test_runner::TestRng::new(99);
        for _ in 0..200 {
            let _tree = strat.generate(&mut rng);
        }
    }

    #[test]
    #[should_panic(expected = "proptest 'always_fails' failed")]
    fn failures_panic_with_seed() {
        crate::test_runner::run_cases(&ProptestConfig::with_cases(1), "always_fails", |_rng| {
            Err(TestCaseError::fail("nope"))
        });
    }
}
