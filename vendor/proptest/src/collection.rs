//! Collection strategies (`prop::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy for `Vec<S::Value>` with a length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generates vectors whose elements come from `element` and whose length is
/// uniform in `size` (half-open, like the real crate's `SizeRange`).
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty size range for vec strategy");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_range() {
        let mut rng = TestRng::new(3);
        let strat = vec(0usize..10, 2..5);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }
}
