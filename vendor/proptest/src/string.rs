//! A regex-subset string generator.
//!
//! The real proptest compiles a full regex into a strategy. The shim parses
//! the subset this workspace's tests actually use:
//!
//! * character classes `[a-z0-9_-]` with ranges and `\n`/`\t`/`\\` escapes,
//! * the Unicode property class `\PC` ("not a control character"),
//! * the wildcard `.`,
//! * literal characters and escapes outside classes,
//! * repetition `{m}`, `{m,n}`, `?`, `*`, `+` (the last two capped at 8).
//!
//! Anything else panics loudly so an unsupported pattern is caught the first
//! time a test runs, not silently mis-generated.

use crate::test_runner::TestRng;

/// One `(lo, hi)` inclusive span of Unicode scalar values.
type CharSpan = (u32, u32);

struct Piece {
    spans: Vec<CharSpan>,
    min: usize,
    max: usize,
}

/// Spans standing in for `\PC` / `.`: printable ASCII plus a few non-ASCII
/// blocks (Latin-1 letters, Greek, some CJK) so multi-byte UTF-8 is
/// exercised without generating unassigned code points.
fn printable_spans() -> Vec<CharSpan> {
    vec![
        (0x20, 0x7E),     // printable ASCII
        (0xA1, 0xFF),     // Latin-1 supplement (printable part)
        (0x391, 0x3A9),   // Greek capitals
        (0x3B1, 0x3C9),   // Greek smalls
        (0x4E00, 0x4E2F), // a CJK slice
    ]
}

fn escape_char(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other, // \\, \-, \], \. and friends: the char itself
    }
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut pieces = Vec::new();
    while i < chars.len() {
        let spans: Vec<CharSpan> = match chars[i] {
            '[' => {
                i += 1;
                let mut spans = Vec::new();
                let mut pending: Vec<char> = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let c = if chars[i] == '\\' {
                        i += 1;
                        assert!(i < chars.len(), "dangling escape in '{pattern}'");
                        escape_char(chars[i])
                    } else if chars[i] == '-'
                        && !pending.is_empty()
                        && i + 1 < chars.len()
                        && chars[i + 1] != ']'
                    {
                        // A range like `a-z`: combine with the previous char.
                        let lo = pending.pop().expect("range start");
                        i += 1;
                        let hi = if chars[i] == '\\' {
                            i += 1;
                            escape_char(chars[i])
                        } else {
                            chars[i]
                        };
                        assert!(lo <= hi, "inverted range in '{pattern}'");
                        spans.push((lo as u32, hi as u32));
                        i += 1;
                        continue;
                    } else {
                        chars[i]
                    };
                    pending.push(c);
                    i += 1;
                }
                assert!(i < chars.len(), "unterminated class in '{pattern}'");
                i += 1; // consume ']'
                spans.extend(pending.into_iter().map(|c| (c as u32, c as u32)));
                spans
            }
            '\\' => {
                i += 1;
                assert!(i < chars.len(), "dangling escape in '{pattern}'");
                if chars[i] == 'P' || chars[i] == 'p' {
                    let negated = chars[i] == 'P';
                    i += 1;
                    assert!(
                        i < chars.len() && chars[i] == 'C' && negated,
                        "only the \\PC property class is supported ('{pattern}')"
                    );
                    i += 1;
                    printable_spans()
                } else {
                    let c = escape_char(chars[i]);
                    i += 1;
                    vec![(c as u32, c as u32)]
                }
            }
            '.' => {
                i += 1;
                printable_spans()
            }
            c => {
                assert!(
                    !"(){}|^$*+?".contains(c),
                    "unsupported regex construct '{c}' in '{pattern}'"
                );
                i += 1;
                vec![(c as u32, c as u32)]
            }
        };

        // Optional repetition suffix.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unterminated repetition in '{pattern}'"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => {
                    let lo: usize = lo.trim().parse().expect("repetition lower bound");
                    let hi: usize = if hi.trim().is_empty() {
                        lo + 8
                    } else {
                        hi.trim().parse().expect("repetition upper bound")
                    };
                    (lo, hi)
                }
                None => {
                    let n: usize = body.trim().parse().expect("repetition count");
                    (n, n)
                }
            }
        } else if i < chars.len() && chars[i] == '?' {
            i += 1;
            (0, 1)
        } else if i < chars.len() && chars[i] == '*' {
            i += 1;
            (0, 8)
        } else if i < chars.len() && chars[i] == '+' {
            i += 1;
            (1, 8)
        } else {
            (1, 1)
        };

        pieces.push(Piece { spans, min, max });
    }
    pieces
}

fn sample_span(spans: &[CharSpan], rng: &mut TestRng) -> char {
    let total: u64 = spans.iter().map(|(lo, hi)| (hi - lo + 1) as u64).sum();
    let mut pick = rng.below(total);
    for &(lo, hi) in spans {
        let size = (hi - lo + 1) as u64;
        if pick < size {
            return char::from_u32(lo + pick as u32).expect("spans hold valid scalars");
        }
        pick -= size;
    }
    unreachable!("pick < total by construction")
}

/// Generates one string matching `pattern` (within the supported subset).
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for piece in parse(pattern) {
        let n = piece.min + rng.below((piece.max - piece.min + 1) as u64) as usize;
        for _ in 0..n {
            out.push(sample_span(&piece.spans, rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::new(7)
    }

    #[test]
    fn class_with_ranges() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate_matching("[a-zA-Z0-9_-]{1,12}", &mut r);
            assert!((1..=12).contains(&s.chars().count()), "{s:?}");
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-'));
        }
    }

    #[test]
    fn class_with_escapes() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate_matching("[ -~\\n\\t]{0,24}", &mut r);
            assert!(s.chars().count() <= 24);
            assert!(s
                .chars()
                .all(|c| (' '..='~').contains(&c) || c == '\n' || c == '\t'));
        }
    }

    #[test]
    fn printable_property_class() {
        let mut r = rng();
        let mut saw_multibyte = false;
        for _ in 0..400 {
            let s = generate_matching("\\PC{0,64}", &mut r);
            assert!(s.chars().count() <= 64);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
            saw_multibyte |= s.len() > s.chars().count();
        }
        assert!(saw_multibyte, "expected some non-ASCII output");
    }

    #[test]
    fn exact_repetition_and_literals() {
        let mut r = rng();
        let s = generate_matching("ab{3}c", &mut r);
        assert_eq!(s, "abbbc");
    }
}
