//! Offline shim for the `parking_lot` API subset used by this workspace.
//!
//! Semantics preserved from the real crate:
//! * `Mutex::lock` returns a guard directly (no poisoning, no `Result`),
//! * `Mutex::new` / `Condvar::new` are `const fn`,
//! * `Condvar::wait` takes the guard by `&mut` and reacquires the lock.
//!
//! Built on `std::sync`; a poisoned std lock (a panic while holding it) is
//! transparently recovered, matching parking_lot's no-poisoning behavior.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion primitive whose `lock` cannot fail.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex (usable in `const`/`static` contexts).
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (the borrow checker guarantees
    /// exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The inner `Option` is always `Some` except transiently inside
/// [`Condvar::wait`], which must move the std guard by value.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A condition variable paired with [`Mutex`] guards.
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable (usable in `const` contexts).
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard's lock, blocks until notified, and
    /// reacquires the lock before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let reacquired = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(reacquired);
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every blocked waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn condvar_signals() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut started = lock.lock();
            *started = true;
            cvar.notify_all();
        });
        let (lock, cvar) = &*pair;
        let mut started = lock.lock();
        while !*started {
            cvar.wait(&mut started);
        }
        t.join().unwrap();
        assert!(*started);
    }

    #[test]
    fn debug_impls_do_not_deadlock() {
        let m = Mutex::new(7);
        let _g = m.lock();
        let s = format!("{m:?}");
        assert!(s.contains("locked"));
    }
}
