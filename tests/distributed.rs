//! Distributed-memory scenarios: SPMD ranks (racc-comm) combined with
//! per-rank RACC contexts — the paper's future-work configuration.

use racc::prelude::*;
use racc_comm::World;

/// A distributed dot product: each rank reduces its chunk with the RACC
/// constructs on a *simulated GPU*, then the ranks allreduce.
#[test]
fn distributed_dot_across_simulated_gpus() {
    let n_total = 40_000usize;
    let ranks = 4usize;
    let per = n_total / ranks;
    let results = World::run(ranks, move |comm| {
        let ctx = racc::context_for("cudasim").unwrap();
        let lo = comm.rank() * per;
        let x = ctx.array_from_fn(per, |i| ((lo + i) % 10) as f64).unwrap();
        let y = ctx
            .array_from_fn(per, |i| (((lo + i) + 5) % 10) as f64)
            .unwrap();
        let (xv, yv) = (x.view(), y.view());
        let local: f64 =
            ctx.parallel_reduce(per, &KernelProfile::dot(), move |i| xv.get(i) * yv.get(i));
        comm.allreduce_sum(local).unwrap()
    });
    let expect: f64 = (0..n_total)
        .map(|i| ((i % 10) as f64) * (((i + 5) % 10) as f64))
        .sum();
    for r in &results {
        assert!((r - expect).abs() < 1e-9 * expect, "{r} vs {expect}");
    }
}

/// Halo exchange correctness: a distributed 1D stencil equals the serial
/// stencil after assembly.
#[test]
fn distributed_stencil_matches_serial() {
    let n = 1000usize;
    let ranks = 3usize;
    let data: Vec<f64> = (0..n).map(|i| ((i * 37) % 23) as f64).collect();
    let serial: Vec<f64> = (0..n)
        .map(|i| {
            let l = if i > 0 { data[i - 1] } else { 0.0 };
            let r = if i + 1 < n { data[i + 1] } else { 0.0 };
            l - 2.0 * data[i] + r
        })
        .collect();

    let data_for_ranks = data.clone();
    let pieces = World::run(ranks, move |comm| {
        let base = n / comm.size();
        let rem = n % comm.size();
        let lo = comm.rank() * base + comm.rank().min(rem);
        let len = base + usize::from(comm.rank() < rem);
        let hi = lo + len;
        let chunk = &data_for_ranks[lo..hi];
        // Exchange halos with neighbors.
        let left = if comm.rank() > 0 {
            comm.send(comm.rank() - 1, chunk[0]).unwrap();
            comm.recv::<f64>(comm.rank() - 1).unwrap()
        } else {
            0.0
        };
        let right = if comm.rank() + 1 < comm.size() {
            comm.send(comm.rank() + 1, chunk[len - 1]).unwrap();
            comm.recv::<f64>(comm.rank() + 1).unwrap()
        } else {
            0.0
        };
        let ctx = racc::context_for("threads").unwrap();
        let a = ctx.array_from(chunk).unwrap();
        let out = ctx.zeros::<f64>(len).unwrap();
        let (av, ov) = (a.view(), out.view_mut());
        ctx.parallel_for(len, &KernelProfile::unknown(), move |i| {
            let l = if i > 0 { av.get(i - 1) } else { left };
            let r = if i + 1 < len { av.get(i + 1) } else { right };
            ov.set(i, l - 2.0 * av.get(i) + r);
        });
        ctx.to_host(&out).unwrap()
    });
    let assembled: Vec<f64> = pieces.into_iter().flatten().collect();
    assert_eq!(assembled, serial);
}

/// Collectives compose with reductions from the front end's operator set.
#[test]
fn allreduce_with_frontend_operators() {
    let results = World::run(5, |comm| {
        let local = (comm.rank() as i64 + 1) * 7;
        (
            comm.allreduce(local, racc::Max).unwrap(),
            comm.allreduce(local, racc::Min).unwrap(),
            comm.allreduce(local, racc::Sum).unwrap(),
        )
    });
    for (max, min, sum) in results {
        assert_eq!(max, 35);
        assert_eq!(min, 7);
        assert_eq!(sum, 7 + 14 + 21 + 28 + 35);
    }
}
