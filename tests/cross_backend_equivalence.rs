//! The portability contract, tested end to end: the same program text runs
//! on every compiled-in back end and produces equivalent results.

use racc::prelude::*;
use racc::Ctx;

fn contexts() -> Vec<Ctx> {
    racc::available_backends()
        .into_iter()
        .map(|key| racc::context_for(key).expect("backend compiled in"))
        .collect()
}

/// Results must agree across backends to floating-point tolerance (static
/// schedules differ only in combine-tree shape).
fn assert_all_close(label: &str, values: &[(String, f64)]) {
    let first = values[0].1;
    for (key, v) in values {
        let denom = first.abs().max(1e-300);
        assert!(
            ((v - first) / denom).abs() < 1e-9,
            "{label}: backend {key} gave {v}, expected ~{first}"
        );
    }
}

#[test]
fn axpy_dot_pipeline_equivalent_everywhere() {
    let n = 40_000usize;
    let mut dots = Vec::new();
    let mut hosts: Vec<(String, Vec<f64>)> = Vec::new();
    for ctx in contexts() {
        let x = ctx
            .array_from_fn(n, |i| ((i * 37) % 101) as f64 * 0.25)
            .unwrap();
        let y = ctx
            .array_from_fn(n, |i| ((i * 61) % 97) as f64 * 0.5)
            .unwrap();
        let (xv, yv) = (x.view_mut(), y.view());
        ctx.parallel_for(n, &KernelProfile::axpy(), move |i| {
            xv.set(i, xv.get(i) + 1.5 * yv.get(i));
        });
        let (xv, yv) = (x.view(), y.view());
        let d: f64 = ctx.parallel_reduce(n, &KernelProfile::dot(), move |i| xv.get(i) * yv.get(i));
        dots.push((ctx.key().to_string(), d));
        hosts.push((ctx.key().to_string(), ctx.to_host(&x).unwrap()));
    }
    assert_all_close("dot", &dots);
    // The element-wise AXPY results must be *identical* (same arithmetic,
    // no reduction-order freedom).
    let first = &hosts[0].1;
    for (key, host) in &hosts {
        assert_eq!(host, first, "axpy output differs on {key}");
    }
}

#[test]
fn two_d_and_three_d_constructs_equivalent() {
    let (m, n, l) = (24usize, 18usize, 12usize);
    let mut sums2 = Vec::new();
    let mut sums3 = Vec::new();
    let mut maxes = Vec::new();
    for ctx in contexts() {
        let a = ctx
            .array2_from_fn(m, n, |i, j| ((i * 7 + j * 13) % 29) as f64)
            .unwrap();
        let av = a.view();
        let s2: f64 = ctx.parallel_reduce_2d((m, n), &KernelProfile::dot(), move |i, j| {
            av.get(i, j) * 1.5
        });
        sums2.push((ctx.key().to_string(), s2));

        let b = ctx.zeros3::<f64>(m, n, l).unwrap();
        let bv = b.view_mut();
        ctx.parallel_for_3d((m, n, l), &KernelProfile::unknown(), move |i, j, k| {
            bv.set(i, j, k, ((i + 2 * j + 3 * k) % 11) as f64);
        });
        let bv = b.view();
        let s3: f64 = ctx.parallel_reduce_3d((m, n, l), &KernelProfile::dot(), move |i, j, k| {
            bv.get(i, j, k)
        });
        sums3.push((ctx.key().to_string(), s3));

        let av = a.view();
        let mx: f64 =
            ctx.parallel_reduce_2d_with((m, n), &KernelProfile::dot(), racc::Max, move |i, j| {
                av.get(i, j)
            });
        maxes.push((ctx.key().to_string(), mx));
    }
    assert_all_close("sum2d", &sums2);
    assert_all_close("sum3d", &sums3);
    assert_all_close("max2d", &maxes);
}

#[test]
fn lbm_steps_equivalent_everywhere() {
    use racc_lbm::portable::LbmSim;
    let s = 20usize;
    let tau = 0.8;
    let fields = |x: usize, y: usize| (1.0 + 0.01 * ((x * 5 + y) as f64).cos(), 0.015, -0.01);
    let mut snapshots: Vec<(String, Vec<f64>)> = Vec::new();
    for ctx in contexts() {
        let mut sim = LbmSim::new(&ctx, s, tau, fields).unwrap();
        for _ in 0..6 {
            sim.step();
        }
        snapshots.push((ctx.key().to_string(), sim.distributions().unwrap()));
    }
    let first = &snapshots[0].1;
    for (key, snap) in &snapshots {
        let max_diff = snap
            .iter()
            .zip(first)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_diff < 1e-13, "LBM differs on {key}: {max_diff}");
    }
}

#[test]
fn cg_converges_identically_everywhere() {
    use racc_cg::solver::solve;
    use racc_cg::tridiag::{DeviceTridiag, Tridiag};
    let n = 3000usize;
    let a = Tridiag::diagonally_dominant(n);
    let b_host: Vec<f64> = (0..n).map(|i| ((i % 13) as f64) - 6.0).collect();
    let direct = a.thomas_solve(&b_host);
    for ctx in contexts() {
        let da = DeviceTridiag::upload(&ctx, &a).unwrap();
        let b = ctx.array_from(&b_host).unwrap();
        let (result, ws) = solve(&ctx, &da, &b, 1e-10, 300).unwrap();
        assert!(
            result.converged,
            "{}: residual {}",
            ctx.key(),
            result.residual
        );
        let x = ctx.to_host(&ws.x).unwrap();
        for (got, want) in x.iter().zip(&direct) {
            assert!((got - want).abs() < 1e-7, "{}: {got} vs {want}", ctx.key());
        }
    }
}

#[test]
fn gpu_backends_model_transfers_cpu_backends_do_not() {
    let n = 1 << 18;
    for ctx in contexts() {
        ctx.reset_timeline();
        let arr = ctx.array_from(&vec![1.0f64; n]).unwrap();
        let _ = ctx.to_host(&arr).unwrap();
        let t = ctx.timeline();
        if ctx.is_accelerator() {
            assert!(t.h2d_bytes > 0, "{} must model H2D", ctx.key());
            assert!(t.d2h_bytes > 0, "{} must model D2H", ctx.key());
            assert!(t.modeled_ns > 0);
        } else {
            assert_eq!(t.modeled_ns, 0, "{} arrays are free", ctx.key());
        }
    }
}
