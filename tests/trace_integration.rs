//! Cross-backend integration tests for the `racc-trace` span recorder: on
//! every backend, the recorder's spans must reconcile exactly with the
//! backend's [`TimelineSnapshot`] counters — same launch/reduction counts,
//! same transfer byte totals, same modeled nanoseconds.
#![cfg(feature = "trace")]

use racc::prelude::*;
use racc::trace::{json, total_modeled_ns, ConstructKind};

fn traced(key: &str) -> Ctx {
    racc::builder()
        .backend(key)
        .trace(true)
        .build()
        .expect("backend compiled in")
}

/// A workload touching every construct family: transfers (alloc/upload and
/// download), 1D/2D/3D `parallel_for`, and 1D/2D reductions.
fn workload(ctx: &Ctx) -> f64 {
    let n = 8192usize;
    let x = ctx.array_from_fn(n, |i| (i % 100) as f64).expect("alloc x");
    let y = ctx
        .array_from_fn(n, |i| ((i + 3) % 50) as f64)
        .expect("alloc y");
    let (xv, yv) = (x.view_mut(), y.view());
    ctx.parallel_for(n, &KernelProfile::axpy(), move |i| {
        xv.set(i, xv.get(i) + 1.5 * yv.get(i));
    });
    let (xv, yv) = (x.view(), y.view());
    let dot: f64 = ctx.parallel_reduce(n, &KernelProfile::dot(), move |i| xv.get(i) * yv.get(i));

    let s = 64usize;
    let m = ctx.zeros2(s, s).expect("alloc m");
    let mv = m.view_mut();
    ctx.parallel_for_2d((s, s), &KernelProfile::axpy(), move |i, j| {
        mv.set(i, j, (i + j) as f64);
    });
    let mv = m.view();
    let sum2: f64 = ctx.parallel_reduce_2d((s, s), &KernelProfile::dot(), move |i, j| mv.get(i, j));

    let c = ctx.zeros3(8, 8, 8).expect("alloc c");
    let cv = c.view_mut();
    ctx.parallel_for_3d((8, 8, 8), &KernelProfile::axpy(), move |i, j, k| {
        cv.set(i, j, k, (i * j * k) as f64);
    });

    let host = ctx.to_host(&x).expect("download");
    dot + sum2 + host[0]
}

#[test]
fn spans_reconcile_with_timeline_on_every_backend() {
    for key in racc::available_backends() {
        let ctx = traced(key);
        let _ = workload(&ctx);

        let recorder = ctx.tracer().expect("traced context has a recorder");
        assert_eq!(recorder.dropped(), 0, "{key}: ring buffer overflowed");
        let spans = ctx.trace_spans();
        assert!(!spans.is_empty(), "{key}: no spans recorded");
        let snap = ctx.timeline();

        let fors = spans
            .iter()
            .filter(|s| {
                matches!(
                    s.kind,
                    ConstructKind::For1d | ConstructKind::For2d | ConstructKind::For3d
                )
            })
            .count() as u64;
        let reduces = spans
            .iter()
            .filter(|s| {
                matches!(
                    s.kind,
                    ConstructKind::Reduce1d | ConstructKind::Reduce2d | ConstructKind::Reduce3d
                )
            })
            .count() as u64;
        assert_eq!(fors, snap.launches, "{key}: for-span count vs launches");
        assert_eq!(
            reduces, snap.reductions,
            "{key}: reduce-span count vs reductions"
        );

        let h2d: u64 = spans
            .iter()
            .filter(|s| s.kind == ConstructKind::H2d)
            .map(|s| s.bytes)
            .sum();
        let d2h: u64 = spans
            .iter()
            .filter(|s| s.kind == ConstructKind::D2h)
            .map(|s| s.bytes)
            .sum();
        assert_eq!(h2d, snap.h2d_bytes, "{key}: h2d byte sum");
        assert_eq!(d2h, snap.d2h_bytes, "{key}: d2h byte sum");

        assert_eq!(
            total_modeled_ns(&spans),
            snap.modeled_ns,
            "{key}: span modeled-ns sum vs timeline"
        );
    }
}

#[test]
fn cpu_backends_record_real_wall_clock() {
    for key in ["serial", "threads"] {
        let ctx = traced(key);
        let _ = workload(&ctx);
        let spans = ctx.trace_spans();
        assert!(
            spans.iter().any(|s| s.real_ns > 0
                && matches!(s.kind, ConstructKind::For1d | ConstructKind::Reduce1d)),
            "{key}: expected real wall-clock time on construct spans"
        );
    }
}

#[test]
fn threads_backend_emits_worker_chunk_spans() {
    let ctx = racc::builder()
        .backend("threads")
        .threads(4)
        .trace(true)
        .build()
        .expect("threads backend");
    let _ = workload(&ctx);
    let spans = ctx.trace_spans();
    let chunks: Vec<_> = spans
        .iter()
        .filter(|s| s.kind == ConstructKind::WorkerChunk)
        .collect();
    assert!(!chunks.is_empty(), "expected per-worker chunk spans");
    // Chunk spans measure real time only; they must not perturb the
    // modeled-ns reconciliation.
    assert!(chunks.iter().all(|s| s.modeled_ns == 0));
}

#[test]
fn untraced_context_records_nothing() {
    let ctx = racc::builder().backend("serial").build().expect("serial");
    let _ = workload(&ctx);
    assert!(ctx.tracer().is_none());
    assert!(ctx.trace_spans().is_empty());
}

#[test]
fn runtime_toggle_pauses_recording() {
    let ctx = traced("serial");
    let _ = workload(&ctx);
    let recorder = ctx.tracer().expect("recorder").clone();
    let before = recorder.recorded();
    recorder.set_enabled(false);
    let _ = workload(&ctx);
    assert_eq!(
        recorder.recorded(),
        before,
        "disabled recorder must not record"
    );
    recorder.set_enabled(true);
    let _ = workload(&ctx);
    assert!(recorder.recorded() > before);
}

#[test]
fn chrome_export_is_valid_json_for_all_backends() {
    let mut groups: Vec<(String, Vec<racc::trace::Span>)> = Vec::new();
    for key in racc::available_backends() {
        let ctx = traced(key);
        let _ = workload(&ctx);
        groups.push((key.to_string(), ctx.trace_spans()));
    }
    let refs: Vec<(&str, &[racc::trace::Span])> = groups
        .iter()
        .map(|(k, s)| (k.as_str(), s.as_slice()))
        .collect();
    let out = racc::trace::chrome::chrome_trace(&refs);
    json::validate(&out).unwrap_or_else(|(pos, msg)| panic!("invalid JSON at {pos}: {msg}"));
    // Every backend appears as a process in the export.
    for key in racc::available_backends() {
        assert!(out.contains(key), "missing group {key}");
    }
}

#[test]
fn collectives_record_spans_under_run_traced() {
    use std::sync::Arc;

    let recorder = Arc::new(racc::trace::TraceRecorder::new(1024));
    let size = 4usize;
    let sums = racc_comm::World::run_traced(size, Arc::clone(&recorder), |rank| {
        let local = vec![rank.rank() as f64; 8];
        let total = rank.allreduce_sum(rank.rank() as f64).unwrap();
        let gathered = rank.allgather(local).unwrap();
        total + gathered.len() as f64
    });
    assert_eq!(sums.len(), size);

    let spans = recorder.spans();
    let allreduce = spans.iter().filter(|s| s.name == "allreduce").count();
    let allgather = spans.iter().filter(|s| s.name == "allgather").count();
    assert_eq!(allreduce, size, "one allreduce span per rank");
    assert_eq!(allgather, size, "one allgather span per rank");
    assert!(spans
        .iter()
        .all(|s| s.backend == "comm" && s.kind == ConstructKind::Collective));
    // Geometry carries (rank, world size); every rank must appear.
    let mut ranks: Vec<u64> = spans
        .iter()
        .filter(|s| s.name == "allreduce")
        .map(|s| s.grid)
        .collect();
    ranks.sort_unstable();
    assert_eq!(ranks, vec![0, 1, 2, 3]);
}
