//! End-to-end application runs: the two mini-apps of the paper's
//! evaluation, executed through the full stack (front end → backend →
//! simulator) with physics/math acceptance criteria.

/// The LBM shear-wave experiment on a simulated GPU must reproduce the
/// analytic BGK viscosity, proving streaming + collision survive the whole
/// portability stack (not just the serial reference).
#[test]
fn lbm_viscosity_on_simulated_gpu() {
    use racc_lbm::lattice::viscosity;
    use racc_lbm::portable::LbmSim;

    let ctx = racc::context_for("hipsim").unwrap();
    let s = 32usize;
    let tau = 1.0f64;
    let u0 = 1e-4;
    let k = 2.0 * std::f64::consts::PI / s as f64;
    let mut sim = LbmSim::new(&ctx, s, tau, |_x, y| (1.0, u0 * (k * y as f64).sin(), 0.0)).unwrap();

    let amplitude = |sim: &LbmSim<_>| -> f64 {
        let (_rho, ux, _uy) = sim.macroscopic().unwrap();
        let mut num = 0.0;
        let mut den = 0.0;
        for y in 0..s {
            let mut u = 0.0;
            for x in 0..s {
                u += ux[x * s + y];
            }
            u /= s as f64;
            let sy = (k * y as f64).sin();
            num += u * sy;
            den += sy * sy;
        }
        num / den
    };

    let a0 = amplitude(&sim);
    let steps = 120;
    for _ in 0..steps {
        sim.step_periodic();
    }
    let a1 = amplitude(&sim);
    let measured = -(a1 / a0).ln() / steps as f64;
    let analytic = viscosity(tau) * k * k;
    let rel = (measured - analytic).abs() / analytic;
    assert!(
        rel < 0.05,
        "measured {measured:.4e} vs analytic {analytic:.4e}"
    );
}

/// The cavity-style interior LBM run stays finite and keeps its boundary
/// untouched through many steps on the threads backend.
#[test]
fn lbm_interior_long_run_is_stable() {
    use racc_lbm::portable::LbmSim;
    let ctx = racc::context_for("threads").unwrap();
    let s = 48usize;
    let mut sim = LbmSim::new(&ctx, s, 0.7, |x, _y| (1.0, 0.03 * (x as f64 / 48.0), 0.0)).unwrap();
    sim.run(100);
    let f = sim.distributions().unwrap();
    assert!(f.iter().all(|v| v.is_finite()));
    let (rho, _, _) = sim.macroscopic().unwrap();
    assert!(rho.iter().all(|&r| r > 0.0), "densities stay positive");
}

/// Full CG solve on the simulated Intel GPU against the Thomas direct
/// solution, including the modeled-cost sanity that more iterations cost
/// more modeled time.
#[test]
fn cg_full_solve_on_simulated_intel_gpu() {
    use racc_cg::solver::solve;
    use racc_cg::tridiag::{DeviceTridiag, Tridiag};

    let ctx = racc::context_for("oneapisim").unwrap();
    let n = 5000usize;
    let a = Tridiag::diagonally_dominant(n);
    let x_true: Vec<f64> = (0..n).map(|i| ((i * 29) % 23) as f64 * 0.4 - 4.0).collect();
    let mut b_host = vec![0.0; n];
    a.matvec_ref(&x_true, &mut b_host);

    let da = DeviceTridiag::upload(&ctx, &a).unwrap();
    let b = ctx.array_from(&b_host).unwrap();
    ctx.reset_timeline();
    let (result, ws) = solve(&ctx, &da, &b, 1e-11, 400).unwrap();
    assert!(result.converged);
    let t_full = ctx.modeled_ns();

    let x = ctx.to_host(&ws.x).unwrap();
    let direct = a.thomas_solve(&b_host);
    for (got, want) in x.iter().zip(&direct) {
        assert!((got - want).abs() < 1e-7);
    }

    // A tighter iteration budget must cost less modeled time.
    ctx.reset_timeline();
    let (_partial, _) = solve(&ctx, &da, &b, 1e-2, 400).unwrap();
    let t_partial = ctx.modeled_ns();
    assert!(t_partial < t_full, "{t_partial} !< {t_full}");
}

/// The CSR substrate end to end: build a 2D Laplacian, solve with CG on a
/// simulated A100, verify against the constructed solution.
#[test]
fn minife_like_laplacian_on_simulated_a100() {
    use racc_cg::csr::{Csr, DeviceCsr};
    use racc_cg::solver::solve;

    let ctx = racc::context_for("cudasim").unwrap();
    let m = Csr::laplacian_2d(24, 24);
    let n = m.nrows();
    let x_true: Vec<f64> = (0..n).map(|i| ((i % 11) as f64) * 0.3).collect();
    let mut b_host = vec![0.0; n];
    m.matvec_ref(&x_true, &mut b_host);

    let dm = DeviceCsr::upload(&ctx, &m).unwrap();
    let b = ctx.array_from(&b_host).unwrap();
    let (result, ws) = solve(&ctx, &dm, &b, 1e-10, 3000).unwrap();
    assert!(result.converged, "residual {}", result.residual);
    let x = ctx.to_host(&ws.x).unwrap();
    for (got, want) in x.iter().zip(&x_true) {
        assert!((got - want).abs() < 1e-6);
    }
}

/// Device-specific and portable paths agree numerically on the full BLAS
/// suite (one vendor spot-check through the public crates).
#[test]
fn vendor_and_portable_blas_agree() {
    let n = 30_000usize;
    let hx: Vec<f64> = (0..n).map(|i| ((i * 17) % 101) as f64 * 0.03).collect();
    let hy: Vec<f64> = (0..n).map(|i| ((i * 23) % 89) as f64 * 0.07).collect();

    // Vendor path on the CUDA shim.
    let cuda = racc_cudasim::Cuda::new();
    let dx = cuda.cu_array(&hx).unwrap();
    let dy = cuda.cu_array(&hy).unwrap();
    racc_blas::vendor::cuda::axpy(&cuda, 1.25, &dx, &dy);
    let (vendor_dot, _) = racc_blas::vendor::cuda::dot(&cuda, &dx, &dy);

    // Portable path on the corresponding RACC backend.
    let ctx = racc::context_for("cudasim").unwrap();
    let px = ctx.array_from(&hx).unwrap();
    let py = ctx.array_from(&hy).unwrap();
    racc_blas::portable::axpy(&ctx, 1.25, &px, &py);
    let portable_dot = racc_blas::portable::dot(&ctx, &px, &py);

    assert!(
        (vendor_dot - portable_dot).abs() < 1e-9 * portable_dot.abs(),
        "{vendor_dot} vs {portable_dot}"
    );
    assert_eq!(cuda.to_host(&dx).unwrap(), ctx.to_host(&px).unwrap());
}
