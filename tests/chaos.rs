//! End-to-end fault-injection tests: determinism of seeded schedules,
//! bit-identical recovery under transient faults with retries, and
//! graceful degradation to `threads` on hard device failure.

use racc::prelude::*;
use racc::{FaultPlan, FaultSite, RetryPolicy};

/// Serializes the tests that read or write `RACC_CHAOS`: the variable is
/// process-global, and `Context` construction consults it.
static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn env_guard() -> std::sync::MutexGuard<'static, ()> {
    ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A mixed workload: allocations (with uploads), launches, and readbacks,
/// so every injection site gets plenty of draws.
fn chaos_workload(ctx: &Ctx) -> f64 {
    let mut acc = 0.0f64;
    for k in 0..200usize {
        let n = 64 + (k % 7) * 16;
        let x = ctx.array_from_fn(n, |i| ((i + k) % 13) as f64).unwrap();
        let xv = x.view_mut();
        ctx.parallel_for(n, &KernelProfile::axpy(), move |i| {
            xv.set(i, xv.get(i) + 1.0);
        });
        let xv = x.view();
        acc += ctx.parallel_reduce(n, &KernelProfile::dot(), move |i| xv.get(i));
    }
    acc
}

#[test]
fn same_seed_gives_identical_fault_logs_and_results() {
    let _env = env_guard();
    let run = || {
        let ctx = racc::builder()
            .backend("cudasim")
            .chaos(FaultPlan::seeded(7))
            .retry(RetryPolicy::default())
            .build()
            .unwrap();
        let acc = chaos_workload(&ctx);
        (acc.to_bits(), ctx.fault_log())
    };
    let (acc_a, log_a) = run();
    let (acc_b, log_b) = run();
    assert!(!log_a.is_empty(), "seeded schedule must inject something");
    assert_eq!(log_a, log_b, "same seed must give the same fault schedule");
    assert_eq!(acc_a, acc_b, "results must be bit-identical across runs");
}

#[test]
fn chaos_is_a_noop_on_cpu_backends() {
    let _env = env_guard();
    let ctx = racc::builder()
        .backend("threads")
        .chaos(FaultPlan::seeded(3))
        .retry(RetryPolicy::default())
        .build()
        .unwrap();
    let acc = chaos_workload(&ctx);
    assert!(acc > 0.0);
    assert!(
        ctx.fault_log().is_empty(),
        "CPU backends have no driver surface to fault"
    );
}

#[test]
fn env_armed_chaos_auto_installs_retries() {
    let _env = env_guard();
    std::env::set_var("RACC_CHAOS", "h2d:every-5");
    // Context construction is where the env is consulted; arming from the
    // environment also installs the default retry policy so existing
    // programs keep passing under the CI chaos soak.
    let ctx = racc::context_for("cudasim").unwrap();
    std::env::remove_var("RACC_CHAOS");
    let acc = chaos_workload(&ctx);
    assert!(acc > 0.0);
    let log = ctx.fault_log();
    assert!(!log.is_empty(), "every 5th upload must have been failed");
    assert!(log.iter().all(|ev| ev.site == FaultSite::H2d));
}

/// The recovery criterion: CG on `cudasim` under a transient
/// transfer-fault schedule, with retries, produces a residual history
/// bit-identical to the fault-free run — faults are injected before the
/// operation's side effects, so a retried operation replays exactly.
#[test]
fn cg_residual_history_is_bit_identical_under_transient_faults() {
    use racc_cg::solver::CgWorkspace;
    use racc_cg::tridiag::{DeviceTridiag, Tridiag};

    let _env = env_guard();
    // The CI chaos soak sets RACC_CHAOS for the whole suite; this test
    // needs a genuinely clean baseline context.
    std::env::remove_var("RACC_CHAOS");
    let history = |ctx: &Ctx| -> Vec<u64> {
        let n = 96usize;
        let a = Tridiag::diagonally_dominant(n);
        let da = DeviceTridiag::upload(ctx, &a).unwrap();
        let b = ctx
            .array_from_fn(n, |i| ((i * 37) % 19) as f64 * 0.25 - 2.0)
            .unwrap();
        let mut ws = CgWorkspace::new(ctx, &b).unwrap();
        (0..25).map(|_| ws.iterate(ctx, &da).to_bits()).collect()
    };

    let clean = racc::builder().backend("cudasim").build().unwrap();
    let faulty = racc::builder()
        .backend("cudasim")
        .chaos(FaultPlan::parse("h2d:every-3;d2h:every-4").unwrap())
        .retry(RetryPolicy::default())
        .build()
        .unwrap();

    assert_eq!(
        history(&clean),
        history(&faulty),
        "retried transient faults must not change a single bit"
    );
    assert!(clean.fault_log().is_empty());
    let log = faulty.fault_log();
    assert!(!log.is_empty(), "the schedule must actually have fired");
    assert!(log
        .iter()
        .all(|ev| matches!(ev.site, FaultSite::H2d | FaultSite::D2h)));
}

/// The degradation criterion: a scripted hard device failure (every
/// launch fails, beyond what retries can absorb) falls back to `threads`
/// when requested, still computes correct results, and reports the
/// observed faults plus a `fallback` marker as trace spans.
#[test]
fn hard_device_failure_falls_back_to_threads() {
    let _env = env_guard();
    let ctx = racc::builder()
        .backend("cudasim")
        .chaos(FaultPlan::parse("launch:always").unwrap())
        .retry(RetryPolicy::default())
        .fallback(true)
        .trace(true)
        .build()
        .unwrap();
    assert_eq!(ctx.key(), "threads", "hard failure must degrade to threads");

    // The replacement context does real work, correctly.
    let n = 512usize;
    let x = ctx.array_from_fn(n, |i| i as f64).unwrap();
    let xv = x.view();
    let sum: f64 = ctx.parallel_reduce(n, &KernelProfile::dot(), move |i| xv.get(i));
    assert_eq!(sum, (n * (n - 1) / 2) as f64);

    // The probe's injected faults and the fallback decision are visible
    // in the trace.
    let spans = ctx.trace_spans();
    let faults: Vec<_> = spans
        .iter()
        .filter(|s| s.kind == racc::trace::ConstructKind::Fault)
        .collect();
    assert!(
        faults.iter().any(|s| s.name == "launch"),
        "probe faults must be reported"
    );
    assert!(
        faults.iter().any(|s| s.name == "fallback"),
        "the fallback itself must be reported"
    );
}

/// Without `fallback`, the same hard failure surfaces as an error from
/// the construct (the retry policy exhausts) rather than silently
/// degrading — the context keeps the backend the caller asked for.
#[test]
fn without_fallback_the_backend_is_kept() {
    let _env = env_guard();
    let ctx = racc::builder()
        .backend("cudasim")
        .chaos(FaultPlan::parse("launch:always").unwrap())
        .retry(RetryPolicy::default())
        .build()
        .unwrap();
    assert_eq!(ctx.key(), "cudasim");
}
