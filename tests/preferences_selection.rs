//! Backend selection through preferences and the environment — JACC's
//! `Preferences.jl` flow, end to end.
//!
//! Environment and working-directory manipulation is process-global, so
//! everything lives in one `#[test]` running scenarios sequentially.

use racc::{Preferences, PREFS_FILE_NAME};

#[test]
fn selection_precedence_env_then_file_then_default() {
    let dir = std::env::temp_dir().join(format!("racc-prefsel-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let old_cwd = std::env::current_dir().unwrap();
    std::env::set_current_dir(&dir).unwrap();
    std::env::remove_var(racc::BACKEND_ENV);

    // 1. Nothing configured: the Threads default (JACC's default back end).
    assert_eq!(racc::preferred_backend_key(), "threads");
    assert_eq!(racc::default_context().key(), "threads");

    // 2. A preferences file selects the backend.
    racc::set_preferred_backend(".", "serial").unwrap();
    assert_eq!(racc::preferred_backend_key(), "serial");
    assert_eq!(racc::default_context().key(), "serial");

    // 3. The environment variable overrides the file.
    std::env::set_var(racc::BACKEND_ENV, "cudasim");
    assert_eq!(racc::preferred_backend_key(), "cudasim");
    assert_eq!(racc::default_context().key(), "cudasim");

    // 4. A bogus env value falls back to threads (with a warning).
    std::env::set_var(racc::BACKEND_ENV, "abacus");
    assert_eq!(racc::default_context().key(), "threads");

    // 5. Whitespace-only env values are ignored in favor of the file.
    std::env::set_var(racc::BACKEND_ENV, "   ");
    assert_eq!(racc::preferred_backend_key(), "serial");

    // 6. The persisted file is valid TOML-subset that round-trips.
    let prefs = Preferences::load(PREFS_FILE_NAME).unwrap();
    assert_eq!(prefs.get_str("racc", "backend"), Some("serial"));
    let reparsed = Preferences::from_toml(&prefs.to_toml()).unwrap();
    assert_eq!(reparsed.get_str("racc", "backend"), Some("serial"));

    // 7. Updating the preference rewrites, not duplicates.
    racc::set_preferred_backend(".", "hipsim").unwrap();
    let prefs = Preferences::load(PREFS_FILE_NAME).unwrap();
    assert_eq!(prefs.len(), 1);
    assert_eq!(prefs.get_str("racc", "backend"), Some("hipsim"));

    std::env::remove_var(racc::BACKEND_ENV);
    std::env::set_current_dir(old_cwd).unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
