//! Dynamic write-race detection through the public front end
//! (compiled only with `--features racecheck`).
//!
//! All scenarios share process-global checker state, so they run inside one
//! `#[test]` sequentially.

#![cfg(feature = "racecheck")]

use racc::prelude::*;
use racc_core::racecheck;
use std::panic::{catch_unwind, AssertUnwindSafe};

#[test]
fn racecheck_catches_seeded_races_and_passes_clean_kernels() {
    let ctx = racc::context_for("serial").unwrap();
    racecheck::set_enabled(true);

    // Clean disjoint writes pass.
    let a = ctx.zeros::<f64>(256).unwrap();
    let av = a.view_mut();
    ctx.parallel_for(256, &KernelProfile::unknown(), move |i| {
        av.set(i, i as f64);
    });

    // A seeded overlap (every iteration writes element 0) panics.
    let b = ctx.zeros::<f64>(8).unwrap();
    let bv = b.view_mut();
    let result = catch_unwind(AssertUnwindSafe(|| {
        ctx.parallel_for(64, &KernelProfile::unknown(), move |_i| {
            bv.set(0, 1.0);
        });
    }));
    let payload = result.expect_err("race must be detected");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(msg.contains("racecheck"), "{msg}");

    // 2D stencil with halo-overlapping writes is also caught.
    let c = ctx.zeros2::<f64>(8, 8).unwrap();
    let cv = c.view_mut();
    let result = catch_unwind(AssertUnwindSafe(|| {
        ctx.parallel_for_2d((8, 8), &KernelProfile::unknown(), move |i, j| {
            // Each site writes its right neighbor too: overlap.
            cv.set(i, j, 1.0);
            if i + 1 < 8 {
                cv.set(i + 1, j, 2.0);
            }
        });
    }));
    assert!(result.is_err(), "overlapping stencil writes must be caught");

    // The LBM kernel's writes are disjoint by construction: must pass.
    racecheck::set_enabled(true);
    let mut sim = racc_lbm::portable::LbmSim::uniform(&ctx, 12, 0.8, 1.0, 0.01, 0.0).unwrap();
    sim.step();
    sim.step_periodic();

    // Disabled checker ignores overlaps again.
    racecheck::set_enabled(false);
    let d = ctx.zeros::<f64>(4).unwrap();
    let dv = d.view_mut();
    ctx.parallel_for(16, &KernelProfile::unknown(), move |_i| {
        dv.set(0, 3.0);
    });
}
