//! Differential tests of the device primitives (`racc-prim`): every
//! backend must reproduce the canonical serial reference **bitwise** —
//! for `f64`, `f32`, and `u32` elements, for NaN payloads, for empty
//! extents, and across repeated runs on the stealing threadpool. CI runs
//! this suite again under `--features racecheck` and `RACC_SANITIZER=1`.

use proptest::prelude::*;
use racc::prelude::*;
use racc::prim::reference;
use racc::Ctx;
use std::cell::RefCell;

fn contexts() -> Vec<Ctx> {
    racc::available_backends()
        .into_iter()
        .map(|key| racc::context_for(key).expect("backend compiled in"))
        .collect()
}

/// The canonical inclusive/exclusive scan, collected on the host.
fn reference_scan_f(data: &[f64], inclusive: bool) -> Vec<f64> {
    let out = RefCell::new(vec![0.0f64; data.len()]);
    reference::scan_canonical(
        data.len(),
        inclusive,
        &|i| data[i],
        &|i, v| out.borrow_mut()[i] = v,
        Sum,
    );
    out.into_inner()
}

fn reference_histogram(keys: &[u32], bins: usize) -> Vec<u64> {
    let out = RefCell::new(vec![0u64; bins]);
    reference::histogram_canonical(keys.len(), bins, &|i| keys[i] as usize, &|b, c| {
        out.borrow_mut()[b] = c
    });
    out.into_inner()
}

fn reference_sort_permutation(keys: &[u32]) -> Vec<u64> {
    let out = RefCell::new(vec![0u64; keys.len()]);
    reference::sort_pairs_canonical(keys.len(), &|i| keys[i] as u64, &|rank, original| {
        out.borrow_mut()[rank] = original as u64
    });
    out.into_inner()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// f64 inclusive & exclusive scans equal the serial reference bitwise
    /// on every backend.
    #[test]
    fn scan_f64_matches_reference_everywhere(
        data in prop::collection::vec(-1e6f64..1e6, 0..1500),
        inclusive in any::<bool>(),
    ) {
        let expect = reference_scan_f(&data, inclusive);
        for ctx in contexts() {
            let x = ctx.array_from(&data).unwrap();
            let s = if inclusive {
                ctx.inclusive_scan(&x).unwrap()
            } else {
                ctx.exclusive_scan(&x).unwrap()
            };
            let got = ctx.to_host(&s).unwrap();
            for i in 0..data.len() {
                prop_assert_eq!(
                    got[i].to_bits(), expect[i].to_bits(),
                    "{} differs at {} ({} vs {})", ctx.key(), i, got[i], expect[i]
                );
            }
        }
    }

    /// f32 scans — where association visibly changes bits — also agree
    /// bitwise everywhere: the fixed-tile combine really is canonical.
    #[test]
    fn scan_f32_matches_reference_everywhere(
        data in prop::collection::vec(-1e4f32..1e4, 0..1500),
    ) {
        let expect = RefCell::new(vec![0.0f32; data.len()]);
        reference::scan_canonical(
            data.len(), true, &|i| data[i],
            &|i, v| expect.borrow_mut()[i] = v, Sum,
        );
        let expect = expect.into_inner();
        for ctx in contexts() {
            let x = ctx.array_from(&data).unwrap();
            let got = ctx.to_host(&ctx.inclusive_scan(&x).unwrap()).unwrap();
            for i in 0..data.len() {
                prop_assert_eq!(
                    got[i].to_bits(), expect[i].to_bits(),
                    "{} differs at {}", ctx.key(), i
                );
            }
        }
    }

    /// Histograms over u32 keys equal the reference on every backend.
    #[test]
    fn histogram_matches_reference_everywhere(
        keys in prop::collection::vec(0u32..64, 0..2000),
        extra_bins in 0usize..8,
    ) {
        let bins = 64 + extra_bins;
        let expect = reference_histogram(&keys, bins);
        for ctx in contexts() {
            let k = ctx.array_from(&keys).unwrap();
            let h = ctx.histogram(&k, bins).unwrap();
            prop_assert_eq!(&ctx.to_host(&h).unwrap(), &expect, "{}", ctx.key());
        }
    }

    /// sort_by_key (u32 keys, f32 values) applies the reference
    /// permutation on every backend — stability included, since the
    /// permutation is unique.
    #[test]
    fn sort_by_key_matches_reference_everywhere(
        keys in prop::collection::vec(0u32..32, 0..1200),
    ) {
        let perm = reference_sort_permutation(&keys);
        let values: Vec<f32> = (0..keys.len()).map(|i| i as f32 * 0.5).collect();
        for ctx in contexts() {
            let k = ctx.array_from(&keys).unwrap();
            let v = ctx.array_from(&values).unwrap();
            let (sk, sv) = ctx.sort_by_key(&k, &v).unwrap();
            let (hk, hv) = (ctx.to_host(&sk).unwrap(), ctx.to_host(&sv).unwrap());
            for (rank, &orig) in perm.iter().enumerate() {
                prop_assert_eq!(hk[rank], keys[orig as usize], "{} key", ctx.key());
                prop_assert_eq!(
                    hv[rank].to_bits(), values[orig as usize].to_bits(),
                    "{} value", ctx.key()
                );
            }
        }
    }

    /// Repeated runs on the work-stealing threadpool are bit-identical:
    /// stealing may move tiles between workers but never changes the
    /// combine order.
    #[test]
    fn threads_prims_are_deterministic_run_to_run(
        data in prop::collection::vec(-1e5f32..1e5, 1..4000),
    ) {
        let ctx = racc::context_for("threads").unwrap();
        let x = ctx.array_from(&data).unwrap();
        let keys = ctx
            .array_from_fn(data.len(), |i| (i as u32).wrapping_mul(2654435761) % 97)
            .unwrap();
        let run = || {
            let s = ctx.to_host(&ctx.inclusive_scan(&x).unwrap()).unwrap();
            let h = ctx.to_host(&ctx.histogram(&keys, 97).unwrap()).unwrap();
            let p = ctx.to_host(&ctx.sort_permutation(&keys).unwrap()).unwrap();
            (s.iter().map(|v| v.to_bits()).collect::<Vec<_>>(), h, p)
        };
        let first = run();
        for _ in 0..3 {
            prop_assert_eq!(&run(), &first);
        }
    }
}

/// The pinned NaN contract survives the primitives: Max/Min scans drop
/// NaN at its first combine, bit-identically on all five backends.
#[test]
fn nan_scans_bit_identical_everywhere() {
    let mut data: Vec<f64> = (0..1000).map(|i| ((i * 29) % 83) as f64 - 41.0).collect();
    for i in (0..data.len()).step_by(7) {
        data[i] = f64::NAN;
    }
    // Leading NaN: tile 0 starts from a NaN seed.
    data[0] = f64::NAN;
    for (inclusive, op_is_max) in [(true, true), (true, false), (false, true), (false, false)] {
        let expect = RefCell::new(vec![0.0f64; data.len()]);
        if op_is_max {
            reference::scan_canonical(
                data.len(),
                inclusive,
                &|i| data[i],
                &|i, v| expect.borrow_mut()[i] = v,
                Max,
            );
        } else {
            reference::scan_canonical(
                data.len(),
                inclusive,
                &|i| data[i],
                &|i, v| expect.borrow_mut()[i] = v,
                Min,
            );
        }
        let expect = expect.into_inner();
        for ctx in contexts() {
            let x = ctx.array_from(&data).unwrap();
            let s = match (inclusive, op_is_max) {
                (true, true) => ctx.inclusive_scan_with(&x, Max),
                (true, false) => ctx.inclusive_scan_with(&x, Min),
                (false, true) => ctx.exclusive_scan_with(&x, Max),
                (false, false) => ctx.exclusive_scan_with(&x, Min),
            }
            .unwrap();
            let got = ctx.to_host(&s).unwrap();
            for i in 0..data.len() {
                assert_eq!(
                    got[i].to_bits(),
                    expect[i].to_bits(),
                    "{} inclusive={inclusive} max={op_is_max} at {i}: {} vs {}",
                    ctx.key(),
                    got[i],
                    expect[i]
                );
            }
        }
    }
}

/// NaN-laden Sum scans propagate NaN the way plain left-to-right float
/// arithmetic does — and still agree bitwise across backends.
#[test]
fn nan_sum_scan_bit_identical_everywhere() {
    let mut data: Vec<f32> = (0..700).map(|i| (i % 13) as f32 * 0.25).collect();
    data[350] = f32::NAN;
    let expect = reference_scan_f32(&data);
    for ctx in contexts() {
        let x = ctx.array_from(&data).unwrap();
        let got = ctx.to_host(&ctx.inclusive_scan(&x).unwrap()).unwrap();
        assert!(got[349].is_finite() && got[350].is_nan() && got[699].is_nan());
        for i in 0..data.len() {
            assert_eq!(
                got[i].to_bits(),
                expect[i].to_bits(),
                "{} at {i}",
                ctx.key()
            );
        }
    }
}

fn reference_scan_f32(data: &[f32]) -> Vec<f32> {
    let out = RefCell::new(vec![0.0f32; data.len()]);
    reference::scan_canonical(
        data.len(),
        true,
        &|i| data[i],
        &|i, v| out.borrow_mut()[i] = v,
        Sum,
    );
    out.into_inner()
}

/// Empty-extent edges: n == 0 scans/sorts return empty arrays, n == 0
/// histograms still define every bin, and reductions over zero-width
/// Array2/Array3 axes return the operator identity — on all five
/// backends.
#[test]
fn empty_extents_are_identities_everywhere() {
    for ctx in contexts() {
        let key = ctx.key().to_string();
        let empty = ctx.array_from(&[] as &[f64]).unwrap();
        assert_eq!(ctx.inclusive_scan(&empty).unwrap().len(), 0, "{key}");
        assert_eq!(ctx.exclusive_scan(&empty).unwrap().len(), 0, "{key}");
        assert_eq!(ctx.sort_permutation(&empty).unwrap().len(), 0, "{key}");

        let no_keys = ctx.array_from(&[] as &[u32]).unwrap();
        let h = ctx.histogram(&no_keys, 6).unwrap();
        assert_eq!(ctx.to_host(&h).unwrap(), vec![0u64; 6], "{key}");
        // Zero bins is legal too: an empty output, not an error.
        assert_eq!(ctx.histogram(&no_keys, 0).unwrap().len(), 0, "{key}");

        // Zero-width 2D/3D axes: reductions return the identity.
        let s2: f64 = ctx.parallel_reduce_2d((0, 17), &KernelProfile::dot(), |_i, _j| 1.0);
        assert_eq!(s2, 0.0, "{key} sum over (0, 17)");
        let m2: f64 =
            ctx.parallel_reduce_2d_with((9, 0), &KernelProfile::dot(), racc::Max, |_i, _j| 1.0);
        assert_eq!(m2, f64::NEG_INFINITY, "{key} max over (9, 0)");
        let s3: f64 = ctx.parallel_reduce_3d((4, 0, 4), &KernelProfile::dot(), |_i, _j, _k| 1.0);
        assert_eq!(s3, 0.0, "{key} sum over (4, 0, 4)");
    }
}

/// Out-of-range histogram keys are a typed error naming the first
/// offending index — deterministically, on every backend.
#[test]
fn histogram_bounds_error_everywhere() {
    for ctx in contexts() {
        let keys = ctx.array_from(&[0u32, 1, 7, 2, 9, 7]).unwrap();
        match ctx.histogram(&keys, 4) {
            Err(racc::PrimError::BinOutOfRange { index, bin, bins }) => {
                assert_eq!((index, bin, bins), (2, 7, 4), "{}", ctx.key());
            }
            other => panic!("{}: expected BinOutOfRange, got {other:?}", ctx.key()),
        }
        // The same keys with enough bins are fine.
        let h = ctx.histogram(&keys, 10).unwrap();
        assert_eq!(ctx.to_host(&h).unwrap()[7], 2, "{}", ctx.key());
    }
}

/// The negative test ISSUE asks for: the *unchecked* histogram with an
/// out-of-range key dies in the simulator's device bounds checks (what
/// simsan reports), while the guarded wrapper returns the typed error
/// without ever launching.
#[test]
fn simsan_catches_unchecked_out_of_range_histogram() {
    let ctx = racc::builder()
        .backend("cudasim")
        .sanitizer(true)
        .build()
        .unwrap();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        // Key 40 into 8 bins: straight past the per-block counters.
        ctx.histogram_by_unchecked(3000, 8, |i| if i == 1234 { 40 } else { i % 8 })
    }));
    let msg = match result {
        Err(payload) => payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default(),
        Ok(_) => panic!("unchecked out-of-range key must trip the device bounds checks"),
    };
    assert!(
        msg.contains("out of bounds"),
        "expected a bounds-check panic, got: {msg}"
    );

    // The guarded path on a fresh context: typed error, no panic.
    let ctx = racc::builder()
        .backend("cudasim")
        .sanitizer(true)
        .build()
        .unwrap();
    let err = ctx
        .histogram_by(3000, 8, |i| if i == 1234 { 40 } else { i % 8 })
        .unwrap_err();
    assert!(matches!(
        err,
        racc::PrimError::BinOutOfRange {
            index: 1234,
            bin: 40,
            bins: 8
        }
    ));
    // And with valid keys the sanitizer stays quiet.
    let h = ctx.histogram_by(3000, 8, |i| i % 8).unwrap();
    assert_eq!(ctx.to_host(&h).unwrap(), vec![375u64; 8]);
}

/// Primitives compose with chaos injection: a fixed-seed fault plan makes
/// launches and allocations fail, the retry layer recovers, and the
/// results are still bit-identical to the reference.
#[test]
fn prims_survive_fixed_seed_chaos() {
    let data: Vec<f32> = (0..5000).map(|i| ((i * 37) % 151) as f32 * 0.125).collect();
    let expect = reference_scan_f32(&data);
    for key in ["cudasim", "hipsim", "oneapisim"] {
        let ctx = racc::builder()
            .backend(key)
            .chaos(racc::FaultPlan::parse("launch:every-7;alloc:every-9").unwrap())
            .retry(racc::RetryPolicy::default())
            .build()
            .unwrap();
        let x = ctx.array_from(&data).unwrap();
        for _ in 0..4 {
            let got = ctx.to_host(&ctx.inclusive_scan(&x).unwrap()).unwrap();
            for i in 0..data.len() {
                assert_eq!(got[i].to_bits(), expect[i].to_bits(), "{key} at {i}");
            }
        }
    }
}

/// `ConstructKind::Prim` spans land on the trace, and `ctx.stats()`
/// reports the primitive counters on every backend.
#[cfg(feature = "trace")]
#[test]
fn prim_spans_and_stats_surface_everywhere() {
    use racc::trace::ConstructKind;
    for key in racc::available_backends() {
        let ctx = racc::builder().backend(key).trace(true).build().unwrap();
        let x = ctx.array_from(&[1.0f64, 2.0, 3.0, 4.0]).unwrap();
        let _ = ctx.inclusive_scan(&x).unwrap();
        let keys = ctx.array_from(&[0u32, 1, 1, 0]).unwrap();
        let _ = ctx.histogram(&keys, 2).unwrap();
        let _ = ctx.sort_permutation(&keys).unwrap();
        let spans = ctx.trace_spans();
        let prim_spans = spans
            .iter()
            .filter(|s| s.kind == ConstructKind::Prim)
            .count();
        assert!(prim_spans >= 3, "{key}: {prim_spans} prim spans");
        let stats = ctx.stats();
        let prim = stats.prim.expect("prim counters");
        assert_eq!(
            (prim.scans, prim.histograms, prim.sorts),
            (1, 1, 1),
            "{key}"
        );
    }
}
