//! Failure-path coverage through the public API: device OOM, cross-context
//! arrays, shape mismatches, bad configuration.

use racc::prelude::*;

#[test]
fn simulated_device_oom_is_a_clean_error() {
    // A CUDA backend over a deliberately small device (64 MiB) so the OOM
    // path is exercised without large host allocations.
    use racc::CudaBackend;
    use racc_gpusim::{profiles, Device};

    let mut spec = profiles::nvidia_a100();
    spec.memory_bytes = 64 << 20;
    let ctx = racc_core::Context::new(CudaBackend::from_device(std::sync::Arc::new(Device::new(
        spec,
    ))));
    let mib = 1usize << 20;
    let big = ctx.zeros::<u8>(48 * mib).expect("48 MiB fits");
    let err = ctx.zeros::<u8>(32 * mib).expect_err("must not fit");
    match err {
        RaccError::Allocation(msg) => assert!(msg.contains("out of memory"), "{msg}"),
        other => panic!("expected Allocation, got {other:?}"),
    }
    // Dropping the first allocation frees modeled memory.
    drop(big);
    let ok = ctx.zeros::<u8>(32 * mib);
    assert!(ok.is_ok(), "memory must be reclaimed on drop");
}

#[test]
fn arrays_are_bound_to_their_context() {
    let a = racc::context_for("serial").unwrap();
    let b = racc::context_for("serial").unwrap();
    let arr = a.array_from(&[1.0f64, 2.0, 3.0]).unwrap();
    match b.to_host(&arr) {
        Err(RaccError::WrongContext {
            array_ctx,
            this_ctx,
        }) => {
            assert_eq!(array_ctx, a.id());
            assert_eq!(this_ctx, b.id());
        }
        other => panic!("expected WrongContext, got {other:?}"),
    }
}

#[test]
fn shape_mismatches_are_rejected() {
    let ctx = racc::context_for("threads").unwrap();
    assert!(matches!(
        ctx.array2_from::<f64>(4, 4, &[0.0; 15]),
        Err(RaccError::ShapeMismatch(_))
    ));
    assert!(matches!(
        ctx.array3_from::<f64>(2, 3, 4, &[0.0; 23]),
        Err(RaccError::ShapeMismatch(_))
    ));
    let a = ctx.zeros::<f64>(8).unwrap();
    let b = ctx.zeros::<f64>(9).unwrap();
    assert!(matches!(
        ctx.copy_array(&a, &b),
        Err(RaccError::ShapeMismatch(_))
    ));
}

#[test]
fn unknown_backend_keys_error_and_name_the_key() {
    match racc::context_for("tpu") {
        Err(RaccError::BackendUnavailable(key)) => assert_eq!(key, "tpu"),
        other => panic!("expected BackendUnavailable, got {other:?}"),
    }
}

#[test]
fn out_of_bounds_view_access_panics_with_context() {
    let ctx = racc::context_for("serial").unwrap();
    let a = ctx.array_from(&[1.0f64; 4]).unwrap();
    let v = a.view();
    let err = std::panic::catch_unwind(move || v.get(4)).unwrap_err();
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("out of bounds"), "{msg}");
}

#[test]
fn vendor_launch_validation_fires_before_execution() {
    use racc_gpusim::KernelCost;
    let cuda = racc_cudasim::Cuda::new();
    // 2048 threads per block exceeds the A100 limit of 1024.
    let ran = std::sync::atomic::AtomicBool::new(false);
    let err = cuda
        .launch(2048, 1, 0, KernelCost::default(), |_| {
            ran.store(true, std::sync::atomic::Ordering::Relaxed);
        })
        .unwrap_err();
    assert!(err.to_string().contains("invalid launch"), "{err}");
    assert!(!ran.load(std::sync::atomic::Ordering::Relaxed));

    // Excessive shared memory is also rejected.
    let err = cuda
        .launch(256, 1, 10 << 20, KernelCost::default(), |_| {})
        .unwrap_err();
    assert!(err.to_string().contains("shared memory"), "{err}");
}

#[test]
fn malformed_preferences_file_is_a_parse_error_with_line() {
    let err = racc::Preferences::from_toml("[racc]\nbackend = \n").unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("line 2"), "{msg}");
}

#[test]
fn empty_everything_is_fine() {
    for key in racc::available_backends() {
        let ctx = racc::context_for(key).unwrap();
        let a = ctx.array_from::<f64>(&[]).unwrap();
        assert!(ctx.to_host(&a).unwrap().is_empty());
        ctx.parallel_for(0, &KernelProfile::unknown(), |_| unreachable!());
        let z: f64 = ctx.parallel_reduce(0, &KernelProfile::unknown(), |_| unreachable!());
        assert_eq!(z, 0.0);
        let z2: i64 = ctx.parallel_reduce_2d((0, 5), &KernelProfile::unknown(), |_, _| 1);
        assert_eq!(z2, 0);
    }
}
