//! End-to-end sharded multi-device tests: bit-identity of sharded runs
//! against single-device runs on every available backend, chaos-driven
//! rank death with reshard-and-replay recovery, and the shard/halo trace
//! lanes.

use racc::shard::{run_sharded, ShardOptions, ShardOutcome};
use racc::{Ctx, FaultPlan, RetryPolicy};
use racc_cg::pipelined::PipelinedCg;
use racc_lbm::sharded::ShardedLbm;
use racc_stencil::ShardedHeat3;
use std::sync::Arc;

fn heat3d(devices: usize, factory: impl Fn(usize) -> Ctx + Send + Sync + 'static) -> ShardOutcome {
    run_sharded(
        Arc::new(ShardedHeat3 { n: 10, sweeps: 6 }),
        ShardOptions::devices(devices).checkpoint_every(2),
        factory,
    )
}

fn backend_factory(key: &'static str) -> impl Fn(usize) -> Ctx + Send + Sync + 'static {
    move |_rank| {
        racc::builder()
            .backend(key)
            .build()
            .expect("backend builds")
    }
}

/// The tentpole acceptance property: sharded execution is bit-identical
/// to the single-device run on every backend — and across backends,
/// since every site evaluates the same f64 expression.
#[test]
fn sharded_heat3d_is_bit_identical_on_every_backend() {
    let mut reference: Option<Vec<f64>> = None;
    for key in racc::available_backends() {
        let one = heat3d(1, backend_factory(key));
        let three = heat3d(3, backend_factory(key));
        assert_eq!(one.field, three.field, "{key}: 3 devices vs 1");
        match &reference {
            None => reference = Some(one.field),
            Some(r) => assert_eq!(r, &one.field, "{key} vs first backend"),
        }
    }
}

#[test]
fn sharded_lbm_and_cg_are_bit_identical_across_device_counts() {
    let lbm = |devices| {
        run_sharded(
            Arc::new(ShardedLbm {
                s: 14,
                tau: 0.8,
                steps: 6,
            }),
            ShardOptions::devices(devices),
            backend_factory("threads"),
        )
        .field
    };
    assert_eq!(lbm(1), lbm(4), "LBM 4 devices vs 1");

    let cg = |devices| {
        run_sharded(
            Arc::new(PipelinedCg {
                tiles: 8,
                tile: 12,
                steps: 15,
            }),
            ShardOptions::devices(devices).checkpoint_every(5),
            backend_factory("serial"),
        )
        .field
    };
    assert_eq!(cg(1), cg(2), "CG 2 devices vs 1");
}

/// A rank killed mid-step by injected launch faults is detected by the
/// survivors, who reshard the domain, replay from the last checkpoint,
/// and finish with the exact bits of the fault-free run.
#[test]
fn chaos_rank_death_recovers_bit_identically() {
    let fault_free = heat3d(4, backend_factory("cudasim"));

    let doomed = heat3d(4, |rank| {
        let b = racc::builder().backend("cudasim");
        let b = if rank == 2 {
            b.chaos(FaultPlan::parse("launch:nth-9").unwrap())
                .retry(RetryPolicy::none())
        } else {
            b
        };
        b.build().expect("cudasim builds")
    });

    assert_eq!(
        doomed.field, fault_free.field,
        "recovered run must match the fault-free bits"
    );
    assert_eq!(doomed.survivors(), 3, "exactly one rank died");
    assert!(doomed.reports[2].is_none(), "rank 2 was the casualty");
    let survivor = doomed.reports[0].as_ref().unwrap();
    assert!(survivor.epochs >= 1, "survivors entered a recovery epoch");
    assert!(survivor.stats.reshards >= 1, "survivors resharded");
    assert!(survivor.stats.replayed_steps >= 1, "steps were replayed");
}

/// Shard steps and halo exchanges land on their own trace lanes.
#[cfg(feature = "trace")]
#[test]
fn shard_steps_and_halos_record_trace_spans() {
    use racc::trace::ConstructKind;
    use std::sync::Mutex;

    let recorders = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&recorders);
    let outcome = run_sharded(
        Arc::new(ShardedHeat3 { n: 8, sweeps: 3 }),
        ShardOptions::devices(2),
        move |_rank| {
            let ctx = racc::builder()
                .backend("threads")
                .trace(true)
                .build()
                .expect("traced context");
            sink.lock()
                .unwrap()
                .push(Arc::clone(ctx.tracer().expect("tracer armed")));
            ctx
        },
    );
    assert_eq!(outcome.survivors(), 2);

    let spans: Vec<_> = recorders
        .lock()
        .unwrap()
        .iter()
        .flat_map(|r| r.spans())
        .collect();
    let shard_steps = spans
        .iter()
        .filter(|s| s.kind == ConstructKind::Shard)
        .count();
    let halos = spans
        .iter()
        .filter(|s| s.kind == ConstructKind::Halo)
        .count();
    assert!(
        shard_steps >= 6,
        "each rank records one Shard span per step (got {shard_steps})"
    );
    assert!(
        halos >= 6,
        "each rank records Halo spans for its exchanges (got {halos})"
    );
}
