//! Property-based tests of the front-end constructs and core invariants.

use proptest::prelude::*;
use racc::prelude::*;

fn backends() -> Vec<&'static str> {
    // Keep the property loops fast: the CPU back ends plus one simulated
    // GPU exercise every code path (serial loop, pool, grid launch + the
    // two-kernel reduction).
    vec!["serial", "threads", "cudasim"]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// parallel_for visits each index exactly once, any backend, any size.
    #[test]
    fn parallel_for_is_a_permutation(n in 0usize..3000) {
        for key in backends() {
            let ctx = racc::context_for(key).unwrap();
            let marks = ctx.zeros::<u64>(n).unwrap();
            let mv = marks.view_mut();
            ctx.parallel_for(n, &KernelProfile::unknown(), move |i| {
                mv.set(i, mv.get(i) + 1);
            });
            let host = ctx.to_host(&marks).unwrap();
            prop_assert!(host.iter().all(|&x| x == 1), "{key} at n={n}");
        }
    }

    /// parallel_reduce(Sum) equals the serial fold for arbitrary data.
    #[test]
    fn reduce_sum_matches_fold(data in prop::collection::vec(-1e6f64..1e6, 0..2000)) {
        let expect: f64 = data.iter().sum();
        for key in backends() {
            let ctx = racc::context_for(key).unwrap();
            let arr = ctx.array_from(&data).unwrap();
            let v = arr.view();
            let got: f64 = ctx.parallel_reduce(data.len(), &KernelProfile::dot(), move |i| v.get(i));
            prop_assert!(
                (got - expect).abs() <= 1e-9 * expect.abs().max(1.0),
                "{key}: {got} vs {expect}"
            );
        }
    }

    /// Max/Min reductions equal the iterator extrema.
    #[test]
    fn reduce_extrema_match(data in prop::collection::vec(-1000i64..1000, 1..1500)) {
        let max = *data.iter().max().unwrap();
        let min = *data.iter().min().unwrap();
        for key in backends() {
            let ctx = racc::context_for(key).unwrap();
            let arr = ctx.array_from(&data).unwrap();
            let v = arr.view();
            let got_max: i64 = ctx.parallel_reduce_with(
                data.len(), &KernelProfile::dot(), racc::Max, move |i| v.get(i));
            let v = arr.view();
            let got_min: i64 = ctx.parallel_reduce_with(
                data.len(), &KernelProfile::dot(), racc::Min, move |i| v.get(i));
            prop_assert_eq!(got_max, max, "{} max", key);
            prop_assert_eq!(got_min, min, "{} min", key);
        }
    }

    /// 2D arrays round-trip column-major through any backend.
    #[test]
    fn array2_round_trips(m in 1usize..40, n in 1usize..40) {
        for key in backends() {
            let ctx = racc::context_for(key).unwrap();
            let data: Vec<f64> = (0..m * n).map(|i| i as f64).collect();
            let a = ctx.array2_from(m, n, &data).unwrap();
            prop_assert_eq!(ctx.to_host2(&a).unwrap(), data.clone());
            // View indexing agrees with column-major linearization.
            let v = a.view();
            prop_assert_eq!(v.get(m - 1, n - 1), (m * n - 1) as f64);
            prop_assert_eq!(v.get(0, 0), 0.0);
        }
    }

    /// Dot is bilinear: dot(a x, y) == a dot(x, y).
    #[test]
    fn dot_is_linear(scale in -8.0f64..8.0, data in prop::collection::vec(-100.0f64..100.0, 1..800)) {
        let ctx = racc::context_for("threads").unwrap();
        let n = data.len();
        let x = ctx.array_from(&data).unwrap();
        let y = ctx.array_from_fn(n, |i| (i % 7) as f64).unwrap();
        let base = racc_blas::portable::dot(&ctx, &x, &y);
        racc_blas::portable::scal(&ctx, scale, &x);
        let scaled = racc_blas::portable::dot(&ctx, &x, &y);
        prop_assert!(
            (scaled - scale * base).abs() <= 1e-7 * base.abs().max(1.0),
            "{scaled} vs {}", scale * base
        );
    }

    /// Static-schedule reductions are bit-reproducible run to run.
    #[test]
    fn threads_reduce_is_deterministic(data in prop::collection::vec(-1e3f64..1e3, 1..1000)) {
        let ctx = racc::context_for("threads").unwrap();
        let arr = ctx.array_from(&data).unwrap();
        let v1 = arr.view();
        let r1: f64 = ctx.parallel_reduce(data.len(), &KernelProfile::dot(), move |i| v1.get(i));
        let v2 = arr.view();
        let r2: f64 = ctx.parallel_reduce(data.len(), &KernelProfile::dot(), move |i| v2.get(i));
        prop_assert_eq!(r1.to_bits(), r2.to_bits());
    }

    /// The modeled clock is monotone in problem size within one backend.
    #[test]
    fn modeled_time_is_monotone(n in 1024usize..200_000) {
        let ctx = racc::context_for("cudasim").unwrap();
        let time_for = |len: usize| {
            let a = ctx.array_from(&vec![0.5f64; len]).unwrap();
            let b = ctx.array_from(&vec![0.5f64; len]).unwrap();
            ctx.reset_timeline();
            racc_blas::portable::axpy(&ctx, 1.0, &a, &b);
            ctx.modeled_ns()
        };
        let small = time_for(n);
        let large = time_for(n * 4);
        prop_assert!(large >= small, "{large} < {small}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// CG residuals never increase on SPD tridiagonal systems.
    #[test]
    fn cg_residual_monotone(n in 16usize..400, seed in 0u64..1000) {
        use racc_cg::solver::CgWorkspace;
        use racc_cg::tridiag::{DeviceTridiag, Tridiag};
        let ctx = racc::context_for("threads").unwrap();
        let a = Tridiag::diagonally_dominant(n);
        let da = DeviceTridiag::upload(&ctx, &a).unwrap();
        let b = ctx
            .array_from_fn(n, |i| (((i as u64 + seed) * 2654435761) % 100) as f64 * 0.1 - 5.0)
            .unwrap();
        let mut ws = CgWorkspace::new(&ctx, &b).unwrap();
        let mut last = ws.rr().sqrt();
        for _ in 0..12 {
            let r = ws.iterate(&ctx, &da);
            prop_assert!(r <= last * (1.0 + 1e-10), "{r} > {last}");
            last = r;
        }
    }

    /// LBM periodic steps conserve mass for arbitrary smooth initial fields.
    #[test]
    fn lbm_mass_conserved(s in 8usize..28, tau in 0.6f64..1.8, amp in 0.0f64..0.05) {
        use racc_lbm::portable::LbmSim;
        let ctx = racc::context_for("threads").unwrap();
        let mut sim = LbmSim::new(&ctx, s, tau, |x, y| {
            (1.0 + amp * ((x * 3 + y * 5) as f64).sin(), amp * 0.1, -amp * 0.05)
        })
        .unwrap();
        let m0 = sim.total_mass();
        for _ in 0..5 {
            sim.step_periodic();
        }
        let m1 = sim.total_mass();
        prop_assert!((m1 - m0).abs() < 1e-9 * m0, "{m0} -> {m1}");
    }
}
