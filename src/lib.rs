//! # RACC — Rust for ACCelerators
//!
//! A performance-portable parallel programming front end for CPUs and
//! (simulated) GPUs: a from-scratch Rust reproduction of **JACC**, the
//! high-level meta-programming model for Julia presented at SC'24
//! (*"JACC: Leveraging HPC Meta-Programming and Performance Portability
//! with the Just-in-Time and LLVM-based Julia Language"*, Valero-Lara et
//! al.).
//!
//! The same RACC code runs unchanged on every back end:
//!
//! | key | backend | JACC analog | target |
//! |---|---|---|---|
//! | `serial`    | [`SerialBackend`]  | — | reference |
//! | `threads`   | [`ThreadsBackend`] | `Base.Threads` | CPU (default) |
//! | `cudasim`   | `CudaBackend`      | `CUDA.jl` | simulated NVIDIA A100 |
//! | `hipsim`    | `HipBackend`       | `AMDGPU.jl` | simulated AMD MI100 |
//! | `oneapisim` | `OneApiBackend`    | `oneAPI.jl` | simulated Intel Max 1550 |
//!
//! Back-end selection mirrors JACC's `Preferences.jl` flow: the default
//! context consults the `RACC_BACKEND` environment variable, then the
//! `[racc] backend = "..."` preference in `RaccPreferences.toml` (current
//! directory), and falls back to `threads`. The GPU back ends are optional
//! cargo features (all on by default), mirroring JACC's Julia v1.9 weak
//! dependencies.
//!
//! ```
//! use racc::prelude::*;
//!
//! let ctx = racc::context_for("threads").unwrap();
//! let size = 1_000usize;
//! let x = ctx.array_from(&vec![1.0f64; size]).unwrap();
//! let y = ctx.array_from(&vec![2.0f64; size]).unwrap();
//! let alpha = 2.5;
//!
//! let (xv, yv) = (x.view_mut(), y.view());
//! ctx.parallel_for(size, &KernelProfile::axpy(), move |i| {
//!     xv.set(i, xv.get(i) + alpha * yv.get(i));
//! });
//!
//! let (xv, yv) = (x.view(), y.view());
//! let dot: f64 = ctx.parallel_reduce(size, &KernelProfile::dot(), move |i| {
//!     xv.get(i) * yv.get(i)
//! });
//! assert_eq!(dot, 6.0 * 2.0 * size as f64);
//! ```

use std::sync::OnceLock;

pub use racc_core::{
    cpumodel, AccScalar, Array1, Array2, Array3, Backend, Context, CpuSpec, DeviceToken,
    KernelProfile, Max, Min, Numeric, Prod, RaccError, ReduceOp, SerialBackend, Sum,
    ThreadsBackend, Timeline, TimelineSnapshot, View1, View2, View3, ViewMut1, ViewMut2, ViewMut3,
};

/// The deterministic fault-injection vocabulary (`racc-chaos`),
/// re-exported so applications can arm chaos through
/// [`ContextBuilder::chaos`] without naming the substrate crate. The
/// module re-export [`chaos`] carries the rest (parse errors, rule
/// types, seeded-rate constants).
pub use racc_core::{env_flag, FaultAction, FaultEvent, FaultPlan, FaultSite, RetryPolicy};

/// The fault-injection substrate crate (`racc-chaos`), re-exported
/// whole. See [`ContextBuilder::chaos`] / [`ContextBuilder::fallback`]
/// for how contexts consume it, and `RACC_CHAOS` for the environment
/// grammar (`<seed>` or `site:selector[:action];...`).
pub use racc_core::chaos;
pub use racc_prefs::{Preferences, Value, PREFS_FILE_NAME};

/// The crate's error type — an alias for [`RaccError`]. Simulator errors
/// (`racc_gpusim::SimError` and the vendor wrappers) convert into it with
/// `?`.
pub use racc_core::RaccError as Error;

/// The span-recording crate (`racc-trace`), re-exported for sink access
/// (chrome traces, kernel summaries). See [`ContextBuilder::trace`].
#[cfg(feature = "trace")]
pub use racc_core::trace;

/// The lazy expression-graph and kernel-fusion engine (`racc-fuse`):
/// open a scope with `ctx.lazy()`, build elementwise expressions over
/// arrays, and `eval()` compiles each maximal same-extent chain (plus an
/// optional trailing reduction) into one launch, caching the compiled
/// plan by shape so steady-state loops skip planning entirely. See
/// [`ContextBuilder::fusion`] for the knob libraries consult and
/// `Context::stats` for the cache counters.
pub use racc_fuse as fuse;

/// Sharded multi-device execution (`racc-shard`): block domain
/// decomposition across N simulated devices (one comm rank + one context
/// each), halo exchange overlapped with interior compute on the modeled
/// clock, and reshard-and-replay recovery when a rank dies under chaos
/// injection. See [`shard::run_sharded`] and the `ShardApp`
/// implementations in `racc-stencil`, `racc-lbm`, and `racc-cg`.
pub use racc_shard as shard;
pub use racc_shard::{run_sharded, ShardApp, ShardOptions, ShardOutcome};

/// Multi-tenant job serving (`racc-serve`): a background dispatcher
/// multiplexes concurrently submitted jobs (kernel DAGs, solver runs,
/// sharded apps) across a pool of backend contexts, with bounded
/// admission, weighted-fair scheduling per tenant, cross-tenant batching
/// of same-shape launches over the shared plan cache, modeled
/// H2D/compute/D2H overlap per device, and a chaos-hardened degradation
/// ladder (retry → fallback context → fail the one job). See
/// [`serve::Server::start`] and `examples/serve.rs`.
pub use racc_serve as serve;
pub use racc_serve::{ServeJob, Server, ServerOptions, TenantConfig};

/// Portable device primitives (`racc-prim`): inclusive/exclusive scan,
/// histogram, and stable sort-by-key, bit-identical across every backend
/// (including `f32` under work stealing) via the canonical fixed-tile
/// combine in `racc_core::prim`. Import [`PrimExt`] (in the prelude) to
/// call them as `ctx.inclusive_scan(..)` / `ctx.histogram(..)` /
/// `ctx.sort_by_key(..)`.
pub use racc_prim as prim;
pub use racc_prim::{PrimError, PrimExt, SortKey};

#[cfg(feature = "backend-cuda")]
pub use racc_backend_cuda::CudaBackend;
#[cfg(feature = "backend-hip")]
pub use racc_backend_hip::HipBackend;
#[cfg(feature = "backend-oneapi")]
pub use racc_backend_oneapi::OneApiBackend;

/// Convenience prelude: the curated surface application code typically
/// needs, and nothing else.
///
/// | item | purpose |
/// |---|---|
/// | [`Context`], [`Ctx`] | the front-end API (generic / runtime-selected) |
/// | [`ContextBuilder`], [`builder`] | key-based context construction |
/// | [`default_context`], [`context_for`], [`available_backends`] | selection helpers |
/// | [`Array1`]–[`Array3`] | the `JACC.Array` analogs |
/// | [`KernelProfile`] | per-kernel cost annotations |
/// | `load`, `lit`, `Expr`, `Lazy`, `LazyExt`, `ReduceKind` | lazy fused expressions ([`fuse`]) |
/// | `RuntimeStats` | `ctx.stats()`: plan-cache and fault counters |
/// | [`Sum`], [`Max`], [`Min`], [`Prod`], [`ReduceOp`] | reduction operators |
/// | [`Backend`], [`AnyBackend`], [`SerialBackend`], [`ThreadsBackend`] | back ends |
/// | [`RaccError`] / [`Error`] | the unified error type |
/// | [`TimelineSnapshot`] | modeled-clock counters |
/// | `TraceRecorder`, `Span` | span recording (`trace` feature) |
///
/// [`builder`]: crate::builder
/// [`default_context`]: crate::default_context
/// [`context_for`]: crate::context_for
/// [`available_backends`]: crate::available_backends
/// [`Error`]: crate::Error
pub mod prelude {
    pub use racc_core::{
        Array1, Array2, Array3, Backend, Context, KernelProfile, Max, Min, Prod, RaccError,
        ReduceOp, RuntimeStats, SerialBackend, Sum, ThreadsBackend, TimelineSnapshot,
    };

    pub use crate::{
        available_backends, builder, context_for, default_context, AnyBackend, ContextBuilder, Ctx,
        Error, FaultPlan, RetryPolicy,
    };

    pub use racc_fuse::{lit, load, Expr, Lazy, LazyExt, ReduceKind};
    pub use racc_prim::{PrimError, PrimExt, SortKey};
    // The pre-plan-cache spellings, kept importable for one release.
    #[allow(deprecated)]
    pub use racc_fuse::{Fused, FusedExt};

    #[cfg(feature = "trace")]
    pub use racc_core::trace::{Span, TraceRecorder};
}

/// Environment variable overriding the preferred backend key.
pub const BACKEND_ENV: &str = "RACC_BACKEND";

/// The runtime-selected backend: enum dispatch over every compiled-in
/// back end (the generic [`Backend`] methods stay monomorphized; only one
/// `match` separates the front end from the chosen implementation).
pub enum AnyBackend {
    /// Single-core reference backend.
    Serial(SerialBackend),
    /// `Base.Threads`-analog CPU backend (the default).
    Threads(ThreadsBackend),
    /// Simulated NVIDIA back end.
    #[cfg(feature = "backend-cuda")]
    Cuda(CudaBackend),
    /// Simulated AMD back end.
    #[cfg(feature = "backend-hip")]
    Hip(HipBackend),
    /// Simulated Intel back end.
    #[cfg(feature = "backend-oneapi")]
    OneApi(OneApiBackend),
}

macro_rules! dispatch {
    ($self:expr, $b:ident => $e:expr) => {
        match $self {
            AnyBackend::Serial($b) => $e,
            AnyBackend::Threads($b) => $e,
            #[cfg(feature = "backend-cuda")]
            AnyBackend::Cuda($b) => $e,
            #[cfg(feature = "backend-hip")]
            AnyBackend::Hip($b) => $e,
            #[cfg(feature = "backend-oneapi")]
            AnyBackend::OneApi($b) => $e,
        }
    };
}

impl Backend for AnyBackend {
    fn name(&self) -> String {
        dispatch!(self, b => b.name())
    }
    fn key(&self) -> &'static str {
        dispatch!(self, b => b.key())
    }
    fn is_accelerator(&self) -> bool {
        dispatch!(self, b => b.is_accelerator())
    }
    fn timeline(&self) -> &Timeline {
        dispatch!(self, b => b.timeline())
    }
    // Must forward rather than rely on the trait default: ThreadsBackend
    // additionally installs the recorder into its worker pool.
    #[cfg(feature = "trace")]
    fn attach_tracer(&self, recorder: &std::sync::Arc<trace::TraceRecorder>) {
        dispatch!(self, b => b.attach_tracer(recorder))
    }
    // Forwarded (not defaulted) so simulator back ends reach their devices.
    fn set_sanitizer(&self, enabled: bool) -> bool {
        dispatch!(self, b => b.set_sanitizer(enabled))
    }
    fn sanitizer_report(&self) -> Option<String> {
        dispatch!(self, b => b.sanitizer_report())
    }
    // Forwarded (not defaulted) so every pool-backed variant — threads and
    // the simulated accelerators — reports its work-stealing counters.
    fn steal_stats(&self) -> Option<racc_core::StealStats> {
        dispatch!(self, b => b.steal_stats())
    }
    // Forwarded (not defaulted) for the same reason: the simulator back
    // ends own the chaos engine, retry policy, and fault log.
    fn set_chaos(&self, plan: FaultPlan) -> bool {
        dispatch!(self, b => b.set_chaos(plan))
    }
    fn set_retry(&self, policy: RetryPolicy) -> bool {
        dispatch!(self, b => b.set_retry(policy))
    }
    fn fault_log(&self) -> Vec<FaultEvent> {
        dispatch!(self, b => b.fault_log())
    }
    fn self_check(&self) -> Result<(), RaccError> {
        dispatch!(self, b => b.self_check())
    }
    fn on_alloc(&self, bytes: usize, upload: bool) -> Result<DeviceToken, RaccError> {
        dispatch!(self, b => b.on_alloc(bytes, upload))
    }
    fn on_download(&self, bytes: usize) {
        dispatch!(self, b => b.on_download(bytes))
    }
    fn parallel_for_1d<F: Fn(usize) + Sync>(&self, n: usize, p: &KernelProfile, f: F) {
        dispatch!(self, b => b.parallel_for_1d(n, p, f))
    }
    fn parallel_for_2d<F: Fn(usize, usize) + Sync>(
        &self,
        m: usize,
        n: usize,
        p: &KernelProfile,
        f: F,
    ) {
        dispatch!(self, b => b.parallel_for_2d(m, n, p, f))
    }
    fn parallel_for_3d<F: Fn(usize, usize, usize) + Sync>(
        &self,
        m: usize,
        n: usize,
        l: usize,
        p: &KernelProfile,
        f: F,
    ) {
        dispatch!(self, b => b.parallel_for_3d(m, n, l, p, f))
    }
    fn parallel_reduce_1d<T, F, O>(&self, n: usize, p: &KernelProfile, f: F, op: O) -> T
    where
        T: AccScalar,
        F: Fn(usize) -> T + Sync,
        O: ReduceOp<T>,
    {
        dispatch!(self, b => b.parallel_reduce_1d(n, p, f, op))
    }
    fn parallel_reduce_2d<T, F, O>(&self, m: usize, n: usize, p: &KernelProfile, f: F, op: O) -> T
    where
        T: AccScalar,
        F: Fn(usize, usize) -> T + Sync,
        O: ReduceOp<T>,
    {
        dispatch!(self, b => b.parallel_reduce_2d(m, n, p, f, op))
    }
    fn parallel_reduce_3d<T, F, O>(
        &self,
        m: usize,
        n: usize,
        l: usize,
        p: &KernelProfile,
        f: F,
        op: O,
    ) -> T
    where
        T: AccScalar,
        F: Fn(usize, usize, usize) -> T + Sync,
        O: ReduceOp<T>,
    {
        dispatch!(self, b => b.parallel_reduce_3d(m, n, l, p, f, op))
    }
    fn prim_scan_1d<T, F, W, O>(
        &self,
        n: usize,
        inclusive: bool,
        p: &KernelProfile,
        read: F,
        write: W,
        op: O,
    ) where
        T: AccScalar,
        F: Fn(usize) -> T + Sync,
        W: Fn(usize, T) + Sync,
        O: ReduceOp<T>,
    {
        dispatch!(self, b => b.prim_scan_1d(n, inclusive, p, read, write, op))
    }
    fn prim_histogram_1d<F, W>(&self, n: usize, bins: usize, p: &KernelProfile, key: F, write: W)
    where
        F: Fn(usize) -> usize + Sync,
        W: Fn(usize, u64) + Sync,
    {
        dispatch!(self, b => b.prim_histogram_1d(n, bins, p, key, write))
    }
    fn prim_sort_pairs_1d<F, W>(&self, n: usize, key_bits: u32, p: &KernelProfile, key: F, write: W)
    where
        F: Fn(usize) -> u64 + Sync,
        W: Fn(usize, usize) + Sync,
    {
        dispatch!(self, b => b.prim_sort_pairs_1d(n, key_bits, p, key, write))
    }
}

/// The runtime-selected context type.
pub type Ctx = Context<AnyBackend>;

/// Keys of all back ends compiled into this build.
pub fn available_backends() -> Vec<&'static str> {
    #[cfg_attr(
        not(any(
            feature = "backend-cuda",
            feature = "backend-hip",
            feature = "backend-oneapi"
        )),
        allow(unused_mut)
    )]
    let mut keys = vec!["serial", "threads"];
    #[cfg(feature = "backend-cuda")]
    keys.push("cudasim");
    #[cfg(feature = "backend-hip")]
    keys.push("hipsim");
    #[cfg(feature = "backend-oneapi")]
    keys.push("oneapisim");
    keys
}

/// Build a context for the given backend key. Vendor aliases are accepted
/// (`cuda`/`nvidia` → `cudasim`, `hip`/`amdgpu` → `hipsim`,
/// `oneapi`/`intel` → `oneapisim`). Shorthand for
/// [`builder()`]`.backend(key).build()`.
pub fn context_for(key: &str) -> Result<Ctx, RaccError> {
    builder().backend(key).build()
}

/// Start building a runtime-selected context. See [`ContextBuilder`].
pub fn builder() -> ContextBuilder {
    ContextBuilder::new()
}

/// The primary way to construct a [`Ctx`]: backend key, optional knobs,
/// one fallible [`build`](ContextBuilder::build).
///
/// ```
/// let ctx = racc::builder()
///     .backend("threads")
///     .threads(2)
///     .build()
///     .unwrap();
/// assert_eq!(ctx.key(), "threads");
/// ```
///
/// Without [`backend`](ContextBuilder::backend) the key is resolved the
/// same way as [`default_context`]: `RACC_BACKEND`, then
/// `RaccPreferences.toml`, then `"threads"` — but unlike
/// [`default_context`] an unavailable key is an error, not a fallback.
///
/// Knobs that do not apply to the selected backend
/// ([`threads`](ContextBuilder::threads) off the CPU,
/// [`device`](ContextBuilder::device) off the simulators) fail `build`
/// with [`RaccError::InvalidConfig`] rather than being silently ignored.
#[derive(Default)]
pub struct ContextBuilder {
    key: Option<String>,
    threads: Option<usize>,
    #[cfg(any(
        feature = "backend-cuda",
        feature = "backend-hip",
        feature = "backend-oneapi"
    ))]
    device: Option<std::sync::Arc<racc_gpusim::Device>>,
    trace: bool,
    trace_capacity: Option<usize>,
    racecheck: Option<bool>,
    sanitizer: Option<bool>,
    fusion: Option<bool>,
    chaos: Option<FaultPlan>,
    retry: Option<RetryPolicy>,
    fallback: bool,
}

impl ContextBuilder {
    /// Start from defaults: preference-selected backend, no tracing.
    pub fn new() -> Self {
        Self::default()
    }

    /// Select the backend by key (same keys and vendor aliases as
    /// [`context_for`]).
    pub fn backend(mut self, key: impl Into<String>) -> Self {
        self.key = Some(key.into());
        self
    }

    /// Worker count for the `threads` backend. Selecting any other
    /// backend alongside this makes `build` fail.
    pub fn threads(mut self, workers: usize) -> Self {
        self.threads = Some(workers);
        self
    }

    /// Override the simulated device profile for a GPU backend (e.g. a
    /// custom `racc_gpusim::Device` instead of the stock A100/MI100/Max
    /// 1550). Selecting a CPU backend alongside this makes `build` fail.
    #[cfg(any(
        feature = "backend-cuda",
        feature = "backend-hip",
        feature = "backend-oneapi"
    ))]
    pub fn device(mut self, device: std::sync::Arc<racc_gpusim::Device>) -> Self {
        self.device = Some(device);
        self
    }

    /// Record one span per construct into a `TraceRecorder`, retrievable
    /// via `Context::tracer()` / `Context::trace_spans()`. No-op unless
    /// the `trace` feature is compiled in.
    pub fn trace(mut self, enabled: bool) -> Self {
        self.trace = enabled;
        self
    }

    /// Ring-buffer capacity (in spans) for tracing; rounded up to a power
    /// of two. Implies nothing unless [`trace`](Self::trace) is on.
    pub fn trace_capacity(mut self, spans: usize) -> Self {
        self.trace_capacity = Some(spans);
        self
    }

    /// Toggle the (process-global) data-race checker. No-op unless the
    /// `racecheck` feature is compiled into `racc-core`.
    pub fn racecheck(mut self, enabled: bool) -> Self {
        self.racecheck = Some(enabled);
        self
    }

    /// Toggle the backend's dynamic sanitizer (`simsan`): out-of-bounds,
    /// use-after-free, read-write race, barrier-divergence, and leak
    /// checking. Simulator back ends also honor `RACC_SANITIZER=1`; CPU
    /// back ends need the `racecheck` feature for this to take effect.
    pub fn sanitizer(mut self, enabled: bool) -> Self {
        self.sanitizer = Some(enabled);
        self
    }

    /// Toggle kernel fusion for libraries that consult the context's
    /// fusion knob (the CG solver's fused iteration, `racc-blas` fused
    /// chains). Defaults to the `RACC_FUSION` environment variable.
    /// Fused execution is bit-identical to eager; the knob only changes
    /// how many constructs are launched. See [`fuse`] for
    /// the expression-graph engine itself.
    pub fn fusion(mut self, enabled: bool) -> Self {
        self.fusion = Some(enabled);
        self
    }

    /// Arm deterministic fault injection (`racc-chaos`) on the selected
    /// backend: a seeded plan ([`FaultPlan::seeded`]) or an explicit
    /// script (`FaultPlan::parse("alloc:nth-3;h2d:every-100")`). Only the
    /// simulated GPU back ends have a driver surface to fault; on CPU
    /// back ends the plan is ignored. An explicit plan overrides the
    /// `RACC_CHAOS` environment variable.
    pub fn chaos(mut self, plan: FaultPlan) -> Self {
        self.chaos = Some(plan);
        self
    }

    /// Retry policy for transient device faults (injected faults,
    /// simulated out-of-memory): bounded attempts with exponential
    /// modeled backoff. Defaults to [`RetryPolicy::none`] unless chaos
    /// was armed from the environment, which installs
    /// [`RetryPolicy::default`].
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Graceful degradation: before handing back an accelerator context,
    /// probe the backend with a tiny alloc + launch + readback round trip
    /// (run through the active fault schedule and retry policy). If the
    /// probe fails, fall back to the always-available `threads` backend
    /// instead of failing every construct later; the observed faults and
    /// a `fallback` marker are recorded as [`trace`] spans (kind
    /// `Fault`) in the replacement context, plus a diagnostic on stderr.
    pub fn fallback(mut self, enabled: bool) -> Self {
        self.fallback = enabled;
        self
    }

    /// Resolve the key, construct the backend, and build the context.
    pub fn build(self) -> Result<Ctx, RaccError> {
        let key = match &self.key {
            Some(k) => k.clone(),
            None => preferred_backend_key(),
        };
        let norm = key.to_ascii_lowercase();
        let backend = match norm.as_str() {
            "serial" => {
                self.reject_threads(&norm)?;
                self.reject_device(&norm)?;
                AnyBackend::Serial(SerialBackend::new())
            }
            "threads" | "cpu" => {
                self.reject_device(&norm)?;
                AnyBackend::Threads(match self.threads {
                    Some(n) => ThreadsBackend::with_threads(n),
                    None => ThreadsBackend::new(),
                })
            }
            #[cfg(feature = "backend-cuda")]
            "cudasim" | "cuda" | "nvidia" => {
                self.reject_threads(&norm)?;
                AnyBackend::Cuda(match self.device.clone() {
                    Some(d) => CudaBackend::from_device(d),
                    None => CudaBackend::new(),
                })
            }
            #[cfg(feature = "backend-hip")]
            "hipsim" | "hip" | "amdgpu" | "amd" => {
                self.reject_threads(&norm)?;
                AnyBackend::Hip(match self.device.clone() {
                    Some(d) => HipBackend::from_device(d),
                    None => HipBackend::new(),
                })
            }
            #[cfg(feature = "backend-oneapi")]
            "oneapisim" | "oneapi" | "intel" => {
                self.reject_threads(&norm)?;
                AnyBackend::OneApi(match self.device.clone() {
                    Some(d) => OneApiBackend::from_device(d),
                    None => OneApiBackend::new(),
                })
            }
            other => return Err(RaccError::BackendUnavailable(other.to_owned())),
        };
        let (backend, degraded) = self.probe_or_fall_back(backend);
        let mut inner = Context::builder(backend).trace(self.trace);
        if let Some(spans) = self.trace_capacity {
            inner = inner.trace_capacity(spans);
        }
        if let Some(enabled) = self.racecheck {
            inner = inner.racecheck(enabled);
        }
        if let Some(enabled) = self.sanitizer {
            inner = inner.sanitizer(enabled);
        }
        if let Some(enabled) = self.fusion {
            inner = inner.fusion(enabled);
        }
        if let Some(plan) = self.chaos {
            inner = inner.chaos(plan);
        }
        if let Some(policy) = self.retry {
            inner = inner.retry(policy);
        }
        let ctx = inner.build();
        if let Some(faults) = degraded {
            report_degradation(&ctx, &faults);
        }
        Ok(ctx)
    }

    /// The graceful-degradation probe. Does nothing unless
    /// [`fallback`](Self::fallback) was requested and the selected
    /// backend is an accelerator. Arms the same fault schedule the final
    /// context will run under so the probe exercises the real fault
    /// path; on probe failure returns the `threads` backend plus the
    /// faults observed during the probe.
    fn probe_or_fall_back(&self, backend: AnyBackend) -> (AnyBackend, Option<Vec<FaultEvent>>) {
        if !self.fallback || !backend.is_accelerator() {
            return (backend, None);
        }
        let plan = self.chaos.clone().or_else(FaultPlan::from_env);
        if let Some(plan) = plan {
            if backend.set_chaos(plan) {
                backend.set_retry(self.retry.unwrap_or_default());
            }
        }
        match backend.self_check() {
            Ok(()) => (backend, None),
            Err(err) => {
                let faults = backend.fault_log();
                eprintln!(
                    "racc: backend {:?} failed its self-check ({err}); falling back to \
                     \"threads\" after {} injected fault(s)",
                    backend.key(),
                    faults.len()
                );
                (AnyBackend::Threads(ThreadsBackend::new()), Some(faults))
            }
        }
    }

    fn reject_threads(&self, key: &str) -> Result<(), RaccError> {
        if self.threads.is_some() {
            return Err(RaccError::InvalidConfig(format!(
                "thread count only applies to the \"threads\" backend, not {key:?}"
            )));
        }
        Ok(())
    }

    #[cfg_attr(
        not(any(
            feature = "backend-cuda",
            feature = "backend-hip",
            feature = "backend-oneapi"
        )),
        allow(clippy::unnecessary_wraps)
    )]
    fn reject_device(&self, key: &str) -> Result<(), RaccError> {
        #[cfg(any(
            feature = "backend-cuda",
            feature = "backend-hip",
            feature = "backend-oneapi"
        ))]
        if self.device.is_some() {
            return Err(RaccError::InvalidConfig(format!(
                "device profile override only applies to simulated GPU back ends, not {key:?}"
            )));
        }
        #[cfg(not(any(
            feature = "backend-cuda",
            feature = "backend-hip",
            feature = "backend-oneapi"
        )))]
        let _ = key;
        Ok(())
    }
}

/// Surface a fallback decision inside the replacement context's trace:
/// one `Fault` span per fault observed during the failed probe, then a
/// `fallback` marker span (all with zero modeled time, so timeline/span
/// reconciliation is unaffected). Without the `trace` feature the stderr
/// diagnostic printed by the probe is the only report.
#[cfg_attr(not(feature = "trace"), allow(unused_variables))]
fn report_degradation(ctx: &Ctx, faults: &[FaultEvent]) {
    #[cfg(feature = "trace")]
    if let Some(rec) = ctx.tracer() {
        for ev in faults {
            rec.record(
                trace::Span::new(ctx.key(), trace::ConstructKind::Fault, ev.site.label()).dims(
                    ev.occurrence,
                    0,
                    0,
                ),
            );
        }
        rec.record(trace::Span::new(
            ctx.key(),
            trace::ConstructKind::Fault,
            "fallback",
        ));
    }
}

/// Build a backend value for the given key.
pub fn backend_for(key: &str) -> Result<AnyBackend, RaccError> {
    match key.to_ascii_lowercase().as_str() {
        "serial" => Ok(AnyBackend::Serial(SerialBackend::new())),
        "threads" | "cpu" => Ok(AnyBackend::Threads(ThreadsBackend::new())),
        #[cfg(feature = "backend-cuda")]
        "cudasim" | "cuda" | "nvidia" => Ok(AnyBackend::Cuda(CudaBackend::new())),
        #[cfg(feature = "backend-hip")]
        "hipsim" | "hip" | "amdgpu" | "amd" => Ok(AnyBackend::Hip(HipBackend::new())),
        #[cfg(feature = "backend-oneapi")]
        "oneapisim" | "oneapi" | "intel" => Ok(AnyBackend::OneApi(OneApiBackend::new())),
        other => Err(RaccError::BackendUnavailable(other.to_owned())),
    }
}

/// Resolve the preferred backend key without building it: `RACC_BACKEND`
/// env var, then the `[racc] backend` preference in `RaccPreferences.toml`
/// (current directory), then `"threads"` — mirroring JACC's
/// `Preferences.jl` selection with `Base.Threads` as the default back end.
pub fn preferred_backend_key() -> String {
    if let Ok(key) = std::env::var(BACKEND_ENV) {
        if !key.trim().is_empty() {
            return key.trim().to_owned();
        }
    }
    if let Ok(prefs) = Preferences::load(PREFS_FILE_NAME) {
        if let Some(key) = prefs.get_str("racc", "backend") {
            return key.to_owned();
        }
    }
    "threads".to_owned()
}

/// Build the preference-selected context. Falls back to `threads` (with a
/// diagnostic on stderr) when the preferred key is not compiled in.
pub fn default_context() -> Ctx {
    match builder().build() {
        Ok(ctx) => ctx,
        Err(_) => {
            let key = preferred_backend_key();
            eprintln!("racc: backend {key:?} unavailable, falling back to \"threads\"");
            context_for("threads").expect("threads backend always available")
        }
    }
}

/// The process-wide shared context (lazy; selected once from preferences).
/// Prefer explicit [`context_for`] contexts in libraries.
pub fn global() -> &'static Ctx {
    static GLOBAL: OnceLock<Ctx> = OnceLock::new();
    GLOBAL.get_or_init(default_context)
}

/// Persist a backend preference to `RaccPreferences.toml` in `dir` — the
/// analog of `Preferences.set_preferences!(JACC, "backend" => ...)`.
pub fn set_preferred_backend(dir: impl AsRef<std::path::Path>, key: &str) -> Result<(), RaccError> {
    // Validate before persisting so a typo fails loudly now, not at startup.
    backend_for(key)?;
    let mut prefs =
        Preferences::load_dir(dir.as_ref()).map_err(|e| RaccError::InvalidConfig(e.to_string()))?;
    prefs.set("racc", "backend", key);
    prefs
        .save()
        .map_err(|e| RaccError::InvalidConfig(e.to_string()))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_compiled_backends_construct() {
        for key in available_backends() {
            let ctx = context_for(key).unwrap();
            assert_eq!(ctx.key(), key);
        }
    }

    #[test]
    fn aliases_resolve() {
        assert_eq!(context_for("cpu").unwrap().key(), "threads");
        #[cfg(feature = "backend-cuda")]
        assert_eq!(context_for("CUDA").unwrap().key(), "cudasim");
        #[cfg(feature = "backend-hip")]
        assert_eq!(context_for("amdgpu").unwrap().key(), "hipsim");
        #[cfg(feature = "backend-oneapi")]
        assert_eq!(context_for("intel").unwrap().key(), "oneapisim");
    }

    #[test]
    fn unknown_backend_is_an_error() {
        assert!(matches!(
            context_for("fpga"),
            Err(RaccError::BackendUnavailable(_))
        ));
    }

    #[test]
    fn same_code_every_backend() {
        // The portability claim in miniature: identical closure, all
        // back ends, identical results.
        let n = 4096usize;
        let mut results = Vec::new();
        for key in available_backends() {
            let ctx = context_for(key).unwrap();
            let x = ctx.array_from_fn(n, |i| (i % 17) as f64).unwrap();
            let y = ctx.array_from_fn(n, |i| ((i + 3) % 13) as f64).unwrap();
            let (xv, yv) = (x.view_mut(), y.view());
            ctx.parallel_for(n, &KernelProfile::axpy(), move |i| {
                xv.set(i, xv.get(i) + 2.5 * yv.get(i));
            });
            let (xv, yv) = (x.view(), y.view());
            let dot: f64 =
                ctx.parallel_reduce(n, &KernelProfile::dot(), move |i| xv.get(i) * yv.get(i));
            results.push((key, dot));
        }
        let first = results[0].1;
        for (key, dot) in &results {
            assert!(
                (dot - first).abs() < 1e-9 * first.abs(),
                "{key}: {dot} vs {first}"
            );
        }
    }

    #[test]
    fn fusion_knob_and_prelude_wire_through() {
        use crate::prelude::{load, LazyExt};

        let ctx = builder().backend("serial").fusion(true).build().unwrap();
        assert!(ctx.fusion_enabled());
        let ctx = builder().backend("serial").fusion(false).build().unwrap();
        assert!(!ctx.fusion_enabled());

        // The expression engine works through the enum-dispatched Ctx.
        let x = ctx.array_from_fn(64, |i| i as f64).unwrap();
        let y = ctx.array_from_fn(64, |i| (i % 5) as f64).unwrap();
        let mut l = ctx.lazy();
        let xv = l.assign(&x, load(&x) + 2.0 * load(&y));
        let dot = l.sum(xv * load(&y));
        assert_eq!(l.count_launches(), 1);
        let want: f64 = (0..64)
            .map(|i| (i as f64 + 2.0 * (i % 5) as f64) * (i % 5) as f64)
            .sum();
        assert_eq!(dot, want);

        // The chain went through the compiled-plan path, and `stats()`
        // reports it through the enum-dispatched context too.
        let stats = ctx.stats();
        assert_eq!(stats.plan_cache.misses, 1, "{stats}");

        // The deprecated spelling still compiles and shares the cache.
        #[allow(deprecated)]
        {
            use crate::prelude::FusedExt;
            let mut f = ctx.fused();
            let xv = f.assign(&x, load(&x) + 2.0 * load(&y));
            f.sum(xv * load(&y));
        }
        assert_eq!(ctx.stats().plan_cache.hits, 1);
    }

    #[test]
    fn global_context_is_singleton() {
        let a = global() as *const _;
        let b = global() as *const _;
        assert_eq!(a, b);
    }

    #[test]
    fn preference_file_round_trip() {
        let dir = std::env::temp_dir().join(format!("racc-root-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        set_preferred_backend(&dir, "serial").unwrap();
        let prefs = Preferences::load_dir(&dir).unwrap();
        assert_eq!(prefs.get_str("racc", "backend"), Some("serial"));
        // invalid key refuses to persist
        assert!(set_preferred_backend(&dir, "quantum").is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
