//! Performance portability in one screen: the *same* kernel closures run on
//! every compiled-in back end; results agree bit-for-bit (static schedules)
//! and the modeled clocks show each architecture's character.
//!
//! ```text
//! cargo run --release --example portability_tour
//! ```

use racc::prelude::*;

fn main() -> Result<(), RaccError> {
    let n = 1 << 20;
    let alpha = 0.75f64;
    println!(
        "{:<44} {:>14} {:>14} {:>14}",
        "backend", "axpy (model)", "dot (model)", "dot value"
    );

    for key in racc::available_backends() {
        let ctx = racc::builder().backend(key).build()?;
        let x = ctx.array_from_fn(n, |i| ((i % 1000) as f64) * 0.001)?;
        let y = ctx.array_from_fn(n, |i| (((i + 500) % 1000) as f64) * 0.001)?;

        ctx.reset_timeline();
        let (xv, yv) = (x.view_mut(), y.view());
        ctx.parallel_for(n, &KernelProfile::axpy(), move |i| {
            xv.set(i, xv.get(i) + alpha * yv.get(i));
        });
        let axpy_ns = ctx.modeled_ns();

        ctx.reset_timeline();
        let (xv, yv) = (x.view(), y.view());
        let dot: f64 =
            ctx.parallel_reduce(n, &KernelProfile::dot(), move |i| xv.get(i) * yv.get(i));
        let dot_ns = ctx.modeled_ns();

        println!(
            "{:<44} {:>11.3} us {:>11.3} us {:>14.6e}",
            ctx.name(),
            axpy_ns as f64 / 1e3,
            dot_ns as f64 / 1e3,
            dot
        );
    }
    println!("\nSame closures, every backend — the paper's portability claim.");
    Ok(())
}
