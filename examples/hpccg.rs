//! HPCCG/MiniFE scenario: unpreconditioned conjugate gradient on the
//! paper's diagonally dominant tridiagonal system and on a MiniFE-like 2D
//! Laplacian, with per-iteration residual history and a cross-backend
//! modeled-time comparison.
//!
//! ```text
//! cargo run --release --example hpccg [n]
//! ```

use racc_cg::csr::{Csr, DeviceCsr};
use racc_cg::solver::{solve, CgWorkspace};
use racc_cg::tridiag::{DeviceTridiag, Tridiag};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1 << 20);

    // ---- The paper's system: diagonally dominant tridiagonal ----------
    let ctx = racc::default_context();
    println!("backend: {}\n", ctx.name());
    let a = Tridiag::diagonally_dominant(n);
    let b: Vec<f64> = (0..n).map(|i| 0.5 + ((i % 10) as f64) * 0.05).collect();

    let da = DeviceTridiag::upload(&ctx, &a).expect("upload A");
    let db = ctx.array_from(&b).expect("upload b");
    let mut ws = CgWorkspace::new(&ctx, &db).expect("workspace");

    println!("tridiagonal HPCCG system, N = {n}");
    println!("{:>5} {:>14}", "iter", "||r||");
    let mut iterations = 0;
    let mut residual = ws.rr().sqrt();
    println!("{:>5} {:>14.6e}", 0, residual);
    while residual > 1e-10 && iterations < 200 {
        residual = ws.iterate(&ctx, &da);
        iterations += 1;
        if iterations <= 5 || iterations % 5 == 0 {
            println!("{:>5} {:>14.6e}", iterations, residual);
        }
    }
    println!(
        "converged in {iterations} iterations; modeled solve time {:.3} ms\n",
        ctx.modeled_ns() as f64 / 1e6
    );

    // ---- The MiniFE-like system: 2D Laplacian via the CSR substrate ---
    let grid = 64usize;
    let lap = Csr::laplacian_2d(grid, grid);
    let nn = lap.nrows();
    let x_true: Vec<f64> = (0..nn).map(|i| ((i % 17) as f64) * 0.1).collect();
    let mut rhs = vec![0.0; nn];
    lap.matvec_ref(&x_true, &mut rhs);

    let dm = DeviceCsr::upload(&ctx, &lap).expect("upload Laplacian");
    let drhs = ctx.array_from(&rhs).expect("upload rhs");
    ctx.reset_timeline();
    let (result, ws) = solve(&ctx, &dm, &drhs, 1e-9, 5000).expect("solve");
    let x = ctx.to_host(&ws.x).expect("download x");
    let err = x
        .iter()
        .zip(&x_true)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!(
        "2D Laplacian ({grid}x{grid}, {} nnz): {} iterations, residual {:.2e}, max error {:.2e}",
        lap.nnz(),
        result.iterations,
        result.residual,
        err
    );

    // ---- One iteration across every backend (Fig. 13 in miniature) ----
    println!("\none CG iteration at N = {n}, modeled per backend:");
    for key in racc::available_backends() {
        let ctx = racc::builder().backend(key).build().expect("backend");
        let da = DeviceTridiag::upload(&ctx, &a).expect("upload");
        let db = ctx.array_from(&b).expect("upload");
        let mut ws = CgWorkspace::new(&ctx, &db).expect("workspace");
        ctx.reset_timeline();
        let _ = ws.iterate(&ctx, &da);
        println!(
            "  {:<44} {:>10.3} ms",
            ctx.name(),
            ctx.modeled_ns() as f64 / 1e6
        );
    }
}
