//! Quickstart: the paper's Fig. 2 front-end example in RACC.
//!
//! ```text
//! cargo run --release --example quickstart
//! RACC_BACKEND=cudasim cargo run --release --example quickstart
//! ```

use racc::prelude::*;

fn main() -> Result<(), RaccError> {
    // Backend selection mirrors JACC's Preferences flow: RACC_BACKEND env
    // var, then RaccPreferences.toml, then the Threads default. The builder
    // also takes explicit knobs: .backend("cudasim"), .threads(8), .trace(true).
    let ctx = racc::builder().build()?;
    println!("backend: {}", ctx.name());

    // ---- Unidimensional arrays (paper Fig. 2, top) --------------------
    let size = 1_000_000usize;
    let x: Vec<f64> = (0..size).map(|i| ((i * 97) % 100) as f64).collect();
    let y: Vec<f64> = (0..size).map(|i| ((i * 31) % 100) as f64).collect();
    let alpha = 2.5f64;

    let dx = ctx.array_from(&x)?; // JACC.Array(x)
    let dy = ctx.array_from(&y)?;

    // JACC.parallel_for(SIZE, axpy, alpha, dx, dy)
    let (xv, yv) = (dx.view_mut(), dy.view());
    ctx.parallel_for(size, &KernelProfile::axpy(), move |i| {
        xv.set(i, xv.get(i) + alpha * yv.get(i));
    });

    // res = JACC.parallel_reduce(SIZE, dot, dx, dy)
    let (xv, yv) = (dx.view(), dy.view());
    let res: f64 = ctx.parallel_reduce(size, &KernelProfile::dot(), move |i| xv.get(i) * yv.get(i));
    println!("1D: dot(x + {alpha} y, y) = {res:.6e}");

    // ---- Multidimensional arrays (paper Fig. 2, bottom) ---------------
    let s = 1_000usize;
    let dx = ctx.array2_from_fn(s, s, |i, j| ((i + j) % 100) as f64)?;
    let dy = ctx.array2_from_fn(s, s, |i, j| ((i * j) % 100) as f64)?;

    let (xv, yv) = (dx.view_mut(), dy.view());
    ctx.parallel_for_2d((s, s), &KernelProfile::axpy(), move |i, j| {
        xv.set(i, j, xv.get(i, j) + alpha * yv.get(i, j));
    });
    let (xv, yv) = (dx.view(), dy.view());
    let res2: f64 = ctx.parallel_reduce_2d((s, s), &KernelProfile::dot(), move |i, j| {
        xv.get(i, j) * yv.get(i, j)
    });
    println!("2D: dot(X + {alpha} Y, Y) = {res2:.6e}");

    // Modeled-time accounting (what the paper's figures are made of).
    let t = ctx.timeline();
    println!(
        "timeline: {} launches, {} reductions, {:.3} ms modeled",
        t.launches,
        t.reductions,
        t.modeled_ns as f64 / 1e6
    );
    Ok(())
}
