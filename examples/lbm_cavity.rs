//! Lid-driven cavity: wall-bounded LBM with a moving lid — the classic
//! recirculating-vortex benchmark, run through the RACC front end with an
//! ASCII rendering of the flow field.
//!
//! ```text
//! cargo run --release --example lbm_cavity [size] [steps]
//! RACC_BACKEND=cudasim cargo run --release --example lbm_cavity
//! ```

use racc_lbm::cavity::CavitySim;

fn main() {
    let size: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(48);
    let steps: usize = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2000);

    let ctx = racc::builder().build().expect("backend");
    println!("backend: {}", ctx.name());
    println!("cavity {size}x{size}, lid velocity 0.08, tau 0.8, {steps} steps\n");

    let mut sim = CavitySim::new(&ctx, size, 0.8, 0.08).expect("cavity setup");
    sim.run(steps);

    let (ux, uy) = sim.velocity_field().expect("fields");
    let speed = |x: usize, y: usize| {
        let u = ux[x * size + y];
        let v = uy[x * size + y];
        (u * u + v * v).sqrt()
    };
    let max_speed = (0..size)
        .flat_map(|x| (0..size).map(move |y| speed(x, y)))
        .fold(0.0f64, f64::max);

    // ASCII speed map (top row = lid), coarse-sampled to ~40 columns.
    let cells = 40.min(size);
    let stride = size / cells;
    let ramp = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    println!("speed field (lid at top, '@' = fastest):");
    for yy in (0..cells).rev() {
        let mut line = String::new();
        for xx in 0..cells {
            let s = speed(xx * stride, yy * stride);
            let level = ((s / max_speed) * (ramp.len() - 1) as f64).round() as usize;
            line.push(ramp[level.min(ramp.len() - 1)]);
        }
        println!("  |{line}|");
    }

    // Direction arrows along the vertical centerline: the recirculation.
    println!("\ncenterline u_x (x = {}):", size / 2);
    for frac in [0.9, 0.7, 0.5, 0.3, 0.1] {
        let y = ((size as f64) * frac) as usize;
        let u = ux[(size / 2) * size + y];
        let arrow = if u > 1e-4 {
            "->"
        } else if u < -1e-4 {
            "<-"
        } else {
            " ."
        };
        println!("  y = {y:>3}: {arrow} ({u:+.4})");
    }

    let w = sim.total_vorticity().expect("vorticity");
    println!(
        "\ntotal vorticity: {w:.4} ({} vortex)",
        if w < 0.0 {
            "clockwise"
        } else {
            "counter-clockwise"
        }
    );
    println!(
        "modeled time: {:.3} ms over {} launches",
        ctx.modeled_ns() as f64 / 1e6,
        ctx.timeline().launches
    );
}
