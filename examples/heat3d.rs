//! 3D heat diffusion (Jacobi stencil) — exercising the third dimension of
//! the constructs (the paper's multidimensional API goes "up to three
//! dimensions").
//!
//! A cube with a hot face (`x = 0`, T = 1) and a cold face (`x = n−1`,
//! T = 0), insulated otherwise, relaxed with a 7-point Jacobi sweep. The
//! steady state along x is the linear profile T(x) = 1 − x/(n−1); the
//! example reports convergence toward it.
//!
//! ```text
//! cargo run --release --example heat3d [n] [sweeps]
//! RACC_BACKEND=oneapisim cargo run --release --example heat3d
//! ```

use racc::prelude::*;

fn main() -> Result<(), RaccError> {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(32);
    let sweeps: usize = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(800);

    let ctx = racc::builder().build()?;
    println!("backend: {}", ctx.name());
    println!("cube {n}^3, {sweeps} Jacobi sweeps\n");

    // Initialize with the boundary conditions baked in.
    let init = |i: usize, _j: usize, _k: usize| -> f64 {
        if i == 0 {
            1.0
        } else {
            0.0
        }
    };
    let mut t0 = ctx.zeros3::<f64>(n, n, n)?;
    let mut t1 = ctx.zeros3::<f64>(n, n, n)?;
    {
        let v = t0.view_mut();
        let w = t1.view_mut();
        ctx.parallel_for_3d((n, n, n), &KernelProfile::unknown(), move |i, j, k| {
            v.set(i, j, k, init(i, j, k));
            w.set(i, j, k, init(i, j, k));
        });
    }

    // 7-point Jacobi with insulated (mirror) y/z boundaries and fixed x
    // faces. ~8 flops, 7 reads, 1 write per site.
    let profile = KernelProfile::new("heat3d-jacobi", 8.0, 56.0, 8.0);
    for _ in 0..sweeps {
        let src = t0.view();
        let dst = t1.view_mut();
        ctx.parallel_for_3d((n, n, n), &profile, move |i, j, k| {
            if i == 0 || i == n - 1 {
                return; // Dirichlet faces stay fixed.
            }
            let jm = j.saturating_sub(1);
            let jp = (j + 1).min(n - 1);
            let km = k.saturating_sub(1);
            let kp = (k + 1).min(n - 1);
            let sum = src.get(i - 1, j, k)
                + src.get(i + 1, j, k)
                + src.get(i, jm, k)
                + src.get(i, jp, k)
                + src.get(i, j, km)
                + src.get(i, j, kp);
            dst.set(i, j, k, sum / 6.0);
        });
        std::mem::swap(&mut t0, &mut t1);
    }

    // Compare the centerline against the analytic steady profile.
    let host = ctx.to_host3(&t0)?;
    let at = |i: usize, j: usize, k: usize| host[(k * n + j) * n + i];
    println!("{:>6} {:>10} {:>10}", "x", "T(x)", "steady");
    let mut max_err = 0.0f64;
    for frac in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let i = ((n - 1) as f64 * frac).round() as usize;
        let t = at(i, n / 2, n / 2);
        let steady = 1.0 - i as f64 / (n - 1) as f64;
        max_err = max_err.max((t - steady).abs());
        println!("{i:>6} {t:>10.4} {steady:>10.4}");
    }
    println!(
        "\nmax centerline deviation from steady state: {max_err:.4} \
         (decreases with more sweeps)"
    );
    println!(
        "modeled time: {:.3} ms over {} launches",
        ctx.modeled_ns() as f64 / 1e6,
        ctx.timeline().launches
    );
    Ok(())
}
