//! HARVEY-style CFD scenario: a lattice-Boltzmann D2Q9 shear-wave
//! simulation through the RACC front end, validated against the analytic
//! BGK decay rate `ν k²` with `ν = (τ − 1/2)/3`.
//!
//! ```text
//! cargo run --release --example lbm_shear_wave
//! RACC_BACKEND=hipsim cargo run --release --example lbm_shear_wave
//! ```

use racc_lbm::lattice::{viscosity, CX};
use racc_lbm::portable::LbmSim;

fn main() {
    let ctx = racc::builder().build().expect("backend");
    println!("backend: {}", ctx.name());

    let s = 64usize;
    let tau = 0.9f64;
    let u0 = 1e-4f64;
    let k = 2.0 * std::f64::consts::PI / s as f64;

    let mut sim = LbmSim::new(&ctx, s, tau, |_x, y| (1.0, u0 * (k * y as f64).sin(), 0.0))
        .expect("simulation setup");

    let amplitude = |sim: &LbmSim<_>| -> f64 {
        let (_rho, ux, _uy) = sim.macroscopic().expect("fields");
        let mut num = 0.0;
        let mut den = 0.0;
        for y in 0..s {
            let mut u_avg = 0.0;
            for x in 0..s {
                u_avg += ux[x * s + y];
            }
            u_avg /= s as f64;
            let sy = (k * y as f64).sin();
            num += u_avg * sy;
            den += sy * sy;
        }
        num / den
    };

    let a0 = amplitude(&sim);
    let mass0 = sim.total_mass();
    println!("grid {s}x{s}, tau = {tau}, nu = {:.5}", viscosity(tau));
    println!("{:>6} {:>14} {:>14}", "step", "amplitude", "analytic");

    let steps_per_report = 40;
    let reports = 6;
    for r in 1..=reports {
        for _ in 0..steps_per_report {
            sim.step_periodic();
        }
        let t = (r * steps_per_report) as f64;
        let analytic = a0 * (-viscosity(tau) * k * k * t).exp();
        println!(
            "{:>6} {:>14.6e} {:>14.6e}",
            r * steps_per_report,
            amplitude(&sim),
            analytic
        );
    }

    let total_steps = (reports * steps_per_report) as f64;
    let measured_rate = -(amplitude(&sim) / a0).ln() / total_steps;
    let analytic_rate = viscosity(tau) * k * k;
    let mass1 = sim.total_mass();
    println!(
        "\ndecay rate: measured {measured_rate:.4e}, analytic {analytic_rate:.4e} \
         (rel. err. {:.2}%)",
        100.0 * (measured_rate - analytic_rate).abs() / analytic_rate
    );
    println!(
        "mass conservation: {:.2e} relative drift over {total_steps} steps",
        ((mass1 - mass0) / mass0).abs()
    );
    println!(
        "modeled time: {:.3} ms across {} kernel launches",
        ctx.modeled_ns() as f64 / 1e6,
        ctx.timeline().launches
    );
    // Keep the D2Q9 velocity table in scope as a sanity reminder.
    debug_assert_eq!(CX[0], 0.0);
}
