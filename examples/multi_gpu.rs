//! Multi-device execution — the paper's "future directions" scenario
//! (multi-device nodes) through the sharding runtime: the heat3d Jacobi
//! cube split into k-slabs across N simulated GPUs, each step overlapping
//! the halo exchange with the interior sweep.
//!
//! The load-bearing claim is printed and asserted at the end: the sharded
//! field is **bit-identical** to the single-device run at every device
//! count, because every site evaluates exactly the same expression no
//! matter which shard owns it.
//!
//! ```text
//! cargo run --release --example multi_gpu
//! ```

use racc_shard::{run_sharded, ShardOptions, ShardOutcome};
use racc_stencil::ShardedHeat3;
use std::sync::Arc;

fn sharded(devices: usize, overlap: bool) -> ShardOutcome {
    run_sharded(
        Arc::new(ShardedHeat3 { n: 128, sweeps: 8 }),
        ShardOptions::devices(devices).overlap(overlap),
        |_rank| {
            racc::builder()
                .backend("cudasim")
                .build()
                .expect("cudasim backend")
        },
    )
}

fn main() {
    println!("sharded heat3d (128^3, 8 sweeps) on simulated CUDA devices\n");

    let one = sharded(1, true);
    let base_ns = one.makespan_ns() as f64;
    println!(
        "{:>7}  {:>12}  {:>8}  {:>8}  {:>6}",
        "devices", "makespan", "speedup", "halo-ex", "bits"
    );
    println!(
        "{:>7}  {:>9.1} us  {:>7.2}x  {:>8}  {:>6}",
        1,
        base_ns / 1e3,
        1.0,
        one.reports[0].as_ref().unwrap().stats.halo_exchanges,
        "ref"
    );

    for devices in [2, 4, 8] {
        let multi = sharded(devices, true);
        let identical = multi.field == one.field;
        let exchanges: u64 = multi
            .reports
            .iter()
            .flatten()
            .map(|r| r.stats.halo_exchanges)
            .sum();
        println!(
            "{:>7}  {:>9.1} us  {:>7.2}x  {:>8}  {:>6}",
            devices,
            multi.makespan_ns() as f64 / 1e3,
            base_ns / multi.makespan_ns() as f64,
            exchanges,
            if identical { "equal" } else { "DIFF" }
        );
        assert_eq!(
            multi.field, one.field,
            "sharded run on {devices} devices must be bit-identical to one device"
        );
    }

    // Overlap off: same bits, longer modeled makespan (the exchange no
    // longer hides behind the interior sweep).
    let no_overlap = sharded(4, false);
    assert_eq!(no_overlap.field, one.field);
    let overlap = sharded(4, true);
    println!(
        "\noverlap on 4 devices: {:.1} us with vs {:.1} us without (same bits)",
        overlap.makespan_ns() as f64 / 1e3,
        no_overlap.makespan_ns() as f64 / 1e3
    );
    assert!(overlap.makespan_ns() <= no_overlap.makespan_ns());

    println!("\nall device counts agree bit-for-bit with the single-device run");
}
