//! Multi-device execution — the paper's "future directions" scenario
//! (heterogeneous multi-device nodes) on the simulator substrate: split a
//! DOT across two simulated GPUs, each computing its half, with a peer
//! copy bringing the partials together.
//!
//! ```text
//! cargo run --release --example multi_gpu
//! ```

use racc_cudasim::Cuda;
use racc_gpusim::KernelCost;

fn main() {
    let n = 1 << 22;
    let half = n / 2;
    let hx: Vec<f64> = (0..n).map(|i| ((i % 100) as f64) * 0.01).collect();
    let hy: Vec<f64> = (0..n).map(|i| (((i + 50) % 100) as f64) * 0.01).collect();
    let expect: f64 = hx.iter().zip(&hy).map(|(a, b)| a * b).sum();

    // Two simulated A100s, each owning half of the vectors.
    let gpu0 = Cuda::new();
    let gpu1 = Cuda::new();
    println!(
        "two devices: #{} and #{} ({})",
        gpu0.device().id(),
        gpu1.device().id(),
        gpu0.device().spec().name
    );

    let x0 = gpu0.cu_array(&hx[..half]).unwrap();
    let y0 = gpu0.cu_array(&hy[..half]).unwrap();
    let x1 = gpu1.cu_array(&hx[half..]).unwrap();
    let y1 = gpu1.cu_array(&hy[half..]).unwrap();

    // Each device reduces its half with the vendor two-kernel DOT.
    let (d0, ns0) = racc_blas::vendor::cuda::dot(&gpu0, &x0, &y0);
    let (d1, ns1) = racc_blas::vendor::cuda::dot(&gpu1, &x1, &y1);
    println!(
        "device 0 partial: {d0:.6e} in {:.1} us (modeled)",
        ns0 as f64 / 1e3
    );
    println!(
        "device 1 partial: {d1:.6e} in {:.1} us (modeled)",
        ns1 as f64 / 1e3
    );

    // Ship device 1's partial to device 0 peer-to-peer and combine there.
    let p1 = gpu1.cu_array(&[d1]).unwrap();
    let p0 = gpu0.zeros::<f64>(1).unwrap();
    gpu1.device().copy_to_peer(&p1, gpu0.device(), &p0).unwrap();
    let partial0 = gpu0.cu_array(&[d0]).unwrap();
    let out = gpu0.zeros::<f64>(1).unwrap();
    let (a, b, o) = (
        gpu0.view(&partial0).unwrap(),
        gpu0.view(&p0).unwrap(),
        gpu0.view_mut(&out).unwrap(),
    );
    gpu0.launch(1, 1, 0, KernelCost::memory_bound(16.0, 8.0), move |t| {
        if t.global_id_x() == 0 {
            o.set(0, a.get(0) + b.get(0));
        }
    })
    .unwrap();
    let total = gpu0.read_scalar(&out, 0).unwrap();

    println!("\ncombined dot: {total:.6e}");
    println!("reference:    {expect:.6e}");
    assert!((total - expect).abs() < 1e-6 * expect);

    // Multi-device wall clock = max of the two device clocks (they ran
    // concurrently) vs one device doing everything.
    let multi_ns = gpu0.clock_ns().max(gpu1.clock_ns());
    let solo = Cuda::new();
    let sx = solo.cu_array(&hx).unwrap();
    let sy = solo.cu_array(&hy).unwrap();
    let t0 = solo.clock_ns();
    let (_, _) = racc_blas::vendor::cuda::dot(&solo, &sx, &sy);
    let solo_ns = solo.clock_ns() - t0;
    println!(
        "\nmodeled end-to-end: two devices {:.1} us (incl. transfers) vs one device {:.1} us",
        multi_ns as f64 / 1e3,
        solo_ns as f64 / 1e3
    );
}
