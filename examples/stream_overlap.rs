//! Stream-level concurrency on the simulated GPU — the paper's future-work
//! theme of "more efficient exploitation of available resources": splitting
//! an embarrassingly parallel update across streams overlaps on the modeled
//! clock, while one stream serializes.
//!
//! ```text
//! cargo run --release --example stream_overlap
//! ```

use racc_cudasim::Cuda;
use racc_gpusim::KernelCost;

fn main() {
    let cuda = Cuda::new();
    let n = 1 << 22;
    let chunks = 4usize;
    let per = n / chunks;
    let buf = cuda.cu_array(&vec![1.0f64; n]).unwrap();
    let cost = KernelCost::new(2.0, 8.0, 8.0, 1.0);

    // Serialized: all chunks on the default stream.
    let v = cuda.view_mut(&buf).unwrap();
    let t0 = cuda.clock_ns();
    for c in 0..chunks {
        let lo = c * per;
        let view = v.clone();
        cuda.launch(256, (per / 256) as u32, 0, cost, move |t| {
            let i = lo + t.global_id_x();
            if i < lo + per {
                view.set(i, view.get(i) * 2.0);
            }
        })
        .unwrap();
    }
    let serial_ns = cuda.clock_ns() - t0;

    // Overlapped: one stream per chunk.
    let streams: Vec<_> = (0..chunks).map(|_| cuda.create_stream()).collect();
    let t1 = cuda.clock_ns();
    for (c, s) in streams.iter().enumerate() {
        let lo = c * per;
        let view = v.clone();
        cuda.launch_async(s, 256, (per / 256) as u32, 0, cost, move |t| {
            let i = lo + t.global_id_x();
            if i < lo + per {
                view.set(i, view.get(i) * 2.0);
            }
        })
        .unwrap();
    }
    cuda.synchronize();
    let overlap_ns = cuda.clock_ns() - t1;

    println!("updating {n} elements in {chunks} chunks on the simulated A100:");
    println!(
        "  default stream (serialized): {:>9.1} us",
        serial_ns as f64 / 1e3
    );
    println!(
        "  {} streams (overlapped):      {:>9.1} us",
        chunks,
        overlap_ns as f64 / 1e3
    );
    println!(
        "  modeled speedup: {:.2}x (bandwidth contention is not modeled — see EXPERIMENTS.md)",
        serial_ns as f64 / overlap_ns as f64
    );

    let host = cuda.to_host(&buf).unwrap();
    assert!(host.iter().all(|&x| x == 4.0), "both passes applied");
    println!("  results verified: every element doubled twice");
}
