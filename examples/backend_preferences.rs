//! The Preferences flow (JACC's `Preferences.jl` / `LocalPreferences.toml`
//! analog): persist a backend choice, show how the default context resolves
//! it, and how the `RACC_BACKEND` environment variable overrides the file.
//!
//! ```text
//! cargo run --release --example backend_preferences
//! ```

use racc::{Preferences, PREFS_FILE_NAME};

fn main() {
    // Work in a scratch directory so we do not disturb the repository.
    let dir = std::env::temp_dir().join(format!("racc-prefs-demo-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");

    // 1. Persist a preference — the analog of
    //    Preferences.set_preferences!(JACC, "backend" => "CUDA").
    racc::set_preferred_backend(&dir, "cudasim").expect("persist preference");
    let file = dir.join(PREFS_FILE_NAME);
    println!("wrote {}:", file.display());
    println!("{}", std::fs::read_to_string(&file).expect("read back"));

    // 2. The resolver consults the file in the *current* directory, so chdir
    //    into the scratch dir for the demonstration.
    std::env::set_current_dir(&dir).expect("chdir");
    std::env::remove_var(racc::BACKEND_ENV);
    println!(
        "preferred key (from file): {}",
        racc::preferred_backend_key()
    );
    let ctx = racc::default_context();
    println!("default context: {}", ctx.name());
    assert_eq!(ctx.key(), "cudasim");

    // 3. The environment variable wins over the file (handy on clusters,
    //    like the module-driven configuration in the paper's appendix).
    std::env::set_var(racc::BACKEND_ENV, "hipsim");
    println!(
        "preferred key (with {}=hipsim): {}",
        racc::BACKEND_ENV,
        racc::preferred_backend_key()
    );
    let ctx = racc::default_context();
    println!("default context: {}", ctx.name());
    assert_eq!(ctx.key(), "hipsim");

    // 4. Unknown keys fall back loudly.
    std::env::set_var(racc::BACKEND_ENV, "quantum");
    let ctx = racc::default_context();
    println!("fallback context: {}", ctx.name());
    assert_eq!(ctx.key(), "threads");

    // 5. A typo cannot be persisted in the first place.
    let err = racc::set_preferred_backend(&dir, "quantum").unwrap_err();
    println!("persisting a bad key fails: {err}");

    // Inspect the raw preferences store API as well.
    let prefs = Preferences::load_dir(".").expect("load");
    println!(
        "raw store: [racc].backend = {:?} ({} entries)",
        prefs.get_str("racc", "backend"),
        prefs.len()
    );

    std::env::set_current_dir("/").ok();
    std::fs::remove_dir_all(&dir).ok();
}
