//! Serving many tenants from one process: a `racc_serve::Server` pools
//! four simulated GPU contexts and multiplexes three tenants' jobs across
//! them — weighted fairness, cross-tenant batching over the shared plan
//! cache, and a last-resort fallback context, all on the modeled clock.
//!
//! ```text
//! cargo run --release --example serve
//! ```

use racc::serve::{job_fn, JobCtx, Server, ServerOptions, TenantConfig};
use racc::{fuse::lit, fuse::load, fuse::LazyExt, Context, CudaBackend, RaccError};

fn cg_update(job: &JobCtx<'_, CudaBackend>, n: usize, alpha: f64) -> Result<f64, RaccError> {
    let ctx = job.ctx();
    let mk = |k: usize| ctx.array_from_fn(n, move |i| ((i * k) % 13) as f64 * 0.5 - 3.0);
    let (x, p, r, s) = (mk(3)?, mk(5)?, mk(7)?, mk(11)?);
    job.uploaded();
    let mut l = ctx.lazy();
    l.store(&x, load(&x) + lit(alpha) * load(&p));
    let rv = l.assign(&r, load(&r) + lit(-alpha) * load(&s));
    let v = l.sum(rv.clone() * rv);
    job.computed();
    let _ = ctx.to_host(&x)?;
    Ok(v)
}

fn main() {
    let options = ServerOptions::default()
        .devices(4)
        .batch_limit(8)
        .fallback(true)
        .hold(true)
        .tenant(
            "interactive",
            TenantConfig {
                weight: 4,
                ..TenantConfig::default()
            },
        )
        .tenant("batch", TenantConfig::default())
        .tenant(
            "best-effort",
            TenantConfig {
                queue_depth: 8,
                ..TenantConfig::default()
            },
        );
    let server = Server::start(options, |_device| Context::new(CudaBackend::new()));

    // An open-loop schedule: tenants submit at their own modeled rates;
    // same-shape jobs (keyed "cg-64k") may batch onto one device.
    let mut handles = Vec::new();
    for i in 0..24u64 {
        handles.push(
            server.submit_at(
                "interactive",
                i * 40_000,
                job_fn(|job: &JobCtx<CudaBackend>| cg_update(job, 1 << 16, 0.8125))
                    .with_shape("cg-64k"),
            ),
        );
    }
    for i in 0..12u64 {
        handles.push(server.submit_at(
            "batch",
            i * 80_000,
            job_fn(|job: &JobCtx<CudaBackend>| cg_update(job, 1 << 18, 0.5)),
        ));
    }
    for i in 0..12u64 {
        handles.push(server.submit_at(
            "best-effort",
            i * 80_000,
            job_fn(|job: &JobCtx<CudaBackend>| cg_update(job, 1 << 16, 0.25)).with_shape("cg-64k"),
        ));
    }
    server.release();

    let mut latencies: Vec<u64> = Vec::new();
    for h in handles {
        match h.wait() {
            Ok(done) => latencies.push(done.report.latency_ns()),
            Err(err) => println!("shed/failed: {err}"),
        }
    }
    latencies.sort_unstable();
    let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p) as usize];

    let snap = server.shutdown();
    println!(
        "pool of 4 simulated devices, makespan {} us",
        snap.makespan_ns / 1_000
    );
    println!(
        "jobs: {} admitted, {} completed, {} shed, {} co-batched",
        snap.totals.admitted, snap.totals.completed, snap.totals.rejected, snap.totals.batched_jobs
    );
    println!(
        "latency p50 {} us, p99 {} us",
        pct(0.5) / 1_000,
        pct(0.99) / 1_000
    );
    for t in &snap.tenants {
        println!(
            "  tenant {:<12} weight {} -> {} completed, {} rejected",
            t.name, t.weight, t.completed, t.rejected
        );
    }
}
