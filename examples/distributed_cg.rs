//! Distributed-memory CG — the paper's future-work configuration: domain
//! decomposition across SPMD ranks (the `racc-comm` MPI.jl analog), each
//! rank running the RACC constructs on its own backend context, with halo
//! exchanges for the tridiagonal matvec and allreduces for the dots.
//!
//! ```text
//! cargo run --release --example distributed_cg [ranks] [n]
//! RACC_BACKEND=cudasim cargo run --release --example distributed_cg 4
//! ```

use racc_comm::{Rank, World};
use racc_core::KernelProfile;

fn main() {
    let ranks: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);
    let n: usize = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(200_000);

    println!("distributed CG: {ranks} ranks, tridiagonal N = {n}\n");

    // The global system: the paper's diagonally dominant tridiagonal with
    // b = A * x_true, so the answer is checkable.
    let x_true: Vec<f64> = (0..n).map(|i| ((i % 11) as f64) * 0.3 - 1.5).collect();
    let b_global: Vec<f64> = (0..n)
        .map(|i| {
            let left = if i > 0 { x_true[i - 1] } else { 0.0 };
            let right = if i + 1 < n { x_true[i + 1] } else { 0.0 };
            left + 4.0 * x_true[i] + right
        })
        .collect();

    let results = World::run(ranks, move |comm| run_rank(comm, n, &b_global));

    let (iters, residual) = results[0];
    println!("\nconverged in {iters} iterations, global residual {residual:.3e}");
}

/// Owned range of a rank: contiguous block decomposition.
fn block(n: usize, size: usize, rank: usize) -> (usize, usize) {
    let base = n / size;
    let rem = n % size;
    let start = rank * base + rank.min(rem);
    (start, start + base + usize::from(rank < rem))
}

fn run_rank(comm: &Rank, n: usize, b_global: &[f64]) -> (usize, f64) {
    let (lo, hi) = block(n, comm.size(), comm.rank());
    let local_n = hi - lo;

    // Each rank gets its own RACC context (the preference-selected backend).
    let ctx = racc::builder().build().expect("backend");
    if comm.rank() == 0 {
        println!("rank backends: {} x {}", comm.size(), ctx.name());
    }

    // Local state: the owned slices of r, p, s, x.
    let r = ctx.array_from(&b_global[lo..hi]).expect("r");
    let p = ctx.array_from(&b_global[lo..hi]).expect("p");
    let s = ctx.zeros::<f64>(local_n).expect("s");
    let x = ctx.zeros::<f64>(local_n).expect("x");

    let local_dot = |a: &racc_core::Array1<f64>, b: &racc_core::Array1<f64>| -> f64 {
        let (av, bv) = (a.view(), b.view());
        ctx.parallel_reduce(local_n, &KernelProfile::dot(), move |i| {
            av.get(i) * bv.get(i)
        })
    };
    let axpy = |alpha: f64, dst: &racc_core::Array1<f64>, src: &racc_core::Array1<f64>| {
        let (dv, sv) = (dst.view_mut(), src.view());
        ctx.parallel_for(local_n, &KernelProfile::axpy(), move |i| {
            dv.set(i, dv.get(i) + alpha * sv.get(i));
        });
    };

    // Distributed matvec: exchange one halo element with each neighbor,
    // then one local parallel_for.
    let matvec = |pvec: &racc_core::Array1<f64>, out: &racc_core::Array1<f64>| {
        let host = ctx.to_host(pvec).expect("halo read");
        let left_halo = if comm.rank() > 0 {
            comm.send(comm.rank() - 1, host[0]).expect("send left");
            Some(comm.recv::<f64>(comm.rank() - 1).expect("recv left"))
        } else {
            None
        };
        let right_halo = if comm.rank() + 1 < comm.size() {
            comm.send(comm.rank() + 1, host[local_n - 1])
                .expect("send right");
            Some(comm.recv::<f64>(comm.rank() + 1).expect("recv right"))
        } else {
            None
        };
        let lh = left_halo.unwrap_or(0.0);
        let rh = right_halo.unwrap_or(0.0);
        let (pv, ov) = (pvec.view(), out.view_mut());
        ctx.parallel_for(
            local_n,
            &KernelProfile::new("dist-tridiag", 5.0, 48.0, 8.0),
            move |i| {
                let left = if i > 0 { pv.get(i - 1) } else { lh };
                let right = if i + 1 < local_n { pv.get(i + 1) } else { rh };
                ov.set(i, left + 4.0 * pv.get(i) + right);
            },
        );
    };

    // CG with global reductions.
    let mut rr = comm.allreduce_sum(local_dot(&r, &r)).expect("allreduce rr");
    let tol = 1e-10f64;
    let mut iters = 0usize;
    while rr.sqrt() > tol && iters < 300 {
        matvec(&p, &s);
        let ps = comm.allreduce_sum(local_dot(&p, &s)).expect("allreduce ps");
        let alpha = rr / ps;
        axpy(alpha, &x, &p);
        axpy(-alpha, &r, &s);
        let rr_new = comm.allreduce_sum(local_dot(&r, &r)).expect("allreduce rr");
        let beta = rr_new / rr;
        {
            let (rv, pv) = (r.view(), p.view_mut());
            ctx.parallel_for(
                local_n,
                &KernelProfile::new("axpby", 3.0, 16.0, 8.0),
                move |i| {
                    pv.set(i, rv.get(i) + beta * pv.get(i));
                },
            );
        }
        rr = rr_new;
        iters += 1;
    }

    // Verify the assembled global solution on rank 0.
    let local_x = ctx.to_host(&x).expect("download x");
    if let Some(parts) = comm.gather(local_x).expect("gather x") {
        let assembled: Vec<f64> = parts.into_iter().flatten().collect();
        let max_err = assembled
            .iter()
            .enumerate()
            .map(|(i, v)| (v - (((i % 11) as f64) * 0.3 - 1.5)).abs())
            .fold(0.0f64, f64::max);
        println!(
            "rank 0: assembled solution max error {max_err:.3e} \
             (modeled per-rank time {:.3} ms)",
            ctx.modeled_ns() as f64 / 1e6
        );
        assert!(
            max_err < 1e-6,
            "distributed CG must match the constructed solution"
        );
    }
    (iters, rr.sqrt())
}
