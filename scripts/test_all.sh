#!/usr/bin/env bash
# Full verification: tests (both feature sets), clippy, docs, examples.
set -euo pipefail
cd "$(dirname "$0")/.."
cargo test --workspace
cargo test --workspace --features racecheck
cargo clippy --workspace --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps
for ex in quickstart portability_tour backend_preferences; do
  cargo run --release --example "$ex" >/dev/null
done
echo "all green"
