#!/usr/bin/env bash
# Regenerate every paper figure/table (the analog of the JACC-Test-Codes
# benchmark scripts in the paper's appendix). Output goes to results/.
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results
ARGS="${1:-}"
cargo run --release -p racc-bench --bin figures -- all $ARGS | tee results/figures.txt
echo "wrote results/figures.txt"
