#!/usr/bin/env python3
"""Perf-regression gate over the committed bench series.

Two layers, both over the *committed* ``results/BENCH_*.json`` files (run
this before any quick-mode smoke regenerates them):

1. Absolute floors — claims the repo makes about itself:
     * fusion: every ``cg``/``expr`` row must hold ``wall_speedup >= 1.0``
       (compiled plans never lose to eager);
     * steal: the ragged-CSR matvec must hold ``wall_speedup >= 1.2`` over
       the shared-cursor chunk core, and every other workload ``>= 0.98``
       (the deque core must not tax uniform loops);
     * shard: every row must be bit-identical to the single-device run;
       heat3d at 4 devices with overlap must hold ``modeled_speedup >=
       1.7`` (interior-dominated sizes) and ``overlap_gain >= 1.0``
       (overlapping the halo exchange never loses to running it
       serially);
     * serve: every row must be bit-identical to solo contexts with zero
       dropped-job violations; the 4-device reference load must hold
       ``modeled_speedup >= 1.5`` over one context and keep its modeled
       ``p99_ns`` under 1 ms.
     * prim: every particle-binning row must be bit-identical to the
       serial reference (histogram, scans, and sort_by_key included —
       the primitives' cross-backend contract).

2. Baseline drift — every ``results/baselines/BENCH_*.json`` is compared
   row-by-row against its committed counterpart. A row regresses when it
   is worse than baseline by more than ``TOLERANCE`` (1.05x): speedups may
   drop at most 5%, per-launch nanoseconds may grow at most 5%. Rows are
   keyed by (section/workload, backend, shape) so reordering is harmless;
   a row *missing* from the current results is a failure, new rows are
   fine. To accept an intentional change, regenerate the full-size series
   and copy it over the baseline in the same commit.

Exit code 0 iff every check passes.
"""

import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
RESULTS = REPO / "results"
BASELINES = RESULTS / "baselines"
TOLERANCE = 1.05

failures = []


def check(ok, msg):
    print(("ok:  " if ok else "FAIL: ") + msg)
    if not ok:
        failures.append(msg)


def rows(doc):
    """Yield (key, row) for every series row in a bench document."""
    if doc["bench"] == "fusion":
        for sec in ("cg", "expr"):
            for row in doc.get(sec, []):
                yield (sec, row["backend"]), row
    else:
        for row in doc.get("series", []):
            key = tuple(
                row[k] for k in ("workload", "backend", "shape") if k in row
            )
            yield key, row


def fmt(key):
    return "/".join(str(k) for k in key)


def gate_absolute(name, doc):
    if doc["bench"] == "fusion":
        for key, row in rows(doc):
            s = row["wall_speedup"]
            check(s >= 1.0, f"{name} {fmt(key)}: wall_speedup {s} >= 1.0")
    elif doc["bench"] == "steal":
        for key, row in rows(doc):
            floor = 1.2 if row["workload"] == "ragged-csr" else 0.98
            s = row["wall_speedup"]
            check(s >= floor, f"{name} {fmt(key)}: wall_speedup {s} >= {floor}")
    elif doc["bench"] == "shard":
        for key, row in rows(doc):
            check(
                row.get("bit_identical") is True,
                f"{name} {fmt(key)}: sharded field bit-identical to one device",
            )
            if (
                row["workload"] == "heat3d"
                and row["devices"] == 4
                and row["overlap"]
            ):
                s = row["modeled_speedup"]
                check(s >= 1.7, f"{name} {fmt(key)}: modeled_speedup {s} >= 1.7")
                g = row["overlap_gain"]
                check(g >= 1.0, f"{name} {fmt(key)}: overlap_gain {g} >= 1.0")
    elif doc["bench"] == "prim":
        for key, row in rows(doc):
            check(
                row.get("bit_identical") is True,
                f"{name} {fmt(key)}: primitives bit-identical to the serial reference",
            )
    elif doc["bench"] == "serve":
        for key, row in rows(doc):
            check(
                row.get("bit_identical") is True,
                f"{name} {fmt(key)}: served results bit-identical to solo contexts",
            )
            v = row.get("dropped_violations")
            check(v == 0, f"{name} {fmt(key)}: dropped_violations {v} == 0")
            if row["devices"] == 4:
                s = row["modeled_speedup"]
                check(s >= 1.5, f"{name} {fmt(key)}: modeled_speedup {s} >= 1.5")
                p99 = row["p99_ns"]
                check(
                    p99 <= 1_000_000,
                    f"{name} {fmt(key)}: reference-load p99 {p99} ns <= 1 ms",
                )


def gate_baseline(name, cur, base):
    cur_rows = dict(rows(cur))
    for key, brow in rows(base):
        crow = cur_rows.get(key)
        if crow is None:
            check(False, f"{name} {fmt(key)}: row present in current results")
            continue
        if "wall_speedup" in brow:
            b, c = brow["wall_speedup"], crow["wall_speedup"]
            check(
                c * TOLERANCE >= b,
                f"{name} {fmt(key)}: wall_speedup {c} within {TOLERANCE}x of baseline {b}",
            )
        elif "modeled_speedup" in brow:
            b, c = brow["modeled_speedup"], crow["modeled_speedup"]
            check(
                c * TOLERANCE >= b,
                f"{name} {fmt(key)}: modeled_speedup {c} within {TOLERANCE}x of baseline {b}",
            )
        elif "ns_per_launch" in brow:
            b, c = brow["ns_per_launch"], crow["ns_per_launch"]
            check(
                c <= b * TOLERANCE,
                f"{name} {fmt(key)}: ns_per_launch {c} within {TOLERANCE}x of baseline {b}",
            )
        elif "modeled_ns" in brow:
            # Analytic-model times are deterministic: drift means the
            # modeled cost of the primitives changed. (Wall-clock rows
            # carry ``wall_ns`` instead and are informational only.)
            b, c = brow["modeled_ns"], crow["modeled_ns"]
            check(
                c <= b * TOLERANCE,
                f"{name} {fmt(key)}: modeled_ns {c} within {TOLERANCE}x of baseline {b}",
            )


def main():
    committed = sorted(RESULTS.glob("BENCH_*.json"))
    if not committed:
        print("FAIL: no committed results/BENCH_*.json found")
        return 1
    for path in committed:
        doc = json.load(open(path))
        if doc.get("quick"):
            check(False, f"{path.name}: committed series must be full-size, not quick-mode")
            continue
        gate_absolute(path.name, doc)
        base_path = BASELINES / path.name
        if base_path.exists():
            gate_baseline(path.name, doc, json.load(open(base_path)))
        else:
            print(f"note: no baseline for {path.name} (add one under results/baselines/)")
    for base_path in sorted(BASELINES.glob("BENCH_*.json")):
        check(
            (RESULTS / base_path.name).exists(),
            f"{base_path.name}: baseline has a committed counterpart",
        )
    if failures:
        print(f"\n{len(failures)} bench gate failure(s)")
        return 1
    print("\nall bench gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
