//! `racc-chaos`: deterministic, seeded fault injection for the RACC stack.
//!
//! The portability claim of the front end — one program, identical results
//! on every backend — is only worth anything if it survives the *error*
//! paths, and error paths that never run rot. This crate provides the
//! substrate for running them on purpose:
//!
//! * a [`FaultPlan`] describing *which* operations fail (a seeded
//!   pseudo-random schedule, or an explicit script like "fail the 3rd
//!   alloc" / "fail every 100th transfer"),
//! * a [`ChaosEngine`] that the simulator consults at each injection point
//!   ([`FaultSite`]) and that logs every injected [`FaultEvent`],
//! * a [`RetryPolicy`] describing how the portability layer recovers from
//!   transient faults (bounded attempts with exponential modeled backoff),
//! * the [`env_flag`] helper unifying truthy env-var parsing across
//!   `RACC_FUSION`, `RACC_SANITIZER`, and `RACC_CHAOS`.
//!
//! Everything here is deterministic by construction: the schedule depends
//! only on the plan and the per-site operation counters, never on wall
//! time or addresses, so the same seed yields the same fault log on every
//! run — which is what makes chaos runs debuggable and CI-able.

use std::fmt;
use std::sync::Mutex;

/// Where in the simulator a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Device memory allocation (fails as out-of-memory).
    Alloc,
    /// Host-to-device transfer (upload).
    H2d,
    /// Device-to-host transfer (download / readback).
    D2h,
    /// Kernel launch on the default stream.
    Launch,
    /// Asynchronous launch on a non-default stream (stall or failure).
    Stream,
}

impl FaultSite {
    /// All sites, in schedule-counter order.
    pub const ALL: [FaultSite; 5] = [
        FaultSite::Alloc,
        FaultSite::H2d,
        FaultSite::D2h,
        FaultSite::Launch,
        FaultSite::Stream,
    ];

    /// Stable lowercase label (also the spec-grammar token).
    pub fn label(self) -> &'static str {
        match self {
            FaultSite::Alloc => "alloc",
            FaultSite::H2d => "h2d",
            FaultSite::D2h => "d2h",
            FaultSite::Launch => "launch",
            FaultSite::Stream => "stream",
        }
    }

    fn index(self) -> usize {
        match self {
            FaultSite::Alloc => 0,
            FaultSite::H2d => 1,
            FaultSite::D2h => 2,
            FaultSite::Launch => 3,
            FaultSite::Stream => 4,
        }
    }

    fn parse(s: &str) -> Option<FaultSite> {
        FaultSite::ALL
            .iter()
            .copied()
            .find(|site| site.label() == s)
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(self.label())
    }
}

/// What the injector does to a selected operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The operation fails with a simulator error (retryable upstream).
    Fail,
    /// The operation succeeds but is charged this many extra modeled
    /// nanoseconds (latency spike / stream stall).
    Delay(u64),
}

/// One injected fault, as recorded in the engine's log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// The injection point.
    pub site: FaultSite,
    /// 1-based count of operations seen at this site when the fault hit
    /// (`occurrence == 3` means "the 3rd alloc").
    pub occurrence: u64,
    /// What was done to the operation.
    pub action: FaultAction,
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.action {
            FaultAction::Fail => write!(f, "{}#{} fail", self.site, self.occurrence),
            FaultAction::Delay(ns) => {
                write!(f, "{}#{} delay {}ns", self.site, self.occurrence, ns)
            }
        }
    }
}

/// Which occurrences of a site a scripted rule selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Selector {
    /// Exactly the k-th operation (1-based).
    Nth(u64),
    /// Every k-th operation (k, 2k, 3k, …).
    Every(u64),
    /// Every operation from the k-th on (1-based).
    From(u64),
    /// Every operation.
    Always,
}

impl Selector {
    fn matches(self, occurrence: u64) -> bool {
        match self {
            Selector::Nth(k) => occurrence == k,
            Selector::Every(k) => k > 0 && occurrence.is_multiple_of(k),
            Selector::From(k) => occurrence >= k,
            Selector::Always => true,
        }
    }
}

/// One scripted injection rule: `site:selector[:action]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rule {
    /// The injection point the rule applies to.
    pub site: FaultSite,
    /// Which occurrences it selects.
    pub selector: Selector,
    /// What it does to them (default [`FaultAction::Fail`]).
    pub action: FaultAction,
}

/// Error from [`FaultPlan::parse`]: the offending token plus a reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// The clause that failed to parse.
    pub token: String,
    /// Why it was rejected.
    pub reason: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid chaos spec clause {:?}: {}",
            self.token, self.reason
        )
    }
}

impl std::error::Error for ParseError {}

/// A complete fault schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultPlan {
    /// Pseudo-random schedule derived from a seed (xorshift64): rare
    /// failures and latency spikes at every site, at rates low enough that
    /// a bounded retry policy recovers with near certainty.
    Seeded {
        /// The xorshift64 seed (0 is remapped internally; same seed, same
        /// schedule).
        seed: u64,
    },
    /// Explicit script: the first matching rule per operation wins.
    Script(Vec<Rule>),
}

impl FaultPlan {
    /// A seeded pseudo-random plan.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan::Seeded { seed }
    }

    /// Parses a plan from the `RACC_CHAOS` grammar.
    ///
    /// * a bare integer is a seed: `"42"` → `FaultPlan::seeded(42)`;
    /// * otherwise, semicolon- (or comma-) separated clauses
    ///   `site:selector[:action]` with `site` one of `alloc | h2d | d2h |
    ///   launch | stream`, `selector` one of `nth-K | every-K | from-K |
    ///   always`, and `action` one of `fail` (default) or `delay-NS`.
    ///
    /// Example: `"h2d:every-100;alloc:nth-3;stream:always:delay-5000"`.
    pub fn parse(spec: &str) -> Result<FaultPlan, ParseError> {
        let spec = spec.trim();
        if let Ok(seed) = spec.parse::<u64>() {
            return Ok(FaultPlan::seeded(seed));
        }
        let mut rules = Vec::new();
        for clause in spec.split([';', ',']) {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let err = |reason| ParseError {
                token: clause.to_string(),
                reason,
            };
            let mut parts = clause.split(':');
            let site = parts
                .next()
                .and_then(FaultSite::parse)
                .ok_or_else(|| err("unknown site (want alloc|h2d|d2h|launch|stream)"))?;
            let sel = parts.next().ok_or_else(|| err("missing selector"))?;
            let selector = if sel == "always" {
                Selector::Always
            } else if let Some(k) = sel.strip_prefix("nth-") {
                Selector::Nth(k.parse().map_err(|_| err("bad nth-K count"))?)
            } else if let Some(k) = sel.strip_prefix("every-") {
                let k: u64 = k.parse().map_err(|_| err("bad every-K count"))?;
                if k == 0 {
                    return Err(err("every-0 selects nothing"));
                }
                Selector::Every(k)
            } else if let Some(k) = sel.strip_prefix("from-") {
                Selector::From(k.parse().map_err(|_| err("bad from-K count"))?)
            } else {
                return Err(err("unknown selector (want nth-K|every-K|from-K|always)"));
            };
            let action = match parts.next() {
                None | Some("fail") => FaultAction::Fail,
                Some(a) => {
                    if let Some(ns) = a.strip_prefix("delay-") {
                        FaultAction::Delay(ns.parse().map_err(|_| err("bad delay-NS value"))?)
                    } else {
                        return Err(err("unknown action (want fail|delay-NS)"));
                    }
                }
            };
            if parts.next().is_some() {
                return Err(err("trailing clause parts"));
            }
            rules.push(Rule {
                site,
                selector,
                action,
            });
        }
        if rules.is_empty() {
            return Err(ParseError {
                token: spec.to_string(),
                reason: "empty spec (want a seed or site:selector clauses)",
            });
        }
        Ok(FaultPlan::Script(rules))
    }

    /// Derive a decorrelated plan for one member of a pool (shard rank,
    /// server device) from this plan. Seeded plans get an independent
    /// xorshift-mixed seed per `salt` — so a single `RACC_CHAOS=42` soaks
    /// every device of a pool with *different* fault schedules while
    /// staying fully reproducible. Script plans are explicit about which
    /// operations fail and pass through unchanged.
    pub fn for_member(&self, salt: u64) -> FaultPlan {
        match self {
            FaultPlan::Seeded { seed } => {
                let mut x = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                FaultPlan::Seeded { seed: x.max(1) }
            }
            FaultPlan::Script(rules) => FaultPlan::Script(rules.clone()),
        }
    }

    /// Reads `RACC_CHAOS`: `None` when unset or falsy (per [`env_flag`]
    /// semantics), otherwise the parsed plan. A malformed spec is reported
    /// on stderr and treated as off — an env typo must not change program
    /// behavior silently, but it must not abort a run either.
    pub fn from_env() -> Option<FaultPlan> {
        let raw = std::env::var("RACC_CHAOS").ok()?;
        if matches!(raw.trim(), "" | "0" | "false" | "off") {
            return None;
        }
        match FaultPlan::parse(&raw) {
            Ok(plan) => Some(plan),
            Err(e) => {
                eprintln!("racc-chaos: ignoring RACC_CHAOS: {e}");
                None
            }
        }
    }
}

/// Per-site failure odds of the seeded schedule, as 1-in-N draws.
/// Transfers and launches fail ~1/64; allocs ~1/128 (an alloc failure
/// presents as OOM, the scariest error, so it is rarer); latency spikes
/// ride on another 1/64 draw and cost ~20µs modeled.
const SEEDED_FAIL_ONE_IN: [u64; 5] = [128, 64, 64, 64, 64];
const SEEDED_DELAY_ONE_IN: u64 = 64;
const SEEDED_DELAY_NS: u64 = 20_000;

fn xorshift64(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// The runtime half of a plan: per-site operation counters, the rng for
/// seeded plans, and the log of injected faults. One engine per device;
/// interior mutability so injection points take `&self`.
pub struct ChaosEngine {
    plan: FaultPlan,
    state: Mutex<EngineState>,
}

struct EngineState {
    rng: u64,
    counters: [u64; FaultSite::ALL.len()],
    log: Vec<FaultEvent>,
}

impl ChaosEngine {
    /// Builds an engine for a plan.
    pub fn new(plan: FaultPlan) -> ChaosEngine {
        let seed = match &plan {
            // 0 is the xorshift fixed point; remap it like everyone does.
            FaultPlan::Seeded { seed } => (*seed).max(1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            FaultPlan::Script(_) => 0,
        };
        ChaosEngine {
            plan,
            state: Mutex::new(EngineState {
                rng: seed.max(1),
                counters: [0; FaultSite::ALL.len()],
                log: Vec::new(),
            }),
        }
    }

    /// The plan this engine runs.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Records one operation at `site` and decides its fate. `None` means
    /// the operation proceeds untouched; `Some(event)` means the fault in
    /// `event.action` was injected (and logged).
    pub fn next(&self, site: FaultSite) -> Option<FaultEvent> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let idx = site.index();
        st.counters[idx] += 1;
        let occurrence = st.counters[idx];
        let action = match &self.plan {
            FaultPlan::Seeded { .. } => {
                let draw = xorshift64(&mut st.rng);
                if draw.is_multiple_of(SEEDED_FAIL_ONE_IN[idx]) {
                    Some(FaultAction::Fail)
                } else if (draw >> 32).is_multiple_of(SEEDED_DELAY_ONE_IN) {
                    Some(FaultAction::Delay(SEEDED_DELAY_NS))
                } else {
                    None
                }
            }
            FaultPlan::Script(rules) => rules
                .iter()
                .find(|r| r.site == site && r.selector.matches(occurrence))
                .map(|r| r.action),
        }?;
        let event = FaultEvent {
            site,
            occurrence,
            action,
        };
        st.log.push(event);
        Some(event)
    }

    /// Snapshot of every fault injected so far, in injection order.
    pub fn log(&self) -> Vec<FaultEvent> {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .log
            .clone()
    }
}

impl fmt::Debug for ChaosEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChaosEngine")
            .field("plan", &self.plan)
            .finish()
    }
}

/// How the portability layer retries transient device faults: bounded
/// attempts with exponential *modeled* backoff (charged to the timeline,
/// never slept on the host — chaos runs stay fast and deterministic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per operation, including the first (so `1` means
    /// "never retry"). Must be ≥ 1.
    pub max_attempts: u32,
    /// Modeled nanoseconds charged before the first retry.
    pub base_backoff_ns: u64,
    /// Backoff multiplier per subsequent retry.
    pub multiplier: u32,
}

impl RetryPolicy {
    /// No retries: every fault surfaces immediately.
    pub const fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_backoff_ns: 0,
            multiplier: 1,
        }
    }

    /// Backoff charged before retry number `retry` (1-based).
    pub fn backoff_ns(&self, retry: u32) -> u64 {
        self.base_backoff_ns
            .saturating_mul(u64::from(self.multiplier).saturating_pow(retry.saturating_sub(1)))
    }
}

impl Default for RetryPolicy {
    /// Four attempts with 1µs base backoff doubling each retry — under the
    /// seeded schedule (fail rate ≤ 1/64 per site) the chance of
    /// exhausting all four is ~(1/64)^4 ≈ 6e-8 per operation.
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_ns: 1_000,
            multiplier: 2,
        }
    }
}

/// Unified truthy env-flag parsing: a flag is **on** iff the variable is
/// set to anything other than `""`, `"0"`, `"false"`, or `"off"`
/// (match is exact after trimming; unset and non-UTF-8 are off). Used by
/// `RACC_FUSION`, `RACC_SANITIZER`, and `RACC_CHAOS` so the knobs agree
/// on what "on" means.
pub fn env_flag(name: &str) -> bool {
    match std::env::var(name) {
        Ok(v) => !matches!(v.trim(), "" | "0" | "false" | "off"),
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let a = ChaosEngine::new(FaultPlan::seeded(42));
        let b = ChaosEngine::new(FaultPlan::seeded(42));
        for _ in 0..10_000 {
            for site in FaultSite::ALL {
                assert_eq!(a.next(site), b.next(site));
            }
        }
        let log = a.log();
        assert!(!log.is_empty(), "50k draws at ~1/64 must inject something");
        assert_eq!(log, b.log());
    }

    #[test]
    fn different_seeds_diverge() {
        let a = ChaosEngine::new(FaultPlan::seeded(1));
        let b = ChaosEngine::new(FaultPlan::seeded(2));
        for _ in 0..5_000 {
            a.next(FaultSite::Launch);
            b.next(FaultSite::Launch);
        }
        assert_ne!(a.log(), b.log());
    }

    #[test]
    fn script_fail_the_third_alloc() {
        let plan = FaultPlan::parse("alloc:nth-3").unwrap();
        let eng = ChaosEngine::new(plan);
        assert_eq!(eng.next(FaultSite::Alloc), None);
        assert_eq!(eng.next(FaultSite::Alloc), None);
        let ev = eng.next(FaultSite::Alloc).unwrap();
        assert_eq!(ev.occurrence, 3);
        assert_eq!(ev.action, FaultAction::Fail);
        assert_eq!(eng.next(FaultSite::Alloc), None);
        // Other sites untouched.
        assert_eq!(eng.next(FaultSite::Launch), None);
    }

    #[test]
    fn script_every_100th_transfer() {
        let plan = FaultPlan::parse("h2d:every-100").unwrap();
        let eng = ChaosEngine::new(plan);
        let mut hits = Vec::new();
        for i in 1..=350u64 {
            if let Some(ev) = eng.next(FaultSite::H2d) {
                hits.push((i, ev.occurrence));
            }
        }
        assert_eq!(hits, vec![(100, 100), (200, 200), (300, 300)]);
    }

    #[test]
    fn parse_full_grammar() {
        let plan =
            FaultPlan::parse("h2d:every-100; alloc:nth-3, stream:always:delay-5000").unwrap();
        let FaultPlan::Script(rules) = plan else {
            panic!("expected script");
        };
        assert_eq!(
            rules,
            vec![
                Rule {
                    site: FaultSite::H2d,
                    selector: Selector::Every(100),
                    action: FaultAction::Fail,
                },
                Rule {
                    site: FaultSite::Alloc,
                    selector: Selector::Nth(3),
                    action: FaultAction::Fail,
                },
                Rule {
                    site: FaultSite::Stream,
                    selector: Selector::Always,
                    action: FaultAction::Delay(5000),
                },
            ]
        );
        assert_eq!(FaultPlan::parse("1234").unwrap(), FaultPlan::seeded(1234));
        assert!(FaultPlan::parse("warp:always").is_err());
        assert!(FaultPlan::parse("h2d:every-0").is_err());
        assert!(FaultPlan::parse("h2d:sometimes").is_err());
        assert!(FaultPlan::parse("h2d:always:explode").is_err());
        assert!(FaultPlan::parse("").is_err());
    }

    #[test]
    fn from_selector_is_permanent() {
        let eng = ChaosEngine::new(FaultPlan::parse("launch:from-2").unwrap());
        assert_eq!(eng.next(FaultSite::Launch), None);
        for _ in 0..5 {
            assert_eq!(
                eng.next(FaultSite::Launch).map(|e| e.action),
                Some(FaultAction::Fail)
            );
        }
    }

    #[test]
    fn for_member_decorrelates_seeded_and_keeps_scripts() {
        let base = FaultPlan::seeded(42);
        let a = base.for_member(0);
        let b = base.for_member(1);
        assert_ne!(a, b, "pool members draw independent schedules");
        assert_eq!(a, base.for_member(0), "same member, same schedule");
        assert_ne!(a, base, "member plans differ from the base seed");
        let script = FaultPlan::parse("h2d:every-100").unwrap();
        assert_eq!(script.for_member(3), script, "scripts are explicit");
    }

    #[test]
    fn retry_policy_backoff_grows() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_ns(1), 1_000);
        assert_eq!(p.backoff_ns(2), 2_000);
        assert_eq!(p.backoff_ns(3), 4_000);
        assert_eq!(RetryPolicy::none().max_attempts, 1);
    }

    #[test]
    fn env_flag_semantics() {
        // Single test (not one per case) so the env mutations never race.
        let name = "RACC_CHAOS_TEST_FLAG";
        std::env::remove_var(name);
        assert!(!env_flag(name), "unset is off");
        for off in ["", "0", "false", "off", " 0 "] {
            std::env::set_var(name, off);
            assert!(!env_flag(name), "{off:?} must be off");
        }
        for on in ["1", "true", "on", "yes", "42"] {
            std::env::set_var(name, on);
            assert!(env_flag(name), "{on:?} must be on");
        }
        std::env::remove_var(name);
    }

    #[test]
    fn from_env_parses_seed_spec_and_falsy() {
        let name = "RACC_CHAOS";
        let old = std::env::var(name).ok();
        std::env::set_var(name, "0");
        assert_eq!(FaultPlan::from_env(), None);
        std::env::set_var(name, "77");
        assert_eq!(FaultPlan::from_env(), Some(FaultPlan::seeded(77)));
        std::env::set_var(name, "d2h:nth-1");
        assert!(matches!(FaultPlan::from_env(), Some(FaultPlan::Script(_))));
        std::env::set_var(name, "not-a-plan!");
        assert_eq!(
            FaultPlan::from_env(),
            None,
            "malformed spec is off, not fatal"
        );
        match old {
            Some(v) => std::env::set_var(name, v),
            None => std::env::remove_var(name),
        }
    }
}
