//! Simulator implementations of the portable device primitives: scan,
//! histogram and sort-by-key, in the same block-local-phases + cross-block
//! combine shape real GPU primitive libraries use, so the modeled costs are
//! realistic.
//!
//! Determinism: all cross-tile combines follow the canonical association of
//! `racc_core::prim` — tile boundaries are `PRIM_TILE`-wide (a pure
//! function of `n`, never of device geometry), and the cross-tile fold is
//! one sequential chain executed by a single simulated thread. Block sizes
//! differ per vendor profile, but they only change *which thread* computes
//! a tile, never the combine tree — so every simulator matches the serial
//! reference bitwise, including for `f32`.

use racc_core::prim::{self, PRIM_TILE};
use racc_core::{AccScalar, KernelProfile, ReduceOp};
use racc_gpusim::perf::KernelCost;
use racc_gpusim::{
    DeviceSlice, DeviceSliceMut, LaunchConfig, PhasedKernel, SharedMem, SinglePhase, ThreadCtx,
};

#[cfg(feature = "trace")]
use racc_core::trace::{ConstructKind, Span};
#[cfg(feature = "trace")]
use racc_core::Timeline;

use crate::SimBackend;

/// Base-2 digit width of the radix sort (one byte per pass): 256 counters
/// of 8 bytes fit the smallest device's shared memory.
const RADIX: usize = 256;

/// Per-thread kernel cost scaled by a coarsening factor (each simulated
/// thread owns `factor` elements instead of one).
fn scaled_cost(profile: &KernelProfile, factor: usize) -> KernelCost {
    let f = factor.max(1) as f64;
    KernelCost::new(
        profile.flops_per_iter * f,
        profile.bytes_read_per_iter * f,
        profile.bytes_written_per_iter * f,
        profile.coalescing,
    )
}

/// Scan kernel 1: one thread per `PRIM_TILE` tile folds its tile into
/// shared memory (phase 0), then writes the tile total back coalesced
/// (phase 1).
struct TileTotals<'a, T: AccScalar, F, O> {
    n: usize,
    tiles: usize,
    read: &'a F,
    op: O,
    totals: DeviceSliceMut<T>,
}

impl<T, F, O> PhasedKernel for TileTotals<'_, T, F, O>
where
    T: AccScalar,
    F: Fn(usize) -> T + Sync,
    O: ReduceOp<T>,
{
    type State = ();

    fn num_phases(&self) -> usize {
        2
    }

    fn phase(&self, phase: usize, ctx: &ThreadCtx, _state: &mut (), shared: &SharedMem) {
        let ti = ctx.thread_linear();
        let t = ctx.global_id_x();
        if phase == 0 {
            let v = if t < self.tiles {
                prim::tile_total(t, self.n, self.read, self.op)
            } else {
                self.op.identity()
            };
            shared.set::<T>(ti, v);
        } else if t < self.tiles {
            self.totals.set(t, shared.get::<T>(ti));
        }
    }
}

/// Scan kernel 2: the cross-block combine — a single thread left-folds the
/// tile totals into exclusive tile offsets, in ascending tile order (the
/// one sequential chain the determinism contract requires).
struct ScanTotals<T: AccScalar, O> {
    tiles: usize,
    op: O,
    totals: DeviceSlice<T>,
    offsets: DeviceSliceMut<T>,
}

impl<T, O> PhasedKernel for ScanTotals<T, O>
where
    T: AccScalar,
    O: ReduceOp<T>,
{
    type State = ();

    fn num_phases(&self) -> usize {
        1
    }

    fn phase(&self, _phase: usize, ctx: &ThreadCtx, _state: &mut (), _shared: &SharedMem) {
        if ctx.global_linear() != 0 {
            return;
        }
        let mut running: Option<T> = None;
        for t in 0..self.tiles {
            self.offsets
                .set(t, running.unwrap_or_else(|| self.op.identity()));
            let total = self.totals.get(t);
            running = Some(match running {
                None => total,
                Some(r) => self.op.combine(r, total),
            });
        }
    }
}

/// Scan kernel 3: one thread per tile re-folds its tile and writes the
/// outputs through the `write` closure, combining with its device-read
/// offset (tile 0 ignores it — see `racc_core::prim::scan_tile_write`).
struct TileWrite<'a, T: AccScalar, F, W, O> {
    n: usize,
    tiles: usize,
    inclusive: bool,
    read: &'a F,
    write: &'a W,
    op: O,
    offsets: DeviceSlice<T>,
}

impl<T, F, W, O> PhasedKernel for TileWrite<'_, T, F, W, O>
where
    T: AccScalar,
    F: Fn(usize) -> T + Sync,
    W: Fn(usize, T) + Sync,
    O: ReduceOp<T>,
{
    type State = ();

    fn num_phases(&self) -> usize {
        1
    }

    fn phase(&self, _phase: usize, ctx: &ThreadCtx, _state: &mut (), _shared: &SharedMem) {
        let t = ctx.global_id_x();
        if t < self.tiles {
            let offset = self.offsets.get(t);
            prim::scan_tile_write(
                t,
                self.n,
                self.inclusive,
                offset,
                self.read,
                self.write,
                self.op,
            );
        }
    }
}

/// Histogram kernel 1 (shared-memory path): the block privatizes the whole
/// bin range in shared memory. Thread `ti` owns every bin `b` with
/// `b % block == ti`, scans the block's element span counting its owned
/// bins (race-free without atomics), then writes them back to the block's
/// scratch row.
struct BlockHistogram<'a, F> {
    n: usize,
    bins: usize,
    block_size: usize,
    key: &'a F,
    scratch: DeviceSliceMut<u64>,
}

impl<F> PhasedKernel for BlockHistogram<'_, F>
where
    F: Fn(usize) -> usize + Sync,
{
    type State = ();

    fn num_phases(&self) -> usize {
        2
    }

    fn phase(&self, phase: usize, ctx: &ThreadCtx, _state: &mut (), shared: &SharedMem) {
        let ti = ctx.thread_linear();
        let blk = ctx.block_linear();
        let start = blk * self.block_size;
        let end = (start + self.block_size).min(self.n);
        if phase == 0 {
            for i in start..end {
                let bin = (self.key)(i);
                if bin % self.block_size == ti {
                    // Shared memory is bounds-asserted: an out-of-range key
                    // dies here (the unguarded path simsan must catch).
                    shared.set::<u64>(bin, shared.get::<u64>(bin) + 1);
                }
            }
        } else {
            let mut bin = ti;
            while bin < self.bins {
                self.scratch
                    .set(blk * self.bins + bin, shared.get::<u64>(bin));
                bin += self.block_size;
            }
        }
    }
}

/// Histogram kernel 1 (large-bins fallback): same ownership striding, but
/// counts go straight to the block's scratch row in device memory. The
/// zeroing phase makes a faulted-and-retried launch idempotent.
struct BlockHistogramGlobal<'a, F> {
    n: usize,
    bins: usize,
    block_size: usize,
    key: &'a F,
    scratch: DeviceSliceMut<u64>,
}

impl<F> PhasedKernel for BlockHistogramGlobal<'_, F>
where
    F: Fn(usize) -> usize + Sync,
{
    type State = ();

    fn num_phases(&self) -> usize {
        2
    }

    fn phase(&self, phase: usize, ctx: &ThreadCtx, _state: &mut (), _shared: &SharedMem) {
        let ti = ctx.thread_linear();
        let blk = ctx.block_linear();
        let start = blk * self.block_size;
        let end = (start + self.block_size).min(self.n);
        for i in start..end {
            let bin = (self.key)(i);
            if bin % self.block_size == ti {
                let cell = blk * self.bins + bin;
                if phase == 0 {
                    self.scratch.set(cell, 0);
                } else {
                    self.scratch.set(cell, self.scratch.get(cell) + 1);
                }
            }
        }
    }
}

/// Histogram kernel 2: one thread per bin sums its column of the scratch
/// matrix in ascending block order (u64 — exactly associative) and reports
/// it through the `write` closure.
struct CombineBins<'a, W> {
    bins: usize,
    blocks: usize,
    scratch: DeviceSlice<u64>,
    write: &'a W,
}

impl<W> PhasedKernel for CombineBins<'_, W>
where
    W: Fn(usize, u64) + Sync,
{
    type State = ();

    fn num_phases(&self) -> usize {
        1
    }

    fn phase(&self, _phase: usize, ctx: &ThreadCtx, _state: &mut (), _shared: &SharedMem) {
        let bin = ctx.global_id_x();
        if bin < self.bins {
            let mut sum = 0u64;
            for blk in 0..self.blocks {
                sum += self.scratch.get(blk * self.bins + bin);
            }
            (self.write)(bin, sum);
        }
    }
}

/// Sort kernel 0: materialize `(key_bits, original_index)` into the device
/// ping-pong buffers.
struct SortInit<'a, F> {
    n: usize,
    key: &'a F,
    keys: DeviceSliceMut<u64>,
    idx: DeviceSliceMut<u64>,
}

impl<F> PhasedKernel for SortInit<'_, F>
where
    F: Fn(usize) -> u64 + Sync,
{
    type State = ();

    fn num_phases(&self) -> usize {
        1
    }

    fn phase(&self, _phase: usize, ctx: &ThreadCtx, _state: &mut (), _shared: &SharedMem) {
        let i = ctx.global_id_x();
        if i < self.n {
            self.keys.set(i, (self.key)(i));
            self.idx.set(i, i as u64);
        }
    }
}

/// Radix kernel 1: per-block digit counts. Thread `ti` owns digits `d`
/// with `d % block == ti`, counts them over the block span in shared
/// memory (phase 0), and writes all owned cells of the block's count row
/// (phase 1) — assignment, so retried launches and count-buffer reuse
/// across passes are safe.
struct DigitCount {
    n: usize,
    block_size: usize,
    shift: u32,
    keys: DeviceSlice<u64>,
    counts: DeviceSliceMut<u64>,
}

impl PhasedKernel for DigitCount {
    type State = ();

    fn num_phases(&self) -> usize {
        2
    }

    fn phase(&self, phase: usize, ctx: &ThreadCtx, _state: &mut (), shared: &SharedMem) {
        let ti = ctx.thread_linear();
        let blk = ctx.block_linear();
        let start = blk * self.block_size;
        let end = (start + self.block_size).min(self.n);
        if phase == 0 {
            for i in start..end {
                let d = ((self.keys.get(i) >> self.shift) & 0xFF) as usize;
                if d % self.block_size == ti {
                    shared.set::<u64>(d, shared.get::<u64>(d) + 1);
                }
            }
        } else {
            let mut d = ti;
            while d < RADIX {
                self.counts.set(blk * RADIX + d, shared.get::<u64>(d));
                d += self.block_size;
            }
        }
    }
}

/// Radix kernel 2: the cross-block combine — one thread exclusive-scans the
/// count matrix in digit-major, block-minor order, producing the base
/// output position of every (block, digit) cell.
struct ScanDigits {
    blocks: usize,
    counts: DeviceSlice<u64>,
    bases: DeviceSliceMut<u64>,
}

impl PhasedKernel for ScanDigits {
    type State = ();

    fn num_phases(&self) -> usize {
        1
    }

    fn phase(&self, _phase: usize, ctx: &ThreadCtx, _state: &mut (), _shared: &SharedMem) {
        if ctx.global_linear() != 0 {
            return;
        }
        let mut running = 0u64;
        for d in 0..RADIX {
            for blk in 0..self.blocks {
                let cell = blk * RADIX + d;
                self.bases.set(cell, running);
                running += self.counts.get(cell);
            }
        }
    }
}

/// Radix kernel 3: scatter. Each thread recomputes its element's rank among
/// same-digit elements earlier in its block (an O(block) rescan — the cost
/// of atomics-free determinism) and writes key+index to their unique
/// destination in the other ping-pong buffer. Blocks ascend and in-block
/// ranks ascend, so each pass is stable.
struct Scatter {
    n: usize,
    block_size: usize,
    shift: u32,
    keys_src: DeviceSlice<u64>,
    idx_src: DeviceSlice<u64>,
    bases: DeviceSlice<u64>,
    keys_dst: DeviceSliceMut<u64>,
    idx_dst: DeviceSliceMut<u64>,
}

impl PhasedKernel for Scatter {
    type State = ();

    fn num_phases(&self) -> usize {
        1
    }

    fn phase(&self, _phase: usize, ctx: &ThreadCtx, _state: &mut (), _shared: &SharedMem) {
        let i = ctx.global_id_x();
        if i >= self.n {
            return;
        }
        let blk = ctx.block_linear();
        let d = ((self.keys_src.get(i) >> self.shift) & 0xFF) as usize;
        let mut rank = 0u64;
        for j in blk * self.block_size..i {
            if ((self.keys_src.get(j) >> self.shift) & 0xFF) as usize == d {
                rank += 1;
            }
        }
        let dst = (self.bases.get(blk * RADIX + d) + rank) as usize;
        self.keys_dst.set(dst, self.keys_src.get(i));
        self.idx_dst.set(dst, self.idx_src.get(i));
    }
}

impl SimBackend {
    /// Charge one primitive's summed kernel time (scaled by the vendor's
    /// `reduce_time_factor`, plus the portability-layer overhead) and record
    /// its `Prim` span, mirroring `reduce_linear`'s accounting shape.
    fn finish_prim(
        &self,
        _profile: &KernelProfile,
        _dims: [u64; 3],
        _geometry: (u64, u64),
        kernels_ns: f64,
    ) {
        let total = kernels_ns * self.config.reduce_time_factor + self.config.racc_launch_extra_ns;
        self.timeline.charge_launch(total);
        #[cfg(feature = "trace")]
        self.timeline.record_span(|| {
            Span::new(self.config.key, ConstructKind::Prim, _profile.name)
                .dims(_dims[0], _dims[1], _dims[2])
                .geometry(_geometry.0, _geometry.1)
                .profile(_profile.flops_per_iter, _profile.bytes_per_iter())
                .modeled(Timeline::quantize(total))
        });
    }

    pub(crate) fn sim_prim_scan<T, F, W, O>(
        &self,
        n: usize,
        inclusive: bool,
        profile: &KernelProfile,
        read: F,
        write: W,
        op: O,
    ) where
        T: AccScalar,
        F: Fn(usize) -> T + Sync,
        W: Fn(usize, T) + Sync,
        O: ReduceOp<T>,
    {
        if n == 0 {
            self.finish_prim(profile, [0, 1, 1], (0, 0), 0.0);
            return;
        }
        let device = self.device();
        let tiles = prim::scan_tiles(n);
        let elem = std::mem::size_of::<T>();
        // Block size bounded by shared capacity too: kernel 1 stages one
        // tile total per thread in shared memory.
        let max_for_shared = (device.spec().shared_mem_per_block / elem).max(1);
        let block = (self.block_1d(tiles) as usize).min(max_for_shared);

        let totals = self
            .with_retry("alloc", || device.alloc::<T>(tiles))
            .expect("scan totals allocation");
        let offsets = self
            .with_retry("alloc", || device.alloc::<T>(tiles))
            .expect("scan offsets allocation");

        // Kernel 1: block-local tile folds.
        let k1 = TileTotals {
            n,
            tiles,
            read: &read,
            op,
            totals: device.slice_mut(&totals).expect("own buffer"),
        };
        let cfg1 = LaunchConfig::linear(tiles, block as u32).with_shared_mem(block * elem);
        let ns1 = Self::unwrap_launch(self.with_retry("launch", || {
            device.launch_phased(cfg1, scaled_cost(profile, PRIM_TILE), &k1)
        }));

        // Kernel 2: the sequential cross-tile chain (one thread).
        let k2 = ScanTotals {
            tiles,
            op,
            totals: device.slice(&totals).expect("own buffer"),
            offsets: device.slice_mut(&offsets).expect("own buffer"),
        };
        let ns2 = Self::unwrap_launch(self.with_retry("launch", || {
            device.launch_phased(
                LaunchConfig::new(1u32, 1u32),
                KernelCost::memory_bound((2 * tiles * elem) as f64, 0.0),
                &k2,
            )
        }));

        // Kernel 3: the output pass (re-fold + combine + write).
        let k3 = TileWrite {
            n,
            tiles,
            inclusive,
            read: &read,
            write: &write,
            op,
            offsets: device.slice(&offsets).expect("own buffer"),
        };
        let cfg3 = LaunchConfig::linear(tiles, block as u32);
        let ns3 = Self::unwrap_launch(self.with_retry("launch", || {
            device.launch_phased(cfg3, scaled_cost(profile, 2 * PRIM_TILE), &k3)
        }));

        self.finish_prim(
            profile,
            [n as u64, 1, 1],
            (cfg1.grid.count() as u64, block as u64),
            (ns1 + ns2 + ns3) as f64,
        );
    }

    pub(crate) fn sim_prim_histogram<F, W>(
        &self,
        n: usize,
        bins: usize,
        profile: &KernelProfile,
        key: F,
        write: W,
    ) where
        F: Fn(usize) -> usize + Sync,
        W: Fn(usize, u64) + Sync,
    {
        if bins == 0 {
            self.finish_prim(profile, [n as u64, 0, 1], (0, 0), 0.0);
            return;
        }
        let device = self.device();
        if n == 0 {
            // Still define every output bin: one kernel writing zeros.
            let zero = SinglePhase(|t: &ThreadCtx| {
                let bin = t.global_id_x();
                if bin < bins {
                    write(bin, 0);
                }
            });
            let cfg = LaunchConfig::linear(bins, self.block_1d(bins));
            let ns = Self::unwrap_launch(self.with_retry("launch", || {
                device.launch_phased(cfg, Self::cost_from_profile(profile), &zero)
            }));
            self.finish_prim(
                profile,
                [0, bins as u64, 1],
                (cfg.grid.count() as u64, cfg.block.count() as u64),
                ns as f64,
            );
            return;
        }
        let block = self.block_1d(n) as usize;
        let blocks = n.div_ceil(block);
        let scratch = self
            .with_retry("alloc", || device.alloc::<u64>(blocks * bins))
            .expect("histogram scratch allocation");

        // Kernel 1: per-block privatized counts — in shared memory when the
        // whole bin range fits, else striped straight into the scratch row.
        let shared_bytes = bins * std::mem::size_of::<u64>();
        let ns1 = if shared_bytes <= device.spec().shared_mem_per_block {
            let k1 = BlockHistogram {
                n,
                bins,
                block_size: block,
                key: &key,
                scratch: device.slice_mut(&scratch).expect("own buffer"),
            };
            let cfg1 = LaunchConfig::linear(n, block as u32).with_shared_mem(shared_bytes);
            Self::unwrap_launch(self.with_retry("launch", || {
                device.launch_phased(cfg1, scaled_cost(profile, block), &k1)
            }))
        } else {
            let k1 = BlockHistogramGlobal {
                n,
                bins,
                block_size: block,
                key: &key,
                scratch: device.slice_mut(&scratch).expect("own buffer"),
            };
            let cfg1 = LaunchConfig::linear(n, block as u32);
            Self::unwrap_launch(self.with_retry("launch", || {
                device.launch_phased(cfg1, scaled_cost(profile, 2 * block), &k1)
            }))
        };

        // Kernel 2: sum each bin's column across blocks, in block order.
        let k2 = CombineBins {
            bins,
            blocks,
            scratch: device.slice(&scratch).expect("own buffer"),
            write: &write,
        };
        let cfg2 = LaunchConfig::linear(bins, self.block_1d(bins));
        let ns2 = Self::unwrap_launch(self.with_retry("launch", || {
            device.launch_phased(cfg2, scaled_cost(profile, blocks), &k2)
        }));

        self.finish_prim(
            profile,
            [n as u64, bins as u64, 1],
            (blocks as u64, block as u64),
            (ns1 + ns2) as f64,
        );
    }

    pub(crate) fn sim_prim_sort_pairs<F, W>(
        &self,
        n: usize,
        key_bits: u32,
        profile: &KernelProfile,
        key: F,
        write: W,
    ) where
        F: Fn(usize) -> u64 + Sync,
        W: Fn(usize, usize) + Sync,
    {
        if n == 0 {
            self.finish_prim(profile, [0, key_bits as u64, 1], (0, 0), 0.0);
            return;
        }
        let device = self.device();
        let block = self.block_1d(n) as usize;
        let blocks = n.div_ceil(block);
        let passes = (key_bits.div_ceil(8).max(1) as usize).min(8);

        let alloc_u64 = |len: usize, what: &'static str| {
            self.with_retry("alloc", || device.alloc::<u64>(len))
                .unwrap_or_else(|e| panic!("sort {what} allocation: {e}"))
        };
        let keys_a = alloc_u64(n, "keys");
        let keys_b = alloc_u64(n, "keys");
        let idx_a = alloc_u64(n, "index");
        let idx_b = alloc_u64(n, "index");
        let counts = alloc_u64(blocks * RADIX, "counts");
        let bases = alloc_u64(blocks * RADIX, "bases");

        let mut total_ns = 0u64;
        let k0 = SortInit {
            n,
            key: &key,
            keys: device.slice_mut(&keys_a).expect("own buffer"),
            idx: device.slice_mut(&idx_a).expect("own buffer"),
        };
        let cfg_n = LaunchConfig::linear(n, block as u32);
        total_ns += Self::unwrap_launch(self.with_retry("launch", || {
            device.launch_phased(cfg_n, Self::cost_from_profile(profile), &k0)
        }));

        let shared_bytes = RADIX * std::mem::size_of::<u64>();
        let buffers = [(&keys_a, &idx_a), (&keys_b, &idx_b)];
        for pass in 0..passes {
            let (src, dst) = (buffers[pass % 2], buffers[(pass + 1) % 2]);
            let shift = (pass * 8) as u32;

            let k1 = DigitCount {
                n,
                block_size: block,
                shift,
                keys: device.slice(src.0).expect("own buffer"),
                counts: device.slice_mut(&counts).expect("own buffer"),
            };
            let cfg1 = LaunchConfig::linear(n, block as u32).with_shared_mem(shared_bytes);
            total_ns += Self::unwrap_launch(self.with_retry("launch", || {
                device.launch_phased(cfg1, scaled_cost(profile, block), &k1)
            }));

            let k2 = ScanDigits {
                blocks,
                counts: device.slice(&counts).expect("own buffer"),
                bases: device.slice_mut(&bases).expect("own buffer"),
            };
            total_ns += Self::unwrap_launch(self.with_retry("launch", || {
                device.launch_phased(
                    LaunchConfig::new(1u32, 1u32),
                    KernelCost::memory_bound((2 * blocks * RADIX * 8) as f64, 0.0),
                    &k2,
                )
            }));

            let k3 = Scatter {
                n,
                block_size: block,
                shift,
                keys_src: device.slice(src.0).expect("own buffer"),
                idx_src: device.slice(src.1).expect("own buffer"),
                bases: device.slice(&bases).expect("own buffer"),
                keys_dst: device.slice_mut(dst.0).expect("own buffer"),
                idx_dst: device.slice_mut(dst.1).expect("own buffer"),
            };
            total_ns += Self::unwrap_launch(self.with_retry("launch", || {
                device.launch_phased(cfg_n, scaled_cost(profile, block), &k3)
            }));
        }

        // The sorted run lives in whichever buffer the last pass wrote.
        let final_idx = buffers[passes % 2].1;
        let idx = device.slice(final_idx).expect("own buffer");
        let emit = SinglePhase(|t: &ThreadCtx| {
            let rank = t.global_id_x();
            if rank < n {
                write(rank, idx.get(rank) as usize);
            }
        });
        total_ns += Self::unwrap_launch(self.with_retry("launch", || {
            device.launch_phased(cfg_n, Self::cost_from_profile(profile), &emit)
        }));

        self.finish_prim(
            profile,
            [n as u64, key_bits as u64, 1],
            (blocks as u64, block as u64),
            total_ns as f64,
        );
    }
}
