//! # racc-backend-common
//!
//! The shared implementation of [`racc_core::Backend`] over the
//! [`racc_gpusim`] simulator. Each vendor backend crate
//! (`racc-backend-cuda`, `racc-backend-hip`, `racc-backend-oneapi`) wraps a
//! [`SimBackend`] with its vendor's device profile and launch-geometry
//! [`SimBackendConfig`] — the pieces that genuinely differ between the
//! paper's CUDA.jl / AMDGPU.jl / oneAPI.jl back ends (Figs. 6 and 7).
//!
//! Faithfulness notes:
//!
//! * `parallel_for(n, ..)` launches `ceil(n / B)` blocks of
//!   `B = min(n, max_block_dim_x)` threads, exactly the paper's Fig. 6.
//! * `parallel_for((m, n), ..)` uses the 16×16 thread tiles of the paper.
//! * `parallel_reduce` is the **two-kernel** structure of the paper's Fig. 3:
//!   a per-block shared-memory tree reduction producing one partial per
//!   block, a second single-block kernel folding the partials, then a scalar
//!   device-to-host readback. Its extra cost relative to `parallel_for` is
//!   what makes small GPU DOTs lose to the CPU in Fig. 8.
//! * The portability layer charges a small per-construct overhead
//!   ([`SimBackendConfig::racc_launch_extra_ns`]) modeling JACC's extra
//!   allocations/argument packing, and a vendor-specific reduction factor
//!   (`reduce_time_factor`, 1.35 on the Intel back end per the paper's
//!   observed ≈35% DOT overhead).

mod kernels;
mod prim;

use std::sync::Arc;

use racc_core::{AccScalar, Backend, DeviceToken, KernelProfile, RaccError, ReduceOp, Timeline};
use racc_gpusim::perf::{self, KernelCost};
use racc_gpusim::{
    Device, FaultEvent, FaultPlan, FaultSite, LaunchConfig, RetryPolicy, SimError, SinglePhase,
};

#[cfg(feature = "trace")]
use racc_core::trace::{ConstructKind, Span};

use kernels::{BlockReduceMap, FinalReduce};

/// Vendor-specific launch parameters and overheads.
#[derive(Debug, Clone)]
pub struct SimBackendConfig {
    /// Backend key exposed through [`Backend::key`] (e.g. `"cudasim"`).
    pub key: &'static str,
    /// Thread tile for 2D `parallel_for` (the paper uses 16×16 everywhere).
    pub tile_2d: (u32, u32),
    /// Thread tile for 3D `parallel_for`.
    pub tile_3d: (u32, u32, u32),
    /// Block size for the two-kernel reduction (the paper uses 512);
    /// clamped to the device limit and rounded down to a power of two.
    pub reduce_block: u32,
    /// Modeled per-construct overhead of the portability layer, ns.
    pub racc_launch_extra_ns: f64,
    /// Multiplier on modeled reduction kernel time (1.35 for the oneAPI
    /// back end, per the paper's §V-A observation; 1.0 elsewhere).
    pub reduce_time_factor: f64,
}

impl Default for SimBackendConfig {
    fn default() -> Self {
        SimBackendConfig {
            key: "gpusim",
            tile_2d: (16, 16),
            tile_3d: (8, 8, 4),
            reduce_block: 512,
            racc_launch_extra_ns: 1_200.0,
            reduce_time_factor: 1.0,
        }
    }
}

/// A [`racc_core::Backend`] running on one simulated GPU.
pub struct SimBackend {
    device: Arc<Device>,
    config: SimBackendConfig,
    timeline: Timeline,
    /// Recovery policy for transient device faults (injected faults, OOM).
    /// Only read on the error path: a successful first attempt never locks,
    /// keeping the launch hot path overhead-free.
    retry: std::sync::Mutex<RetryPolicy>,
}

impl SimBackend {
    /// Wrap a simulator device.
    pub fn new(device: Arc<Device>, config: SimBackendConfig) -> Self {
        SimBackend {
            device,
            config,
            timeline: Timeline::new(),
            retry: std::sync::Mutex::new(RetryPolicy::none()),
        }
    }

    /// The simulator device (vendor clock, op log, racecheck toggle).
    pub fn device(&self) -> &Arc<Device> {
        &self.device
    }

    /// The vendor configuration.
    pub fn config(&self) -> &SimBackendConfig {
        &self.config
    }

    fn cost_from_profile(profile: &KernelProfile) -> KernelCost {
        KernelCost::new(
            profile.flops_per_iter,
            profile.bytes_read_per_iter,
            profile.bytes_written_per_iter,
            profile.coalescing,
        )
    }

    /// 1D block size per the paper's Fig. 6:
    /// `min(N, maxPossibleThreads)`.
    fn block_1d(&self, n: usize) -> u32 {
        let max = self.device.spec().max_block_dim_x as usize;
        n.clamp(1, max) as u32
    }

    /// Reduction block size: configured value, clamped to the device and
    /// rounded down to a power of two (the tree requires it).
    fn reduce_block(&self) -> usize {
        let max = self.device.spec().max_threads_per_block;
        let b = self.config.reduce_block.min(max).max(1);
        1usize << (31 - b.leading_zeros())
    }

    fn unwrap_launch(result: Result<u64, SimError>) -> u64 {
        // Launch geometry is computed by this backend from device limits, so
        // a failure here is either an internal invariant violation or an
        // injected fault that outlived the retry budget (see
        // `ContextBuilder::retry`), not user error.
        result.expect(
            "simulated launch failed (bad geometry, or injected faults exhausted the retry policy)",
        )
    }

    /// Run a fallible device operation under the retry policy. The success
    /// path costs nothing extra (no lock, no branch beyond the `Result`
    /// match); on a transient error the policy is consulted, each retry
    /// charging its backoff to the timeline as a `Fault` span before
    /// re-running the operation — which re-consults the fault schedule, so
    /// attempts advance through the plan deterministically.
    fn with_retry<R>(
        &self,
        site: &'static str,
        attempt: impl Fn() -> Result<R, SimError>,
    ) -> Result<R, SimError> {
        match attempt() {
            Ok(r) => Ok(r),
            Err(first) => self.retry_slow(site, first, attempt),
        }
    }

    #[cold]
    fn retry_slow<R>(
        &self,
        _site: &'static str,
        mut err: SimError,
        attempt: impl Fn() -> Result<R, SimError>,
    ) -> Result<R, SimError> {
        let policy = *self.retry.lock().unwrap_or_else(|e| e.into_inner());
        let mut retry_no = 0u32;
        while err.is_transient() && retry_no + 1 < policy.max_attempts {
            retry_no += 1;
            let backoff = policy.backoff_ns(retry_no) as f64;
            // Backoff is modeled time, not a host sleep; the paired Fault
            // span carries the identical quantized charge so per-span sums
            // still reconcile with the timeline.
            self.timeline.add_ns(backoff);
            #[cfg(feature = "trace")]
            self.timeline.record_span(|| {
                Span::new(self.config.key, ConstructKind::Fault, _site)
                    .dims(retry_no as u64, 0, 0)
                    .modeled(Timeline::quantize(backoff))
            });
            match attempt() {
                Ok(r) => return Ok(r),
                Err(e) => err = e,
            }
        }
        Err(err)
    }

    /// One `parallel_for` span, mirroring the adjacent `charge_launch` so
    /// per-span modeled sums reconcile with the timeline. `real_ns` stays 0:
    /// wall time of the simulation is meaningless here.
    #[cfg(feature = "trace")]
    fn record_for_span(
        &self,
        rank: usize,
        profile: &KernelProfile,
        dims: [u64; 3],
        cfg: Option<LaunchConfig>,
        ns: f64,
    ) {
        self.timeline.record_span(|| {
            let kind = if profile.fused {
                ConstructKind::Fused
            } else {
                ConstructKind::for_rank(rank)
            };
            let mut span = Span::new(self.config.key, kind, profile.name)
                .dims(dims[0], dims[1], dims[2])
                .profile(profile.flops_per_iter, profile.bytes_per_iter())
                .modeled(Timeline::quantize(ns));
            if let Some(cfg) = cfg {
                span = span.geometry(cfg.grid.count() as u64, cfg.block.count() as u64);
            }
            span
        });
    }

    /// Shared implementation of the two-kernel reduction over a linear
    /// index space, used by the 1D/2D/3D entry points. `_rank` and `_dims`
    /// describe the original (pre-linearization) index space for span
    /// recording; they are unused when the `trace` feature is off.
    fn reduce_linear<T, F, O>(
        &self,
        total: usize,
        _rank: usize,
        _dims: [u64; 3],
        profile: &KernelProfile,
        f: F,
        op: O,
    ) -> T
    where
        T: AccScalar,
        F: Fn(usize) -> T + Sync,
        O: ReduceOp<T>,
    {
        #[cfg(feature = "trace")]
        let reduce_kind = if profile.fused {
            ConstructKind::Fused
        } else {
            ConstructKind::reduce_rank(_rank)
        };
        if total == 0 {
            self.timeline
                .charge_reduction(self.config.racc_launch_extra_ns);
            #[cfg(feature = "trace")]
            self.timeline.record_span(|| {
                Span::new(self.config.key, reduce_kind, profile.name)
                    .dims(_dims[0], _dims[1], _dims[2])
                    .profile(profile.flops_per_iter, profile.bytes_per_iter())
                    .modeled(Timeline::quantize(self.config.racc_launch_extra_ns))
            });
            return op.identity();
        }
        let block = self.reduce_block();
        let blocks = total.div_ceil(block);
        let elem = std::mem::size_of::<T>();

        // Kernel 1: one partial per block (paper Fig. 3, dot_cuda_kernel).
        let partials = self
            .with_retry("alloc", || self.device.alloc::<T>(blocks))
            .expect("partials allocation");
        let k1 = BlockReduceMap {
            n: total,
            block_size: block,
            f: &f,
            op,
            partials: self.device.slice_mut(&partials).expect("own buffer"),
        };
        let cfg1 = LaunchConfig::new(blocks as u32, block as u32).with_shared_mem(block * elem);
        let ns1 = Self::unwrap_launch(self.with_retry("launch", || {
            self.device
                .launch_phased(cfg1, Self::cost_from_profile(profile), &k1)
        }));

        // Kernel 2: fold the partials in one block (reduce_kernel).
        let out = self
            .with_retry("alloc", || self.device.alloc::<T>(1))
            .expect("result allocation");
        let k2 = FinalReduce {
            len: blocks,
            block_size: block,
            op,
            partials: self.device.slice(&partials).expect("own buffer"),
            out: self.device.slice_mut(&out).expect("own buffer"),
        };
        let cfg2 = LaunchConfig::new(1u32, block as u32).with_shared_mem(block * elem);
        let bytes_per_thread = (blocks * elem) as f64 / block as f64;
        let ns2 = Self::unwrap_launch(self.with_retry("launch", || {
            self.device
                .launch_phased(cfg2, KernelCost::memory_bound(bytes_per_thread, 0.0), &k2)
        }));

        // Scalar readback + driver synchronization.
        let result = self
            .with_retry("d2h", || self.device.read_scalar(&out, 0))
            .expect("scalar readback");
        let spec = self.device.spec();
        let sync_ns =
            spec.link_latency_ns * spec.reduce_sync_penalty + perf::transfer_time_ns(spec, elem);
        let reduce_ns = (ns1 + ns2) as f64 * self.config.reduce_time_factor
            + sync_ns
            + self.config.racc_launch_extra_ns;
        self.timeline.charge_reduction(reduce_ns);
        self.timeline.charge_d2h(elem as u64, 0.0);
        #[cfg(feature = "trace")]
        {
            // One span for the whole two-kernel sequence, one for the scalar
            // readback — matching the two timeline charges above.
            self.timeline.record_span(|| {
                Span::new(self.config.key, reduce_kind, profile.name)
                    .dims(_dims[0], _dims[1], _dims[2])
                    .geometry(blocks as u64, block as u64)
                    .profile(profile.flops_per_iter, profile.bytes_per_iter())
                    .modeled(Timeline::quantize(reduce_ns))
            });
            self.timeline.record_span(|| {
                Span::new(self.config.key, ConstructKind::D2h, "reduce_result")
                    .dims(0, 0, 0)
                    .payload(elem as u64)
            });
        }
        result
    }
}

impl Backend for SimBackend {
    fn name(&self) -> String {
        format!("RACC {} ({})", self.config.key, self.device.spec().name)
    }

    fn key(&self) -> &'static str {
        self.config.key
    }

    fn is_accelerator(&self) -> bool {
        true
    }

    fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    fn set_sanitizer(&self, enabled: bool) -> bool {
        self.device.set_sanitizer(enabled);
        true
    }

    fn sanitizer_report(&self) -> Option<String> {
        let report = self.device.sanitizer_report()?;
        #[cfg(feature = "trace")]
        self.timeline.record_span(|| {
            Span::new(self.config.key, ConstructKind::Sanitizer, "sancheck")
                .dims(report.allocations_tracked, 0, 0)
                .payload(report.bytes_outstanding as u64)
        });
        Some(report.to_string())
    }

    fn steal_stats(&self) -> Option<racc_core::StealStats> {
        Some(self.device.steal_stats())
    }

    fn set_chaos(&self, plan: FaultPlan) -> bool {
        self.device.set_chaos(plan);
        true
    }

    fn set_retry(&self, policy: RetryPolicy) -> bool {
        *self.retry.lock().unwrap_or_else(|e| e.into_inner()) = policy;
        true
    }

    fn fault_log(&self) -> Vec<FaultEvent> {
        self.device.fault_log()
    }

    fn self_check(&self) -> Result<(), RaccError> {
        // A minimal alloc → launch → readback round trip, run through the
        // active fault schedule and retry policy — the probe behind the
        // graceful-degradation decision in `racc::builder().fallback(true)`.
        let buf = self.with_retry("alloc", || self.device.alloc::<f64>(1))?;
        let probe = SinglePhase(|_t: &racc_gpusim::ThreadCtx| {});
        self.with_retry("launch", || {
            self.device
                .launch_phased(LaunchConfig::new(1u32, 1u32), KernelCost::default(), &probe)
        })?;
        self.with_retry("d2h", || self.device.read_scalar(&buf, 0))?;
        Ok(())
    }

    fn on_alloc(&self, bytes: usize, upload: bool) -> Result<DeviceToken, RaccError> {
        // Model device-memory pressure with a real simulator allocation held
        // by the array for its lifetime.
        let token = self
            .with_retry("alloc", || self.device.alloc::<u8>(bytes))
            .map_err(|e| RaccError::Allocation(e.to_string()))?;
        #[cfg(feature = "trace")]
        self.timeline.record_span(|| {
            Span::new(self.config.key, ConstructKind::Alloc, "alloc")
                .dims(0, 0, 0)
                .payload(bytes as u64)
        });
        if upload {
            // The upload is modeled (array data stays host-side), but it
            // still runs through the fault schedule like a real transfer.
            let spike = self
                .with_retry("h2d", || self.device.inject_fault(FaultSite::H2d))
                .map_err(RaccError::from)?;
            let ns = perf::transfer_time_ns(self.device.spec(), bytes) + spike as f64;
            self.device
                .charge(racc_gpusim::OpKind::H2D, bytes as u64, 0, ns);
            self.timeline.charge_h2d(bytes as u64, ns);
            #[cfg(feature = "trace")]
            self.timeline.record_span(|| {
                Span::new(self.config.key, ConstructKind::H2d, "upload")
                    .dims(0, 0, 0)
                    .payload(bytes as u64)
                    .modeled(Timeline::quantize(ns))
            });
        }
        Ok(Some(Arc::new(token)))
    }

    fn on_download(&self, bytes: usize) {
        // Modeled transfer, same schedule as a real one. The construct
        // returns `()`, so a download whose faults outlive the retry
        // budget has nowhere to surface but a panic.
        let spike = self
            .with_retry("d2h", || self.device.inject_fault(FaultSite::D2h))
            .unwrap_or_else(|e| {
                panic!("download failed: {e} (injected faults exhausted the retry policy)")
            });
        let ns = perf::transfer_time_ns(self.device.spec(), bytes) + spike as f64;
        self.device
            .charge(racc_gpusim::OpKind::D2H, bytes as u64, 0, ns);
        self.timeline.charge_d2h(bytes as u64, ns);
        #[cfg(feature = "trace")]
        self.timeline.record_span(|| {
            Span::new(self.config.key, ConstructKind::D2h, "download")
                .dims(0, 0, 0)
                .payload(bytes as u64)
                .modeled(Timeline::quantize(ns))
        });
    }

    fn parallel_for_1d<F>(&self, n: usize, profile: &KernelProfile, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if n == 0 {
            self.timeline
                .charge_launch(self.config.racc_launch_extra_ns);
            #[cfg(feature = "trace")]
            self.record_for_span(
                1,
                profile,
                [0, 0, 0],
                None,
                self.config.racc_launch_extra_ns,
            );
            return;
        }
        let block = self.block_1d(n);
        let cfg = LaunchConfig::linear(n, block);
        // Launched by reference (`launch_phased` + `SinglePhase`) so the
        // retry path can re-run the kernel; `Device::launch` would consume
        // the closure.
        let kernel = SinglePhase(|t: &racc_gpusim::ThreadCtx| {
            let i = t.global_id_x();
            if i < n {
                f(i);
            }
        });
        let ns = Self::unwrap_launch(self.with_retry("launch", || {
            self.device
                .launch_phased(cfg, Self::cost_from_profile(profile), &kernel)
        }));
        let total_ns = ns as f64 + self.config.racc_launch_extra_ns;
        self.timeline.charge_launch(total_ns);
        #[cfg(feature = "trace")]
        self.record_for_span(1, profile, [n as u64, 1, 1], Some(cfg), total_ns);
    }

    fn parallel_for_2d<F>(&self, m: usize, n: usize, profile: &KernelProfile, f: F)
    where
        F: Fn(usize, usize) + Sync,
    {
        if m == 0 || n == 0 {
            self.timeline
                .charge_launch(self.config.racc_launch_extra_ns);
            #[cfg(feature = "trace")]
            self.record_for_span(
                2,
                profile,
                [0, 0, 0],
                None,
                self.config.racc_launch_extra_ns,
            );
            return;
        }
        let (tx, ty) = self.config.tile_2d;
        let cfg = LaunchConfig::tiled_2d(m, n, tx, ty);
        let kernel = SinglePhase(|t: &racc_gpusim::ThreadCtx| {
            let (i, j) = (t.global_id_x(), t.global_id_y());
            if i < m && j < n {
                f(i, j);
            }
        });
        let ns = Self::unwrap_launch(self.with_retry("launch", || {
            self.device
                .launch_phased(cfg, Self::cost_from_profile(profile), &kernel)
        }));
        let total_ns = ns as f64 + self.config.racc_launch_extra_ns;
        self.timeline.charge_launch(total_ns);
        #[cfg(feature = "trace")]
        self.record_for_span(2, profile, [m as u64, n as u64, 1], Some(cfg), total_ns);
    }

    fn parallel_for_3d<F>(&self, m: usize, n: usize, l: usize, profile: &KernelProfile, f: F)
    where
        F: Fn(usize, usize, usize) + Sync,
    {
        if m == 0 || n == 0 || l == 0 {
            self.timeline
                .charge_launch(self.config.racc_launch_extra_ns);
            #[cfg(feature = "trace")]
            self.record_for_span(
                3,
                profile,
                [0, 0, 0],
                None,
                self.config.racc_launch_extra_ns,
            );
            return;
        }
        let (tx, ty, tz) = self.config.tile_3d;
        let cfg = LaunchConfig::tiled_3d(m, n, l, tx, ty, tz);
        let kernel = SinglePhase(|t: &racc_gpusim::ThreadCtx| {
            let (i, j, k) = (t.global_id_x(), t.global_id_y(), t.global_id_z());
            if i < m && j < n && k < l {
                f(i, j, k);
            }
        });
        let ns = Self::unwrap_launch(self.with_retry("launch", || {
            self.device
                .launch_phased(cfg, Self::cost_from_profile(profile), &kernel)
        }));
        let total_ns = ns as f64 + self.config.racc_launch_extra_ns;
        self.timeline.charge_launch(total_ns);
        #[cfg(feature = "trace")]
        self.record_for_span(
            3,
            profile,
            [m as u64, n as u64, l as u64],
            Some(cfg),
            total_ns,
        );
    }

    fn parallel_reduce_1d<T, F, O>(&self, n: usize, profile: &KernelProfile, f: F, op: O) -> T
    where
        T: AccScalar,
        F: Fn(usize) -> T + Sync,
        O: ReduceOp<T>,
    {
        self.reduce_linear(n, 1, [n as u64, 1, 1], profile, f, op)
    }

    fn parallel_reduce_2d<T, F, O>(
        &self,
        m: usize,
        n: usize,
        profile: &KernelProfile,
        f: F,
        op: O,
    ) -> T
    where
        T: AccScalar,
        F: Fn(usize, usize) -> T + Sync,
        O: ReduceOp<T>,
    {
        // Fine-grain mapping: one simulated thread per element, linearized
        // column-major so the fast thread index follows the fast array axis.
        self.reduce_linear(
            m * n,
            2,
            [m as u64, n as u64, 1],
            profile,
            |idx| f(idx % m.max(1), idx / m.max(1)),
            op,
        )
    }

    fn parallel_reduce_3d<T, F, O>(
        &self,
        m: usize,
        n: usize,
        l: usize,
        profile: &KernelProfile,
        f: F,
        op: O,
    ) -> T
    where
        T: AccScalar,
        F: Fn(usize, usize, usize) -> T + Sync,
        O: ReduceOp<T>,
    {
        let mn = (m * n).max(1);
        self.reduce_linear(
            m * n * l,
            3,
            [m as u64, n as u64, l as u64],
            profile,
            |idx| {
                let k = idx / mn;
                let r = idx % mn;
                f(r % m.max(1), r / m.max(1), k)
            },
            op,
        )
    }

    fn prim_scan_1d<T, F, W, O>(
        &self,
        n: usize,
        inclusive: bool,
        profile: &KernelProfile,
        read: F,
        write: W,
        op: O,
    ) where
        T: AccScalar,
        F: Fn(usize) -> T + Sync,
        W: Fn(usize, T) + Sync,
        O: ReduceOp<T>,
    {
        self.sim_prim_scan(n, inclusive, profile, read, write, op)
    }

    fn prim_histogram_1d<F, W>(
        &self,
        n: usize,
        bins: usize,
        profile: &KernelProfile,
        key: F,
        write: W,
    ) where
        F: Fn(usize) -> usize + Sync,
        W: Fn(usize, u64) + Sync,
    {
        self.sim_prim_histogram(n, bins, profile, key, write)
    }

    fn prim_sort_pairs_1d<F, W>(
        &self,
        n: usize,
        key_bits: u32,
        profile: &KernelProfile,
        key: F,
        write: W,
    ) where
        F: Fn(usize) -> u64 + Sync,
        W: Fn(usize, usize) + Sync,
    {
        self.sim_prim_sort_pairs(n, key_bits, profile, key, write)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racc_core::{Context, Max, Sum};
    use racc_gpusim::profiles;

    fn backend() -> SimBackend {
        SimBackend::new(
            Arc::new(Device::new(profiles::test_device())),
            SimBackendConfig {
                key: "testsim",
                ..SimBackendConfig::default()
            },
        )
    }

    fn a100_backend() -> SimBackend {
        SimBackend::new(
            Arc::new(Device::new(profiles::nvidia_a100())),
            SimBackendConfig::default(),
        )
    }

    #[test]
    fn parallel_for_covers_exactly() {
        let b = backend();
        let n = 1000;
        let hits: Vec<std::sync::atomic::AtomicUsize> = (0..n)
            .map(|_| std::sync::atomic::AtomicUsize::new(0))
            .collect();
        b.parallel_for_1d(n, &KernelProfile::unknown(), |i| {
            hits[i].fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
        assert!(hits
            .iter()
            .all(|h| h.load(std::sync::atomic::Ordering::Relaxed) == 1));
        assert_eq!(b.timeline().snapshot().launches, 1);
        assert!(b.timeline().modeled_ns() > 0);
    }

    #[test]
    fn two_kernel_reduce_matches_serial() {
        let b = backend();
        for n in [1usize, 63, 64, 65, 1000, 10_000] {
            let s: f64 = b.parallel_reduce_1d(n, &KernelProfile::dot(), |i| (i as f64).sqrt(), Sum);
            let expect: f64 = (0..n).map(|i| (i as f64).sqrt()).sum();
            assert!(
                (s - expect).abs() < 1e-9 * expect.max(1.0),
                "n={n}: {s} vs {expect}"
            );
        }
    }

    #[test]
    fn reduce_handles_non_sum_ops() {
        let b = backend();
        let data: Vec<i64> = (0..5000).map(|i| (i * 7919) % 10007).collect();
        let m: i64 = b.parallel_reduce_1d(data.len(), &KernelProfile::dot(), |i| data[i], Max);
        assert_eq!(m, *data.iter().max().unwrap());
    }

    #[test]
    fn reduce_2d_and_3d_match_serial() {
        let b = backend();
        let (m, n) = (37usize, 23usize);
        let s2: f64 =
            b.parallel_reduce_2d(m, n, &KernelProfile::dot(), |i, j| (i * n + j) as f64, Sum);
        let expect2: f64 = (0..m)
            .flat_map(|i| (0..n).map(move |j| (i * n + j) as f64))
            .sum();
        assert_eq!(s2, expect2);

        let (m, n, l) = (5usize, 6usize, 7usize);
        let s3: u64 = b.parallel_reduce_3d(
            m,
            n,
            l,
            &KernelProfile::dot(),
            |i, j, k| ((k * n + j) * m + i) as u64,
            Sum,
        );
        let total = (m * n * l) as u64;
        assert_eq!(s3, total * (total - 1) / 2);
    }

    #[test]
    fn reduction_costs_more_than_for() {
        // The two-kernel structure plus sync must make a small reduce more
        // expensive than a small parallel_for — the paper's DOT-vs-AXPY gap.
        let b = a100_backend();
        b.parallel_for_1d(1024, &KernelProfile::axpy(), |_| {});
        let t_for = b.timeline().modeled_ns();
        b.timeline().reset();
        let _: f64 = b.parallel_reduce_1d(1024, &KernelProfile::dot(), |_| 1.0, Sum);
        let t_red = b.timeline().modeled_ns();
        assert!(t_red > 2 * t_for, "reduce {t_red} vs for {t_for}");
    }

    #[test]
    fn transfers_are_modeled_through_context() {
        let ctx = Context::new(a100_backend());
        let n = 1 << 20;
        let data = vec![1.0f64; n];
        let before = ctx.modeled_ns();
        let arr = ctx.array_from(&data).unwrap();
        let after_upload = ctx.modeled_ns();
        assert!(after_upload > before, "H2D must cost modeled time");
        let _ = ctx.to_host(&arr).unwrap();
        assert!(
            ctx.modeled_ns() > after_upload,
            "D2H must cost modeled time"
        );
        let s = ctx.timeline();
        assert_eq!(s.h2d_bytes, (n * 8) as u64);
        assert_eq!(s.d2h_bytes, (n * 8) as u64);
    }

    #[test]
    fn device_oom_surfaces_as_racc_error() {
        let b = backend(); // test device: 16 MiB
        let ctx = Context::new(b);
        let err = ctx.zeros::<f64>(10 << 20).unwrap_err();
        assert!(matches!(err, RaccError::Allocation(_)));
    }

    #[test]
    fn array_drop_releases_modeled_device_memory() {
        let b = backend();
        let dev = Arc::clone(b.device());
        let ctx = Context::new(b);
        let arr = ctx.zeros::<f64>(1 << 20).unwrap(); // 8 MiB
        assert!(dev.used_bytes() >= 8 << 20);
        drop(arr);
        assert_eq!(dev.used_bytes(), 0);
    }

    #[test]
    fn full_frontend_on_simulated_gpu() {
        let ctx = Context::new(a100_backend());
        let n = 100_000usize;
        let x = ctx.array_from_fn(n, |i| (i % 10) as f64).unwrap();
        let y = ctx.array_from_fn(n, |i| ((i + 5) % 10) as f64).unwrap();
        let alpha = 0.5f64;
        let (xv, yv) = (x.view_mut(), y.view());
        ctx.parallel_for(n, &KernelProfile::axpy(), move |i| {
            xv.set(i, xv.get(i) + alpha * yv.get(i));
        });
        let (xv, yv) = (x.view(), y.view());
        let dot: f64 =
            ctx.parallel_reduce(n, &KernelProfile::dot(), move |i| xv.get(i) * yv.get(i));
        let mut expect = 0.0;
        for i in 0..n {
            let xi = (i % 10) as f64 + alpha * ((i + 5) % 10) as f64;
            expect += xi * ((i + 5) % 10) as f64;
        }
        assert!((dot - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn reduce_block_rounds_to_power_of_two() {
        let b = backend(); // test device limit: 64 threads
        assert_eq!(b.reduce_block(), 64);
        let b2 = SimBackend::new(
            Arc::new(Device::new(profiles::nvidia_a100())),
            SimBackendConfig {
                reduce_block: 500, // not a power of two
                ..SimBackendConfig::default()
            },
        );
        assert_eq!(b2.reduce_block(), 256);
    }

    #[test]
    fn retries_recover_from_scripted_faults() {
        let b = backend();
        assert!(b.set_chaos(FaultPlan::parse("launch:nth-1;d2h:nth-1;alloc:nth-2").unwrap()));
        assert!(b.set_retry(RetryPolicy::default()));
        // The reduction's first kernel launch, its result allocation, and
        // its scalar readback each hit one injected fault; the retry policy
        // absorbs all three and the result is exact.
        let n = 1000usize;
        let s: f64 = b.parallel_reduce_1d(n, &KernelProfile::dot(), |i| i as f64, Sum);
        assert_eq!(s, (n * (n - 1) / 2) as f64);
        let log = b.fault_log();
        assert_eq!(log.len(), 3, "{log:?}");
        // Each retry charged its backoff to the timeline.
        let policy = RetryPolicy::default();
        assert!(b.timeline().modeled_ns() >= 3 * policy.backoff_ns(1));
    }

    #[test]
    fn self_check_probes_through_the_fault_schedule() {
        let healthy = backend();
        assert!(healthy.self_check().is_ok());
        let dying = backend();
        dying.set_chaos(FaultPlan::parse("launch:always").unwrap());
        dying.set_retry(RetryPolicy::default());
        assert!(
            dying.self_check().is_err(),
            "a hard (permanent) launch failure must outlive any retry budget"
        );
    }

    #[test]
    fn sim_scan_matches_serial_reference_bitwise() {
        for b in [backend(), a100_backend()] {
            for n in [1usize, 7, 255, 256, 257, 1000, 5000] {
                let read = |i: usize| ((i as f32) * 0.37).sin() + 1.0e-3;
                let expect = std::cell::RefCell::new(vec![0.0f32; n]);
                racc_core::prim::scan_canonical(
                    n,
                    true,
                    &read,
                    &|i, v| expect.borrow_mut()[i] = v,
                    racc_core::Sum,
                );
                let expect = expect.into_inner();
                let got: Vec<std::sync::atomic::AtomicU32> = (0..n)
                    .map(|_| std::sync::atomic::AtomicU32::new(0))
                    .collect();
                b.prim_scan_1d(
                    n,
                    true,
                    &KernelProfile::unknown(),
                    read,
                    |i, v: f32| got[i].store(v.to_bits(), std::sync::atomic::Ordering::Relaxed),
                    racc_core::Sum,
                );
                for i in 0..n {
                    assert_eq!(
                        got[i].load(std::sync::atomic::Ordering::Relaxed),
                        expect[i].to_bits(),
                        "n={n} i={i} on {}",
                        b.key()
                    );
                }
            }
        }
    }

    #[test]
    fn sim_exclusive_scan_shifts_inclusive() {
        let b = backend();
        let n = 777usize;
        let read = |i: usize| i as u64 + 1;
        let got: Vec<std::sync::atomic::AtomicU64> = (0..n)
            .map(|_| std::sync::atomic::AtomicU64::new(u64::MAX))
            .collect();
        b.prim_scan_1d(
            n,
            false,
            &KernelProfile::unknown(),
            read,
            |i, v: u64| got[i].store(v, std::sync::atomic::Ordering::Relaxed),
            Sum,
        );
        let mut run = 0u64;
        for (i, g) in got.iter().enumerate() {
            assert_eq!(g.load(std::sync::atomic::Ordering::Relaxed), run, "i={i}");
            run += read(i);
        }
    }

    #[test]
    fn sim_histogram_matches_serial_reference() {
        for (b, n, bins) in [
            (backend(), 10_000usize, 37usize),
            (a100_backend(), 10_000, 37),
            // Too many bins for the test device's 4 KiB shared memory:
            // exercises the global-scratch fallback path.
            (backend(), 3000, 1500),
        ] {
            let key = |i: usize| (i * 2654435761) % bins;
            let expect = std::cell::RefCell::new(vec![u64::MAX; bins]);
            racc_core::prim::histogram_canonical(n, bins, &key, &|b, c| expect.borrow_mut()[b] = c);
            let expect = expect.into_inner();
            let got: Vec<std::sync::atomic::AtomicU64> = (0..bins)
                .map(|_| std::sync::atomic::AtomicU64::new(u64::MAX))
                .collect();
            b.prim_histogram_1d(n, bins, &KernelProfile::unknown(), key, |bin, c| {
                got[bin].store(c, std::sync::atomic::Ordering::Relaxed)
            });
            for bin in 0..bins {
                assert_eq!(
                    got[bin].load(std::sync::atomic::Ordering::Relaxed),
                    expect[bin],
                    "bin={bin} on {} (n={n}, bins={bins})",
                    b.key()
                );
            }
        }
    }

    #[test]
    fn sim_histogram_with_no_elements_still_writes_zero_bins() {
        let b = backend();
        let bins = 19usize;
        let got: Vec<std::sync::atomic::AtomicU64> = (0..bins)
            .map(|_| std::sync::atomic::AtomicU64::new(u64::MAX))
            .collect();
        b.prim_histogram_1d(
            0,
            bins,
            &KernelProfile::unknown(),
            |_| 0,
            |bin, c| got[bin].store(c, std::sync::atomic::Ordering::Relaxed),
        );
        assert!(got
            .iter()
            .all(|g| g.load(std::sync::atomic::Ordering::Relaxed) == 0));
    }

    #[test]
    fn sim_sort_matches_serial_reference() {
        for b in [backend(), a100_backend()] {
            // Lots of duplicate keys so stability (ties toward the smaller
            // index) is load-bearing, across multiple radix passes.
            let n = 4000usize;
            let key = |i: usize| ((i * 48271) % 97) as u64 * 65536 + ((i * 16807) % 13) as u64;
            let expect = std::cell::RefCell::new(vec![usize::MAX; n]);
            racc_core::prim::sort_pairs_canonical(n, &key, &|r, i| expect.borrow_mut()[r] = i);
            let expect = expect.into_inner();
            let got: Vec<std::sync::atomic::AtomicUsize> = (0..n)
                .map(|_| std::sync::atomic::AtomicUsize::new(usize::MAX))
                .collect();
            b.prim_sort_pairs_1d(n, 32, &KernelProfile::unknown(), key, |r, i| {
                got[r].store(i, std::sync::atomic::Ordering::Relaxed)
            });
            for r in 0..n {
                assert_eq!(
                    got[r].load(std::sync::atomic::Ordering::Relaxed),
                    expect[r],
                    "rank={r} on {}",
                    b.key()
                );
            }
        }
    }

    #[test]
    fn prims_charge_modeled_time_and_recover_from_faults() {
        let b = backend();
        assert!(b.set_chaos(FaultPlan::parse("launch:nth-2;alloc:nth-1").unwrap()));
        assert!(b.set_retry(RetryPolicy::default()));
        let n = 2000usize;
        let got: Vec<std::sync::atomic::AtomicU64> = (0..n)
            .map(|_| std::sync::atomic::AtomicU64::new(0))
            .collect();
        b.prim_scan_1d(
            n,
            true,
            &KernelProfile::unknown(),
            |i| i as u64,
            |i, v: u64| got[i].store(v, std::sync::atomic::Ordering::Relaxed),
            Sum,
        );
        let mut run = 0u64;
        for (i, g) in got.iter().enumerate() {
            run += i as u64;
            assert_eq!(g.load(std::sync::atomic::Ordering::Relaxed), run);
        }
        assert_eq!(b.fault_log().len(), 2, "{:?}", b.fault_log());
        assert!(b.timeline().modeled_ns() > 0);
    }

    #[test]
    fn empty_prims_are_cheap_noops() {
        let b = backend();
        b.prim_scan_1d(
            0,
            true,
            &KernelProfile::unknown(),
            |_| 0.0f64,
            |_, _| panic!("no output"),
            Sum,
        );
        b.prim_sort_pairs_1d(
            0,
            64,
            &KernelProfile::unknown(),
            |_| 0,
            |_, _| panic!("no output"),
        );
        b.prim_histogram_1d(
            3,
            0,
            &KernelProfile::unknown(),
            |_| 0,
            |_, _| panic!("no bins"),
        );
        assert!(b.timeline().modeled_ns() > 0, "overhead still charged");
    }

    #[test]
    fn empty_ranges_are_cheap_noops() {
        let b = backend();
        b.parallel_for_1d(0, &KernelProfile::unknown(), |_| panic!("no iter"));
        b.parallel_for_2d(0, 5, &KernelProfile::unknown(), |_, _| panic!("no iter"));
        b.parallel_for_3d(1, 0, 1, &KernelProfile::unknown(), |_, _, _| {
            panic!("no iter")
        });
        let z: f64 = b.parallel_reduce_1d(0, &KernelProfile::unknown(), |_| 1.0, Sum);
        assert_eq!(z, 0.0);
    }
}
