//! The cooperative reduction kernels (the paper's Fig. 3, generalized over
//! element type and reduction operator).

use racc_core::{AccScalar, ReduceOp};
use racc_gpusim::{DeviceSlice, DeviceSliceMut, PhasedKernel, SharedMem, ThreadCtx};

/// Kernel 1 of the two-kernel reduction: each thread maps one index, the
/// block tree-reduces in shared memory, thread 0 writes the block partial.
pub(crate) struct BlockReduceMap<'a, T: AccScalar, F, O> {
    /// Extent of the index space.
    pub n: usize,
    /// Threads per block (a power of two).
    pub block_size: usize,
    /// The map function.
    pub f: &'a F,
    /// The reduction operator.
    pub op: O,
    /// One partial per block.
    pub partials: DeviceSliceMut<T>,
}

impl<T, F, O> PhasedKernel for BlockReduceMap<'_, T, F, O>
where
    T: AccScalar,
    F: Fn(usize) -> T + Sync,
    O: ReduceOp<T>,
{
    type State = ();

    fn num_phases(&self) -> usize {
        // map + log2(block) tree steps + writeback
        2 + self.block_size.trailing_zeros() as usize
    }

    fn phase(&self, phase: usize, ctx: &ThreadCtx, _state: &mut (), shared: &SharedMem) {
        let ti = ctx.thread_linear();
        let steps = self.block_size.trailing_zeros() as usize;
        if phase == 0 {
            let i = ctx.global_id_x();
            let v = if i < self.n {
                (self.f)(i)
            } else {
                self.op.identity()
            };
            shared.set::<T>(ti, v);
        } else if phase <= steps {
            let half = self.block_size >> phase;
            if ti < half {
                let merged = self
                    .op
                    .combine(shared.get::<T>(ti), shared.get::<T>(ti + half));
                shared.set::<T>(ti, merged);
            }
        } else if ti == 0 {
            self.partials.set(ctx.block_linear(), shared.get::<T>(0));
        }
    }
}

/// Kernel 2: a single block strides over the partials (the paper's
/// `reduce_kernel` loop `while ii <= SIZE ... ii += 512`), tree-reduces, and
/// writes the scalar result.
pub(crate) struct FinalReduce<T: AccScalar, O> {
    /// Number of partials.
    pub len: usize,
    /// Threads in the (single) block — a power of two.
    pub block_size: usize,
    /// The reduction operator.
    pub op: O,
    /// The partials from kernel 1.
    pub partials: DeviceSlice<T>,
    /// One-element output buffer.
    pub out: DeviceSliceMut<T>,
}

impl<T, O> PhasedKernel for FinalReduce<T, O>
where
    T: AccScalar,
    O: ReduceOp<T>,
{
    type State = ();

    fn num_phases(&self) -> usize {
        2 + self.block_size.trailing_zeros() as usize
    }

    fn phase(&self, phase: usize, ctx: &ThreadCtx, _state: &mut (), shared: &SharedMem) {
        let ti = ctx.thread_linear();
        let steps = self.block_size.trailing_zeros() as usize;
        if phase == 0 {
            let mut acc = self.op.identity();
            let mut ii = ti;
            while ii < self.len {
                // Checked read: `ii < self.len <= partials.len()` holds by
                // the loop condition, and the checked accessor is what feeds
                // the sanitizer's read tracking when it is enabled.
                acc = self.op.combine(acc, self.partials.get(ii));
                ii += self.block_size;
            }
            shared.set::<T>(ti, acc);
        } else if phase <= steps {
            let half = self.block_size >> phase;
            if ti < half {
                let merged = self
                    .op
                    .combine(shared.get::<T>(ti), shared.get::<T>(ti + half));
                shared.set::<T>(ti, merged);
            }
        } else if ti == 0 {
            self.out.set(0, shared.get::<T>(0));
        }
    }
}
