//! Plan-cache correctness: the canonical key is a *shape* key.
//!
//! Two programs built from different arrays (different buffers, different
//! scalar values, even different lengths) but with the same structure must
//! share **one** cached plan — and executing the shared plan against the
//! second program's bindings must be bit-identical to evaluating that
//! program eagerly. Conversely, programs whose aliasing or `Rc`-sharing
//! pattern differs must *not* share an entry, because grouping depends on
//! both.

use proptest::prelude::*;
use racc_core::{Array1, Backend, Context, SerialBackend, ThreadsBackend};
use racc_fuse::{lit, load, LazyExt};

fn cg_like<B: Backend>(
    ctx: &Context<B>,
    alpha: f64,
    x: &Array1<f64>,
    p: &Array1<f64>,
    r: &Array1<f64>,
    s: &Array1<f64>,
) -> f64 {
    let mut l = ctx.lazy();
    l.store(x, load(x) + lit(alpha) * load(p));
    let rv = l.assign(r, load(r) + lit(-alpha) * load(s));
    l.sum(rv.clone() * rv)
}

fn eager_cg_like<B: Backend>(
    ctx: &Context<B>,
    alpha: f64,
    x: &Array1<f64>,
    p: &Array1<f64>,
    r: &Array1<f64>,
    s: &Array1<f64>,
) -> f64 {
    let mut l = ctx.lazy().eager();
    l.store(x, load(x) + lit(alpha) * load(p));
    let rv = l.assign(r, load(r) + lit(-alpha) * load(s));
    l.sum(rv.clone() * rv)
}

fn arrays<B: Backend>(ctx: &Context<B>, n: usize, salt: usize) -> [Array1<f64>; 4] {
    [3usize, 5, 7, 11].map(|k| {
        ctx.array_from_fn(n, move |i| ((i * k + salt) % 13) as f64 * 0.5 - 3.0)
            .unwrap()
    })
}

/// The heart of the satellite: same shape, different arrays, different
/// sizes, different scalars — one cache entry, bit-identical results.
#[test]
fn shape_identical_programs_share_one_plan() {
    let ctx = Context::new(SerialBackend::new());

    let [x1, p1, r1, s1] = arrays(&ctx, 257, 0);
    let v1 = cg_like(&ctx, 0.8125, &x1, &p1, &r1, &s1);

    // Entirely different arrays, a different length, a different alpha.
    let [x2, p2, r2, s2] = arrays(&ctx, 1023, 5);
    let v2 = cg_like(&ctx, -1.375, &x2, &p2, &r2, &s2);

    let pc = ctx.stats().plan_cache;
    assert_eq!(pc.misses, 1, "second program should reuse the plan: {pc:?}");
    assert_eq!(pc.hits, 1, "{pc:?}");
    assert_eq!(pc.entries, 1, "{pc:?}");

    // The cache-hit evaluation is bit-identical to an eager reference
    // over fresh arrays with the same contents.
    let eager = Context::new(SerialBackend::new());
    let [ex, ep, er, es] = arrays(&eager, 1023, 5);
    let ev = eager_cg_like(&eager, -1.375, &ex, &ep, &er, &es);
    assert_eq!(v2.to_bits(), ev.to_bits());
    assert_eq!(
        ctx.to_host(&x2).unwrap()[100].to_bits(),
        eager.to_host(&ex).unwrap()[100].to_bits()
    );
    assert_eq!(
        ctx.to_host(&r2).unwrap()[100].to_bits(),
        eager.to_host(&er).unwrap()[100].to_bits()
    );
    let _ = v1;
}

/// Aliasing pattern is part of the shape: `y += a·y` (destination aliases
/// a source) must not share a plan with `x += a·y`.
#[test]
fn aliasing_pattern_keys_distinctly() {
    let ctx = Context::new(SerialBackend::new());
    let x = ctx.array_from_fn(64, |i| i as f64).unwrap();
    let y = ctx.array_from_fn(64, |i| (i % 5) as f64).unwrap();

    let mut l = ctx.lazy();
    l.store(&x, load(&x) + lit(2.0) * load(&y));
    l.eval();

    // Same tree, but the destination now aliases the scaled source.
    let mut l = ctx.lazy();
    l.store(&y, load(&x) + lit(2.0) * load(&y));
    l.eval();

    let pc = ctx.stats().plan_cache;
    assert_eq!(pc.misses, 2, "aliasing change must miss: {pc:?}");
    assert_eq!(pc.entries, 2, "{pc:?}");
}

/// `Rc`-sharing is part of the shape: `e + e` through one `Rc` (CSE, one
/// read) and through two structurally equal trees (two reads) group the
/// same here, but tree size — and thus the planner's budget decisions —
/// differ, so they must key separately.
#[test]
fn sharing_pattern_keys_distinctly() {
    let ctx = Context::new(SerialBackend::new());
    let x = ctx.array_from_fn(64, |i| i as f64 + 1.0).unwrap();
    let y = ctx.zeros::<f64>(64).unwrap();

    let shared = load(&x) * 2.0;
    let mut l = ctx.lazy();
    l.store(&y, shared.clone() + shared);
    l.eval();

    let mut l = ctx.lazy();
    l.store(&y, load(&x) * 2.0 + load(&x) * 2.0);
    l.eval();

    let pc = ctx.stats().plan_cache;
    assert_eq!(pc.misses, 2, "sharing change must miss: {pc:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Replaying a cached plan against fresh bindings is bit-identical to
    /// the eager reference of the second program, on a serial and a
    /// threaded backend.
    #[test]
    fn cache_hit_matches_eager_reference(
        n1 in 1usize..96,
        n2 in 1usize..96,
        salt in 0usize..32,
        alpha_q in -16i32..16,
    ) {
        let alpha = f64::from(alpha_q) * 0.3125;
        fn check<B: Backend>(ctx: &Context<B>, reference: &Context<B>,
                             n1: usize, n2: usize, salt: usize, alpha: f64) {
            // Warm the cache with shape twin #1...
            let [x1, p1, r1, s1] = arrays(ctx, n1, salt);
            cg_like(ctx, 0.5, &x1, &p1, &r1, &s1);
            // ...then evaluate twin #2 through the cached plan.
            let [x2, p2, r2, s2] = arrays(ctx, n2, salt + 1);
            let hit = cg_like(ctx, alpha, &x2, &p2, &r2, &s2);
            let pc = ctx.stats().plan_cache;
            assert_eq!(pc.misses, 1, "{pc:?}");

            let [ex, ep, er, es] = arrays(reference, n2, salt + 1);
            let want = eager_cg_like(reference, alpha, &ex, &ep, &er, &es);
            assert_eq!(hit.to_bits(), want.to_bits());
            let (got_x, want_x) = (ctx.to_host(&x2).unwrap(), reference.to_host(&ex).unwrap());
            let (got_r, want_r) = (ctx.to_host(&r2).unwrap(), reference.to_host(&er).unwrap());
            for i in 0..n2 {
                assert_eq!(got_x[i].to_bits(), want_x[i].to_bits());
                assert_eq!(got_r[i].to_bits(), want_r[i].to_bits());
            }
        }
        check(&Context::new(SerialBackend::new()),
              &Context::new(SerialBackend::new()), n1, n2, salt, alpha);
        check(&Context::new(ThreadsBackend::with_threads(3)),
              &Context::new(ThreadsBackend::with_threads(3)), n1, n2, salt, alpha);
    }
}
