//! Concurrent plan-cache sharing: many threads (the serving layer's
//! tenants) evaluating same-shape lazy programs against one shared
//! context must converge on **one** compiled plan with a hit rate ≥ 0.9 —
//! the only tolerated misses are the initial compile race, which the
//! cache dedups on insert — and the steady-state hit path must stay
//! allocation-free even while every thread is hammering it at once.
//!
//! The counting allocator is process-global, which makes the assertion
//! *stronger* under concurrency: during the measured window every thread
//! is inside the hit path, so a single allocation anywhere — a key buffer
//! rebuilt, a lock guard boxed, a scratch pool miss — trips the test.
//! Barriers fence the window so no thread's warm-up (which legitimately
//! allocates its thread-local scratch) overlaps anyone's measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;

use racc_core::{Context, SerialBackend};
use racc_fuse::{lit, load, LazyExt};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

const THREADS: usize = 4;
const WARM: usize = 8;
const MEASURED: usize = 16;

// One #[test] so nothing else in this process races the global counter.
#[test]
fn threads_share_one_plan_and_the_hit_path_never_allocates() {
    // This test asserts the chaos-OFF, sanitizer-OFF, racecheck-OFF
    // guarantees (each of those layers allocates by design when armed);
    // keep it meaningful even when the suite runs under the CI's
    // RACC_CHAOS / RACC_SANITIZER=1 / --features racecheck soak.
    std::env::remove_var("RACC_CHAOS");
    let ctx = Context::builder(SerialBackend::new())
        .sanitizer(false)
        .racecheck(false)
        .build();

    // Per-thread arrays with identical structure: the shape key classes
    // extents by slot and ignores buffer identity, so every thread's
    // program resolves to the same plan. Same aliasing pattern everywhere
    // (store back into the source) — aliasing is part of the key.
    let arrays: Vec<_> = (0..THREADS)
        .map(|t| {
            ctx.array_from_fn(512 + 64 * t, move |i| ((i * 7 + t) % 13) as f64 * 0.5 - 3.0)
                .unwrap()
        })
        .collect();

    let warmed = Barrier::new(THREADS);
    let fence = Barrier::new(THREADS);
    let done = Barrier::new(THREADS);

    std::thread::scope(|scope| {
        for (t, a) in arrays.iter().enumerate() {
            let ctx = &ctx;
            let (warmed, fence, done) = (&warmed, &fence, &done);
            scope.spawn(move || {
                // Expressions are `Rc`-built and thread-local; building
                // one allocates, but that happens here in the warm-up
                // phase — cloning it afterwards is an `Rc` bump, so the
                // measured loop exercises exactly key-build + cache
                // lookup + tape execution.
                let expr = load(a) + lit(1.0);
                let run = || {
                    let mut l = ctx.lazy();
                    l.store(a, expr.clone());
                    l.eval();
                };
                // Warm-up: the first evaluation per thread races the
                // others to compile and insert (the cache keeps one
                // winner); later ones grow this thread's scratch pools.
                for _ in 0..WARM {
                    run();
                }
                // Two fences before measuring: `warmed` guarantees no
                // thread still allocates warm-up scratch, `fence` is a
                // throwaway cycle so any lazy one-time cost inside the
                // barrier itself is paid outside the window.
                warmed.wait();
                fence.wait();
                let before = allocs();
                for _ in 0..MEASURED {
                    run();
                }
                let delta = allocs() - before;
                done.wait();
                assert_eq!(
                    delta, 0,
                    "thread {t}: concurrent cache-hit evaluation must not allocate"
                );
            });
        }
    });

    let pc = ctx.stats().plan_cache;
    let total = (WARM + MEASURED) as u64 * THREADS as u64;
    assert_eq!(pc.hits + pc.misses, total, "{pc:?}");
    assert_eq!(pc.entries, 1, "all threads must share one plan: {pc:?}");
    assert!(
        pc.misses <= THREADS as u64,
        "only the initial compile race may miss: {pc:?}"
    );
    let hit_rate = pc.hits as f64 / total as f64;
    assert!(hit_rate >= 0.9, "hit rate {hit_rate:.3} < 0.9: {pc:?}");

    // The shared plan still computes the right values for every tenant.
    for (t, a) in arrays.iter().enumerate() {
        let host = ctx.to_host(a).unwrap();
        let runs = (WARM + MEASURED) as f64;
        let want = ((7 + t) % 13) as f64 * 0.5 - 3.0 + runs;
        assert_eq!(host[1].to_bits(), want.to_bits(), "thread {t}");
    }
}
