//! Differential property tests: fused execution is **bit-identical** to
//! the eager reference (one launch per statement) for randomized
//! expression programs, on every backend.
//!
//! Programs are decoded from random byte strings (a tiny bytecode), so
//! the generator needs no strategy recursion and every failing case
//! reprints as plain data. Three program families are pinned:
//!
//! * **map-only chains** — assignments over one extent, with value
//!   forwarding (`assign`'s returned `Expr`) and raw reloads mixed in, so
//!   both full fusion and read-after-write boundary splits are exercised;
//! * **map + terminal reduce** — the same chains closed by a `Sum` /
//!   `Min` / `Max` reduction that fuses into the last group when legal;
//! * **partial-fusion boundaries** — statements alternating between two
//!   different extents (a forced materialize at every extent change) plus
//!   explicit barriers.
//!
//! Each case runs three times per backend — compiled (`ctx.lazy()`, the
//! plan-cache default), interpreted (`ctx.lazy().interpreted()`), and
//! eager (`ctx.lazy().eager()`) — and compares every array's bytes and
//! the reduction value via `to_bits`. The same tests must also hold under
//! `--features racecheck` and `RACC_SANITIZER=1` (CI runs both).

use proptest::prelude::*;
use racc_core::{Array1, Backend, Context, SerialBackend, ThreadsBackend};
use racc_fuse::{lit, load, Expr, LazyExt, ReduceKind};

/// Arrays per extent pool.
const N_ARR: usize = 3;

/// A decoded expression over a pool of arrays and earlier statements.
#[derive(Debug, Clone)]
enum TExpr {
    /// `load(arrs[k])` — a raw reload (a fusion hazard if stored earlier
    /// in the group).
    Arr(usize),
    /// The `Expr` returned by statement `k`'s `assign` (value forward).
    Prev(usize),
    Scalar(f64),
    Neg(Box<TExpr>),
    Abs(Box<TExpr>),
    /// Binary op selector 0..6: + - * / min max.
    Bin(u8, Box<TExpr>, Box<TExpr>),
}

fn leaf(b: u8, n_prev: usize) -> TExpr {
    match b % 3 {
        0 => TExpr::Arr(b as usize / 3 % N_ARR),
        1 if n_prev > 0 => TExpr::Prev(b as usize / 3 % n_prev),
        _ => TExpr::Scalar(f64::from(b) / 32.0 - 3.0),
    }
}

/// Recursive-descent decode of one expression from `bytes`, depth- and
/// length-limited so every byte string is a valid program.
fn decode(bytes: &[u8], pos: &mut usize, depth: u32, n_prev: usize) -> TExpr {
    let b = bytes.get(*pos).copied().unwrap_or(7);
    *pos += 1;
    if depth >= 3 || *pos >= bytes.len() {
        return leaf(b, n_prev);
    }
    match b % 8 {
        0..=2 => leaf(b / 8, n_prev),
        3 => TExpr::Neg(Box::new(decode(bytes, pos, depth + 1, n_prev))),
        4 => TExpr::Abs(Box::new(decode(bytes, pos, depth + 1, n_prev))),
        _ => {
            let a = decode(bytes, pos, depth + 1, n_prev);
            let c = decode(bytes, pos, depth + 1, n_prev);
            TExpr::Bin(b / 8 % 6, Box::new(a), Box::new(c))
        }
    }
}

fn build(t: &TExpr, arrs: &[Array1<f64>], prevs: &[Expr]) -> Expr {
    match t {
        TExpr::Arr(k) => load(&arrs[*k]),
        TExpr::Prev(k) => prevs[*k].clone(),
        TExpr::Scalar(v) => lit(*v),
        TExpr::Neg(a) => -build(a, arrs, prevs),
        TExpr::Abs(a) => build(a, arrs, prevs).abs(),
        TExpr::Bin(op, a, b) => {
            let (a, b) = (build(a, arrs, prevs), build(b, arrs, prevs));
            match op {
                0 => a + b,
                1 => a - b,
                2 => a * b,
                3 => a / b,
                4 => a.min(b),
                _ => a.max(b),
            }
        }
    }
}

/// A randomized program: per statement a destination selector and an
/// expression bytecode, optional barriers, optional terminal reduction.
#[derive(Debug, Clone)]
struct Spec {
    stmts: Vec<(u8, Vec<u8>)>,
    barriers: Vec<u8>,
    reduce: Option<(Vec<u8>, u8)>,
}

fn spec_strategy(max_stmts: usize, with_reduce: bool) -> impl Strategy<Value = Spec> {
    (
        prop::collection::vec(
            (0u8..8, prop::collection::vec(0u8..255, 1..10)),
            1..max_stmts + 1,
        ),
        prop::collection::vec(0u8..8, 0..3),
        prop::collection::vec(0u8..255, 1..10),
        0u8..3,
    )
        .prop_map(move |(stmts, barriers, rcode, rkind)| Spec {
            stmts,
            barriers,
            reduce: if with_reduce {
                Some((rcode, rkind))
            } else {
                None
            },
        })
}

/// Deterministic initial contents so fused and eager runs start from the
/// same bytes on every backend.
fn fill<B: Backend>(ctx: &Context<B>, n: usize, salt: usize) -> Vec<Array1<f64>> {
    (0..N_ARR)
        .map(|a| {
            ctx.array_from_fn(n, move |i| {
                ((i * 31 + a * 7 + salt) % 23) as f64 * 0.375 - 4.0
            })
            .expect("alloc")
        })
        .collect()
}

/// Evaluation mode of one differential run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Compiled,
    Interpreted,
    Eager,
}

/// Runs `spec` over `pools.len()` extent pools (statement `dst` selects
/// pool then array) and returns every array's bytes plus the reduction
/// bits. `mode` selects compiled plans, the interpreter, or the eager
/// reference grouping.
fn run_spec<B: Backend>(
    ctx: &Context<B>,
    spec: &Spec,
    sizes: &[usize],
    mode: Mode,
) -> (Vec<Vec<u64>>, Option<u64>, usize) {
    let pools: Vec<Vec<Array1<f64>>> = sizes
        .iter()
        .enumerate()
        .map(|(p, &n)| fill(ctx, n, p))
        .collect();
    let mut f = match mode {
        Mode::Compiled => ctx.lazy(),
        Mode::Interpreted => ctx.lazy().interpreted(),
        Mode::Eager => ctx.lazy().eager(),
    };
    // Forwards are only meaningful within the destination's extent pool.
    let mut prevs: Vec<Vec<Expr>> = vec![Vec::new(); pools.len()];
    for (si, (dst, code)) in spec.stmts.iter().enumerate() {
        if spec.barriers.contains(&(si as u8)) {
            f.barrier();
        }
        let pool = *dst as usize % pools.len();
        let arr = *dst as usize / pools.len() % N_ARR;
        let t = decode(code, &mut 0, 0, prevs[pool].len());
        let e = build(&t, &pools[pool], &prevs[pool]);
        let fw = f.assign(&pools[pool][arr], e);
        prevs[pool].push(fw);
    }
    let red = spec.reduce.as_ref().map(|(code, rkind)| {
        // Reduce over the first pool; anchor with an array load so the
        // expression always has an extent.
        let t = decode(code, &mut 0, 0, prevs[0].len());
        let e = build(&t, &pools[0], &prevs[0]) + 0.0 * load(&pools[0][0]);
        let kind = match rkind % 3 {
            0 => ReduceKind::Sum,
            1 => ReduceKind::Min,
            _ => ReduceKind::Max,
        };
        f.reduce(e, kind).to_bits()
    });
    if spec.reduce.is_none() {
        f.run();
    }
    let launches = f.count_launches();
    let bits = pools
        .iter()
        .flatten()
        .map(|a| {
            ctx.to_host(a)
                .expect("to_host")
                .iter()
                .map(|v| v.to_bits())
                .collect()
        })
        .collect();
    (bits, red, launches)
}

/// Compiled and interpreted vs eager on one backend: identical bytes,
/// identical reduction, identical grouping between the two fused modes,
/// and fusion never issues *more* launches than eager. The compiled run
/// goes first and again last, so at least one evaluation per spec is a
/// plan-cache *hit* replaying a cached program against fresh arrays.
fn check_backend<B: Backend>(ctx: &Context<B>, spec: &Spec, sizes: &[usize]) {
    let (compiled, cred, claunch) = run_spec(ctx, spec, sizes, Mode::Compiled);
    let (interp, ired, ilaunch) = run_spec(ctx, spec, sizes, Mode::Interpreted);
    let (eager, ered, elaunch) = run_spec(ctx, spec, sizes, Mode::Eager);
    assert_eq!(
        compiled, eager,
        "compiled arrays diverge from eager: {spec:?}"
    );
    assert_eq!(
        interp, eager,
        "interpreted arrays diverge from eager: {spec:?}"
    );
    assert_eq!(
        cred, ered,
        "compiled reduction diverges from eager: {spec:?}"
    );
    assert_eq!(
        ired, ered,
        "interpreted reduction diverges from eager: {spec:?}"
    );
    assert_eq!(
        claunch, ilaunch,
        "compiled and interpreted grouping diverge: {spec:?}"
    );
    assert!(
        claunch <= elaunch,
        "fusion used {claunch} launches, eager {elaunch}: {spec:?}"
    );
    let (rerun, rred, _) = run_spec(ctx, spec, sizes, Mode::Compiled);
    assert_eq!(
        rerun, eager,
        "cache-hit arrays diverge from eager: {spec:?}"
    );
    assert_eq!(
        rred, ered,
        "cache-hit reduction diverges from eager: {spec:?}"
    );
}

/// One case across all five backends.
fn check_all_backends(spec: &Spec, sizes: &[usize]) {
    check_backend(&Context::new(SerialBackend::new()), spec, sizes);
    check_backend(&Context::new(ThreadsBackend::with_threads(3)), spec, sizes);
    check_backend(
        &Context::new(racc_backend_cuda::CudaBackend::new()),
        spec,
        sizes,
    );
    check_backend(
        &Context::new(racc_backend_hip::HipBackend::new()),
        spec,
        sizes,
    );
    check_backend(
        &Context::new(racc_backend_oneapi::OneApiBackend::new()),
        spec,
        sizes,
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Map-only chains over a single extent: full fusion plus hazard
    /// splits from raw reloads.
    #[test]
    fn map_only_chains_match_eager(
        spec in spec_strategy(4, false),
        n in 1usize..48,
    ) {
        check_all_backends(&spec, &[n]);
    }

    /// The same chains closed by a terminal Sum/Min/Max reduction.
    #[test]
    fn map_reduce_chains_match_eager(
        spec in spec_strategy(3, true),
        n in 1usize..48,
    ) {
        check_all_backends(&spec, &[n]);
    }

    /// Two extent pools force materialize boundaries at every extent
    /// change; barriers add more. Partial fusion must still be exact.
    #[test]
    fn partial_fusion_boundaries_match_eager(
        spec in spec_strategy(5, true),
        n1 in 1usize..32,
        n2 in 1usize..32,
    ) {
        prop_assume!(n1 != n2);
        check_all_backends(&spec, &[n1, n2]);
    }
}

/// A directed (non-random) boundary case: forward → raw reload → forward,
/// mixing all three split causes in one program.
#[test]
fn directed_mixed_boundaries() {
    let spec = Spec {
        stmts: vec![
            (0, vec![45, 0, 8]), // pool 0: binary of loads
            (1, vec![45, 1, 1]), // pool 1 (extent change)
            (0, vec![1]),        // pool 0: forward of stmt 0
            (0, vec![0]),        // pool 0: raw reload of arr 0 (hazard)
        ],
        barriers: vec![3],
        reduce: Some((vec![45, 1, 0], 0)),
    };
    check_all_backends(&spec, &[17, 5]);
}
