//! # racc-fuse
//!
//! A lazy array-expression layer and kernel-fusion engine over
//! `racc_core` — the Rust analog of the meta-programming story in the
//! JACC paper: the front end stays one high-level expression API while
//! the engine regroups the work into fewer, fatter device launches.
//!
//! Elementwise operations (`axpy`-style maps, scalar broadcasts, zips)
//! and trailing reductions build a small expression DAG ([`Expr`])
//! instead of launching. A fusion planner coalesces each maximal chain of
//! same-extent elementwise statements — plus an optional terminal
//! reduction — into **one** `parallel_for` / `parallel_reduce_with`
//! launch carrying the *summed* [`racc_core::KernelProfile`] of its
//! statements, so the analytic perf model, the `Timeline`, and trace
//! reconciliation stay exact. Unfusable boundaries (extent change,
//! explicit [`Lazy::barrier`], a reload of a buffer stored earlier in
//! the group, the [`MAX_NODES`] budget) force a materialize.
//!
//! ## Compiled plans and the plan cache
//!
//! By default every evaluation goes through a **compiled plan**: the
//! program's canonical shape (ops, extent classes, aliasing and sharing
//! pattern — never array identities or scalar values) keys a per-context
//! cache of lowered programs, so steady-state loops like CG plan and
//! lower **once** and then re-execute specialized tape or template
//! executors against fresh bindings with zero allocation. Cache traffic
//! is visible through `ctx.stats()`; `RACC_PLAN_CACHE=<capacity|off>`
//! sizes or disables the cache. [`Lazy::interpreted`] keeps the
//! walk-the-DAG-each-time path (for A/B measurement), and
//! [`Lazy::eager`] forces one launch per statement — the reference
//! semantics both other modes must reproduce bit-identically.
//!
//! ```
//! use racc_core::{Context, SerialBackend};
//! use racc_fuse::{load, LazyExt};
//!
//! let ctx = Context::new(SerialBackend::new());
//! let x = ctx.array_from_fn(1024, |i| i as f64).unwrap();
//! let y = ctx.array_from_fn(1024, |i| 2.0 * i as f64).unwrap();
//!
//! // x += 0.5 * y, then dot(x, y) — ONE launch instead of three.
//! let mut l = ctx.lazy();
//! let xv = l.assign(&x, load(&x) + 0.5 * load(&y));
//! let dot = l.sum(xv * load(&y));
//! assert!(dot > 0.0);
//! // The second evaluation of the same chain hits the plan cache.
//! assert!(ctx.stats().plan_cache.misses >= 1);
//! ```
//!
//! The engine interprets in `f64` — the element type of every workload in
//! the reproduced paper.

use std::cell::Cell;
use std::rc::Rc;
use std::sync::Arc;

use racc_core::{Array1, Backend, Context, RaccError};

mod cache;
mod compile;
mod exec;
mod graph;
mod plan;

pub use graph::{BinOp, Extent, Fusable, UnOp};
pub use plan::MAX_NODES;

use cache::PlanCache;
use compile::EvalScratch;
use graph::ENode;
use plan::Stmt;

/// Reduction operator of a terminal [`Lazy::reduce`]-style evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceKind {
    /// `Σ f(i)` — JACC's `parallel_reduce`.
    Sum,
    /// `min f(i)`.
    Min,
    /// `max f(i)`.
    Max,
}

/// A lazy elementwise expression: a node of the DAG. Cheap to clone
/// (`Rc`); cloned subexpressions share one compiled node per group (CSE).
#[derive(Clone)]
pub struct Expr {
    pub(crate) node: Rc<ENode>,
}

impl Expr {
    fn wrap(node: ENode) -> Self {
        Expr {
            node: Rc::new(node),
        }
    }

    fn unary(op: UnOp, a: Expr) -> Expr {
        Expr::wrap(ENode::Unary(op, a))
    }

    fn binary(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::wrap(ENode::Binary(op, a, b))
    }

    /// Elementwise absolute value.
    pub fn abs(self) -> Expr {
        Expr::unary(UnOp::Abs, self)
    }

    /// Elementwise square root.
    pub fn sqrt(self) -> Expr {
        Expr::unary(UnOp::Sqrt, self)
    }

    /// Elementwise minimum with another expression.
    pub fn min(self, other: Expr) -> Expr {
        Expr::binary(BinOp::Min, self, other)
    }

    /// Elementwise maximum with another expression.
    pub fn max(self, other: Expr) -> Expr {
        Expr::binary(BinOp::Max, self, other)
    }

    /// Evaluates this 1D expression into a fresh array: one compiled
    /// fused launch (cached by program shape).
    pub fn eval<B: Backend>(&self, ctx: &Context<B>) -> Result<Array1<f64>, RaccError> {
        let n = match plan::expr_extent(self) {
            Some(Extent::D1(n)) => n,
            Some(e) => panic!("Expr::eval allocates 1D results; expression has extent {e:?}"),
            None => panic!("Expr::eval needs at least one array in the expression"),
        };
        let out = ctx.zeros::<f64>(n)?;
        let mut l = Lazy::new(ctx);
        l.store(&out, self.clone());
        l.eval();
        Ok(out)
    }

    /// Evaluates this expression into an existing array: one compiled
    /// fused launch (cached by program shape).
    pub fn eval_into<B: Backend, A: Fusable>(&self, ctx: &Context<B>, dst: &A) {
        let mut l = Lazy::new(ctx);
        l.store(dst, self.clone());
        l.eval();
    }

    /// Sum-reduces this expression in one compiled fused launch.
    pub fn eval_sum<B: Backend>(&self, ctx: &Context<B>) -> f64 {
        Lazy::new(ctx).sum(self.clone())
    }
}

/// A lazy load of an array's elements.
pub fn load<A: Fusable>(a: &A) -> Expr {
    Expr::wrap(ENode::Load(a.load_ref()))
}

/// A scalar broadcast. Plain `f64` literals coerce through the operator
/// overloads, so this is rarely needed explicitly.
pub fn lit(v: f64) -> Expr {
    Expr::wrap(ENode::Scalar(v))
}

macro_rules! impl_bin_op {
    ($trait:ident, $method:ident, $op:expr) => {
        impl std::ops::$trait for Expr {
            type Output = Expr;
            fn $method(self, rhs: Expr) -> Expr {
                Expr::binary($op, self, rhs)
            }
        }

        impl std::ops::$trait<f64> for Expr {
            type Output = Expr;
            fn $method(self, rhs: f64) -> Expr {
                Expr::binary($op, self, lit(rhs))
            }
        }

        impl std::ops::$trait<Expr> for f64 {
            type Output = Expr;
            fn $method(self, rhs: Expr) -> Expr {
                Expr::binary($op, lit(self), rhs)
            }
        }
    };
}

impl_bin_op!(Add, add, BinOp::Add);
impl_bin_op!(Sub, sub, BinOp::Sub);
impl_bin_op!(Mul, mul, BinOp::Mul);
impl_bin_op!(Div, div, BinOp::Div);

impl std::ops::Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::unary(UnOp::Neg, self)
    }
}

/// How a [`Lazy`] program evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Plan once per program shape, cache the lowered program, execute
    /// specialized tape/template kernels (the default).
    Compiled,
    /// Plan and walk the DAG every evaluation (the pre-cache engine);
    /// kept callable for A/B measurement.
    Interpreted,
    /// One launch per statement — the reference semantics.
    Eager,
}

thread_local! {
    /// One pooled [`EvalScratch`] per thread, so back-to-back `Lazy`
    /// evaluations (the steady-state loop) allocate nothing. Nested
    /// programs fall back to a fresh allocation; the last one dropped
    /// refills the pool.
    static SCRATCH: Cell<Option<Box<EvalScratch>>> = const { Cell::new(None) };
}

/// A lazy expression scope: an ordered list of array assignments,
/// optionally closed by one reduction. Obtained from [`LazyExt::lazy`]
/// (`ctx.lazy()`).
///
/// Semantics are *defined* by the eager reading — each `assign` is a full
/// pass, in order, and the terminal reduction runs last. Fusion only
/// regroups the passes; [`Lazy::eager`] forces the reference grouping
/// (one launch per statement), which the differential tests hold both the
/// interpreter and the compiled plans to, bit for bit.
pub struct Lazy<'c, B: Backend> {
    ctx: &'c Context<B>,
    /// Pooled program + binding storage; `Some` until drop.
    scratch: Option<Box<EvalScratch>>,
    mode: Mode,
    /// Profile (and compile-span) name of this program's launches.
    name: &'static str,
    /// Constructs launched by `eval`/`sum` (for tests and benches).
    launches: Cell<usize>,
}

impl<'c, B: Backend> Lazy<'c, B> {
    /// An empty program over `ctx`.
    pub fn new(ctx: &'c Context<B>) -> Self {
        Lazy {
            ctx,
            scratch: Some(SCRATCH.with(|c| c.take()).unwrap_or_default()),
            mode: Mode::Compiled,
            name: "fused",
            launches: Cell::new(0),
        }
    }

    /// Force one launch per statement — the reference semantics that both
    /// fused execution modes must reproduce bit-identically.
    pub fn eager(mut self) -> Self {
        self.mode = Mode::Eager;
        self
    }

    /// Fuse, but interpret the expression DAG each evaluation instead of
    /// consulting the plan cache — the pre-compilation engine, kept for
    /// A/B measurement (`figures -- bench-fusion` reports both).
    pub fn interpreted(mut self) -> Self {
        self.mode = Mode::Interpreted;
        self
    }

    /// Names this program's kernel profile (and compile span); defaults
    /// to `"fused"`. Programs with different names cache separately.
    pub fn named(mut self, name: &'static str) -> Self {
        self.name = name;
        self
    }

    fn s(&mut self) -> &mut EvalScratch {
        self.scratch.as_mut().expect("scratch present until drop")
    }

    /// Appends `dst[i] = expr[i]` and returns the stored value as an
    /// expression. Using the returned `Expr` in later statements forwards
    /// the value through registers inside a fusion group; re-`load`ing
    /// `dst` instead forces a materialize boundary.
    pub fn assign<A: Fusable>(&mut self, dst: &A, expr: Expr) -> Expr {
        let dst_ref = dst.store_ref();
        let reload = dst.load_ref();
        let s = self.s();
        let stmt_idx = s.stmts.len();
        s.stmts.push(Stmt { dst: dst_ref, expr });
        Expr::wrap(ENode::Forward {
            stmt: stmt_idx,
            reload,
        })
    }

    /// Appends `dst[i] = expr[i]` without returning a forwarding handle —
    /// use [`Lazy::assign`] when a later statement consumes the stored
    /// value. (Unlike `assign` this allocates no forward node, which
    /// keeps pre-built steady-state programs fully allocation-free.)
    pub fn store<A: Fusable>(&mut self, dst: &A, expr: Expr) {
        let dst_ref = dst.store_ref();
        self.s().stmts.push(Stmt { dst: dst_ref, expr });
    }

    /// Forces every destination assigned so far to materialize before any
    /// later statement runs (an explicit fusion boundary).
    pub fn barrier(&mut self) {
        let s = self.s();
        let at = s.stmts.len();
        s.barriers.push(at);
    }

    /// Evaluates the program (no terminal reduction).
    pub fn eval(&mut self) {
        self.finish(None);
    }

    /// Evaluates the program — the historical name of [`Lazy::eval`].
    pub fn run(&mut self) {
        self.eval();
    }

    /// Evaluates the program, then reduces `expr` with `kind`. The
    /// reduction fuses into the last group when legal.
    pub fn reduce(&mut self, expr: Expr, kind: ReduceKind) -> f64 {
        self.finish(Some((expr, kind)))
            .expect("terminal reduction returns a value")
    }

    /// Evaluates the program and sum-reduces `expr` (`Σ expr[i]`).
    pub fn sum(&mut self, expr: Expr) -> f64 {
        self.reduce(expr, ReduceKind::Sum)
    }

    /// Evaluates the program and computes `Σ a[i]·b[i]`.
    pub fn dot(&mut self, a: Expr, b: Expr) -> f64 {
        self.sum(a * b)
    }

    /// Number of backend constructs the last evaluation issued — fused
    /// launches per program (for tests and benches).
    pub fn count_launches(&self) -> usize {
        self.launches.get()
    }

    fn finish(&mut self, terminal: Option<(Expr, ReduceKind)>) -> Option<f64> {
        match self.mode {
            Mode::Compiled => self.finish_compiled(terminal),
            Mode::Interpreted => self.finish_interpreted(terminal, false),
            Mode::Eager => self.finish_interpreted(terminal, true),
        }
    }

    /// The pre-cache engine: plan, flatten, and interpret the DAG.
    fn finish_interpreted(
        &mut self,
        terminal: Option<(Expr, ReduceKind)>,
        eager: bool,
    ) -> Option<f64> {
        let ctx = self.ctx;
        let s = self.s();
        let groups = plan::plan(&s.stmts, &s.barriers, terminal, eager);
        let mut result = None;
        for group in &groups {
            let compiled = plan::compile(&s.stmts, group, eager);
            if let Some(v) = exec::run_group(ctx, &compiled) {
                result = Some(v);
            }
        }
        self.launches.set(groups.len());
        result
    }

    /// The compiled engine: canonicalize, consult the per-context plan
    /// cache, lower on miss, execute the cached program against this
    /// evaluation's bindings.
    fn finish_compiled(&mut self, terminal: Option<(Expr, ReduceKind)>) -> Option<f64> {
        let ctx = self.ctx;
        let name = self.name;
        let slot = ctx.plan_cache_slot();
        let cache: &PlanCache =
            slot.get_or_init(|| PlanCache::new(slot.mode(), Arc::clone(slot.counters())));
        let s = self.scratch.as_mut().expect("scratch present until drop");
        compile::ingest(s, ctx.id(), terminal.as_ref().map(|(e, k)| (e, *k)));
        let hash = cache::hash_key(&s.key, name);
        let program = match cache.lookup(hash, &s.key, name) {
            Some(program) => program,
            None => {
                #[cfg(feature = "trace")]
                let t0 = ctx.tracer().map(|_| std::time::Instant::now());
                let groups = plan::plan(&s.stmts, &s.barriers, terminal, false);
                let program = Arc::new(compile::compile_program(s, &groups, name));
                #[cfg(feature = "trace")]
                if let Some(recorder) = ctx.tracer() {
                    use racc_core::trace::{ConstructKind, Span};
                    recorder.record(
                        Span::new(ctx.key(), ConstructKind::Compile, name)
                            .dims(program.groups.len() as u64, 1, 1)
                            .real_since(t0),
                    );
                }
                cache.insert(hash, &s.key, name, Arc::clone(&program));
                program
            }
        };
        self.launches.set(program.groups.len());
        compile::execute(ctx, &program, s)
    }
}

impl<B: Backend> Drop for Lazy<'_, B> {
    fn drop(&mut self) {
        if let Some(mut scratch) = self.scratch.take() {
            scratch.clear();
            SCRATCH.with(|c| c.set(Some(scratch)));
        }
    }
}

/// Extension hanging the lazy-expression front end off any [`Context`]:
/// `ctx.lazy()`.
pub trait LazyExt<B: Backend> {
    /// Starts an empty lazy expression scope over this context.
    fn lazy(&self) -> Lazy<'_, B>;
}

impl<B: Backend> LazyExt<B> for Context<B> {
    fn lazy(&self) -> Lazy<'_, B> {
        Lazy::new(self)
    }
}

/// The pre-0.2 name of [`Lazy`].
#[deprecated(note = "renamed to `Lazy`; obtain one with `ctx.lazy()`")]
pub type Fused<'c, B> = Lazy<'c, B>;

/// The pre-0.2 spelling of [`LazyExt`]: `ctx.fused()`.
#[deprecated(note = "use `LazyExt::lazy` (`ctx.lazy()`) instead")]
pub trait FusedExt<B: Backend> {
    /// Starts an empty fused program over this context.
    fn fused(&self) -> Lazy<'_, B>;
}

#[allow(deprecated)]
impl<B: Backend> FusedExt<B> for Context<B> {
    fn fused(&self) -> Lazy<'_, B> {
        Lazy::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racc_core::{PlanCacheMode, SerialBackend};

    fn ctx() -> Context<SerialBackend> {
        Context::new(SerialBackend::new())
    }

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn axpy_chain_fuses_to_one_launch() {
        let ctx = ctx();
        let n = 1000;
        let x = ctx.array_from_fn(n, |i| i as f64).unwrap();
        let y = ctx.array_from_fn(n, |i| (i % 7) as f64).unwrap();
        let z = ctx.zeros::<f64>(n).unwrap();
        let before = ctx.timeline();

        let mut l = ctx.lazy();
        let xv = l.assign(&x, load(&x) + 2.0 * load(&y));
        l.assign(&z, xv * 0.5);
        l.eval();

        assert_eq!(l.count_launches(), 1);
        let after = ctx.timeline();
        assert_eq!(after.launches - before.launches, 1);
        let xs = ctx.to_host(&x).unwrap();
        let zs = ctx.to_host(&z).unwrap();
        for i in 0..n {
            assert_eq!(xs[i], i as f64 + 2.0 * (i % 7) as f64);
            assert_eq!(zs[i], xs[i] * 0.5);
        }
    }

    #[test]
    fn map_reduce_fuses_to_one_reduction() {
        let ctx = ctx();
        let n = 513;
        let x = ctx.array_from_fn(n, |i| i as f64).unwrap();
        let y = ctx.array_from_fn(n, |i| 1.0 + (i % 3) as f64).unwrap();
        let before = ctx.timeline();

        let mut l = ctx.lazy();
        let xv = l.assign(&x, load(&x) + 0.5 * load(&y));
        let dot = l.sum(xv * load(&y));

        assert_eq!(l.count_launches(), 1);
        let after = ctx.timeline();
        assert_eq!(after.launches, before.launches, "no separate parallel_for");
        assert_eq!(after.reductions - before.reductions, 1);
        let expect: f64 = (0..n)
            .map(|i| {
                let yv = 1.0 + (i % 3) as f64;
                (i as f64 + 0.5 * yv) * yv
            })
            .sum();
        assert_eq!(dot.to_bits(), expect.to_bits(), "serial fold order");
    }

    #[test]
    fn compiled_interpreted_and_eager_match_bitwise() {
        let ctx = ctx();
        let n = 777;
        let mk = || {
            (
                ctx.array_from_fn(n, |i| (i as f64).sin()).unwrap(),
                ctx.array_from_fn(n, |i| (i as f64 * 0.1).cos()).unwrap(),
                ctx.zeros::<f64>(n).unwrap(),
            )
        };
        let run = |mode: u8| -> (Vec<u64>, Vec<u64>, u64) {
            let (x, y, z) = mk();
            let mut l = ctx.lazy();
            l = match mode {
                0 => l,
                1 => l.interpreted(),
                _ => l.eager(),
            };
            let xv = l.assign(&x, load(&x) * 1.5 - load(&y));
            let zv = l.assign(&z, xv.clone().abs().sqrt() + load(&y));
            let s = l.sum(zv.max(xv));
            (
                bits(&ctx.to_host(&x).unwrap()),
                bits(&ctx.to_host(&z).unwrap()),
                s.to_bits(),
            )
        };
        let compiled = run(0);
        assert_eq!(compiled, run(1), "compiled vs interpreted");
        assert_eq!(compiled, run(2), "compiled vs eager");
        // And again, so the second compiled evaluation is a cache hit.
        assert_eq!(compiled, run(0), "cache-hit evaluation");
        assert!(ctx.stats().plan_cache.hits >= 1);
    }

    #[test]
    fn barrier_and_reload_split_groups() {
        let ctx = ctx();
        let n = 100;
        let x = ctx.zeros::<f64>(n).unwrap();
        let y = ctx.zeros::<f64>(n).unwrap();

        // Explicit barrier: 2 launches.
        let mut l = ctx.lazy();
        l.assign(&x, lit(1.0) + load(&y));
        l.barrier();
        l.assign(&y, lit(2.0) * load(&x).min(lit(8.0)));
        l.eval();
        assert_eq!(l.count_launches(), 2);

        // Raw reload of a stored buffer: planner splits on the hazard.
        let mut l = ctx.lazy();
        l.assign(&x, load(&y) + 1.0);
        l.assign(&y, load(&x) * 2.0); // reload of x, not the forward
        l.eval();
        assert_eq!(l.count_launches(), 2);
        let xs = ctx.to_host(&x).unwrap();
        let ys = ctx.to_host(&y).unwrap();
        assert_eq!(xs[0], 3.0);
        assert_eq!(ys[0], 6.0);
    }

    #[test]
    fn extent_change_splits_groups() {
        let ctx = ctx();
        let a = ctx.zeros::<f64>(64).unwrap();
        let b = ctx.zeros::<f64>(128).unwrap();
        let mut l = ctx.lazy();
        l.assign(&a, lit(1.0) + load(&a));
        l.assign(&b, lit(2.0) + load(&b));
        l.eval();
        assert_eq!(l.count_launches(), 2);
    }

    #[test]
    fn fused_2d_and_3d_assignments() {
        let ctx = ctx();
        let a = ctx.zeros2::<f64>(5, 7).unwrap();
        let b = ctx.zeros2::<f64>(5, 7).unwrap();
        let mut l = ctx.lazy();
        let av = l.assign(&a, load(&a) + 3.0);
        let bv = l.assign(&b, av * 2.0);
        let s = l.sum(bv);
        assert_eq!(l.count_launches(), 1);
        assert_eq!(s, 5.0 * 7.0 * 6.0);

        let c = ctx.zeros3::<f64>(3, 4, 5).unwrap();
        let mut l = ctx.lazy();
        let cv = l.assign(&c, load(&c) + 1.0);
        let s = l.sum(cv.clone() * cv);
        assert_eq!(l.count_launches(), 1);
        assert_eq!(s, 60.0);
    }

    #[test]
    fn eval_entry_points() {
        let ctx = ctx();
        let n = 50;
        let x = ctx.array_from_fn(n, |i| i as f64).unwrap();
        let z = (load(&x) * 2.0).eval(&ctx).unwrap();
        assert_eq!(ctx.to_host(&z).unwrap()[10], 20.0);
        (load(&x) + 1.0).eval_into(&ctx, &z);
        assert_eq!(ctx.to_host(&z).unwrap()[10], 11.0);
        let s = load(&x).eval_sum(&ctx);
        assert_eq!(s, (n * (n - 1) / 2) as f64);
    }

    #[test]
    fn min_max_reductions() {
        let ctx = ctx();
        let x = ctx
            .array_from_fn(101, |i| ((i as f64) - 50.0) * ((i % 13) as f64))
            .unwrap();
        let lo = ctx.lazy().reduce(load(&x), ReduceKind::Min);
        let hi = ctx.lazy().reduce(load(&x), ReduceKind::Max);
        let host = ctx.to_host(&x).unwrap();
        assert_eq!(lo, host.iter().cloned().fold(f64::INFINITY, f64::min));
        assert_eq!(hi, host.iter().cloned().fold(f64::NEG_INFINITY, f64::max));
    }

    #[test]
    fn shared_subexpressions_compile_once() {
        let ctx = ctx();
        let n = 10;
        let x = ctx.array_from_fn(n, |i| i as f64).unwrap();
        let y = ctx.zeros::<f64>(n).unwrap();
        let e = load(&x) * 2.0;
        let mut l = ctx.lazy();
        // `e` appears twice through the same Rc: CSE keeps the fused group
        // inside the node budget and reads x only once per index.
        l.assign(&y, e.clone() + e.clone() * e);
        l.eval();
        assert_eq!(l.count_launches(), 1);
        let ys = ctx.to_host(&y).unwrap();
        assert_eq!(ys[3], 6.0 + 36.0);
    }

    #[test]
    #[should_panic(expected = "different extents")]
    fn zip_extent_mismatch_panics() {
        let ctx = ctx();
        let a = ctx.zeros::<f64>(4).unwrap();
        let b = ctx.zeros::<f64>(5).unwrap();
        let mut l = ctx.lazy();
        l.assign(&a, load(&a) + load(&b));
        l.eval();
    }

    #[test]
    #[should_panic(expected = "another context")]
    fn cross_context_panics() {
        let c1 = ctx();
        let c2 = ctx();
        let a = c1.zeros::<f64>(4).unwrap();
        let mut l = c2.lazy();
        l.assign(&a, load(&a) + 1.0);
        l.eval();
    }

    #[test]
    fn node_budget_splits() {
        let ctx = ctx();
        let n = 16;
        let x = ctx.array_from_fn(n, |i| i as f64 + 1.0).unwrap();
        let y = ctx.zeros::<f64>(n).unwrap();
        let mut l = ctx.lazy();
        // Each statement ~21 nodes; three of them exceed MAX_NODES = 64,
        // so the planner must split at least once — and results stay right.
        for _ in 0..3 {
            let mut e = load(&x);
            for _ in 0..10 {
                e = e * 1.0 + 0.0;
            }
            l.assign(&y, e);
        }
        l.eval();
        assert!(l.count_launches() >= 2, "{}", l.count_launches());
        let ys = ctx.to_host(&y).unwrap();
        assert_eq!(ys[3], 4.0);
    }

    #[test]
    fn steady_state_loop_hits_the_cache() {
        let ctx = ctx();
        let n = 64;
        let x = ctx.array_from_fn(n, |i| i as f64).unwrap();
        let y = ctx.array_from_fn(n, |i| (i % 5) as f64).unwrap();
        for iter in 0..10 {
            // Changing the scalar must not change the cached shape.
            let alpha = 0.25 + iter as f64;
            let mut l = ctx.lazy();
            let xv = l.assign(&x, load(&x) + lit(alpha) * load(&y));
            l.sum(xv.clone() * xv);
        }
        let pc = ctx.stats().plan_cache;
        assert_eq!(pc.misses, 1, "{pc:?}");
        assert_eq!(pc.hits, 9, "{pc:?}");
        assert_eq!(pc.entries, 1);
    }

    #[test]
    fn named_programs_cache_separately() {
        let ctx = ctx();
        let x = ctx.array_from_fn(8, |i| i as f64).unwrap();
        let a = ctx.lazy().sum(load(&x));
        let b = ctx.lazy().named("other").sum(load(&x));
        assert_eq!(a.to_bits(), b.to_bits());
        assert_eq!(ctx.stats().plan_cache.misses, 2);
    }

    #[test]
    fn builder_capacity_and_off_modes_apply() {
        // Capacity 1: two distinct shapes evict each other.
        let ctx = Context::builder(SerialBackend::new())
            .plan_cache(PlanCacheMode::Capacity(1))
            .build();
        let x = ctx.array_from_fn(8, |i| i as f64).unwrap();
        ctx.lazy().sum(load(&x));
        ctx.lazy().sum(load(&x).abs());
        ctx.lazy().sum(load(&x));
        let pc = ctx.stats().plan_cache;
        assert_eq!(pc.misses, 3, "{pc:?}");
        assert_eq!(pc.evictions, 2, "{pc:?}");
        assert_eq!(pc.entries, 1);

        // Off: correct results, no caching, misses still counted.
        let ctx = Context::builder(SerialBackend::new())
            .plan_cache(PlanCacheMode::Off)
            .build();
        let x = ctx.array_from_fn(8, |i| i as f64).unwrap();
        let a = ctx.lazy().sum(load(&x));
        let b = ctx.lazy().sum(load(&x));
        assert_eq!(a.to_bits(), b.to_bits());
        let pc = ctx.stats().plan_cache;
        assert!(!pc.enabled);
        assert_eq!((pc.hits, pc.misses, pc.entries), (0, 2, 0), "{pc:?}");
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_fused_spelling_still_works() {
        let ctx = ctx();
        let x = ctx.array_from_fn(16, |i| i as f64).unwrap();
        let mut f = ctx.fused();
        let xv = f.assign(&x, load(&x) + 1.0);
        let s = f.sum(xv);
        assert_eq!(s, (0..16).map(|i| i as f64 + 1.0).sum::<f64>());
    }
}
