//! # racc-fuse
//!
//! A lazy array-expression layer and kernel-fusion engine over
//! `racc_core` — the Rust analog of the meta-programming story in the
//! JACC paper: the front end stays one high-level expression API while
//! the engine regroups the work into fewer, fatter device launches.
//!
//! Elementwise operations (`axpy`-style maps, scalar broadcasts, zips)
//! and trailing reductions build a small expression DAG ([`Expr`])
//! instead of launching. A fusion planner coalesces each maximal chain of
//! same-extent elementwise statements — plus an optional terminal
//! reduction — into **one** `parallel_for` / `parallel_reduce_with`
//! launch carrying the *summed* [`racc_core::KernelProfile`] of its
//! statements, so the analytic perf model, the `Timeline`, and trace
//! reconciliation stay exact. Unfusable boundaries (extent change,
//! explicit [`Fused::barrier`], a reload of a buffer stored earlier in
//! the group, the [`MAX_NODES`] budget) force a materialize.
//!
//! Fused evaluation is **bit-identical** to the eager statement sequence
//! on every backend: per index the interpreter performs the same f64
//! operations in program order, and the single launch dispatches through
//! the same backend primitive over the same extent, so every backend's
//! reduction order (serial fold, threadpool partials, the simulators'
//! two-kernel tree) is unchanged.
//!
//! ```
//! use racc_core::{Context, SerialBackend};
//! use racc_fuse::{load, FusedExt};
//!
//! let ctx = Context::new(SerialBackend::new());
//! let x = ctx.array_from_fn(1024, |i| i as f64).unwrap();
//! let y = ctx.array_from_fn(1024, |i| 2.0 * i as f64).unwrap();
//!
//! // x += 0.5 * y, then dot(x, y) — ONE launch instead of three.
//! let mut f = ctx.fused();
//! let xv = f.assign(&x, load(&x) + 0.5 * load(&y));
//! let dot = f.sum(xv * load(&y));
//! assert!(dot > 0.0);
//! ```
//!
//! The engine interprets in `f64` — the element type of every workload in
//! the reproduced paper.

use std::rc::Rc;

use racc_core::{Array1, Backend, Context, RaccError};

mod exec;
mod graph;
mod plan;

pub use graph::{BinOp, Extent, Fusable, UnOp};
pub use plan::MAX_NODES;

use graph::ENode;
use plan::Stmt;

/// Reduction operator of a terminal [`Fused::reduce`]-style evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceKind {
    /// `Σ f(i)` — JACC's `parallel_reduce`.
    Sum,
    /// `min f(i)`.
    Min,
    /// `max f(i)`.
    Max,
}

/// A lazy elementwise expression: a node of the DAG. Cheap to clone
/// (`Rc`); cloned subexpressions share one compiled node per group (CSE).
#[derive(Clone)]
pub struct Expr {
    pub(crate) node: Rc<ENode>,
}

impl Expr {
    fn wrap(node: ENode) -> Self {
        Expr {
            node: Rc::new(node),
        }
    }

    fn unary(op: UnOp, a: Expr) -> Expr {
        Expr::wrap(ENode::Unary(op, a))
    }

    fn binary(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::wrap(ENode::Binary(op, a, b))
    }

    /// Elementwise absolute value.
    pub fn abs(self) -> Expr {
        Expr::unary(UnOp::Abs, self)
    }

    /// Elementwise square root.
    pub fn sqrt(self) -> Expr {
        Expr::unary(UnOp::Sqrt, self)
    }

    /// Elementwise minimum with another expression.
    pub fn min(self, other: Expr) -> Expr {
        Expr::binary(BinOp::Min, self, other)
    }

    /// Elementwise maximum with another expression.
    pub fn max(self, other: Expr) -> Expr {
        Expr::binary(BinOp::Max, self, other)
    }

    /// Evaluates this 1D expression into a fresh array: one fused launch.
    pub fn eval<B: Backend>(&self, ctx: &Context<B>) -> Result<Array1<f64>, RaccError> {
        let n = match plan::expr_extent(self) {
            Some(Extent::D1(n)) => n,
            Some(e) => panic!("Expr::eval allocates 1D results; expression has extent {e:?}"),
            None => panic!("Expr::eval needs at least one array in the expression"),
        };
        let out = ctx.zeros::<f64>(n)?;
        let mut f = Fused::new(ctx);
        f.assign(&out, self.clone());
        f.run();
        Ok(out)
    }

    /// Evaluates this expression into an existing array: one fused launch.
    pub fn eval_into<B: Backend, A: Fusable>(&self, ctx: &Context<B>, dst: &A) {
        let mut f = Fused::new(ctx);
        f.assign(dst, self.clone());
        f.run();
    }

    /// Sum-reduces this expression in one fused launch.
    pub fn eval_sum<B: Backend>(&self, ctx: &Context<B>) -> f64 {
        Fused::new(ctx).sum(self.clone())
    }
}

/// A lazy load of an array's elements.
pub fn load<A: Fusable>(a: &A) -> Expr {
    Expr::wrap(ENode::Load(a.load_ref()))
}

/// A scalar broadcast. Plain `f64` literals coerce through the operator
/// overloads, so this is rarely needed explicitly.
pub fn lit(v: f64) -> Expr {
    Expr::wrap(ENode::Scalar(v))
}

macro_rules! impl_bin_op {
    ($trait:ident, $method:ident, $op:expr) => {
        impl std::ops::$trait for Expr {
            type Output = Expr;
            fn $method(self, rhs: Expr) -> Expr {
                Expr::binary($op, self, rhs)
            }
        }

        impl std::ops::$trait<f64> for Expr {
            type Output = Expr;
            fn $method(self, rhs: f64) -> Expr {
                Expr::binary($op, self, lit(rhs))
            }
        }

        impl std::ops::$trait<Expr> for f64 {
            type Output = Expr;
            fn $method(self, rhs: Expr) -> Expr {
                Expr::binary($op, lit(self), rhs)
            }
        }
    };
}

impl_bin_op!(Add, add, BinOp::Add);
impl_bin_op!(Sub, sub, BinOp::Sub);
impl_bin_op!(Mul, mul, BinOp::Mul);
impl_bin_op!(Div, div, BinOp::Div);

impl std::ops::Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::unary(UnOp::Neg, self)
    }
}

/// A fused program under construction: an ordered list of array
/// assignments, optionally closed by one reduction. Obtained from
/// [`FusedExt::fused`] (`ctx.fused()`).
///
/// Semantics are *defined* by the eager reading — each `assign` is a full
/// pass, in order, and the terminal reduction runs last. Fusion only
/// regroups the passes; [`Fused::eager`] forces the reference grouping
/// (one launch per statement), which the differential tests hold the
/// planner to, bit for bit.
pub struct Fused<'c, B: Backend> {
    ctx: &'c Context<B>,
    stmts: Vec<Stmt>,
    /// Statement indices before which an explicit barrier sits.
    barriers: Vec<usize>,
    eager: bool,
    /// Constructs launched by `run`/`sum` (for tests and benches).
    launches: std::cell::Cell<usize>,
}

impl<'c, B: Backend> Fused<'c, B> {
    /// An empty program over `ctx`.
    pub fn new(ctx: &'c Context<B>) -> Self {
        Fused {
            ctx,
            stmts: Vec::new(),
            barriers: Vec::new(),
            eager: false,
            launches: std::cell::Cell::new(0),
        }
    }

    /// Force one launch per statement — the reference semantics that the
    /// fused execution must reproduce bit-identically.
    pub fn eager(mut self) -> Self {
        self.eager = true;
        self
    }

    /// Appends `dst[i] = expr[i]` and returns the stored value as an
    /// expression. Using the returned `Expr` in later statements forwards
    /// the value through registers inside a fusion group; re-`load`ing
    /// `dst` instead forces a materialize boundary.
    pub fn assign<A: Fusable>(&mut self, dst: &A, expr: Expr) -> Expr {
        let dst_ref = dst.store_ref();
        let reload = dst.load_ref();
        let stmt_idx = self.stmts.len();
        self.stmts.push(Stmt { dst: dst_ref, expr });
        Expr::wrap(ENode::Forward {
            stmt: stmt_idx,
            reload,
        })
    }

    /// Forces every destination assigned so far to materialize before any
    /// later statement runs (an explicit fusion boundary).
    pub fn barrier(&mut self) {
        self.barriers.push(self.stmts.len());
    }

    /// Runs the program (no terminal reduction).
    pub fn run(&mut self) {
        self.finish(None);
    }

    /// Runs the program, then reduces `expr` with `kind`. The reduction
    /// fuses into the last group when legal.
    pub fn reduce(&mut self, expr: Expr, kind: ReduceKind) -> f64 {
        self.finish(Some((expr, kind)))
            .expect("terminal reduction returns a value")
    }

    /// Runs the program and sum-reduces `expr` (`Σ expr[i]`).
    pub fn sum(&mut self, expr: Expr) -> f64 {
        self.reduce(expr, ReduceKind::Sum)
    }

    /// Runs the program and computes `Σ a[i]·b[i]`.
    pub fn dot(&mut self, a: Expr, b: Expr) -> f64 {
        self.sum(a * b)
    }

    /// Number of backend constructs the last `run`/`sum`/`reduce` issued
    /// — fused launches per program (for tests and benches).
    pub fn count_launches(&self) -> usize {
        self.launches.get()
    }

    /// Plans, compiles and executes; returns the terminal reduction value
    /// when one was requested.
    fn finish(&self, terminal: Option<(Expr, ReduceKind)>) -> Option<f64> {
        let groups = plan::plan(&self.stmts, &self.barriers, terminal, self.eager);
        let mut result = None;
        for group in &groups {
            let compiled = plan::compile(&self.stmts, group, self.eager);
            if let Some(v) = exec::run_group(self.ctx, &compiled) {
                result = Some(v);
            }
        }
        self.launches.set(groups.len());
        result
    }
}

/// Extension hanging the fusion front end off any [`Context`]:
/// `ctx.fused()`.
pub trait FusedExt<B: Backend> {
    /// Starts an empty fused program over this context.
    fn fused(&self) -> Fused<'_, B>;
}

impl<B: Backend> FusedExt<B> for Context<B> {
    fn fused(&self) -> Fused<'_, B> {
        Fused::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racc_core::SerialBackend;

    fn ctx() -> Context<SerialBackend> {
        Context::new(SerialBackend::new())
    }

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn axpy_chain_fuses_to_one_launch() {
        let ctx = ctx();
        let n = 1000;
        let x = ctx.array_from_fn(n, |i| i as f64).unwrap();
        let y = ctx.array_from_fn(n, |i| (i % 7) as f64).unwrap();
        let z = ctx.zeros::<f64>(n).unwrap();
        let before = ctx.timeline();

        let mut f = ctx.fused();
        let xv = f.assign(&x, load(&x) + 2.0 * load(&y));
        f.assign(&z, xv * 0.5);
        f.run();

        assert_eq!(f.count_launches(), 1);
        let after = ctx.timeline();
        assert_eq!(after.launches - before.launches, 1);
        let xs = ctx.to_host(&x).unwrap();
        let zs = ctx.to_host(&z).unwrap();
        for i in 0..n {
            assert_eq!(xs[i], i as f64 + 2.0 * (i % 7) as f64);
            assert_eq!(zs[i], xs[i] * 0.5);
        }
    }

    #[test]
    fn map_reduce_fuses_to_one_reduction() {
        let ctx = ctx();
        let n = 513;
        let x = ctx.array_from_fn(n, |i| i as f64).unwrap();
        let y = ctx.array_from_fn(n, |i| 1.0 + (i % 3) as f64).unwrap();
        let before = ctx.timeline();

        let mut f = ctx.fused();
        let xv = f.assign(&x, load(&x) + 0.5 * load(&y));
        let dot = f.sum(xv * load(&y));

        assert_eq!(f.count_launches(), 1);
        let after = ctx.timeline();
        assert_eq!(after.launches, before.launches, "no separate parallel_for");
        assert_eq!(after.reductions - before.reductions, 1);
        let expect: f64 = (0..n)
            .map(|i| {
                let yv = 1.0 + (i % 3) as f64;
                (i as f64 + 0.5 * yv) * yv
            })
            .sum();
        assert_eq!(dot.to_bits(), expect.to_bits(), "serial fold order");
    }

    #[test]
    fn fused_matches_eager_bitwise() {
        let ctx = ctx();
        let n = 777;
        let mk = || {
            (
                ctx.array_from_fn(n, |i| (i as f64).sin()).unwrap(),
                ctx.array_from_fn(n, |i| (i as f64 * 0.1).cos()).unwrap(),
                ctx.zeros::<f64>(n).unwrap(),
            )
        };
        let run = |eager: bool| -> (Vec<u64>, Vec<u64>, u64) {
            let (x, y, z) = mk();
            let mut f = ctx.fused();
            if eager {
                f = f.eager();
            }
            let xv = f.assign(&x, load(&x) * 1.5 - load(&y));
            let zv = f.assign(&z, xv.clone().abs().sqrt() + load(&y));
            let s = f.sum(zv.max(xv));
            (
                bits(&ctx.to_host(&x).unwrap()),
                bits(&ctx.to_host(&z).unwrap()),
                s.to_bits(),
            )
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn barrier_and_reload_split_groups() {
        let ctx = ctx();
        let n = 100;
        let x = ctx.zeros::<f64>(n).unwrap();
        let y = ctx.zeros::<f64>(n).unwrap();

        // Explicit barrier: 2 launches.
        let mut f = ctx.fused();
        f.assign(&x, lit(1.0) + load(&y));
        f.barrier();
        f.assign(&y, lit(2.0) * load(&x).min(lit(8.0)));
        f.run();
        assert_eq!(f.count_launches(), 2);

        // Raw reload of a stored buffer: planner splits on the hazard.
        let mut f = ctx.fused();
        f.assign(&x, load(&y) + 1.0);
        f.assign(&y, load(&x) * 2.0); // reload of x, not the forward
        f.run();
        assert_eq!(f.count_launches(), 2);
        let xs = ctx.to_host(&x).unwrap();
        let ys = ctx.to_host(&y).unwrap();
        assert_eq!(xs[0], 3.0);
        assert_eq!(ys[0], 6.0);
    }

    #[test]
    fn extent_change_splits_groups() {
        let ctx = ctx();
        let a = ctx.zeros::<f64>(64).unwrap();
        let b = ctx.zeros::<f64>(128).unwrap();
        let mut f = ctx.fused();
        f.assign(&a, lit(1.0) + load(&a));
        f.assign(&b, lit(2.0) + load(&b));
        f.run();
        assert_eq!(f.count_launches(), 2);
    }

    #[test]
    fn fused_2d_and_3d_assignments() {
        let ctx = ctx();
        let a = ctx.zeros2::<f64>(5, 7).unwrap();
        let b = ctx.zeros2::<f64>(5, 7).unwrap();
        let mut f = ctx.fused();
        let av = f.assign(&a, load(&a) + 3.0);
        let bv = f.assign(&b, av * 2.0);
        let s = f.sum(bv);
        assert_eq!(f.count_launches(), 1);
        assert_eq!(s, 5.0 * 7.0 * 6.0);

        let c = ctx.zeros3::<f64>(3, 4, 5).unwrap();
        let mut f = ctx.fused();
        let cv = f.assign(&c, load(&c) + 1.0);
        let s = f.sum(cv.clone() * cv);
        assert_eq!(f.count_launches(), 1);
        assert_eq!(s, 60.0);
    }

    #[test]
    fn eval_entry_points() {
        let ctx = ctx();
        let n = 50;
        let x = ctx.array_from_fn(n, |i| i as f64).unwrap();
        let z = (load(&x) * 2.0).eval(&ctx).unwrap();
        assert_eq!(ctx.to_host(&z).unwrap()[10], 20.0);
        (load(&x) + 1.0).eval_into(&ctx, &z);
        assert_eq!(ctx.to_host(&z).unwrap()[10], 11.0);
        let s = load(&x).eval_sum(&ctx);
        assert_eq!(s, (n * (n - 1) / 2) as f64);
    }

    #[test]
    fn min_max_reductions() {
        let ctx = ctx();
        let x = ctx
            .array_from_fn(101, |i| ((i as f64) - 50.0) * ((i % 13) as f64))
            .unwrap();
        let lo = ctx.fused().reduce(load(&x), ReduceKind::Min);
        let hi = ctx.fused().reduce(load(&x), ReduceKind::Max);
        let host = ctx.to_host(&x).unwrap();
        assert_eq!(lo, host.iter().cloned().fold(f64::INFINITY, f64::min));
        assert_eq!(hi, host.iter().cloned().fold(f64::NEG_INFINITY, f64::max));
    }

    #[test]
    fn shared_subexpressions_compile_once() {
        let ctx = ctx();
        let n = 10;
        let x = ctx.array_from_fn(n, |i| i as f64).unwrap();
        let y = ctx.zeros::<f64>(n).unwrap();
        let e = load(&x) * 2.0;
        let mut f = ctx.fused();
        // `e` appears twice through the same Rc: CSE keeps the fused group
        // inside the node budget and reads x only once per index.
        f.assign(&y, e.clone() + e.clone() * e);
        f.run();
        assert_eq!(f.count_launches(), 1);
        let ys = ctx.to_host(&y).unwrap();
        assert_eq!(ys[3], 6.0 + 36.0);
    }

    #[test]
    #[should_panic(expected = "different extents")]
    fn zip_extent_mismatch_panics() {
        let ctx = ctx();
        let a = ctx.zeros::<f64>(4).unwrap();
        let b = ctx.zeros::<f64>(5).unwrap();
        let mut f = ctx.fused();
        f.assign(&a, load(&a) + load(&b));
        f.run();
    }

    #[test]
    #[should_panic(expected = "another context")]
    fn cross_context_panics() {
        let c1 = ctx();
        let c2 = ctx();
        let a = c1.zeros::<f64>(4).unwrap();
        let mut f = c2.fused();
        f.assign(&a, load(&a) + 1.0);
        f.run();
    }

    #[test]
    fn node_budget_splits() {
        let ctx = ctx();
        let n = 16;
        let x = ctx.array_from_fn(n, |i| i as f64 + 1.0).unwrap();
        let y = ctx.zeros::<f64>(n).unwrap();
        let mut f = ctx.fused();
        // Each statement ~21 nodes; three of them exceed MAX_NODES = 64,
        // so the planner must split at least once — and results stay right.
        for _ in 0..3 {
            let mut e = load(&x);
            for _ in 0..10 {
                e = e * 1.0 + 0.0;
            }
            f.assign(&y, e);
        }
        f.run();
        assert!(f.count_launches() >= 2, "{}", f.count_launches());
        let ys = ctx.to_host(&y).unwrap();
        assert_eq!(ys[3], 4.0);
    }
}
