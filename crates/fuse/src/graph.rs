//! Expression-graph node types.
//!
//! An [`Expr`](crate::Expr) is a small immutable DAG of [`ENode`]s shared
//! through `Rc`, built by the operator overloads in the crate root. Nodes
//! reference arrays through rank-erased views ([`AnyView`] /
//! [`AnyViewMut`]) addressed by the **linear** (column-major) element
//! index, the same cell order the eager front end touches, so fused and
//! eager evaluation read and write byte-identical locations.

use racc_core::{Array1, Array2, Array3, View1, View2, View3, ViewMut1, ViewMut2, ViewMut3};

/// Iteration space of an expression: the shape of every array it touches.
/// Two extents fuse only when they are exactly equal (same rank *and*
/// dims) — equal totals with different shapes launch differently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Extent {
    /// 1D of `n` elements.
    D1(usize),
    /// 2D of `m × n` elements (column-major).
    D2(usize, usize),
    /// 3D of `m × n × l` elements (column-major).
    D3(usize, usize, usize),
}

impl Extent {
    /// Total number of elements.
    pub fn total(self) -> usize {
        match self {
            Extent::D1(n) => n,
            Extent::D2(m, n) => m * n,
            Extent::D3(m, n, l) => m * n * l,
        }
    }
}

/// Elementwise unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `-x`
    Neg,
    /// `x.abs()`
    Abs,
    /// `x.sqrt()`
    Sqrt,
}

impl UnOp {
    #[inline]
    pub(crate) fn apply(self, a: f64) -> f64 {
        match self {
            UnOp::Neg => -a,
            UnOp::Abs => a.abs(),
            UnOp::Sqrt => a.sqrt(),
        }
    }
}

/// Elementwise binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `a + b`
    Add,
    /// `a - b`
    Sub,
    /// `a * b`
    Mul,
    /// `a / b`
    Div,
    /// `a.min(b)`
    Min,
    /// `a.max(b)`
    Max,
}

impl BinOp {
    #[inline]
    pub(crate) fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::Div => a / b,
            BinOp::Min => a.min(b),
            BinOp::Max => a.max(b),
        }
    }
}

/// A read-only view of any rank, addressed by linear index.
#[derive(Clone)]
pub(crate) enum AnyView {
    D1(View1<f64>),
    D2(View2<f64>),
    D3(View3<f64>),
}

impl AnyView {
    /// Element at linear (column-major) index `idx` within `extent`. The
    /// index decomposition matches the view's own layout, so the physical
    /// cell touched — and the racecheck access key — is the same one the
    /// eager construct of the same rank touches.
    #[inline]
    pub(crate) fn get(&self, extent: Extent, idx: usize) -> f64 {
        match (self, extent) {
            (AnyView::D1(v), _) => v.get(idx),
            (AnyView::D2(v), Extent::D2(m, _)) => v.get(idx % m, idx / m),
            (AnyView::D3(v), Extent::D3(m, n, _)) => {
                let mn = m * n;
                let (k, r) = (idx / mn, idx % mn);
                v.get(r % m, r / m, k)
            }
            _ => unreachable!("extent rank mismatch with view rank"),
        }
    }
}

/// A writable view of any rank, addressed by linear index.
#[derive(Clone)]
pub(crate) enum AnyViewMut {
    D1(ViewMut1<f64>),
    D2(ViewMut2<f64>),
    D3(ViewMut3<f64>),
}

impl AnyViewMut {
    #[inline]
    pub(crate) fn set(&self, extent: Extent, idx: usize, value: f64) {
        match (self, extent) {
            (AnyViewMut::D1(v), _) => v.set(idx, value),
            (AnyViewMut::D2(v), Extent::D2(m, _)) => v.set(idx % m, idx / m, value),
            (AnyViewMut::D3(v), Extent::D3(m, n, _)) => {
                let mn = m * n;
                let (k, r) = (idx / mn, idx % mn);
                v.set(r % m, r / m, k, value)
            }
            _ => unreachable!("extent rank mismatch with view rank"),
        }
    }
}

/// A leaf array reference: view + buffer identity + provenance. Public
/// only because [`Fusable`] mentions it; opaque outside the crate.
#[doc(hidden)]
#[derive(Clone)]
pub struct LoadRef {
    pub(crate) view: AnyView,
    /// Buffer identity (`Array*::buffer_id`): the aliasing key the planner
    /// uses for read-after-write hazards.
    pub(crate) id: usize,
    pub(crate) ctx_id: u64,
    pub(crate) extent: Extent,
}

/// A store destination: writable view + buffer identity + provenance.
/// Public only because [`Fusable`] mentions it; opaque outside the crate.
#[doc(hidden)]
#[derive(Clone)]
pub struct StoreRef {
    pub(crate) view: AnyViewMut,
    pub(crate) id: usize,
    pub(crate) ctx_id: u64,
    pub(crate) extent: Extent,
}

/// One DAG node. `Expr` wraps `Rc<ENode>`; shared subexpressions share the
/// allocation, which the group compiler exploits for CSE (one compiled
/// node per distinct `Rc`).
pub(crate) enum ENode {
    Load(LoadRef),
    Scalar(f64),
    Unary(UnOp, crate::Expr),
    Binary(BinOp, crate::Expr, crate::Expr),
    /// The value stored by program statement `stmt` (what
    /// [`Fused::assign`](crate::Fused::assign) returns). Inside the group
    /// that executes `stmt` this *forwards* the in-register value; in any
    /// later group it degrades to a reload of the materialized
    /// destination.
    Forward {
        stmt: usize,
        reload: LoadRef,
    },
}

/// Arrays that can appear in fused expressions. Sealed: implemented for
/// `Array1<f64>`, `Array2<f64>` and `Array3<f64>` (the expression engine
/// interprets in f64, the element type of every paper workload).
pub trait Fusable: sealed::Sealed {
    #[doc(hidden)]
    fn load_ref(&self) -> LoadRef;
    #[doc(hidden)]
    fn store_ref(&self) -> StoreRef;
}

mod sealed {
    pub trait Sealed {}
    impl Sealed for racc_core::Array1<f64> {}
    impl Sealed for racc_core::Array2<f64> {}
    impl Sealed for racc_core::Array3<f64> {}
}

impl Fusable for Array1<f64> {
    fn load_ref(&self) -> LoadRef {
        LoadRef {
            view: AnyView::D1(self.view()),
            id: self.buffer_id(),
            ctx_id: self.ctx_id(),
            extent: Extent::D1(self.len()),
        }
    }

    fn store_ref(&self) -> StoreRef {
        StoreRef {
            view: AnyViewMut::D1(self.view_mut()),
            id: self.buffer_id(),
            ctx_id: self.ctx_id(),
            extent: Extent::D1(self.len()),
        }
    }
}

impl Fusable for Array2<f64> {
    fn load_ref(&self) -> LoadRef {
        let (m, n) = self.dims();
        LoadRef {
            view: AnyView::D2(self.view()),
            id: self.buffer_id(),
            ctx_id: self.ctx_id(),
            extent: Extent::D2(m, n),
        }
    }

    fn store_ref(&self) -> StoreRef {
        let (m, n) = self.dims();
        StoreRef {
            view: AnyViewMut::D2(self.view_mut()),
            id: self.buffer_id(),
            ctx_id: self.ctx_id(),
            extent: Extent::D2(m, n),
        }
    }
}

impl Fusable for Array3<f64> {
    fn load_ref(&self) -> LoadRef {
        let (m, n, l) = self.dims();
        LoadRef {
            view: AnyView::D3(self.view()),
            id: self.buffer_id(),
            ctx_id: self.ctx_id(),
            extent: Extent::D3(m, n, l),
        }
    }

    fn store_ref(&self) -> StoreRef {
        let (m, n, l) = self.dims();
        StoreRef {
            view: AnyViewMut::D3(self.view_mut()),
            id: self.buffer_id(),
            ctx_id: self.ctx_id(),
            extent: Extent::D3(m, n, l),
        }
    }
}
