//! The fused-plan cache.
//!
//! Maps a program's canonical shape key (see [`crate::compile`]) to its
//! compiled [`CachedProgram`], so steady-state evaluation — the CG loop
//! re-issuing the same update chain every iteration — skips planning and
//! lowering entirely and goes straight to the specialized executors.
//!
//! The cache is deliberately small and flat: a linear-scanned `Vec` of
//! entries behind one mutex, FNV-1a-prefiltered, LRU-evicted at the
//! configured capacity. Contexts hold a handful of *distinct* program
//! shapes (the key ignores array identities, extents class by slot, and
//! scalar values), so a scan over ≤ 32 entries beats a hash table's
//! indirections and keeps the hit path allocation-free. Counters live in
//! the context's [`PlanCacheCounters`] so `ctx.stats()` reads them
//! without reaching into this crate.

use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, PoisonError};

use racc_core::stats::PlanCacheCounters;
use racc_core::PlanCacheMode;

use crate::compile::CachedProgram;

/// One cached program keyed by `(hash, key, name)`. The profile name is
/// compared separately from the token stream because it is a `&'static
/// str`, not part of the canonical shape.
struct Entry {
    hash: u64,
    key: Vec<u32>,
    name: &'static str,
    program: Arc<CachedProgram>,
    last_used: u64,
}

struct CacheInner {
    entries: Vec<Entry>,
    tick: u64,
}

/// The per-context plan cache, parked in the context's
/// [`PlanCacheSlot`](racc_core::stats::PlanCacheSlot).
pub(crate) struct PlanCache {
    /// Capacity 0 means caching is off: every lookup misses and inserts
    /// are dropped (misses still count, so `stats()` reports compiles).
    capacity: usize,
    counters: Arc<PlanCacheCounters>,
    inner: Mutex<CacheInner>,
}

/// FNV-1a over the token stream plus the program name — a cheap prefilter
/// so the linear scan compares full keys only on hash equality. Tokens
/// are mixed a word at a time (one multiply per token, not per byte):
/// the hash runs on every evaluation, hit or miss, so it sits on the
/// steady-state path.
pub(crate) fn hash_key(key: &[u32], name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |word: u64| {
        h ^= word;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for tok in key {
        mix(u64::from(*tok));
    }
    for b in name.bytes() {
        mix(u64::from(b));
    }
    h
}

impl PlanCache {
    pub(crate) fn new(mode: PlanCacheMode, counters: Arc<PlanCacheCounters>) -> Self {
        PlanCache {
            capacity: mode.capacity(),
            counters,
            inner: Mutex::new(CacheInner {
                entries: Vec::new(),
                tick: 0,
            }),
        }
    }

    /// Look up a program by pre-computed hash + full key. Bumps the hit or
    /// miss counter; clones the `Arc` out so the lock is released before
    /// the program executes.
    pub(crate) fn lookup(
        &self,
        hash: u64,
        key: &[u32],
        name: &'static str,
    ) -> Option<Arc<CachedProgram>> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.tick += 1;
        let tick = inner.tick;
        let found = inner
            .entries
            .iter_mut()
            .find(|e| e.hash == hash && e.name == name && e.key == key);
        match found {
            Some(entry) => {
                entry.last_used = tick;
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.program))
            }
            None => {
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert a freshly compiled program, evicting the least-recently-used
    /// entry at capacity. A no-op when caching is off.
    pub(crate) fn insert(
        &self,
        hash: u64,
        key: &[u32],
        name: &'static str,
        program: Arc<CachedProgram>,
    ) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        // A racing evaluation of the same program may have inserted first;
        // keep the existing entry so the cache never holds duplicates.
        if inner
            .entries
            .iter()
            .any(|e| e.hash == hash && e.name == name && e.key == key)
        {
            return;
        }
        if inner.entries.len() >= self.capacity {
            let lru = inner
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("capacity >= 1 implies a candidate");
            inner.entries.swap_remove(lru);
            self.counters.evictions.fetch_add(1, Ordering::Relaxed);
        }
        inner.tick += 1;
        let tick = inner.tick;
        inner.entries.push(Entry {
            hash,
            key: key.to_vec(),
            name,
            program,
            last_used: tick,
        });
        self.counters
            .entries
            .store(inner.entries.len() as u64, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn program() -> Arc<CachedProgram> {
        Arc::new(CachedProgram { groups: Vec::new() })
    }

    fn counters(cache: &PlanCache) -> (u64, u64, u64) {
        (
            cache.counters.hits.load(Ordering::Relaxed),
            cache.counters.misses.load(Ordering::Relaxed),
            cache.counters.evictions.load(Ordering::Relaxed),
        )
    }

    #[test]
    fn hit_after_insert_and_name_discriminates() {
        let cache = PlanCache::new(PlanCacheMode::Capacity(4), Arc::default());
        let key = [1u32, 2, 3];
        let h = hash_key(&key, "fused");
        assert!(cache.lookup(h, &key, "fused").is_none());
        cache.insert(h, &key, "fused", program());
        assert!(cache.lookup(h, &key, "fused").is_some());
        // Same tokens, different program name: distinct entry.
        let h2 = hash_key(&key, "other");
        assert!(cache.lookup(h2, &key, "other").is_none());
        assert_eq!(counters(&cache), (1, 2, 0));
    }

    #[test]
    fn capacity_one_evicts_lru() {
        let cache = PlanCache::new(PlanCacheMode::Capacity(1), Arc::default());
        let (a, b) = ([1u32], [2u32]);
        let (ha, hb) = (hash_key(&a, "fused"), hash_key(&b, "fused"));
        cache.insert(ha, &a, "fused", program());
        cache.insert(hb, &b, "fused", program());
        assert!(cache.lookup(ha, &a, "fused").is_none(), "a was evicted");
        assert!(cache.lookup(hb, &b, "fused").is_some());
        assert_eq!(counters(&cache).2, 1);
    }

    #[test]
    fn off_mode_never_stores() {
        let cache = PlanCache::new(PlanCacheMode::Off, Arc::default());
        let key = [7u32];
        let h = hash_key(&key, "fused");
        cache.insert(h, &key, "fused", program());
        assert!(cache.lookup(h, &key, "fused").is_none());
        let (hits, misses, _) = counters(&cache);
        assert_eq!((hits, misses), (0, 1));
    }
}
