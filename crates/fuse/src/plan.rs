//! Fusion planner and group compiler.
//!
//! Planning walks the program's statements in order and greedily grows a
//! *fusion group* — a run of statements that one launch may execute. A
//! group is closed (its destinations materialize) at:
//!
//! * an explicit [`Fused::barrier`](crate::Fused::barrier);
//! * an **extent change** — statements launch together only over the
//!   exact same iteration space (rank and dims);
//! * a **read-after-write hazard**: a statement *reloads* (raw
//!   [`load`](crate::load), or a forward that degraded to a reload) a
//!   buffer some earlier statement of the group stores. Values must then
//!   flow through memory, not through the graph. Today's node set is
//!   purely same-index elementwise, so this split is conservative — but it
//!   is exactly the rule that stays sound once non-elementwise reads
//!   (stencil shifts, gathers) join the node set, and the fused path
//!   (using the `Expr` returned by `assign`) loses nothing;
//! * a **clobbered forward**: a forward to in-group statement `k` whose
//!   destination a later in-group statement overwrites — eagerly the use
//!   reads the clobbered bytes, so the value may not stay in registers
//!   (see [`blocks_fusion`]);
//! * the **node budget** [`MAX_NODES`]: the per-index interpreter keeps
//!   its value scratch in a fixed array so fused kernels stay
//!   allocation-free per element.
//!
//! Splitting is always semantics-preserving: a program split at every
//! statement *is* the eager front end.
//!
//! Compilation then flattens each group's expression DAGs into a flat
//! node list in topological order, deduplicating shared subexpressions by
//! `Rc` identity (CSE), resolving forwards, and deriving the group's
//! summed [`KernelProfile`] — FLOPs per arithmetic node, 8 bytes read per
//! distinct load, 8 written per store — so the analytic perf model prices
//! the fused launch like the single memory sweep it performs.

use std::collections::HashMap;
use std::rc::Rc;

use racc_core::KernelProfile;

use crate::graph::{AnyView, AnyViewMut, ENode, Extent, LoadRef, StoreRef, UnOp};
use crate::{BinOp, Expr, ReduceKind};

/// Upper bound on compiled nodes per fused group — the size of the
/// per-index value scratch array. A single statement larger than this
/// cannot be executed and panics with advice to split it.
pub const MAX_NODES: usize = 64;

/// One statement: store `expr` into `dst`.
pub(crate) struct Stmt {
    pub dst: StoreRef,
    pub expr: Expr,
}

/// A planned group: statement indices plus an optional terminal reduce.
pub(crate) struct Group {
    pub extent: Extent,
    pub stmts: Vec<usize>,
    pub reduce: Option<(Expr, ReduceKind)>,
}

/// A compiled node, evaluated in index order into the scratch array.
pub(crate) enum CNode {
    Load(AnyView, Extent),
    Scalar(f64),
    Un(UnOp, u16),
    Bin(BinOp, u16, u16),
}

/// An executable group: flat nodes, stores, optional reduce root.
pub(crate) struct Compiled {
    pub extent: Extent,
    pub nodes: Vec<CNode>,
    /// `(destination, value-node)` in statement order.
    pub stores: Vec<(AnyViewMut, Extent, u16)>,
    pub reduce: Option<(u16, ReduceKind)>,
    pub profile: KernelProfile,
    /// Context ids of every array touched, for the cross-context guard.
    pub ctx_ids: Vec<u64>,
}

/// Number of nodes a tree compiles to at most (no cross-statement CSE
/// assumed). Used for the planner's budget check.
fn tree_size(expr: &Expr, seen: &mut HashMap<*const ENode, ()>) -> usize {
    let ptr = Rc::as_ptr(&expr.node);
    if seen.insert(ptr, ()).is_some() {
        return 0;
    }
    match &*expr.node {
        ENode::Load(_) | ENode::Scalar(_) | ENode::Forward { .. } => 1,
        ENode::Unary(_, a) => 1 + tree_size(a, seen),
        ENode::Binary(_, a, b) => 1 + tree_size(a, seen) + tree_size(b, seen),
    }
}

/// Would fusing a statement with this expression into the current group
/// read memory at the wrong time? `store_seq` is `(stmt index, buffer
/// id)` for every store the group performs so far. Two cases split:
///
/// * a **reload** — a raw load, or a forward that degrades to one — of a
///   buffer some group statement stores (read-after-write: the value must
///   flow through memory);
/// * a **clobbered forward** — a forward to in-group statement `k` whose
///   destination a *later* in-group statement overwrites. The eager
///   reading of that forward is "reload `dst(k)`", which by now holds the
///   clobbering statement's bytes, not `k`'s value, so in-register
///   forwarding would diverge.
fn blocks_fusion(expr: &Expr, in_group: &[usize], store_seq: &[(usize, usize)]) -> bool {
    match &*expr.node {
        ENode::Load(l) => store_seq.iter().any(|&(_, id)| id == l.id),
        ENode::Scalar(_) => false,
        ENode::Unary(_, a) => blocks_fusion(a, in_group, store_seq),
        ENode::Binary(_, a, b) => {
            blocks_fusion(a, in_group, store_seq) || blocks_fusion(b, in_group, store_seq)
        }
        ENode::Forward { stmt, reload } => {
            if in_group.contains(stmt) {
                store_seq
                    .iter()
                    .any(|&(sj, id)| id == reload.id && sj > *stmt)
            } else {
                store_seq.iter().any(|&(_, id)| id == reload.id)
            }
        }
    }
}

/// The extent of an expression (the common extent of its leaves), if it
/// touches any array at all. Panics on an in-expression mismatch — that is
/// a malformed zip, not a fusion boundary.
pub(crate) fn expr_extent(expr: &Expr) -> Option<Extent> {
    fn walk(expr: &Expr, found: &mut Option<Extent>) {
        match &*expr.node {
            ENode::Load(l) => merge(found, l.extent),
            ENode::Scalar(_) => {}
            ENode::Unary(_, a) => walk(a, found),
            ENode::Binary(_, a, b) => {
                walk(a, found);
                walk(b, found);
            }
            ENode::Forward { reload, .. } => merge(found, reload.extent),
        }
    }
    fn merge(found: &mut Option<Extent>, e: Extent) {
        match found {
            None => *found = Some(e),
            Some(prev) => assert_eq!(
                *prev, e,
                "fused expression zips arrays of different extents"
            ),
        }
    }
    let mut found = None;
    walk(expr, &mut found);
    found
}

/// Greedy fusion planning over the statement list. `eager` forces one
/// group per statement (the reference semantics).
pub(crate) fn plan(
    stmts: &[Stmt],
    barriers: &[usize],
    terminal: Option<(Expr, ReduceKind)>,
    eager: bool,
) -> Vec<Group> {
    let mut groups: Vec<Group> = Vec::new();
    let mut cur: Option<Group> = None;
    let mut cur_nodes = 0usize;
    // `(stmt index, dst buffer id)` per store of the open group.
    let mut cur_stores: Vec<(usize, usize)> = Vec::new();

    let mut close =
        |cur: &mut Option<Group>, stores: &mut Vec<(usize, usize)>, nodes: &mut usize| {
            if let Some(g) = cur.take() {
                groups.push(g);
            }
            stores.clear();
            *nodes = 0;
        };

    for (i, stmt) in stmts.iter().enumerate() {
        if barriers.contains(&i) {
            close(&mut cur, &mut cur_stores, &mut cur_nodes);
        }
        let extent = stmt.dst.extent;
        if let Some(e) = expr_extent(&stmt.expr) {
            assert_eq!(
                e, extent,
                "fused statement stores extent {extent:?} from expression extent {e:?}"
            );
        }
        let est = tree_size(&stmt.expr, &mut HashMap::new()) + 1;
        assert!(
            est <= MAX_NODES,
            "a single fused statement needs {est} nodes (max {MAX_NODES}); split the expression"
        );
        let split = match &cur {
            None => true,
            Some(g) => {
                eager
                    || g.extent != extent
                    || cur_nodes + est > MAX_NODES
                    || blocks_fusion(&stmt.expr, &g.stmts, &cur_stores)
            }
        };
        if split {
            close(&mut cur, &mut cur_stores, &mut cur_nodes);
            cur = Some(Group {
                extent,
                stmts: vec![i],
                reduce: None,
            });
            cur_nodes = est;
        } else {
            let g = cur.as_mut().expect("group exists");
            g.stmts.push(i);
            cur_nodes += est;
        }
        cur_stores.push((i, stmt.dst.id));
    }

    if let Some((expr, kind)) = terminal {
        let extent = expr_extent(&expr)
            .expect("a fused reduction needs at least one array in its expression");
        let est = tree_size(&expr, &mut HashMap::new()) + 1;
        assert!(
            est <= MAX_NODES,
            "fused reduction needs {est} nodes (max {MAX_NODES}); split the expression"
        );
        let fits = match &cur {
            Some(g) => {
                !eager
                    && g.extent == extent
                    && cur_nodes + est <= MAX_NODES
                    && !blocks_fusion(&expr, &g.stmts, &cur_stores)
            }
            None => false,
        };
        if fits {
            cur.as_mut().expect("group exists").reduce = Some((expr, kind));
        } else {
            close(&mut cur, &mut cur_stores, &mut cur_nodes);
            cur = Some(Group {
                extent,
                stmts: Vec::new(),
                reduce: Some((expr, kind)),
            });
        }
    }
    close(&mut cur, &mut cur_stores, &mut cur_nodes);
    groups
}

/// Per-group compilation state.
struct GroupCompiler<'p> {
    stmts: &'p [Stmt],
    in_group: &'p [usize],
    /// `Rc` identity → compiled node (CSE).
    memo: HashMap<*const ENode, u16>,
    /// Statement index → its value node, for forward resolution.
    stmt_values: HashMap<usize, u16>,
    nodes: Vec<CNode>,
    loads: usize,
    flops: usize,
    ctx_ids: Vec<u64>,
}

impl GroupCompiler<'_> {
    fn push(&mut self, node: CNode) -> u16 {
        assert!(
            self.nodes.len() < MAX_NODES,
            "fused group exceeded {MAX_NODES} nodes; planner budget violated"
        );
        self.nodes.push(node);
        (self.nodes.len() - 1) as u16
    }

    fn load(&mut self, l: &LoadRef) -> u16 {
        self.loads += 1;
        self.ctx_ids.push(l.ctx_id);
        self.push(CNode::Load(l.view.clone(), l.extent))
    }

    fn compile(&mut self, expr: &Expr) -> u16 {
        let ptr = Rc::as_ptr(&expr.node);
        if let Some(&id) = self.memo.get(&ptr) {
            return id;
        }
        let id = match &*expr.node {
            ENode::Load(l) => self.load(l),
            ENode::Scalar(v) => self.push(CNode::Scalar(*v)),
            ENode::Unary(op, a) => {
                let a = self.compile(a);
                self.flops += 1;
                self.push(CNode::Un(*op, a))
            }
            ENode::Binary(op, a, b) => {
                let a = self.compile(a);
                let b = self.compile(b);
                self.flops += 1;
                self.push(CNode::Bin(*op, a, b))
            }
            ENode::Forward { stmt, reload } => {
                if self.in_group.contains(stmt) {
                    // In-group forward: reuse the statement's value node.
                    // Statements compile in program order, so it exists.
                    *self
                        .stmt_values
                        .get(stmt)
                        .expect("forward target compiled before use")
                } else {
                    self.load(reload)
                }
            }
        };
        self.memo.insert(ptr, id);
        id
    }
}

/// Flattens one planned group into an executable [`Compiled`]. `eager`
/// groups (one statement each) keep an unflagged `expr` profile so their
/// spans stay on the plain kernel/reduction lanes.
pub(crate) fn compile(stmts: &[Stmt], group: &Group, eager: bool) -> Compiled {
    let mut c = GroupCompiler {
        stmts,
        in_group: &group.stmts,
        memo: HashMap::new(),
        stmt_values: HashMap::new(),
        nodes: Vec::new(),
        loads: 0,
        flops: 0,
        ctx_ids: Vec::new(),
    };
    let mut stores = Vec::new();
    for &si in &group.stmts {
        let stmt = &c.stmts[si];
        let value = c.compile(&stmt.expr);
        c.stmt_values.insert(si, value);
        c.ctx_ids.push(stmt.dst.ctx_id);
        stores.push((stmt.dst.view.clone(), stmt.dst.extent, value));
    }
    let reduce = group.reduce.as_ref().map(|(expr, kind)| {
        let root = c.compile(expr);
        // The reduction combine is one more FLOP per element, matching the
        // canonical eager DOT profile (multiply + add = 2).
        c.flops += 1;
        (root, *kind)
    });
    let profile = KernelProfile::new(
        if eager { "expr" } else { "fused" },
        c.flops as f64,
        (c.loads * 8) as f64,
        (stores.len() * 8) as f64,
    );
    let profile = if eager { profile } else { profile.as_fused() };
    Compiled {
        extent: group.extent,
        nodes: c.nodes,
        stores,
        reduce,
        profile,
        ctx_ids: c.ctx_ids,
    }
}
