//! Compiled fused plans: canonical shape keys, slot-based tapes, and
//! whole-group specialized executors.
//!
//! The interpreter in [`crate::exec`] re-walks the expression DAG and
//! zeroes a full 64-slot scratch array *per element, per launch* — fine
//! for one-shot programs, wasteful for the steady-state case where the
//! same chain (the CG update, a relaxation sweep) is re-issued thousands
//! of times with only the array bindings and scalar values changing.
//!
//! Compilation splits a program into **shape** and **bindings**:
//!
//! * [`ingest`] walks the statements once and produces, in a single
//!   allocation-free pass, a canonical token stream (the cache key) plus
//!   positional binding tables (views, scalars, extents). The key encodes
//!   structure only — ops, extent *slots*, buffer-aliasing pattern,
//!   `Rc`-sharing pattern — never array identities, sizes, or scalar
//!   values, so the CG loop's changing `alpha` and a shape-identical
//!   chain over different arrays both hit the same entry.
//! * On a miss, the planner groups statements exactly as the interpreter
//!   would, and each group is lowered to a [`CachedGroup`]: a flat tape
//!   of slot-indexed [`TOp`]s sized to the smallest power-of-two scratch
//!   class, plus (when the group matches a known hot shape) a
//!   [`Template`] executor whose per-element body is a direct closure
//!   with every load, store and scalar hoisted out of the loop.
//! * On a hit, the cached program executes immediately against the fresh
//!   bindings: no planning, no DAG walk, no allocation.
//!
//! Every execution path performs the identical f64 operations in the
//! identical order as the eager statement sequence, through the same
//! backend primitive over the same extent — compiled evaluation stays
//! bit-identical to eager and interpreted evaluation (the differential
//! tests pin all three).

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::rc::Rc;

use racc_core::{Backend, Context, KernelProfile, Max, Min, Sum, View1, ViewMut1};

use crate::graph::{AnyView, AnyViewMut, BinOp, ENode, Extent, UnOp};
use crate::plan::{Group, Stmt};
use crate::{Expr, ReduceKind};

// Token tags (high byte of each u32) for the canonical key stream. The
// low bits carry small payloads: the extent rank for loads/stores, the
// operator id for ops, the reduce kind.
const TOK_STORE: u32 = 0x0100_0000;
const TOK_LOAD: u32 = 0x0200_0000;
const TOK_SCALAR: u32 = 0x0300_0000;
const TOK_UN: u32 = 0x0400_0000;
const TOK_BIN: u32 = 0x0500_0000;
const TOK_FWD: u32 = 0x0600_0000;
const TOK_REF: u32 = 0x0700_0000;
const TOK_BARRIER: u32 = 0x0800_0000;
const TOK_REDUCE: u32 = 0x0900_0000;

const fn rank_bits(extent: Extent) -> u32 {
    match extent {
        Extent::D1(_) => 1,
        Extent::D2(..) => 2,
        Extent::D3(..) => 3,
    }
}

const fn un_id(op: UnOp) -> u32 {
    match op {
        UnOp::Neg => 0,
        UnOp::Abs => 1,
        UnOp::Sqrt => 2,
    }
}

const fn bin_id(op: BinOp) -> u32 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::Min => 4,
        BinOp::Max => 5,
    }
}

const fn kind_id(kind: ReduceKind) -> u32 {
    match kind {
        ReduceKind::Sum => 0,
        ReduceKind::Min => 1,
        ReduceKind::Max => 2,
    }
}

/// Identity hasher for the `*const ENode` memo maps. Heap addresses are
/// already well distributed; one multiply spreads the alignment zeros
/// into the low bits the table indexes by. Siphashing every node on the
/// steady-state ingest pass would cost more than the rest of the walk.
#[derive(Default)]
struct PtrHasher(u64);

impl Hasher for PtrHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 << 8) | u64::from(b);
        }
    }
    fn write_usize(&mut self, p: usize) {
        self.0 = (p as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

type PtrMap<V> = HashMap<*const ENode, V, BuildHasherDefault<PtrHasher>>;

/// Where a DAG node's value comes from at execution time.
pub(crate) enum SlotRef {
    /// A load binding (index into [`EvalScratch::loads`]).
    Load(u16),
    /// A scalar binding (index into [`EvalScratch::scalars`]).
    Scalar(u16),
    /// A forward; `reload` is the load binding used when the forward
    /// degrades to a reload outside its statement's group.
    Forward { reload: u16 },
    /// An interior operator node (no binding of its own).
    Op,
}

/// Per-DAG-node ingest record: first-visit ordinal (for `Rc`-sharing
/// tokens) plus the node's binding slot.
pub(crate) struct NodeMemo {
    pub ordinal: u32,
    pub slot: SlotRef,
}

/// Reusable per-evaluation state, pooled per thread by [`crate::Lazy`] so
/// steady-state evaluation allocates nothing: the program under
/// construction, the canonical key, and the positional binding tables the
/// cached program executes against. `clear` retains every capacity.
#[derive(Default)]
pub(crate) struct EvalScratch {
    /// The statements appended by `assign`/`store`.
    pub stmts: Vec<Stmt>,
    /// Statement indices before which an explicit barrier sits.
    pub barriers: Vec<usize>,
    /// Canonical shape key, filled by [`ingest`].
    pub key: Vec<u32>,
    /// Load bindings in first-visit order (slot = index).
    pub loads: Vec<(AnyView, Extent)>,
    /// Buffer slot (first-touch order) of each load binding — the
    /// aliasing pattern the key pins, exposed for template lowering.
    pub load_bufs: Vec<u32>,
    /// Store bindings in statement order (slot = statement index).
    pub stores: Vec<(AnyViewMut, Extent)>,
    /// Buffer slot of each store binding.
    pub store_bufs: Vec<u32>,
    /// Scalar bindings in first-visit order.
    pub scalars: Vec<f64>,
    /// Distinct extents by value (slot = index).
    pub extents: Vec<Extent>,
    /// Distinct buffer ids in first-touch order (aliasing pattern).
    buffers: Vec<usize>,
    /// `Rc` identity → ingest record; also the CSE table the lowering
    /// pass reads slots from.
    memo: PtrMap<NodeMemo>,
}

impl EvalScratch {
    pub(crate) fn clear(&mut self) {
        self.stmts.clear();
        self.barriers.clear();
        self.key.clear();
        self.loads.clear();
        self.load_bufs.clear();
        self.stores.clear();
        self.store_bufs.clear();
        self.scalars.clear();
        self.extents.clear();
        self.buffers.clear();
        self.memo.clear();
    }
}

struct Ingest<'a> {
    key: &'a mut Vec<u32>,
    loads: &'a mut Vec<(AnyView, Extent)>,
    load_bufs: &'a mut Vec<u32>,
    scalars: &'a mut Vec<f64>,
    extents: &'a mut Vec<Extent>,
    buffers: &'a mut Vec<usize>,
    memo: &'a mut PtrMap<NodeMemo>,
    ctx_id: u64,
    next_ordinal: u32,
}

impl Ingest<'_> {
    /// De Bruijn-style buffer slot: position in first-touch order, so the
    /// key captures which leaves alias without naming buffers.
    fn buffer_slot(&mut self, id: usize) -> u32 {
        match self.buffers.iter().position(|&b| b == id) {
            Some(i) => i as u32,
            None => {
                self.buffers.push(id);
                (self.buffers.len() - 1) as u32
            }
        }
    }

    /// Extent slot by *value* equality: the same program at a different
    /// size keys identically (the actual extents live in the bindings).
    fn extent_slot(&mut self, extent: Extent) -> u32 {
        match self.extents.iter().position(|&e| e == extent) {
            Some(i) => i as u32,
            None => {
                self.extents.push(extent);
                (self.extents.len() - 1) as u32
            }
        }
    }

    fn guard_ctx(&self, ctx_id: u64) {
        assert_eq!(
            ctx_id, self.ctx_id,
            "fused expression uses an array from another context"
        );
    }

    fn expr(&mut self, e: &Expr) {
        let ptr = Rc::as_ptr(&e.node);
        if let Some(m) = self.memo.get(&ptr) {
            // Shared subexpression: the sharing pattern is part of the
            // shape (it decides CSE and the planner's node budget), so it
            // must be part of the key.
            self.key.push(TOK_REF);
            self.key.push(m.ordinal);
            return;
        }
        let ordinal = self.next_ordinal;
        self.next_ordinal += 1;
        let slot = match &*e.node {
            ENode::Load(l) => {
                self.guard_ctx(l.ctx_id);
                let slot = self.loads.len() as u16;
                self.loads.push((l.view.clone(), l.extent));
                let buf = self.buffer_slot(l.id);
                self.load_bufs.push(buf);
                let ext = self.extent_slot(l.extent);
                self.key.push(TOK_LOAD | rank_bits(l.extent));
                self.key.push(buf);
                self.key.push(ext);
                SlotRef::Load(slot)
            }
            ENode::Scalar(v) => {
                // Occurrence only: the value is a binding, so a changing
                // coefficient (CG's alpha) still hits the cache.
                let slot = self.scalars.len() as u16;
                self.scalars.push(*v);
                self.key.push(TOK_SCALAR);
                SlotRef::Scalar(slot)
            }
            ENode::Unary(op, a) => {
                self.key.push(TOK_UN | un_id(*op));
                self.expr(a);
                SlotRef::Op
            }
            ENode::Binary(op, a, b) => {
                self.key.push(TOK_BIN | bin_id(*op));
                self.expr(a);
                self.expr(b);
                SlotRef::Op
            }
            ENode::Forward { stmt, reload } => {
                self.guard_ctx(reload.ctx_id);
                // Bind the reload unconditionally; it is only read when
                // the forward lands outside its statement's group, which
                // the key (and therefore the plan) fully determines.
                let slot = self.loads.len() as u16;
                self.loads.push((reload.view.clone(), reload.extent));
                let buf = self.buffer_slot(reload.id);
                self.load_bufs.push(buf);
                let ext = self.extent_slot(reload.extent);
                self.key.push(TOK_FWD);
                self.key.push(*stmt as u32);
                self.key.push(buf);
                self.key.push(ext);
                SlotRef::Forward { reload: slot }
            }
        };
        self.memo.insert(ptr, NodeMemo { ordinal, slot });
    }
}

/// One pass over the program: emit the canonical key and fill the binding
/// tables. Guards every leaf against cross-context arrays (same message
/// as the interpreted path).
pub(crate) fn ingest(s: &mut EvalScratch, ctx_id: u64, terminal: Option<(&Expr, ReduceKind)>) {
    let EvalScratch {
        stmts,
        barriers,
        key,
        loads,
        load_bufs,
        stores,
        store_bufs,
        scalars,
        extents,
        buffers,
        memo,
    } = s;
    let mut st = Ingest {
        key,
        loads,
        load_bufs,
        scalars,
        extents,
        buffers,
        memo,
        ctx_id,
        next_ordinal: 0,
    };
    for (i, stmt) in stmts.iter().enumerate() {
        if barriers.contains(&i) {
            st.key.push(TOK_BARRIER);
        }
        st.guard_ctx(stmt.dst.ctx_id);
        let buf = st.buffer_slot(stmt.dst.id);
        let ext = st.extent_slot(stmt.dst.extent);
        stores.push((stmt.dst.view.clone(), stmt.dst.extent));
        store_bufs.push(buf);
        st.key.push(TOK_STORE | rank_bits(stmt.dst.extent));
        st.key.push(buf);
        st.key.push(ext);
        st.expr(&stmt.expr);
    }
    if barriers.contains(&stmts.len()) {
        st.key.push(TOK_BARRIER);
    }
    if let Some((expr, kind)) = terminal {
        st.key.push(TOK_REDUCE | kind_id(kind));
        st.expr(expr);
    }
}

/// One tape instruction. Operands are scratch-array indices; `Load` and
/// `Scalar` name binding slots resolved per evaluation.
#[derive(Clone, Copy)]
pub(crate) enum TOp {
    Load(u16),
    Scalar(u16),
    Un(UnOp, u16),
    Bin(BinOp, u16, u16),
}

/// Scratch-array size class the tape executor is monomorphized over, so
/// a 5-node axpy chain zeroes 8 slots per element instead of 64.
#[derive(Clone, Copy)]
pub(crate) enum SizeClass {
    S8,
    S16,
    S32,
    S64,
}

/// Hot program shapes with hand-shaped executors: the whole group becomes
/// one direct closure, with bindings hoisted out of the element loop.
/// Fields are load/scalar binding slots. Templates are recognized on the
/// lowered tape, so recognition cost is paid once per cache miss.
#[derive(Clone, Copy)]
pub(crate) enum Template {
    /// `d0[i] = x[i] + a·p[i]; d1[i] = r[i] + b·s[i]; Σ d1[i]²` — the CG
    /// α-update (`racc_blas::fused::cg_update`).
    ///
    /// `in_place` is set when `x` aliases `d0` **and** `r` aliases `d1`
    /// (the actual CG update): the executor then reads and writes through
    /// one mutable view per vector, which the optimizer can keep in
    /// registers — two split views over the same buffer force it to
    /// assume every store may clobber the other view's loads. The cache
    /// key encodes the aliasing pattern, so the flag is valid for every
    /// evaluation that hits this plan.
    DualAxpySumSq {
        x: u16,
        a: u16,
        p: u16,
        r: u16,
        b: u16,
        s: u16,
        in_place: bool,
    },
    /// `d0[i] = x[i] + a·y[i]; Σ d0[i]·z[i]` — axpy feeding a dot
    /// (`racc_blas::fused::axpy_dot`). `in_place` as above, for `x`/`d0`.
    AxpyDot {
        x: u16,
        a: u16,
        y: u16,
        z: u16,
        in_place: bool,
    },
}

/// One lowered fusion group: pure shape, no bindings — safe to share
/// across threads and evaluations.
pub(crate) struct CachedGroup {
    /// Index into the evaluation's extent bindings.
    pub extent_slot: u16,
    pub ops: Vec<TOp>,
    /// `(store-binding slot, value-node index)` in statement order.
    pub stores: Vec<(u16, u16)>,
    pub reduce: Option<(u16, ReduceKind)>,
    pub size_class: SizeClass,
    pub template: Option<Template>,
    pub profile: KernelProfile,
}

/// A compiled program: the groups the planner formed, lowered to tapes.
pub(crate) struct CachedProgram {
    pub groups: Vec<CachedGroup>,
}

/// Mirrors [`crate::plan`]'s `GroupCompiler` — same traversal, same CSE,
/// same FLOP/byte accounting — but emits slot-indexed tape ops by reading
/// binding slots from the ingest memo instead of cloning views.
struct TapeCompiler<'p> {
    in_group: &'p [usize],
    slots: &'p PtrMap<NodeMemo>,
    memo: PtrMap<u16>,
    stmt_values: HashMap<usize, u16>,
    ops: Vec<TOp>,
    loads: usize,
    flops: usize,
}

impl TapeCompiler<'_> {
    fn push(&mut self, op: TOp) -> u16 {
        self.ops.push(op);
        (self.ops.len() - 1) as u16
    }

    fn compile(&mut self, e: &Expr) -> u16 {
        let ptr = Rc::as_ptr(&e.node);
        if let Some(&id) = self.memo.get(&ptr) {
            return id;
        }
        let slot = &self.slots.get(&ptr).expect("node ingested").slot;
        let id = match &*e.node {
            ENode::Load(_) => {
                let SlotRef::Load(s) = slot else {
                    unreachable!("load node has a load slot")
                };
                self.loads += 1;
                self.push(TOp::Load(*s))
            }
            ENode::Scalar(_) => {
                let SlotRef::Scalar(s) = slot else {
                    unreachable!("scalar node has a scalar slot")
                };
                self.push(TOp::Scalar(*s))
            }
            ENode::Unary(op, a) => {
                let a = self.compile(a);
                self.flops += 1;
                self.push(TOp::Un(*op, a))
            }
            ENode::Binary(op, a, b) => {
                let a = self.compile(a);
                let b = self.compile(b);
                self.flops += 1;
                self.push(TOp::Bin(*op, a, b))
            }
            ENode::Forward { stmt, .. } => {
                if self.in_group.contains(stmt) {
                    *self
                        .stmt_values
                        .get(stmt)
                        .expect("forward target compiled before use")
                } else {
                    let SlotRef::Forward { reload } = slot else {
                        unreachable!("forward node has a reload slot")
                    };
                    self.loads += 1;
                    self.push(TOp::Load(*reload))
                }
            }
        };
        self.memo.insert(ptr, id);
        id
    }
}

fn size_class(nodes: usize) -> SizeClass {
    match nodes {
        0..=8 => SizeClass::S8,
        9..=16 => SizeClass::S16,
        17..=32 => SizeClass::S32,
        _ => SizeClass::S64,
    }
}

/// Structural template recognition over the lowered tape. Only 1D groups
/// qualify (the hot BLAS chains), and only exact shapes — anything else
/// takes the generic tape, which is always correct.
///
/// Interleaving a template's stores between its statements is sound
/// because the planner never fuses a statement that loads a buffer an
/// earlier group statement stores: by the time a template writes `d0[i]`,
/// no later load of the group can observe it.
fn recognize(
    s: &EvalScratch,
    ops: &[TOp],
    stores: &[(u16, u16)],
    reduce: Option<(u16, ReduceKind)>,
    extent: Extent,
) -> Option<Template> {
    if !matches!(extent, Extent::D1(_)) {
        return None;
    }
    // Does load binding `l` name the same buffer as store binding `d`?
    // Buffer slots come from the ingest pass, so this is exactly the
    // aliasing pattern the cache key pins for every hit of this plan.
    let aliases = |l: u16, d: u16| s.load_bufs[l as usize] == s.store_bufs[d as usize];
    use BinOp::{Add, Mul};
    if let (
        [TOp::Load(x), TOp::Scalar(a), TOp::Load(p), TOp::Bin(Mul, 1, 2), TOp::Bin(Add, 0, 3), TOp::Load(r), TOp::Scalar(b), TOp::Load(s_), TOp::Bin(Mul, 6, 7), TOp::Bin(Add, 5, 8), TOp::Bin(Mul, 9, 9)],
        [(d0, 4), (d1, 9)],
        Some((10, ReduceKind::Sum)),
    ) = (ops, stores, reduce)
    {
        return Some(Template::DualAxpySumSq {
            x: *x,
            a: *a,
            p: *p,
            r: *r,
            b: *b,
            s: *s_,
            in_place: aliases(*x, *d0) && aliases(*r, *d1),
        });
    }
    if let (
        [TOp::Load(x), TOp::Scalar(a), TOp::Load(y), TOp::Bin(Mul, 1, 2), TOp::Bin(Add, 0, 3), TOp::Load(z), TOp::Bin(Mul, 4, 5)],
        [(d0, 4)],
        Some((6, ReduceKind::Sum)),
    ) = (ops, stores, reduce)
    {
        return Some(Template::AxpyDot {
            x: *x,
            a: *a,
            y: *y,
            z: *z,
            in_place: aliases(*x, *d0),
        });
    }
    None
}

fn compile_group(s: &EvalScratch, group: &Group, name: &'static str) -> CachedGroup {
    let mut c = TapeCompiler {
        in_group: &group.stmts,
        slots: &s.memo,
        memo: PtrMap::default(),
        stmt_values: HashMap::new(),
        ops: Vec::new(),
        loads: 0,
        flops: 0,
    };
    let mut stores = Vec::new();
    for &si in &group.stmts {
        let value = c.compile(&s.stmts[si].expr);
        c.stmt_values.insert(si, value);
        stores.push((si as u16, value));
    }
    let reduce = group.reduce.as_ref().map(|(expr, kind)| {
        let root = c.compile(expr);
        // The combine is one more FLOP per element, matching the eager
        // DOT profile (multiply + add = 2).
        c.flops += 1;
        (root, *kind)
    });
    let profile = KernelProfile::new(
        name,
        c.flops as f64,
        (c.loads * 8) as f64,
        (stores.len() * 8) as f64,
    )
    .as_fused();
    let extent_slot = s
        .extents
        .iter()
        .position(|&e| e == group.extent)
        .expect("group extent was bound during ingest") as u16;
    let template = recognize(s, &c.ops, &stores, reduce, group.extent);
    CachedGroup {
        extent_slot,
        size_class: size_class(c.ops.len()),
        template,
        profile,
        ops: c.ops,
        stores,
        reduce,
    }
}

/// Lower every planned group against the ingest tables. Runs once per
/// cache miss; hits skip straight to [`execute`].
pub(crate) fn compile_program(
    s: &EvalScratch,
    groups: &[Group],
    name: &'static str,
) -> CachedProgram {
    CachedProgram {
        groups: groups.iter().map(|g| compile_group(s, g, name)).collect(),
    }
}

/// Run a compiled program against the evaluation's bindings; returns the
/// terminal reduction's value when the program has one.
pub(crate) fn execute<B: Backend>(
    ctx: &Context<B>,
    prog: &CachedProgram,
    s: &EvalScratch,
) -> Option<f64> {
    let mut result = None;
    for g in &prog.groups {
        let extent = s.extents[g.extent_slot as usize];
        let v = if let Some(t) = g.template {
            Some(run_template(ctx, g, t, s, extent))
        } else {
            match g.size_class {
                SizeClass::S8 => run_tape::<B, 8>(ctx, g, s, extent),
                SizeClass::S16 => run_tape::<B, 16>(ctx, g, s, extent),
                SizeClass::S32 => run_tape::<B, 32>(ctx, g, s, extent),
                SizeClass::S64 => run_tape::<B, 64>(ctx, g, s, extent),
            }
        };
        if let Some(v) = v {
            result = Some(v);
        }
    }
    result
}

/// Generic tape executor, monomorphized per scratch size class. Captures
/// only the binding slices (all `Sync`), never the scratch struct itself.
fn run_tape<B: Backend, const N: usize>(
    ctx: &Context<B>,
    g: &CachedGroup,
    s: &EvalScratch,
    extent: Extent,
) -> Option<f64> {
    let ops = &g.ops[..];
    let gstores = &g.stores[..];
    let loads = &s.loads[..];
    let scalars = &s.scalars[..];
    let stores = &s.stores[..];
    let reduce_root = g.reduce.map(|(root, _)| root);
    let step = move |idx: usize| -> f64 {
        let mut vals = [0.0f64; N];
        for (k, op) in ops.iter().enumerate() {
            vals[k] = match *op {
                TOp::Load(b) => {
                    let (view, e) = &loads[b as usize];
                    view.get(*e, idx)
                }
                TOp::Scalar(b) => scalars[b as usize],
                TOp::Un(op, a) => op.apply(vals[a as usize]),
                TOp::Bin(op, a, b) => op.apply(vals[a as usize], vals[b as usize]),
            };
        }
        for &(dst, node) in gstores {
            let (view, e) = &stores[dst as usize];
            view.set(*e, idx, vals[node as usize]);
        }
        match reduce_root {
            Some(root) => vals[root as usize],
            None => 0.0,
        }
    };
    match g.reduce {
        None => {
            launch_for(ctx, &g.profile, extent, step);
            None
        }
        Some((_, kind)) => Some(launch_reduce(ctx, &g.profile, extent, kind, step)),
    }
}

fn launch_for<B: Backend>(
    ctx: &Context<B>,
    profile: &KernelProfile,
    extent: Extent,
    step: impl Fn(usize) -> f64 + Send + Sync,
) {
    match extent {
        Extent::D1(n) => ctx.parallel_for(n, profile, move |i| {
            step(i);
        }),
        Extent::D2(m, n) => ctx.parallel_for_2d((m, n), profile, move |i, j| {
            step(j * m + i);
        }),
        Extent::D3(m, n, l) => ctx.parallel_for_3d((m, n, l), profile, move |i, j, k| {
            step((k * n + j) * m + i);
        }),
    }
}

fn launch_reduce<B: Backend>(
    ctx: &Context<B>,
    profile: &KernelProfile,
    extent: Extent,
    kind: ReduceKind,
    step: impl Fn(usize) -> f64 + Send + Sync,
) -> f64 {
    macro_rules! dispatch {
        ($op:expr) => {
            match extent {
                Extent::D1(n) => ctx.parallel_reduce_with(n, profile, $op, |i| step(i)),
                Extent::D2(m, n) => {
                    ctx.parallel_reduce_2d_with((m, n), profile, $op, |i, j| step(j * m + i))
                }
                Extent::D3(m, n, l) => {
                    ctx.parallel_reduce_3d_with((m, n, l), profile, $op, |i, j, k| {
                        step((k * n + j) * m + i)
                    })
                }
            }
        };
    }
    match kind {
        ReduceKind::Sum => dispatch!(Sum),
        ReduceKind::Min => dispatch!(Min),
        ReduceKind::Max => dispatch!(Max),
    }
}

fn view1(v: &AnyView) -> View1<f64> {
    match v {
        AnyView::D1(v) => v.clone(),
        _ => unreachable!("template groups are 1D"),
    }
}

fn view1_mut(v: &AnyViewMut) -> ViewMut1<f64> {
    match v {
        AnyViewMut::D1(v) => v.clone(),
        _ => unreachable!("template groups are 1D"),
    }
}

/// Template executors: the per-element body is a direct closure over
/// hoisted `View1`s and scalars — no tape walk, no scratch array. The
/// operations and their order are exactly the tape's, so results stay
/// bit-identical.
fn run_template<B: Backend>(
    ctx: &Context<B>,
    g: &CachedGroup,
    t: Template,
    s: &EvalScratch,
    extent: Extent,
) -> f64 {
    let Extent::D1(n) = extent else {
        unreachable!("template groups are 1D")
    };
    match t {
        Template::DualAxpySumSq {
            x,
            a,
            p,
            r,
            b,
            s: sv,
            in_place,
        } => {
            let pv = view1(&s.loads[p as usize].0);
            let sv = view1(&s.loads[sv as usize].0);
            let a = s.scalars[a as usize];
            let b = s.scalars[b as usize];
            let d0 = view1_mut(&s.stores[g.stores[0].0 as usize].0);
            let d1 = view1_mut(&s.stores[g.stores[1].0 as usize].0);
            // SAFETY (both arms): every bound view spans the group extent —
            // asserted here once so the per-element bodies can skip the
            // bounds checks that would otherwise be re-verified after each
            // store (the raw view pointers defeat the optimizer's aliasing
            // analysis). Same loads, same order, same bits.
            assert!(pv.len() >= n && sv.len() >= n && d0.len() >= n && d1.len() >= n);
            if in_place {
                // `x` IS `d0` and `r` IS `d1`: read-modify-write through
                // the mutable views. Same loads, same order, same bits —
                // but the compiler now sees one pointer per vector.
                ctx.parallel_reduce_with(n, &g.profile, Sum, move |i| unsafe {
                    let xi = d0.get_unchecked(i) + a * pv.get_unchecked(i);
                    d0.set_unchecked(i, xi);
                    let ri = d1.get_unchecked(i) + b * sv.get_unchecked(i);
                    d1.set_unchecked(i, ri);
                    ri * ri
                })
            } else {
                let xv = view1(&s.loads[x as usize].0);
                let rv = view1(&s.loads[r as usize].0);
                assert!(xv.len() >= n && rv.len() >= n);
                ctx.parallel_reduce_with(n, &g.profile, Sum, move |i| unsafe {
                    let xi = xv.get_unchecked(i) + a * pv.get_unchecked(i);
                    d0.set_unchecked(i, xi);
                    let ri = rv.get_unchecked(i) + b * sv.get_unchecked(i);
                    d1.set_unchecked(i, ri);
                    ri * ri
                })
            }
        }
        Template::AxpyDot {
            x,
            a,
            y,
            z,
            in_place,
        } => {
            let yv = view1(&s.loads[y as usize].0);
            let zv = view1(&s.loads[z as usize].0);
            let a = s.scalars[a as usize];
            let d0 = view1_mut(&s.stores[g.stores[0].0 as usize].0);
            // SAFETY (both arms): see `DualAxpySumSq`.
            assert!(yv.len() >= n && zv.len() >= n && d0.len() >= n);
            if in_place {
                ctx.parallel_reduce_with(n, &g.profile, Sum, move |i| unsafe {
                    let xi = d0.get_unchecked(i) + a * yv.get_unchecked(i);
                    d0.set_unchecked(i, xi);
                    xi * zv.get_unchecked(i)
                })
            } else {
                let xv = view1(&s.loads[x as usize].0);
                assert!(xv.len() >= n);
                ctx.parallel_reduce_with(n, &g.profile, Sum, move |i| unsafe {
                    let xi = xv.get_unchecked(i) + a * yv.get_unchecked(i);
                    d0.set_unchecked(i, xi);
                    xi * zv.get_unchecked(i)
                })
            }
        }
    }
}
