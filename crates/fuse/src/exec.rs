//! Fused-group execution.
//!
//! Each compiled group becomes exactly one backend construct: a
//! `parallel_for` when it only stores, a `parallel_reduce_with` when it
//! ends in a reduction (stores ride inside the reduction's map phase —
//! every backend invokes the map exactly once per index). The group's
//! summed profile is charged through the normal construct path, so the
//! `Timeline` and trace spans reconcile exactly as they do eagerly.
//!
//! ## Bit-identity
//!
//! Per index, the interpreter evaluates the same f64 operations in the
//! same order the eager statement sequence does, and the launch goes
//! through the *same* backend primitive over the same extent — so the
//! serial fold, the threadpool's per-chunk partials, and the simulated
//! GPUs' two-kernel tree reduction all combine in exactly the eager
//! order. Fused results are therefore bit-identical to eager ones, which
//! `tests/differential.rs` pins on every backend.
//!
//! ## Cost per element
//!
//! Evaluation walks the flat node list into a stack scratch array
//! (`[f64; MAX_NODES]`): no heap allocation, no recursion, no virtual
//! dispatch per node beyond one match.

use racc_core::{Backend, Context, Max, Min, Sum};

use crate::plan::{CNode, Compiled, MAX_NODES};
use crate::ReduceKind;

#[inline]
fn eval(nodes: &[CNode], idx: usize, vals: &mut [f64; MAX_NODES]) {
    for (k, node) in nodes.iter().enumerate() {
        vals[k] = match node {
            CNode::Load(view, extent) => view.get(*extent, idx),
            CNode::Scalar(v) => *v,
            CNode::Un(op, a) => op.apply(vals[*a as usize]),
            CNode::Bin(op, a, b) => op.apply(vals[*a as usize], vals[*b as usize]),
        };
    }
}

/// One fused index: evaluate every node, then materialize the stores in
/// statement order. Returns the reduce root's value (0.0 when unused).
#[inline]
fn step(g: &Compiled, idx: usize) -> f64 {
    let mut vals = [0.0f64; MAX_NODES];
    eval(&g.nodes, idx, &mut vals);
    for (dst, extent, node) in &g.stores {
        dst.set(*extent, idx, vals[*node as usize]);
    }
    match g.reduce {
        Some((root, _)) => vals[root as usize],
        None => 0.0,
    }
}

/// Launches one compiled group on `ctx`; returns the reduction value when
/// the group has one.
pub(crate) fn run_group<B: Backend>(ctx: &Context<B>, g: &Compiled) -> Option<f64> {
    for id in &g.ctx_ids {
        assert_eq!(
            *id,
            ctx.id(),
            "fused expression uses an array from another context"
        );
    }
    let extent = g.extent;
    match g.reduce {
        None => {
            launch_for(ctx, g);
            None
        }
        Some((_, kind)) => Some(launch_reduce(ctx, g, kind, extent)),
    }
}

fn launch_for<B: Backend>(ctx: &Context<B>, g: &Compiled) {
    use crate::graph::Extent::*;
    match g.extent {
        D1(n) => ctx.parallel_for(n, &g.profile, |i| {
            step(g, i);
        }),
        D2(m, n) => ctx.parallel_for_2d((m, n), &g.profile, |i, j| {
            step(g, j * m + i);
        }),
        D3(m, n, l) => ctx.parallel_for_3d((m, n, l), &g.profile, |i, j, k| {
            step(g, (k * n + j) * m + i);
        }),
    }
}

fn launch_reduce<B: Backend>(
    ctx: &Context<B>,
    g: &Compiled,
    kind: ReduceKind,
    extent: crate::graph::Extent,
) -> f64 {
    use crate::graph::Extent::*;
    macro_rules! dispatch {
        ($op:expr) => {
            match extent {
                D1(n) => ctx.parallel_reduce_with(n, &g.profile, $op, |i| step(g, i)),
                D2(m, n) => {
                    ctx.parallel_reduce_2d_with((m, n), &g.profile, $op, |i, j| step(g, j * m + i))
                }
                D3(m, n, l) => {
                    ctx.parallel_reduce_3d_with((m, n, l), &g.profile, $op, |i, j, k| {
                        step(g, (k * n + j) * m + i)
                    })
                }
            }
        };
    }
    match kind {
        ReduceKind::Sum => dispatch!(Sum),
        ReduceKind::Min => dispatch!(Min),
        ReduceKind::Max => dispatch!(Max),
    }
}
