//! # racc-comm
//!
//! A small message-passing substrate: SPMD ranks with typed point-to-point
//! sends and the standard collectives — the analog of the `MPI.jl`
//! dependency in JACC's ecosystem (the paper's §II lists `MPI.jl` /
//! `Distributed.jl` as how Julia codes scale out, and its future work names
//! distributed-memory configurations).
//!
//! Ranks are OS threads inside one process; channels replace the network.
//! That keeps the programming model exactly MPI-shaped (SPMD `run`,
//! `send`/`recv`, `barrier`, `allreduce`, `broadcast`, `gather`) while
//! remaining a deterministic, test-friendly substrate — the same
//! substitution philosophy as the GPU simulator.
//!
//! ```
//! use racc_comm::World;
//!
//! // 4 ranks compute a distributed dot product.
//! let results = World::run(4, |comm| {
//!     let chunk: Vec<f64> = (0..100).map(|i| (comm.rank() * 100 + i) as f64).collect();
//!     let local: f64 = chunk.iter().map(|x| x * x).sum();
//!     comm.allreduce_sum(local).unwrap()
//! });
//! // Every rank got the same global sum.
//! assert!(results.windows(2).all(|w| w[0] == w[1]));
//! ```

mod collectives;
mod world;

pub use world::{CommError, Rank, World, DEFAULT_COLLECTIVE_TIMEOUT};
