//! The SPMD world: rank spawning and point-to-point messaging.

use std::any::Any;
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};

/// Errors from communication calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// A rank index outside `0..size`.
    InvalidRank {
        /// The offending rank.
        rank: usize,
        /// World size.
        size: usize,
    },
    /// A received message had a different payload type than requested.
    TypeMismatch,
    /// The peer's channel is gone (its rank body returned or panicked).
    Disconnected,
    /// Self-send/self-recv, which would deadlock.
    SelfMessage,
    /// [`Rank::recv_timeout`] expired with the peer still alive but
    /// silent.
    Timeout,
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::InvalidRank { rank, size } => {
                write!(f, "rank {rank} out of range for world of {size}")
            }
            CommError::TypeMismatch => write!(f, "received message of unexpected type"),
            CommError::Disconnected => write!(f, "peer rank terminated"),
            CommError::SelfMessage => write!(f, "send/recv to self would deadlock"),
            CommError::Timeout => write!(f, "timed out waiting for a message"),
        }
    }
}

impl std::error::Error for CommError {}

type Payload = Box<dyn Any + Send>;

/// The per-rank recorder handle. Aliased to `()` when the `trace` feature is
/// off so `Rank` construction has one field list either way (Rust has no
/// `cfg` on call-site arguments).
#[cfg(feature = "trace")]
pub(crate) type TraceHandle = Option<Arc<racc_core::trace::TraceRecorder>>;
/// The per-rank recorder handle (tracing compiled out).
#[cfg(not(feature = "trace"))]
pub(crate) type TraceHandle = ();

/// Default bound on how long a collective waits on any single internal
/// receive before giving up with [`CommError::Timeout`]. Generous: rank
/// threads time-slice on small machines, so a healthy-but-descheduled peer
/// must not be mistaken for a dead one.
pub const DEFAULT_COLLECTIVE_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(60);

/// A rank's endpoint in the world: its identity plus channels to every
/// peer. Messages between a fixed (sender, receiver) pair are FIFO.
pub struct Rank {
    rank: usize,
    size: usize,
    /// `senders[p]` sends to rank p; entry for self unused.
    senders: Vec<Sender<Payload>>,
    /// `receivers[p]` receives messages *from* rank p.
    receivers: Vec<Receiver<Payload>>,
    /// Per-receive deadline (in milliseconds) applied to every internal
    /// receive inside the collectives, so a rank dying mid-collective
    /// surfaces as an error at the survivors instead of hanging them.
    collective_timeout_ms: std::sync::atomic::AtomicU64,
    /// Shared barrier for collectives.
    pub(crate) barrier: Arc<std::sync::Barrier>,
    /// Span recorder for collective operations, if the world was launched
    /// with [`World::run_traced`]. Unread (it is `()`) without the feature.
    #[cfg_attr(not(feature = "trace"), allow(dead_code))]
    pub(crate) recorder: TraceHandle,
}

impl Rank {
    /// This rank's index in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.size
    }

    fn check_peer(&self, peer: usize) -> Result<(), CommError> {
        if peer >= self.size {
            return Err(CommError::InvalidRank {
                rank: peer,
                size: self.size,
            });
        }
        if peer == self.rank {
            return Err(CommError::SelfMessage);
        }
        Ok(())
    }

    /// Send a value to `peer` (non-blocking: buffered channel).
    pub fn send<T: Send + 'static>(&self, peer: usize, value: T) -> Result<(), CommError> {
        self.check_peer(peer)?;
        self.senders[peer]
            .send(Box::new(value))
            .map_err(|_| CommError::Disconnected)
    }

    /// Receive the next value sent by `peer` (blocking).
    pub fn recv<T: Send + 'static>(&self, peer: usize) -> Result<T, CommError> {
        self.check_peer(peer)?;
        let payload = self.receivers[peer]
            .recv()
            .map_err(|_| CommError::Disconnected)?;
        payload
            .downcast::<T>()
            .map(|b| *b)
            .map_err(|_| CommError::TypeMismatch)
    }

    /// Receive the next value sent by `peer`, waiting at most `timeout`.
    /// A dead rank (body returned or panicked, dropping its channels)
    /// surfaces as [`CommError::Disconnected`]; a live-but-silent peer as
    /// [`CommError::Timeout`] — either way the caller gets an error it
    /// can act on instead of deadlocking in [`recv`](Self::recv).
    pub fn recv_timeout<T: Send + 'static>(
        &self,
        peer: usize,
        timeout: std::time::Duration,
    ) -> Result<T, CommError> {
        self.check_peer(peer)?;
        let payload = self.receivers[peer]
            .recv_timeout(timeout)
            .map_err(|e| match e {
                crossbeam::channel::RecvTimeoutError::Timeout => CommError::Timeout,
                crossbeam::channel::RecvTimeoutError::Disconnected => CommError::Disconnected,
            })?;
        payload
            .downcast::<T>()
            .map(|b| *b)
            .map_err(|_| CommError::TypeMismatch)
    }

    /// The per-receive deadline currently applied inside collectives.
    pub fn collective_timeout(&self) -> std::time::Duration {
        std::time::Duration::from_millis(
            self.collective_timeout_ms
                .load(std::sync::atomic::Ordering::Relaxed),
        )
    }

    /// Bound every internal receive of subsequent collectives on this rank
    /// to `timeout` (defaults to [`DEFAULT_COLLECTIVE_TIMEOUT`]). Sub-
    /// millisecond values round up to 1ms so the bound is never zero.
    pub fn set_collective_timeout(&self, timeout: std::time::Duration) {
        let ms = timeout.as_millis().clamp(1, u64::MAX as u128) as u64;
        self.collective_timeout_ms
            .store(ms, std::sync::atomic::Ordering::Relaxed);
    }

    /// Internal receive used by every collective stage: `recv_timeout` with
    /// the rank's collective deadline, so a peer that died (or wedged)
    /// mid-collective surfaces as `Disconnected`/`Timeout` instead of
    /// blocking this rank forever.
    pub(crate) fn recv_collective<T: Send + 'static>(&self, peer: usize) -> Result<T, CommError> {
        self.recv_timeout(peer, self.collective_timeout())
    }

    /// Paired exchange with `peer`: send `value`, receive theirs. Safe in
    /// both orders because sends are buffered.
    pub fn exchange<T: Send + 'static>(&self, peer: usize, value: T) -> Result<T, CommError> {
        self.send(peer, value)?;
        self.recv(peer)
    }

    /// Block until every rank has reached this barrier.
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// Start a wall-clock measurement if a recorder is attached and enabled.
    #[cfg(feature = "trace")]
    pub(crate) fn trace_start(&self) -> Option<std::time::Instant> {
        match &self.recorder {
            Some(r) if r.is_enabled() => Some(std::time::Instant::now()),
            _ => None,
        }
    }

    /// Deposit one collective span: `bytes` is this rank's contribution
    /// payload, grid/block carry (rank, world size).
    #[cfg(feature = "trace")]
    pub(crate) fn record_collective(
        &self,
        name: &'static str,
        bytes: u64,
        started: Option<std::time::Instant>,
    ) {
        if let Some(r) = &self.recorder {
            if r.is_enabled() {
                r.record(
                    racc_core::trace::Span::new(
                        "comm",
                        racc_core::trace::ConstructKind::Collective,
                        name,
                    )
                    .dims(self.size as u64, 1, 1)
                    .geometry(self.rank as u64, self.size as u64)
                    .payload(bytes)
                    .real_since(started),
                );
            }
        }
    }
}

/// The SPMD launcher.
pub struct World;

impl World {
    /// Run `body` on `size` ranks concurrently; returns each rank's result
    /// in rank order. Panics in any rank propagate after all ranks joined
    /// or disconnected.
    pub fn run<T, F>(size: usize, body: F) -> Vec<T>
    where
        T: Send + 'static,
        F: Fn(&Rank) -> T + Send + Sync + 'static,
    {
        Self::run_inner(size, Default::default(), body)
    }

    /// Like [`World::run`], but every collective operation deposits one span
    /// into `recorder` (backend key `"comm"`, kind `Collective`).
    #[cfg(feature = "trace")]
    pub fn run_traced<T, F>(
        size: usize,
        recorder: Arc<racc_core::trace::TraceRecorder>,
        body: F,
    ) -> Vec<T>
    where
        T: Send + 'static,
        F: Fn(&Rank) -> T + Send + Sync + 'static,
    {
        Self::run_inner(size, Some(recorder), body)
    }

    fn run_inner<T, F>(size: usize, recorder: TraceHandle, body: F) -> Vec<T>
    where
        T: Send + 'static,
        F: Fn(&Rank) -> T + Send + Sync + 'static,
    {
        assert!(size > 0, "world needs at least one rank");
        // channels[from][to]
        let mut senders: Vec<Vec<Sender<Payload>>> = Vec::with_capacity(size);
        let mut receivers: Vec<Vec<Option<Receiver<Payload>>>> = (0..size)
            .map(|_| (0..size).map(|_| None).collect())
            .collect();
        #[allow(clippy::needless_range_loop)] // (from, to) symmetry is clearer
        for from in 0..size {
            let mut row = Vec::with_capacity(size);
            for to in 0..size {
                let (tx, rx) = unbounded::<Payload>();
                row.push(tx);
                receivers[to][from] = Some(rx);
            }
            senders.push(row);
        }
        let barrier = Arc::new(std::sync::Barrier::new(size));
        let body = Arc::new(body);

        let mut handles = Vec::with_capacity(size);
        for (rank_id, (rank_senders, rank_receivers)) in
            senders.into_iter().zip(receivers).enumerate()
        {
            let rank = Rank {
                rank: rank_id,
                size,
                senders: rank_senders,
                receivers: rank_receivers
                    .into_iter()
                    .map(|r| r.expect("fully wired"))
                    .collect(),
                collective_timeout_ms: std::sync::atomic::AtomicU64::new(
                    DEFAULT_COLLECTIVE_TIMEOUT.as_millis() as u64,
                ),
                barrier: Arc::clone(&barrier),
                recorder: recorder.clone(),
            };
            let body = Arc::clone(&body);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("racc-rank-{rank_id}"))
                    .spawn(move || body(&rank))
                    .expect("spawn rank"),
            );
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("rank panicked"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_know_their_identity() {
        let ids = World::run(5, |c| (c.rank(), c.size()));
        for (i, (rank, size)) in ids.iter().enumerate() {
            assert_eq!(*rank, i);
            assert_eq!(*size, 5);
        }
    }

    #[test]
    fn ring_pass_accumulates() {
        // Each rank adds its id and forwards around the ring.
        let results = World::run(4, |c| {
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            if c.rank() == 0 {
                c.send(next, 0usize).unwrap();
                c.recv::<usize>(prev).unwrap()
            } else {
                let v = c.recv::<usize>(prev).unwrap();
                c.send(next, v + c.rank()).unwrap();
                usize::MAX // only rank 0's total matters
            }
        });
        assert_eq!(results[0], 1 + 2 + 3);
    }

    #[test]
    fn pairwise_exchange_is_deadlock_free() {
        let results = World::run(6, |c| {
            let partner = c.rank() ^ 1; // 0<->1, 2<->3, 4<->5
            c.exchange(partner, c.rank() * 10).unwrap()
        });
        assert_eq!(results, vec![10, 0, 30, 20, 50, 40]);
    }

    #[test]
    fn fifo_order_per_pair() {
        let results = World::run(2, |c| {
            if c.rank() == 0 {
                for i in 0..50 {
                    c.send(1, i as u64).unwrap();
                }
                0
            } else {
                let mut last = -1i64;
                for _ in 0..50 {
                    let v = c.recv::<u64>(0).unwrap() as i64;
                    assert_eq!(v, last + 1, "messages must arrive in order");
                    last = v;
                }
                last
            }
        });
        assert_eq!(results[1], 49);
    }

    #[test]
    fn typed_payloads_and_mismatch() {
        let results = World::run(2, |c| {
            if c.rank() == 0 {
                c.send(1, vec![1.0f64, 2.0]).unwrap();
                c.send(1, "hello".to_string()).unwrap();
                Ok(0.0)
            } else {
                let v: Vec<f64> = c.recv(0).unwrap();
                assert_eq!(v, vec![1.0, 2.0]);
                // Wrong type requested:
                c.recv::<u32>(0).map(|_| 1.0)
            }
        });
        assert!(matches!(results[1], Err(CommError::TypeMismatch)));
    }

    #[test]
    fn invalid_peers_are_rejected() {
        let results = World::run(2, |c| {
            let bad = c.send(7, 1u8).unwrap_err();
            let own = c.send(c.rank(), 1u8).unwrap_err();
            (bad, own)
        });
        assert!(matches!(
            results[0].0,
            CommError::InvalidRank { rank: 7, size: 2 }
        ));
        assert!(matches!(results[0].1, CommError::SelfMessage));
    }

    #[test]
    fn recv_timeout_times_out_on_a_silent_live_peer() {
        use std::time::Duration;
        let results = World::run(2, |c| {
            if c.rank() == 0 {
                let r = c.recv_timeout::<u8>(1, Duration::from_millis(20));
                c.barrier();
                r
            } else {
                // Stay alive (holding the channel open) past rank 0's
                // window, but never send.
                c.barrier();
                Ok(0)
            }
        });
        assert_eq!(results[0], Err(CommError::Timeout));
    }

    #[test]
    fn dead_rank_surfaces_as_disconnected_within_the_timeout() {
        use std::time::Duration;
        // Rank 2 dies immediately; the survivors block on it with a
        // generous timeout and must see `Disconnected` (the drop of the
        // dead rank's senders), NOT `Timeout` — i.e. well before the
        // deadline, the moment the channel closes.
        let t0 = std::time::Instant::now();
        let results = World::run(3, |c| {
            if c.rank() == 2 {
                return None;
            }
            Some(c.recv_timeout::<f64>(2, Duration::from_secs(30)))
        });
        assert_eq!(results[0], Some(Err(CommError::Disconnected)));
        assert_eq!(results[1], Some(Err(CommError::Disconnected)));
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "disconnect must not wait out the timeout"
        );
    }

    #[test]
    fn single_rank_world_works() {
        let r = World::run(1, |c| {
            c.barrier();
            c.rank() + 100
        });
        assert_eq!(r, vec![100]);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        World::run(0, |_| ());
    }
}
