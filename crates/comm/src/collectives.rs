//! Collective operations over the world, built on point-to-point sends and
//! the shared barrier.
//!
//! Reductions reuse the front end's [`racc_core::ReduceOp`] monoids, so the
//! same `Sum`/`Max`/`Min` values work in kernels and across ranks. All
//! collectives use simple rank-0-rooted fan-in/fan-out (latency O(P));
//! message counts are asserted in tests, not modeled in time — the comm
//! substrate is functional, unlike the clocked device simulator.

use racc_core::{AccScalar, ReduceOp, Sum};

use crate::world::Rank;

impl Rank {
    /// Reduce `value` across all ranks with `op`; every rank receives the
    /// result (allreduce). Combination order is rank order, so results are
    /// deterministic.
    pub fn allreduce<T, O>(&self, value: T, op: O) -> T
    where
        T: AccScalar,
        O: ReduceOp<T>,
    {
        #[cfg(feature = "trace")]
        let t0 = self.trace_start();
        // Fan-in to rank 0 in rank order, then broadcast.
        let total = if self.rank() == 0 {
            let mut acc = value;
            for peer in 1..self.size() {
                let v: T = self.recv(peer).expect("fan-in recv");
                acc = op.combine(acc, v);
            }
            acc
        } else {
            self.send(0, value).expect("fan-in send");
            op.identity()
        };
        let out = self.broadcast_value(total);
        #[cfg(feature = "trace")]
        self.record_collective("allreduce", std::mem::size_of::<T>() as u64, t0);
        out
    }

    /// Sum `value` across ranks (the common case: distributed dot products).
    pub fn allreduce_sum<T>(&self, value: T) -> T
    where
        T: racc_core::Numeric,
    {
        self.allreduce(value, Sum)
    }

    /// Broadcast rank 0's `value` to every rank; returns it everywhere.
    pub fn broadcast<T>(&self, value: T) -> T
    where
        T: AccScalar,
    {
        #[cfg(feature = "trace")]
        let t0 = self.trace_start();
        let out = self.broadcast_value(value);
        #[cfg(feature = "trace")]
        self.record_collective("broadcast", std::mem::size_of::<T>() as u64, t0);
        out
    }

    /// Broadcast body, shared with `allreduce` so a traced allreduce records
    /// one span, not a nested broadcast span too.
    fn broadcast_value<T>(&self, value: T) -> T
    where
        T: AccScalar,
    {
        if self.rank() == 0 {
            for peer in 1..self.size() {
                self.send(peer, value).expect("broadcast send");
            }
            value
        } else {
            self.recv(0).expect("broadcast recv")
        }
    }

    /// Gather every rank's vector to rank 0 (in rank order); other ranks
    /// get `None`.
    pub fn gather<T>(&self, local: Vec<T>) -> Option<Vec<Vec<T>>>
    where
        T: Send + 'static,
    {
        #[cfg(feature = "trace")]
        let t0 = self.trace_start();
        #[cfg(feature = "trace")]
        let bytes = (local.len() * std::mem::size_of::<T>()) as u64;
        let out = if self.rank() == 0 {
            let mut all = Vec::with_capacity(self.size());
            all.push(local);
            for peer in 1..self.size() {
                all.push(self.recv(peer).expect("gather recv"));
            }
            Some(all)
        } else {
            self.send(0, local).expect("gather send");
            None
        };
        #[cfg(feature = "trace")]
        self.record_collective("gather", bytes, t0);
        out
    }

    /// Every rank receives the concatenation of all ranks' vectors in rank
    /// order (allgather).
    pub fn allgather<T>(&self, local: Vec<T>) -> Vec<T>
    where
        T: Clone + Send + 'static,
    {
        #[cfg(feature = "trace")]
        let t0 = self.trace_start();
        #[cfg(feature = "trace")]
        let bytes = (local.len() * std::mem::size_of::<T>()) as u64;
        let out = if self.rank() == 0 {
            let mut all: Vec<T> = local;
            for peer in 1..self.size() {
                let chunk: Vec<T> = self.recv(peer).expect("allgather recv");
                all.extend(chunk);
            }
            for peer in 1..self.size() {
                self.send(peer, all.clone()).expect("allgather send");
            }
            all
        } else {
            self.send(0, local).expect("allgather send");
            self.recv(0).expect("allgather recv")
        };
        #[cfg(feature = "trace")]
        self.record_collective("allgather", bytes, t0);
        out
    }

    /// Split `data` (on rank 0) into contiguous near-equal chunks, one per
    /// rank (scatter). Other ranks pass `None`.
    pub fn scatter<T>(&self, data: Option<Vec<T>>) -> Vec<T>
    where
        T: Clone + Send + 'static,
    {
        #[cfg(feature = "trace")]
        let t0 = self.trace_start();
        let out = if self.rank() == 0 {
            let data = data.expect("rank 0 provides the scatter payload");
            let n = data.len();
            let p = self.size();
            let block = |who: usize| {
                let base = n / p;
                let rem = n % p;
                let start = who * base + who.min(rem);
                let len = base + usize::from(who < rem);
                (start, start + len)
            };
            for peer in 1..p {
                let (s, e) = block(peer);
                self.send(peer, data[s..e].to_vec()).expect("scatter send");
            }
            let (s, e) = block(0);
            data[s..e].to_vec()
        } else {
            assert!(data.is_none(), "only rank 0 provides the scatter payload");
            self.recv(0).expect("scatter recv")
        };
        #[cfg(feature = "trace")]
        self.record_collective("scatter", (out.len() * std::mem::size_of::<T>()) as u64, t0);
        out
    }
}

#[cfg(test)]
mod tests {

    use crate::world::World;
    use racc_core::{Max, Min};

    #[test]
    fn allreduce_sum_and_extrema() {
        let results = World::run(5, |c| {
            let v = (c.rank() + 1) as i64;
            (c.allreduce_sum(v), c.allreduce(v, Max), c.allreduce(v, Min))
        });
        for (sum, max, min) in results {
            assert_eq!(sum, 15);
            assert_eq!(max, 5);
            assert_eq!(min, 1);
        }
    }

    #[test]
    fn allreduce_is_deterministic_for_floats() {
        let a = World::run(4, |c| c.allreduce_sum(0.1f64 * (c.rank() as f64 + 1.0)));
        let b = World::run(4, |c| c.allreduce_sum(0.1f64 * (c.rank() as f64 + 1.0)));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert!(a.windows(2).all(|w| w[0].to_bits() == w[1].to_bits()));
    }

    #[test]
    fn broadcast_from_root() {
        let results = World::run(4, |c| {
            let v = if c.rank() == 0 { 42u32 } else { 0 };
            c.broadcast(v)
        });
        assert!(results.iter().all(|&v| v == 42));
    }

    #[test]
    fn gather_and_allgather_preserve_rank_order() {
        let gathered = World::run(3, |c| {
            let local = vec![c.rank() as u8; c.rank() + 1];
            c.gather(local)
        });
        let root = gathered[0].as_ref().unwrap();
        assert_eq!(root.len(), 3);
        assert_eq!(root[0], vec![0u8]);
        assert_eq!(root[2], vec![2u8, 2, 2]);
        assert!(gathered[1].is_none());

        let all = World::run(3, |c| c.allgather(vec![c.rank() as u8]));
        assert!(all.iter().all(|v| v == &vec![0u8, 1, 2]));
    }

    #[test]
    fn scatter_partitions_contiguously() {
        let chunks = World::run(3, |c| {
            let payload = if c.rank() == 0 {
                Some((0..10u32).collect::<Vec<_>>())
            } else {
                None
            };
            c.scatter(payload)
        });
        assert_eq!(chunks[0], vec![0, 1, 2, 3]);
        assert_eq!(chunks[1], vec![4, 5, 6]);
        assert_eq!(chunks[2], vec![7, 8, 9]);
    }

    #[test]
    fn barrier_synchronizes_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let counter = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&counter);
        let results = World::run(4, move |c| {
            c2.fetch_add(1, Ordering::SeqCst);
            c.barrier();
            // After the barrier, every rank must see all increments.
            c2.load(Ordering::SeqCst)
        });
        assert!(results.iter().all(|&v| v == 4));
    }
}
