//! Collective operations over the world, built on point-to-point sends and
//! the shared barrier.
//!
//! Reductions reuse the front end's [`racc_core::ReduceOp`] monoids, so the
//! same `Sum`/`Max`/`Min` values work in kernels and across ranks. All
//! collectives use simple rank-0-rooted fan-in/fan-out (latency O(P));
//! message counts are asserted in tests, not modeled in time — the comm
//! substrate is functional, unlike the clocked device simulator.
//!
//! Every collective returns `Result<_, CommError>`: a peer that died
//! mid-collective (its rank body returned early or panicked) surfaces as
//! [`CommError::Disconnected`] at the survivors rather than poisoning the
//! world with a panic. Misuse (a non-root rank passing a scatter payload)
//! is still a panic — that is a programming error, not a fault.
//!
//! Every *internal* receive — the fan-in legs at the root as much as the
//! fan-out legs at the leaves — goes through the rank's collective
//! timeout ([`Rank::set_collective_timeout`]). A rank can die *between*
//! stages (e.g. after contributing to an allreduce but before the
//! broadcast), and its buffered messages keep the channel readable for the
//! legs it already ran; only the timeout bounds the legs it never reached.

use racc_core::{AccScalar, ReduceOp, Sum};

use crate::world::{CommError, Rank};

impl Rank {
    /// Reduce `value` across all ranks with `op`; every rank receives the
    /// result (allreduce). Combination order is rank order, so results are
    /// deterministic.
    pub fn allreduce<T, O>(&self, value: T, op: O) -> Result<T, CommError>
    where
        T: AccScalar,
        O: ReduceOp<T>,
    {
        #[cfg(feature = "trace")]
        let t0 = self.trace_start();
        // Fan-in to rank 0 in rank order, then broadcast.
        let total = if self.rank() == 0 {
            let mut acc = value;
            for peer in 1..self.size() {
                let v: T = self.recv_collective(peer)?;
                acc = op.combine(acc, v);
            }
            acc
        } else {
            self.send(0, value)?;
            op.identity()
        };
        let out = self.broadcast_value(total)?;
        #[cfg(feature = "trace")]
        self.record_collective("allreduce", std::mem::size_of::<T>() as u64, t0);
        Ok(out)
    }

    /// Sum `value` across ranks (the common case: distributed dot products).
    pub fn allreduce_sum<T>(&self, value: T) -> Result<T, CommError>
    where
        T: racc_core::Numeric,
    {
        self.allreduce(value, Sum)
    }

    /// Broadcast rank 0's `value` to every rank; returns it everywhere.
    pub fn broadcast<T>(&self, value: T) -> Result<T, CommError>
    where
        T: AccScalar,
    {
        #[cfg(feature = "trace")]
        let t0 = self.trace_start();
        let out = self.broadcast_value(value)?;
        #[cfg(feature = "trace")]
        self.record_collective("broadcast", std::mem::size_of::<T>() as u64, t0);
        Ok(out)
    }

    /// Broadcast body, shared with `allreduce` so a traced allreduce records
    /// one span, not a nested broadcast span too.
    fn broadcast_value<T>(&self, value: T) -> Result<T, CommError>
    where
        T: AccScalar,
    {
        if self.rank() == 0 {
            for peer in 1..self.size() {
                self.send(peer, value)?;
            }
            Ok(value)
        } else {
            self.recv_collective(0)
        }
    }

    /// Gather every rank's vector to rank 0 (in rank order); other ranks
    /// get `Ok(None)`.
    pub fn gather<T>(&self, local: Vec<T>) -> Result<Option<Vec<Vec<T>>>, CommError>
    where
        T: Send + 'static,
    {
        #[cfg(feature = "trace")]
        let t0 = self.trace_start();
        #[cfg(feature = "trace")]
        let bytes = (local.len() * std::mem::size_of::<T>()) as u64;
        let out = if self.rank() == 0 {
            let mut all = Vec::with_capacity(self.size());
            all.push(local);
            for peer in 1..self.size() {
                all.push(self.recv_collective(peer)?);
            }
            Some(all)
        } else {
            self.send(0, local)?;
            None
        };
        #[cfg(feature = "trace")]
        self.record_collective("gather", bytes, t0);
        Ok(out)
    }

    /// Every rank receives the concatenation of all ranks' vectors in rank
    /// order (allgather).
    pub fn allgather<T>(&self, local: Vec<T>) -> Result<Vec<T>, CommError>
    where
        T: Clone + Send + 'static,
    {
        #[cfg(feature = "trace")]
        let t0 = self.trace_start();
        #[cfg(feature = "trace")]
        let bytes = (local.len() * std::mem::size_of::<T>()) as u64;
        let out = if self.rank() == 0 {
            let mut all: Vec<T> = local;
            for peer in 1..self.size() {
                let chunk: Vec<T> = self.recv_collective(peer)?;
                all.extend(chunk);
            }
            for peer in 1..self.size() {
                self.send(peer, all.clone())?;
            }
            all
        } else {
            self.send(0, local)?;
            self.recv_collective(0)?
        };
        #[cfg(feature = "trace")]
        self.record_collective("allgather", bytes, t0);
        Ok(out)
    }

    /// Split `data` (on rank 0) into contiguous near-equal chunks, one per
    /// rank (scatter). Other ranks pass `None`.
    pub fn scatter<T>(&self, data: Option<Vec<T>>) -> Result<Vec<T>, CommError>
    where
        T: Clone + Send + 'static,
    {
        #[cfg(feature = "trace")]
        let t0 = self.trace_start();
        let out = if self.rank() == 0 {
            let data = data.expect("rank 0 provides the scatter payload");
            let n = data.len();
            let p = self.size();
            let block = |who: usize| {
                let base = n / p;
                let rem = n % p;
                let start = who * base + who.min(rem);
                let len = base + usize::from(who < rem);
                (start, start + len)
            };
            for peer in 1..p {
                let (s, e) = block(peer);
                self.send(peer, data[s..e].to_vec())?;
            }
            let (s, e) = block(0);
            data[s..e].to_vec()
        } else {
            assert!(data.is_none(), "only rank 0 provides the scatter payload");
            self.recv_collective(0)?
        };
        #[cfg(feature = "trace")]
        self.record_collective("scatter", (out.len() * std::mem::size_of::<T>()) as u64, t0);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {

    use crate::world::{CommError, World};
    use racc_core::{Max, Min};

    #[test]
    fn allreduce_sum_and_extrema() {
        let results = World::run(5, |c| {
            let v = (c.rank() + 1) as i64;
            (
                c.allreduce_sum(v).unwrap(),
                c.allreduce(v, Max).unwrap(),
                c.allreduce(v, Min).unwrap(),
            )
        });
        for (sum, max, min) in results {
            assert_eq!(sum, 15);
            assert_eq!(max, 5);
            assert_eq!(min, 1);
        }
    }

    #[test]
    fn allreduce_is_deterministic_for_floats() {
        let a = World::run(4, |c| {
            c.allreduce_sum(0.1f64 * (c.rank() as f64 + 1.0)).unwrap()
        });
        let b = World::run(4, |c| {
            c.allreduce_sum(0.1f64 * (c.rank() as f64 + 1.0)).unwrap()
        });
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert!(a.windows(2).all(|w| w[0].to_bits() == w[1].to_bits()));
    }

    #[test]
    fn broadcast_from_root() {
        let results = World::run(4, |c| {
            let v = if c.rank() == 0 { 42u32 } else { 0 };
            c.broadcast(v).unwrap()
        });
        assert!(results.iter().all(|&v| v == 42));
    }

    #[test]
    fn gather_and_allgather_preserve_rank_order() {
        let gathered = World::run(3, |c| {
            let local = vec![c.rank() as u8; c.rank() + 1];
            c.gather(local).unwrap()
        });
        let root = gathered[0].as_ref().unwrap();
        assert_eq!(root.len(), 3);
        assert_eq!(root[0], vec![0u8]);
        assert_eq!(root[2], vec![2u8, 2, 2]);
        assert!(gathered[1].is_none());

        let all = World::run(3, |c| c.allgather(vec![c.rank() as u8]).unwrap());
        assert!(all.iter().all(|v| v == &vec![0u8, 1, 2]));
    }

    #[test]
    fn scatter_partitions_contiguously() {
        let chunks = World::run(3, |c| {
            let payload = if c.rank() == 0 {
                Some((0..10u32).collect::<Vec<_>>())
            } else {
                None
            };
            c.scatter(payload).unwrap()
        });
        assert_eq!(chunks[0], vec![0, 1, 2, 3]);
        assert_eq!(chunks[1], vec![4, 5, 6]);
        assert_eq!(chunks[2], vec![7, 8, 9]);
    }

    #[test]
    fn scatter_handles_indivisible_payloads() {
        // 7 elements over 4 ranks: the remainder spreads over the first
        // ranks ([2, 2, 2, 1]) and concatenating the chunks in rank order
        // reconstructs the payload exactly.
        let chunks = World::run(4, |c| {
            let payload = if c.rank() == 0 {
                Some((0..7i32).collect::<Vec<_>>())
            } else {
                None
            };
            c.scatter(payload).unwrap()
        });
        assert_eq!(
            chunks.iter().map(Vec::len).collect::<Vec<_>>(),
            vec![2, 2, 2, 1]
        );
        assert_eq!(chunks.concat(), (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn world_of_one_runs_every_collective() {
        // Degenerate world: no peers, so every collective is the identity
        // and must not attempt any channel traffic.
        let results = World::run(1, |c| {
            let sum = c.allreduce_sum(2.5f64)?;
            let max = c.allreduce(7i64, Max)?;
            let bc = c.broadcast(42u32)?;
            let gathered = c.gather(vec![1u8, 2])?;
            let all = c.allgather(vec![3u16, 4])?;
            let chunk = c.scatter(Some(vec![5i32, 6, 7]))?;
            Ok::<_, CommError>((sum, max, bc, gathered, all, chunk))
        });
        let (sum, max, bc, gathered, all, chunk) = results[0].clone().unwrap();
        assert_eq!(sum, 2.5);
        assert_eq!(max, 7);
        assert_eq!(bc, 42);
        assert_eq!(gathered, Some(vec![vec![1u8, 2]]));
        assert_eq!(all, vec![3u16, 4]);
        assert_eq!(chunk, vec![5i32, 6, 7]);
    }

    #[test]
    fn dead_rank_surfaces_as_disconnected_in_collectives() {
        // Rank 2 dies (returns early, dropping its channel endpoints)
        // before contributing to the allreduce. The survivors must get
        // `Disconnected`, not a deadlock or a panic.
        let results = World::run(3, |c| {
            if c.rank() == 2 {
                return None; // dies without participating
            }
            Some(c.allreduce_sum(c.rank() as f64))
        });
        assert_eq!(results[0], Some(Err(CommError::Disconnected)));
        assert_eq!(results[1], Some(Err(CommError::Disconnected)));
        assert_eq!(results[2], None);
    }

    #[test]
    fn rank_death_between_allreduce_stages_is_detected_not_hung() {
        use std::time::Duration;
        // Rank 2 contributes to the fan-in leg and then dies *between* the
        // allreduce stages, before its broadcast leg. Rank 1 waits until the
        // death is observable (its probe of rank 2 disconnects) so the
        // outcome is deterministic: the root combines rank 2's buffered
        // contribution, then surfaces `Disconnected` on the dead broadcast
        // leg. Nobody blocks forever.
        let results = World::run(3, |c| {
            if c.rank() == 2 {
                c.send(0, 2.0f64).unwrap(); // fan-in leg only
                return None; // dies before the broadcast leg
            }
            if c.rank() == 1 {
                // Blocks until rank 2's channels drop, i.e. it is dead.
                let probe = c.recv_timeout::<u8>(2, Duration::from_secs(120));
                assert_eq!(probe, Err(CommError::Disconnected));
            }
            Some(c.allreduce_sum(c.rank() as f64))
        });
        assert_eq!(results[0], Some(Err(CommError::Disconnected)));
        // The root sends the broadcast legs in rank order, so rank 1 already
        // has the total by the time the dead leg errors the root out.
        assert_eq!(results[1], Some(Ok(3.0)));
        assert_eq!(results[2], None);
    }

    #[test]
    fn wedged_rank_mid_allreduce_times_out_instead_of_hanging() {
        use std::time::{Duration, Instant};
        // Rank 2 holds its channels open (alive) but never enters the
        // collective — the shape of a rank wedged in recovery or stalled
        // under fault injection. Before the timeout fix the root blocked
        // forever in its fan-in `recv`; now every internal receive honors
        // the collective timeout.
        let t0 = Instant::now();
        let results = World::run(3, |c| {
            if c.rank() == 2 {
                // Stay alive past the others' deadline; rank 0 releases us.
                let _ = c.recv_timeout::<u8>(0, Duration::from_secs(120));
                return None;
            }
            c.set_collective_timeout(Duration::from_millis(50));
            let r = c.allreduce_sum(1.0f64);
            if c.rank() == 0 {
                let _ = c.send(2, 1u8); // release the wedged rank
            }
            Some(r)
        });
        assert!(results[0].clone().unwrap().is_err(), "root must not hang");
        assert!(results[1].clone().unwrap().is_err(), "leaf must not hang");
        assert!(
            t0.elapsed() < Duration::from_secs(60),
            "collective must abort well before the wedged rank exits"
        );
    }

    #[test]
    fn collective_timeout_is_configurable_and_clamped() {
        let results = World::run(1, |c| {
            let default = c.collective_timeout();
            c.set_collective_timeout(std::time::Duration::from_micros(3));
            let floor = c.collective_timeout();
            c.set_collective_timeout(std::time::Duration::from_secs(9));
            (default, floor, c.collective_timeout())
        });
        let (default, floor, set) = results[0];
        assert_eq!(default, crate::world::DEFAULT_COLLECTIVE_TIMEOUT);
        assert_eq!(floor, std::time::Duration::from_millis(1));
        assert_eq!(set, std::time::Duration::from_secs(9));
    }

    #[test]
    fn barrier_synchronizes_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let counter = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&counter);
        let results = World::run(4, move |c| {
            c2.fetch_add(1, Ordering::SeqCst);
            c.barrier();
            // After the barrier, every rank must see all increments.
            c2.load(Ordering::SeqCst)
        });
        assert!(results.iter().all(|&v| v == 4));
    }
}
