//! # racc-hipsim
//!
//! An AMDGPU.jl/HIP-flavored vendor API over the [`racc_gpusim`] simulator —
//! the stand-in for the `AMDGPU.jl` package the paper's AMD back end and its
//! device-specific benchmark codes are written against.
//!
//! Differences in flavor from the CUDA shim, mirroring the real stacks:
//!
//! * arrays are [`RocArray`]s, launches use **workgroup/grid** vocabulary
//!   (`@roc groupsize=.. gridsize=..`);
//! * the SIMT width is a **wavefront of 64** lanes;
//! * block-shared memory is **LDS** (Local Data Share);
//! * the default device profile is the **AMD MI100**.
//!
//! ```
//! use racc_hipsim::Hip;
//! use racc_gpusim::KernelCost;
//!
//! let hip = Hip::new();
//! assert_eq!(hip.wavefront_size(), 64);
//! let x = hip.roc_array(&vec![2.0f64; 128]).unwrap();
//! let xs = hip.view_mut(&x).unwrap();
//! hip.launch(64, 2, 0, KernelCost::memory_bound(8.0, 8.0), |t| {
//!     let i = t.global_id_x();
//!     xs.set(i, xs.get(i) * 3.0);
//! })
//! .unwrap();
//! assert_eq!(hip.to_host(&x).unwrap()[127], 6.0);
//! ```

use std::sync::Arc;

use racc_gpusim::{
    profiles, Device, DeviceBuffer, DeviceSlice, DeviceSliceMut, Element, Event, KernelCost,
    LaunchConfig, PhasedKernel, SimError, ThreadCtx,
};

/// Error type of the HIP-flavored API.
#[derive(Debug, Clone, PartialEq)]
pub struct HipError(pub SimError);

impl std::fmt::Display for HipError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HIP error: {}", self.0)
    }
}

impl std::error::Error for HipError {}

impl From<SimError> for HipError {
    fn from(e: SimError) -> Self {
        HipError(e)
    }
}

impl From<HipError> for racc_core::RaccError {
    fn from(e: HipError) -> Self {
        e.0.into()
    }
}

/// A device array, the analog of `ROCArray{T}`.
pub type RocArray<T> = DeviceBuffer<T>;

/// An event on the device timeline (`HSA signal` / `hipEvent`).
pub type HipEvent = Event;

/// Device properties exposed by the HIP-flavored API, mirroring
/// `hipDeviceProp_t` fields the paper's back end consults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HipDeviceProps {
    /// Wavefront width (64 on CDNA).
    pub wavefront_size: usize,
    /// Maximum workitems per workgroup.
    pub max_workgroup_size: usize,
    /// Number of compute units.
    pub compute_units: usize,
    /// LDS bytes per workgroup.
    pub lds_per_workgroup: usize,
}

/// The HIP-flavored context owning one simulated AMD device.
pub struct Hip {
    device: Arc<Device>,
}

impl Default for Hip {
    fn default() -> Self {
        Self::new()
    }
}

impl Hip {
    /// A context on a simulated AMD MI100.
    pub fn new() -> Self {
        Hip {
            device: Arc::new(Device::new(profiles::amd_mi100())),
        }
    }

    /// A context on a custom device specification.
    pub fn with_spec(spec: racc_gpusim::DeviceSpec) -> Self {
        Hip {
            device: Arc::new(Device::new(spec)),
        }
    }

    /// Fallible [`Hip::with_spec`]: a bad specification comes back as an
    /// error (hipErrorInvalidDevice analog) instead of a panic.
    pub fn try_with_spec(spec: racc_gpusim::DeviceSpec) -> Result<Self, HipError> {
        Ok(Hip {
            device: Arc::new(Device::try_new(spec)?),
        })
    }

    /// Access the underlying simulator device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Share the device handle.
    pub fn device_arc(&self) -> Arc<Device> {
        Arc::clone(&self.device)
    }

    /// Enable or disable the device sanitizer (the simulator's
    /// `rocgdb`/compute-sanitizer analogue).
    pub fn set_sanitizer(&self, enabled: bool) {
        self.device.set_sanitizer(enabled);
    }

    /// Sanitizer findings for this context; `None` while disabled.
    pub fn sanitizer_report(&self) -> Option<racc_gpusim::SanitizerReport> {
        self.device.sanitizer_report()
    }

    /// Arm deterministic fault injection (`racc-chaos`) on the device.
    pub fn set_chaos(&self, plan: racc_gpusim::FaultPlan) {
        self.device.set_chaos(plan);
    }

    /// Every fault injected on the device so far, in injection order.
    pub fn fault_log(&self) -> Vec<racc_gpusim::FaultEvent> {
        self.device.fault_log()
    }

    /// Device properties.
    pub fn props(&self) -> HipDeviceProps {
        let spec = self.device.spec();
        HipDeviceProps {
            wavefront_size: spec.simt_width as usize,
            max_workgroup_size: spec.max_threads_per_block as usize,
            compute_units: spec.compute_units as usize,
            lds_per_workgroup: spec.shared_mem_per_block,
        }
    }

    /// Wavefront width (64 lanes on the MI100).
    pub fn wavefront_size(&self) -> usize {
        self.props().wavefront_size
    }

    /// `ROCArray(host)`: allocate + upload.
    pub fn roc_array<T: Element>(&self, host: &[T]) -> Result<RocArray<T>, HipError> {
        Ok(self.device.alloc_from(host)?)
    }

    /// `AMDGPU.zeros(T, n)`.
    pub fn zeros<T: Element>(&self, n: usize) -> Result<RocArray<T>, HipError> {
        Ok(self.device.alloc::<T>(n)?)
    }

    /// Download to host.
    pub fn to_host<T: Element>(&self, arr: &RocArray<T>) -> Result<Vec<T>, HipError> {
        Ok(self.device.read_vec(arr)?)
    }

    /// Read one element (scalar result readback).
    pub fn read_scalar<T: Element>(&self, arr: &RocArray<T>, i: usize) -> Result<T, HipError> {
        Ok(self.device.read_scalar(arr, i)?)
    }

    /// Device-to-device copy.
    pub fn copy<T: Element>(&self, src: &RocArray<T>, dst: &RocArray<T>) -> Result<(), HipError> {
        Ok(self.device.copy(src, dst)?)
    }

    /// Read-only kernel view.
    pub fn view<T: Element>(&self, arr: &RocArray<T>) -> Result<DeviceSlice<T>, HipError> {
        Ok(self.device.slice(arr)?)
    }

    /// Writable kernel view.
    pub fn view_mut<T: Element>(&self, arr: &RocArray<T>) -> Result<DeviceSliceMut<T>, HipError> {
        Ok(self.device.slice_mut(arr)?)
    }

    /// `@roc groupsize=groupsize gridsize=groups kernel(...)`: launch over a
    /// 1D grid of `groups` workgroups of `groupsize` workitems.
    ///
    /// With `lds_bytes == 0` this dispatches through the simulator's
    /// non-cooperative fast path (no per-group arena or phase machinery —
    /// see `DESIGN.md` §6); the `launch_overhead` bench gates its cost.
    pub fn launch<F>(
        &self,
        groupsize: u32,
        groups: u32,
        lds_bytes: usize,
        cost: KernelCost,
        body: F,
    ) -> Result<u64, HipError>
    where
        F: Fn(&ThreadCtx) + Sync,
    {
        let cfg = LaunchConfig::new(groups, groupsize).with_shared_mem(lds_bytes);
        Ok(self.device.launch(cfg, cost, body)?)
    }

    /// 2D launch with `(gx, gy)` workgroup tiles and `(bx, by)` groups.
    pub fn launch_2d<F>(
        &self,
        groupsize: (u32, u32),
        groups: (u32, u32),
        lds_bytes: usize,
        cost: KernelCost,
        body: F,
    ) -> Result<u64, HipError>
    where
        F: Fn(&ThreadCtx) + Sync,
    {
        let cfg = LaunchConfig::new(groups, groupsize).with_shared_mem(lds_bytes);
        Ok(self.device.launch(cfg, cost, body)?)
    }

    /// 3D launch.
    pub fn launch_3d<F>(
        &self,
        groupsize: (u32, u32, u32),
        groups: (u32, u32, u32),
        lds_bytes: usize,
        cost: KernelCost,
        body: F,
    ) -> Result<u64, HipError>
    where
        F: Fn(&ThreadCtx) + Sync,
    {
        let cfg = LaunchConfig::new(groups, groupsize).with_shared_mem(lds_bytes);
        Ok(self.device.launch(cfg, cost, body)?)
    }

    /// Launch a cooperative kernel using LDS and workgroup barriers.
    pub fn launch_cooperative<K>(
        &self,
        groupsize: u32,
        groups: u32,
        lds_bytes: usize,
        cost: KernelCost,
        kernel: &K,
    ) -> Result<u64, HipError>
    where
        K: PhasedKernel,
    {
        let cfg = LaunchConfig::new(groups, groupsize).with_shared_mem(lds_bytes);
        Ok(self.device.launch_phased(cfg, cost, kernel)?)
    }

    /// Fill a buffer with a constant (a memset-style kernel).
    pub fn fill<T: Element>(&self, arr: &RocArray<T>, value: T) -> Result<(), HipError> {
        let n = arr.len();
        if n == 0 {
            return Ok(());
        }
        let v = self.view_mut(arr)?;
        let threads = n.clamp(1, 256) as u32;
        let blocks = n.div_ceil(threads as usize) as u32;
        self.launch(
            threads,
            blocks,
            0,
            KernelCost::memory_bound(0.0, std::mem::size_of::<T>() as f64),
            move |t| {
                let i = t.global_id_x();
                if i < n {
                    v.set(i, value);
                }
            },
        )?;
        Ok(())
    }

    /// Create a new (non-default) stream (HSA queue).
    pub fn create_stream(&self) -> racc_gpusim::Stream {
        self.device.create_stream()
    }

    /// Launch asynchronously on a stream; overlapping on the modeled clock.
    pub fn launch_async<F>(
        &self,
        stream: &racc_gpusim::Stream,
        groupsize: u32,
        groups: u32,
        lds_bytes: usize,
        cost: KernelCost,
        body: F,
    ) -> Result<u64, HipError>
    where
        F: Fn(&ThreadCtx) + Sync,
    {
        let cfg = LaunchConfig::new(groups, groupsize).with_shared_mem(lds_bytes);
        Ok(self.device.launch_async(stream, cfg, cost, body)?)
    }

    /// Wait for one stream's modeled completion.
    pub fn sync_stream(&self, stream: &racc_gpusim::Stream) {
        self.device.sync_stream(stream)
    }

    /// Record an event on the device timeline.
    pub fn record_event(&self) -> HipEvent {
        self.device.record_event()
    }

    /// `AMDGPU.synchronize()`.
    pub fn synchronize(&self) {
        self.device.synchronize()
    }

    /// Current device clock in nanoseconds.
    pub fn clock_ns(&self) -> u64 {
        self.device.clock_ns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn props_match_mi100() {
        let hip = Hip::new();
        let p = hip.props();
        assert_eq!(p.wavefront_size, 64);
        assert_eq!(p.compute_units, 120);
        assert_eq!(p.max_workgroup_size, 1024);
        assert_eq!(p.lds_per_workgroup, 64 * 1024);
    }

    #[test]
    fn array_round_trip() {
        let hip = Hip::new();
        let host: Vec<f32> = (0..64).map(|i| i as f32).collect();
        let d = hip.roc_array(&host).unwrap();
        assert_eq!(hip.to_host(&d).unwrap(), host);
    }

    #[test]
    fn wavefront_sized_launch_covers_range() {
        let hip = Hip::new();
        let n = 1000usize;
        let buf = hip.zeros::<u32>(n).unwrap();
        let v = hip.view_mut(&buf).unwrap();
        let groupsize = hip.wavefront_size() as u32 * 4; // 256
        let groups = n.div_ceil(groupsize as usize) as u32;
        hip.launch(groupsize, groups, 0, KernelCost::default(), |t| {
            let i = t.global_id_x();
            if i < n {
                v.set(i, i as u32);
            }
        })
        .unwrap();
        let host = hip.to_host(&buf).unwrap();
        for (i, x) in host.iter().enumerate() {
            assert_eq!(*x, i as u32);
        }
    }

    #[test]
    fn mi100_is_slower_per_launch_than_a100() {
        // Calibration sanity: the MI100 profile has a larger launch overhead
        // and lower achieved bandwidth than the A100 (as in the paper's
        // figures, where the AMD GPU trails the NVIDIA GPU).
        let hip = Hip::new();
        let cuda = racc_cudasim::Cuda::new();
        let ns_hip = hip
            .launch(256, 4096, 0, KernelCost::memory_bound(16.0, 8.0), |_| {})
            .unwrap();
        let ns_cuda = cuda
            .launch(256, 4096, 0, KernelCost::memory_bound(16.0, 8.0), |_| {})
            .unwrap();
        assert!(ns_hip > ns_cuda);
    }

    #[test]
    fn errors_are_wrapped() {
        let hip = Hip::new();
        let err = hip
            .launch(0, 1, 0, KernelCost::default(), |_| {})
            .unwrap_err();
        assert!(err.to_string().contains("HIP error"));
    }

    #[test]
    fn fill_sets_every_element() {
        let api = Hip::new();
        let buf = api.zeros::<f64>(1000).unwrap();
        api.fill(&buf, 3.25).unwrap();
        assert!(api.to_host(&buf).unwrap().iter().all(|&v| v == 3.25));
        let empty = api.zeros::<f64>(0).unwrap();
        api.fill(&empty, 1.0).unwrap();
    }

    #[test]
    fn async_streams_overlap() {
        let api = Hip::new();
        let s1 = api.create_stream();
        let s2 = api.create_stream();
        let cost = racc_gpusim::KernelCost::memory_bound(64.0, 64.0);
        let n1 = api.launch_async(&s1, 256, 4096, 0, cost, |_| {}).unwrap();
        let n2 = api.launch_async(&s2, 256, 4096, 0, cost, |_| {}).unwrap();
        assert_eq!(api.clock_ns(), 0);
        api.synchronize();
        assert_eq!(api.clock_ns(), n1.max(n2));
        api.sync_stream(&s2);
    }
}
