//! Double-buffered Jacobi relaxation on a 2D stencil.

use racc_core::{Array2, Backend, Context, KernelProfile, RaccError};

use crate::Stencil2;

/// Jacobi iteration `u ← u + ω D⁻¹ (b − A u)` specialized to the 5-point
/// Laplacian Poisson problem `−∇²u = b` with Dirichlet boundaries: the
/// classic smoother, double-buffered, one `parallel_for` per sweep.
pub struct Jacobi2<'c, B: Backend> {
    ctx: &'c Context<B>,
    m: usize,
    n: usize,
    u: Array2<f64>,
    next: Array2<f64>,
    b: Array2<f64>,
    sweeps: usize,
}

impl<'c, B: Backend> Jacobi2<'c, B> {
    /// Set up `−∇²u = b` on an `m × n` grid (unit spacing), `u = 0` on the
    /// boundary and initially everywhere.
    pub fn new(ctx: &'c Context<B>, b: &Array2<f64>) -> Result<Self, RaccError> {
        let (m, n) = b.dims();
        assert!(m >= 3 && n >= 3, "Jacobi needs at least a 3x3 grid");
        let rhs = ctx.zeros2::<f64>(m, n)?;
        ctx.parallel_for_2d((m, n), &KernelProfile::copy(), {
            let (src, dst) = (b.view(), rhs.view_mut());
            move |i, j| dst.set(i, j, src.get(i, j))
        });
        Ok(Jacobi2 {
            ctx,
            m,
            n,
            u: ctx.zeros2::<f64>(m, n)?,
            next: ctx.zeros2::<f64>(m, n)?,
            b: rhs,
            sweeps: 0,
        })
    }

    /// Sweeps performed so far.
    pub fn sweeps(&self) -> usize {
        self.sweeps
    }

    /// One Jacobi sweep: `u'[i,j] = (b[i,j] + Σ neighbors) / 4` on the
    /// interior (boundary rows stay zero — the Dirichlet condition).
    pub fn sweep(&mut self) {
        let (m, n) = (self.m, self.n);
        let profile = Stencil2::laplacian_5pt().profile();
        let (u, next, b) = (self.u.view(), self.next.view_mut(), self.b.view());
        self.ctx.parallel_for_2d((m, n), &profile, move |i, j| {
            if i == 0 || j == 0 || i == m - 1 || j == n - 1 {
                next.set(i, j, 0.0);
            } else {
                let sum = u.get(i - 1, j) + u.get(i + 1, j) + u.get(i, j - 1) + u.get(i, j + 1);
                next.set(i, j, (b.get(i, j) + sum) / 4.0);
            }
        });
        std::mem::swap(&mut self.u, &mut self.next);
        self.sweeps += 1;
    }

    /// Run `count` sweeps.
    pub fn run(&mut self, count: usize) {
        for _ in 0..count {
            self.sweep();
        }
    }

    /// The residual max-norm `max |b + ∇²u|` over the interior.
    pub fn residual(&self) -> f64 {
        let (m, n) = (self.m, self.n);
        let (u, b) = (self.u.view(), self.b.view());
        self.ctx.parallel_reduce_2d_with(
            (m, n),
            &Stencil2::laplacian_5pt().profile(),
            racc_core::Max,
            move |i, j| {
                if i == 0 || j == 0 || i == m - 1 || j == n - 1 {
                    0.0
                } else {
                    let lap = u.get(i - 1, j) + u.get(i + 1, j) + u.get(i, j - 1) + u.get(i, j + 1)
                        - 4.0 * u.get(i, j);
                    (b.get(i, j) + lap).abs()
                }
            },
        )
    }

    /// Download the current iterate (column-major).
    pub fn solution(&self) -> Result<Vec<f64>, RaccError> {
        self.ctx.to_host2(&self.u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racc_core::ThreadsBackend;

    #[test]
    fn residual_decreases_and_converges() {
        let ctx = Context::new(ThreadsBackend::with_threads(2));
        let (m, n) = (20, 20);
        let b = ctx
            .array2_from_fn(m, n, |i, j| {
                if i > 0 && j > 0 && i < m - 1 && j < n - 1 {
                    1.0
                } else {
                    0.0
                }
            })
            .unwrap();
        let mut jac = Jacobi2::new(&ctx, &b).unwrap();
        let r0 = jac.residual();
        jac.run(50);
        let r1 = jac.residual();
        jac.run(450);
        let r2 = jac.residual();
        assert!(r1 < r0, "{r1} < {r0}");
        assert!(r2 < r1, "{r2} < {r1}");
        assert_eq!(jac.sweeps(), 500);
    }

    #[test]
    fn solves_a_manufactured_poisson_problem() {
        // u* = sin(pi x) sin(pi y) on the unit square; b = -lap(u*) sampled
        // on the grid with the discrete operator, so Jacobi must recover u*
        // exactly up to iteration error.
        let ctx = Context::new(ThreadsBackend::with_threads(4));
        let s = 24usize;
        let u_star = |i: usize, j: usize| {
            let x = i as f64 / (s - 1) as f64;
            let y = j as f64 / (s - 1) as f64;
            (std::f64::consts::PI * x).sin() * (std::f64::consts::PI * y).sin()
        };
        // Discrete b: b[i,j] = 4 u* - sum(neighbors of u*) on the interior.
        let b = ctx
            .array2_from_fn(s, s, |i, j| {
                if i == 0 || j == 0 || i == s - 1 || j == s - 1 {
                    0.0
                } else {
                    4.0 * u_star(i, j)
                        - u_star(i - 1, j)
                        - u_star(i + 1, j)
                        - u_star(i, j - 1)
                        - u_star(i, j + 1)
                }
            })
            .unwrap();
        let mut jac = Jacobi2::new(&ctx, &b).unwrap();
        jac.run(3000);
        let u = jac.solution().unwrap();
        let mut max_err = 0.0f64;
        for j in 0..s {
            for i in 0..s {
                max_err = max_err.max((u[j * s + i] - u_star(i, j)).abs());
            }
        }
        assert!(max_err < 5e-3, "max error {max_err}");
    }
}
