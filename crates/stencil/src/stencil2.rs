//! 2D weighted stencils.

use racc_core::{Array2, Backend, Context, KernelProfile};

use crate::Boundary;

/// A 2D stencil: taps `(di, dj, weight)` applied at every grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct Stencil2 {
    taps: Vec<(isize, isize, f64)>,
}

impl Stencil2 {
    /// Build from explicit taps.
    pub fn new(taps: Vec<(isize, isize, f64)>) -> Self {
        assert!(!taps.is_empty(), "a stencil needs at least one tap");
        Stencil2 { taps }
    }

    /// The classic 5-point Laplacian: `-4` center, `+1` each neighbor.
    pub fn laplacian_5pt() -> Self {
        Stencil2::new(vec![
            (0, 0, -4.0),
            (-1, 0, 1.0),
            (1, 0, 1.0),
            (0, -1, 1.0),
            (0, 1, 1.0),
        ])
    }

    /// The 9-point Laplacian (Oono–Puri form).
    pub fn laplacian_9pt() -> Self {
        Stencil2::new(vec![
            (0, 0, -3.0),
            (-1, 0, 0.5),
            (1, 0, 0.5),
            (0, -1, 0.5),
            (0, 1, 0.5),
            (-1, -1, 0.25),
            (1, -1, 0.25),
            (-1, 1, 0.25),
            (1, 1, 0.25),
        ])
    }

    /// A 3×3 box blur (mean filter).
    pub fn box_blur() -> Self {
        let w = 1.0 / 9.0;
        let mut taps = Vec::with_capacity(9);
        for di in -1..=1 {
            for dj in -1..=1 {
                taps.push((di, dj, w));
            }
        }
        Stencil2::new(taps)
    }

    /// The taps.
    pub fn taps(&self) -> &[(isize, isize, f64)] {
        &self.taps
    }

    /// Sum of weights (0 for difference operators, 1 for averaging ones).
    pub fn weight_sum(&self) -> f64 {
        self.taps.iter().map(|&(_, _, w)| w).sum()
    }

    /// The cost profile of one application (reads per tap + one write;
    /// gather patterns are mostly-coalesced on the fast axis).
    pub fn profile(&self) -> KernelProfile {
        KernelProfile::new(
            "stencil2",
            2.0 * self.taps.len() as f64,
            8.0 * self.taps.len() as f64,
            8.0,
        )
        .with_coalescing(0.8)
    }

    /// `dst = S(src)` on the context's backend. `src` and `dst` must have
    /// equal shapes (and may not alias — use separate arrays).
    pub fn apply<B: Backend>(
        &self,
        ctx: &Context<B>,
        src: &Array2<f64>,
        dst: &Array2<f64>,
        bc: Boundary,
    ) {
        assert_eq!(src.dims(), dst.dims(), "stencil shape mismatch");
        let (m, n) = src.dims();
        let taps = self.taps.clone();
        let (sv, dv) = (src.view(), dst.view_mut());
        ctx.parallel_for_2d((m, n), &self.profile(), move |i, j| {
            let mut acc = 0.0;
            for &(di, dj, w) in &taps {
                let ii = bc.resolve(i as isize + di, m);
                let jj = bc.resolve(j as isize + dj, n);
                let v = match (ii, jj) {
                    (Some(ii), Some(jj)) => sv.get(ii, jj),
                    _ => bc.outside_value(),
                };
                acc += w * v;
            }
            dv.set(i, j, acc);
        });
    }

    /// Serial reference application (test ground truth).
    pub fn apply_ref(&self, m: usize, n: usize, src: &[f64], dst: &mut [f64], bc: Boundary) {
        assert_eq!(src.len(), m * n);
        assert_eq!(dst.len(), m * n);
        for j in 0..n {
            for i in 0..m {
                let mut acc = 0.0;
                for &(di, dj, w) in &self.taps {
                    let ii = bc.resolve(i as isize + di, m);
                    let jj = bc.resolve(j as isize + dj, n);
                    let v = match (ii, jj) {
                        (Some(ii), Some(jj)) => src[jj * m + ii],
                        _ => bc.outside_value(),
                    };
                    acc += w * v;
                }
                dst[j * m + i] = acc;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racc_core::{SerialBackend, ThreadsBackend};

    #[test]
    fn laplacian_annihilates_linear_fields() {
        let ctx = Context::new(ThreadsBackend::with_threads(2));
        let (m, n) = (16, 12);
        let src = ctx
            .array2_from_fn(m, n, |i, j| 3.0 * i as f64 - 2.0 * j as f64 + 1.0)
            .unwrap();
        let dst = ctx.zeros2::<f64>(m, n).unwrap();
        Stencil2::laplacian_5pt().apply(&ctx, &src, &dst, Boundary::Neumann);
        let host = ctx.to_host2(&dst).unwrap();
        // Interior points of a linear field: Laplacian ~ 0 (Neumann edges
        // clamp, so only check the interior).
        for j in 1..n - 1 {
            for i in 1..m - 1 {
                assert!(
                    host[j * m + i].abs() < 1e-12,
                    "({i},{j}) = {}",
                    host[j * m + i]
                );
            }
        }
    }

    #[test]
    fn weight_sums() {
        assert_eq!(Stencil2::laplacian_5pt().weight_sum(), 0.0);
        assert_eq!(Stencil2::laplacian_9pt().weight_sum(), 0.0);
        assert!((Stencil2::box_blur().weight_sum() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn matches_serial_reference_under_all_boundaries() {
        let (m, n) = (13, 9);
        let data: Vec<f64> = (0..m * n).map(|i| ((i * 31) % 17) as f64 - 8.0).collect();
        for bc in [
            Boundary::Dirichlet(2.5),
            Boundary::Periodic,
            Boundary::Neumann,
        ] {
            let ctx = Context::new(SerialBackend::new());
            let src = ctx.array2_from(m, n, &data).unwrap();
            let dst = ctx.zeros2::<f64>(m, n).unwrap();
            let s = Stencil2::laplacian_9pt();
            s.apply(&ctx, &src, &dst, bc);
            let mut want = vec![0.0; m * n];
            s.apply_ref(m, n, &data, &mut want, bc);
            assert_eq!(ctx.to_host2(&dst).unwrap(), want, "{bc:?}");
        }
    }

    #[test]
    fn box_blur_preserves_constants() {
        let ctx = Context::new(SerialBackend::new());
        let src = ctx.array2_from_fn(10, 10, |_, _| 4.2f64).unwrap();
        let dst = ctx.zeros2::<f64>(10, 10).unwrap();
        Stencil2::box_blur().apply(&ctx, &src, &dst, Boundary::Periodic);
        assert!(ctx
            .to_host2(&dst)
            .unwrap()
            .iter()
            .all(|v| (v - 4.2).abs() < 1e-12));
    }

    #[test]
    fn same_result_on_simulated_gpu() {
        let (m, n) = (32, 24);
        let data: Vec<f64> = (0..m * n).map(|i| ((i * 7) % 29) as f64).collect();
        let on = |run: &dyn Fn() -> Vec<f64>| run();
        let cpu = on(&|| {
            let ctx = Context::new(ThreadsBackend::with_threads(2));
            let src = ctx.array2_from(m, n, &data).unwrap();
            let dst = ctx.zeros2::<f64>(m, n).unwrap();
            Stencil2::laplacian_5pt().apply(&ctx, &src, &dst, Boundary::Periodic);
            ctx.to_host2(&dst).unwrap()
        });
        let gpu = on(&|| {
            let ctx = Context::new(racc_backend_cuda::CudaBackend::new());
            let src = ctx.array2_from(m, n, &data).unwrap();
            let dst = ctx.zeros2::<f64>(m, n).unwrap();
            Stencil2::laplacian_5pt().apply(&ctx, &src, &dst, Boundary::Periodic);
            ctx.to_host2(&dst).unwrap()
        });
        assert_eq!(cpu, gpu);
    }

    #[test]
    #[should_panic(expected = "at least one tap")]
    fn empty_stencil_rejected() {
        Stencil2::new(vec![]);
    }
}
