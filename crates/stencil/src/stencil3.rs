//! 3D weighted stencils.

use racc_core::{Array3, Backend, Context, KernelProfile};

use crate::Boundary;

/// A 3D stencil: taps `(di, dj, dk, weight)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Stencil3 {
    taps: Vec<(isize, isize, isize, f64)>,
}

impl Stencil3 {
    /// Build from explicit taps.
    pub fn new(taps: Vec<(isize, isize, isize, f64)>) -> Self {
        assert!(!taps.is_empty(), "a stencil needs at least one tap");
        Stencil3 { taps }
    }

    /// The 7-point Laplacian: `-6` center, `+1` each face neighbor.
    pub fn laplacian_7pt() -> Self {
        Stencil3::new(vec![
            (0, 0, 0, -6.0),
            (-1, 0, 0, 1.0),
            (1, 0, 0, 1.0),
            (0, -1, 0, 1.0),
            (0, 1, 0, 1.0),
            (0, 0, -1, 1.0),
            (0, 0, 1, 1.0),
        ])
    }

    /// A full 27-point mean filter.
    pub fn box_blur() -> Self {
        let w = 1.0 / 27.0;
        let mut taps = Vec::with_capacity(27);
        for di in -1..=1 {
            for dj in -1..=1 {
                for dk in -1..=1 {
                    taps.push((di, dj, dk, w));
                }
            }
        }
        Stencil3::new(taps)
    }

    /// The taps.
    pub fn taps(&self) -> &[(isize, isize, isize, f64)] {
        &self.taps
    }

    /// Sum of weights.
    pub fn weight_sum(&self) -> f64 {
        self.taps.iter().map(|&(_, _, _, w)| w).sum()
    }

    /// Cost profile of one application.
    pub fn profile(&self) -> KernelProfile {
        KernelProfile::new(
            "stencil3",
            2.0 * self.taps.len() as f64,
            8.0 * self.taps.len() as f64,
            8.0,
        )
        .with_coalescing(0.7)
    }

    /// `dst = S(src)` on the context's backend.
    pub fn apply<B: Backend>(
        &self,
        ctx: &Context<B>,
        src: &Array3<f64>,
        dst: &Array3<f64>,
        bc: Boundary,
    ) {
        assert_eq!(src.dims(), dst.dims(), "stencil shape mismatch");
        let (m, n, l) = src.dims();
        let taps = self.taps.clone();
        let (sv, dv) = (src.view(), dst.view_mut());
        ctx.parallel_for_3d((m, n, l), &self.profile(), move |i, j, k| {
            let mut acc = 0.0;
            for &(di, dj, dk, w) in &taps {
                let ii = bc.resolve(i as isize + di, m);
                let jj = bc.resolve(j as isize + dj, n);
                let kk = bc.resolve(k as isize + dk, l);
                let v = match (ii, jj, kk) {
                    (Some(ii), Some(jj), Some(kk)) => sv.get(ii, jj, kk),
                    _ => bc.outside_value(),
                };
                acc += w * v;
            }
            dv.set(i, j, k, acc);
        });
    }

    /// Serial reference application.
    pub fn apply_ref(
        &self,
        dims: (usize, usize, usize),
        src: &[f64],
        dst: &mut [f64],
        bc: Boundary,
    ) {
        let (m, n, l) = dims;
        assert_eq!(src.len(), m * n * l);
        assert_eq!(dst.len(), m * n * l);
        let at = |i: usize, j: usize, k: usize| (k * n + j) * m + i;
        for k in 0..l {
            for j in 0..n {
                for i in 0..m {
                    let mut acc = 0.0;
                    for &(di, dj, dk, w) in &self.taps {
                        let ii = bc.resolve(i as isize + di, m);
                        let jj = bc.resolve(j as isize + dj, n);
                        let kk = bc.resolve(k as isize + dk, l);
                        let v = match (ii, jj, kk) {
                            (Some(ii), Some(jj), Some(kk)) => src[at(ii, jj, kk)],
                            _ => bc.outside_value(),
                        };
                        acc += w * v;
                    }
                    dst[at(i, j, k)] = acc;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racc_core::{SerialBackend, ThreadsBackend};

    #[test]
    fn weight_sums() {
        assert_eq!(Stencil3::laplacian_7pt().weight_sum(), 0.0);
        assert!((Stencil3::box_blur().weight_sum() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn matches_serial_reference() {
        let dims = (6, 7, 5);
        let total = dims.0 * dims.1 * dims.2;
        let data: Vec<f64> = (0..total).map(|i| ((i * 13) % 23) as f64 - 11.0).collect();
        for bc in [
            Boundary::Dirichlet(-1.0),
            Boundary::Periodic,
            Boundary::Neumann,
        ] {
            let ctx = Context::new(ThreadsBackend::with_threads(3));
            let src = ctx.array3_from(dims.0, dims.1, dims.2, &data).unwrap();
            let dst = ctx.zeros3::<f64>(dims.0, dims.1, dims.2).unwrap();
            let s = Stencil3::laplacian_7pt();
            s.apply(&ctx, &src, &dst, bc);
            let mut want = vec![0.0; total];
            s.apply_ref(dims, &data, &mut want, bc);
            assert_eq!(ctx.to_host3(&dst).unwrap(), want, "{bc:?}");
        }
    }

    #[test]
    fn quadratic_field_has_constant_laplacian() {
        // f = i^2 => Laplacian = 2 everywhere in the interior.
        let ctx = Context::new(SerialBackend::new());
        let (m, n, l) = (10, 6, 6);
        let src = ctx
            .array3_from_fn_helper(m, n, l)
            .unwrap_or_else(|| unreachable!());
        let dst = ctx.zeros3::<f64>(m, n, l).unwrap();
        Stencil3::laplacian_7pt().apply(&ctx, &src, &dst, Boundary::Neumann);
        let host = ctx.to_host3(&dst).unwrap();
        let at = |i: usize, j: usize, k: usize| (k * n + j) * m + i;
        for k in 1..l - 1 {
            for j in 1..n - 1 {
                for i in 1..m - 1 {
                    assert!(
                        (host[at(i, j, k)] - 2.0).abs() < 1e-12,
                        "({i},{j},{k}) = {}",
                        host[at(i, j, k)]
                    );
                }
            }
        }
    }

    // Helper extension used by the quadratic test: builds f(i,j,k) = i^2.
    trait Array3FromFn {
        fn array3_from_fn_helper(
            &self,
            m: usize,
            n: usize,
            l: usize,
        ) -> Option<racc_core::Array3<f64>>;
    }

    impl<B: racc_core::Backend> Array3FromFn for Context<B> {
        fn array3_from_fn_helper(
            &self,
            m: usize,
            n: usize,
            l: usize,
        ) -> Option<racc_core::Array3<f64>> {
            let mut data = Vec::with_capacity(m * n * l);
            for _k in 0..l {
                for _j in 0..n {
                    for i in 0..m {
                        data.push((i * i) as f64);
                    }
                }
            }
            self.array3_from(m, n, l, &data).ok()
        }
    }
}
