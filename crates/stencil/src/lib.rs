//! # racc-stencil
//!
//! Structured-grid stencil operators expressed through the RACC constructs —
//! the reusable generalization of the workloads the paper's applications are
//! built from (the LBM streaming gather, the tridiagonal matvec, and the
//! finite-difference kernels HPCCG/MiniFE stand in for).
//!
//! A [`Stencil2`]/[`Stencil3`] is a set of `(offset, weight)` taps applied
//! at every grid point with a configurable [`Boundary`] treatment; one
//! application is one `parallel_for` on whatever backend the context uses.
//! [`Jacobi2`] layers double-buffered relaxation on top.
//!
//! ```
//! use racc_core::{Context, ThreadsBackend};
//! use racc_stencil::{Boundary, Stencil2};
//!
//! let ctx = Context::new(ThreadsBackend::with_threads(2));
//! let src = ctx.array2_from_fn(8, 8, |i, j| (i + j) as f64).unwrap();
//! let dst = ctx.zeros2::<f64>(8, 8).unwrap();
//! let lap = Stencil2::laplacian_5pt();
//! lap.apply(&ctx, &src, &dst, Boundary::Dirichlet(0.0));
//! // The interior of a linear field has zero Laplacian.
//! let host = ctx.to_host2(&dst).unwrap();
//! assert_eq!(host[8 + 3], 0.0); // element (3, 1), column-major
//! ```

mod jacobi;
mod sharded;
mod stencil2;
mod stencil3;

pub use jacobi::Jacobi2;
pub use sharded::{Heat3State, ShardedHeat3};
pub use stencil2::Stencil2;
pub use stencil3::Stencil3;

/// How taps reaching outside the grid are treated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Boundary {
    /// Out-of-grid values read as the given constant.
    Dirichlet(f64),
    /// Indices wrap around.
    Periodic,
    /// Out-of-grid reads mirror the nearest in-grid value (zero-gradient).
    Neumann,
}

impl Boundary {
    /// Resolve a possibly out-of-range coordinate under this boundary.
    /// Returns `None` when the tap contributes the Dirichlet constant.
    #[inline]
    pub(crate) fn resolve(&self, idx: isize, extent: usize) -> Option<usize> {
        if idx >= 0 && (idx as usize) < extent {
            return Some(idx as usize);
        }
        match self {
            Boundary::Dirichlet(_) => None,
            Boundary::Periodic => {
                let e = extent as isize;
                Some((((idx % e) + e) % e) as usize)
            }
            Boundary::Neumann => Some(idx.clamp(0, extent as isize - 1) as usize),
        }
    }

    /// The value contributed by an unresolvable (Dirichlet) tap.
    #[inline]
    pub(crate) fn outside_value(&self) -> f64 {
        match self {
            Boundary::Dirichlet(v) => *v,
            _ => unreachable!("only Dirichlet taps are unresolvable"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_resolution() {
        let d = Boundary::Dirichlet(7.0);
        assert_eq!(d.resolve(3, 10), Some(3));
        assert_eq!(d.resolve(-1, 10), None);
        assert_eq!(d.resolve(10, 10), None);
        assert_eq!(d.outside_value(), 7.0);

        let p = Boundary::Periodic;
        assert_eq!(p.resolve(-1, 10), Some(9));
        assert_eq!(p.resolve(10, 10), Some(0));
        assert_eq!(p.resolve(-11, 10), Some(9));
        assert_eq!(p.resolve(25, 10), Some(5));

        let n = Boundary::Neumann;
        assert_eq!(n.resolve(-3, 10), Some(0));
        assert_eq!(n.resolve(12, 10), Some(9));
        assert_eq!(n.resolve(4, 10), Some(4));
    }
}
