//! Sharded 3D heat diffusion: the `examples/heat3d.rs` Jacobi sweep as a
//! [`ShardApp`], split along `k` (the slab-contiguous axis in RACC's
//! column-major layout, so each halo is one contiguous `n × n` plane).
//!
//! Per step each shard packs its owned edge planes with a 2D copy kernel,
//! posts them, runs the interior sweep while the exchange is in flight,
//! unpacks the received planes into the ghost slabs, and finishes the
//! ghost-adjacent planes with boundary launches. The arithmetic per global
//! site is exactly the single-device kernel's (same tap order, same
//! clamps), so the final field is bit-identical at any shard count — the
//! property the sharded bit-identity and chaos-recovery tests pin.

use racc_core::{Array1, Array3, Backend, Context, KernelProfile};
use racc_shard::{Shard, ShardApp, ShardError, ShardHandle, Topology};

/// The heat3d cube: a hot `i = 0` face (T = 1), a cold `i = n−1` face
/// (T = 0), mirror-insulated `j`/`k` boundaries, relaxed with 7-point
/// Jacobi sweeps.
#[derive(Debug, Clone)]
pub struct ShardedHeat3 {
    /// Cube edge.
    pub n: usize,
    /// Jacobi sweeps to run.
    pub sweeps: u64,
}

/// Per-shard device state: the two Jacobi buffers over the local slab
/// range (ghosts included) plus one staging plane for pack/unpack.
pub struct Heat3State {
    t0: Array3<f64>,
    t1: Array3<f64>,
    stage: Array1<f64>,
}

impl ShardedHeat3 {
    /// Same per-site figures as `examples/heat3d.rs`.
    fn profile() -> KernelProfile {
        KernelProfile::new("heat3d-jacobi", 8.0, 56.0, 8.0)
    }

    fn pack_profile() -> KernelProfile {
        KernelProfile::new("halo-pack", 0.0, 8.0, 8.0)
    }

    /// The canonical initial field at global site `(i, j, k)`.
    fn init_site(i: usize) -> f64 {
        if i == 0 {
            1.0
        } else {
            0.0
        }
    }

    /// Copy local plane `k` of `src` into the staging vector and download
    /// it (the device-visible side of a halo send).
    fn pack<B: Backend>(ctx: &Context<B>, state: &Heat3State, n: usize, k: usize) -> Vec<f64> {
        let sv = state.t0.view();
        let gv = state.stage.view_mut();
        ctx.parallel_for_2d((n, n), &Self::pack_profile(), move |i, j| {
            gv.set(j * n + i, sv.get(i, j, k));
        });
        ctx.to_host(&state.stage).expect("halo pack download")
    }

    /// Upload a received plane and scatter it into local plane `k` of the
    /// read buffer.
    fn unpack<B: Backend>(ctx: &Context<B>, state: &Heat3State, n: usize, k: usize, data: &[f64]) {
        ctx.copy_to(&state.stage, data).expect("halo unpack upload");
        let gv = state.stage.view();
        let dv = state.t0.view_mut();
        ctx.parallel_for_2d((n, n), &Self::pack_profile(), move |i, j| {
            dv.set(i, j, k, gv.get(j * n + i));
        });
    }

    /// The Jacobi update over local planes `[k_from, k_to)` — identical
    /// arithmetic to the single-device sweep, with the `k` clamps applied
    /// at *global* edges only. The launch covers exactly the requested
    /// plane range so the modeled cost is proportional to the planes
    /// actually updated (a guarded full-grid launch would charge boundary
    /// touch-ups the price of a whole sweep).
    fn sweep<B: Backend>(
        ctx: &Context<B>,
        state: &Heat3State,
        n: usize,
        shard: Shard,
        k_from: usize,
        k_to: usize,
    ) {
        let (glo, os, gmax) = (shard.lo, shard.owned_start(), n - 1);
        let src = state.t0.view();
        let dst = state.t1.view_mut();
        ctx.parallel_for_3d((n, n, k_to - k_from), &Self::profile(), move |i, j, kk| {
            let k = k_from + kk;
            if i == 0 || i == n - 1 {
                return; // Dirichlet faces stay fixed.
            }
            let jm = j.saturating_sub(1);
            let jp = (j + 1).min(n - 1);
            // Mirror-clamp k at the *global* ends; inside, the neighbor
            // planes are local (owned or freshly exchanged ghosts).
            let g = glo + k - os;
            let km = if g == 0 { k } else { k - 1 };
            let kp = if g == gmax { k } else { k + 1 };
            let sum = src.get(i - 1, j, k)
                + src.get(i + 1, j, k)
                + src.get(i, jm, k)
                + src.get(i, jp, k)
                + src.get(i, j, km)
                + src.get(i, j, kp);
            dst.set(i, j, k, sum / 6.0);
        });
    }
}

impl<B: Backend> ShardApp<B> for ShardedHeat3 {
    type State = Heat3State;

    fn extent(&self) -> usize {
        self.n
    }
    fn slab_len(&self) -> usize {
        self.n * self.n
    }
    fn radius(&self) -> usize {
        1
    }
    fn total_steps(&self) -> u64 {
        self.sweeps
    }
    fn topology(&self) -> Topology {
        Topology::Open
    }

    fn initial(&self) -> Vec<f64> {
        let n = self.n;
        let mut field = Vec::with_capacity(n * n * n);
        for _k in 0..n {
            for _j in 0..n {
                for i in 0..n {
                    field.push(Self::init_site(i));
                }
            }
        }
        field
    }

    fn init(&self, ctx: &Context<B>, shard: Shard, snapshot: &[f64]) -> Heat3State {
        let n = self.n;
        let plane = n * n;
        let le = shard.local_extent();
        let mut local = Vec::with_capacity(plane * le);
        for k in 0..le {
            let g = shard.global_of(k);
            local.extend_from_slice(&snapshot[g * plane..(g + 1) * plane]);
        }
        // Both buffers start from the snapshot: the sweep rewrites every
        // non-Dirichlet site of `t1`, and the Dirichlet faces carry the
        // same fixed values in either buffer.
        let t0 = ctx.array3_from(n, n, le, &local).expect("t0 alloc");
        let t1 = ctx.array3_from(n, n, le, &local).expect("t1 alloc");
        let stage = ctx.zeros::<f64>(plane).expect("stage alloc");
        Heat3State { t0, t1, stage }
    }

    fn step(
        &self,
        h: &mut ShardHandle<'_, B>,
        state: &mut Heat3State,
        _step: u64,
    ) -> Result<(), ShardError> {
        let n = self.n;
        let sh = h.shard();
        let (os, owned, le) = (sh.owned_start(), sh.owned(), sh.local_extent());

        // Phase 1: pack + post the owned edge planes.
        let to_lo = (sh.ghosts_lo() > 0).then(|| Self::pack(h.ctx(), state, n, os));
        let to_hi = (sh.ghosts_hi() > 0).then(|| Self::pack(h.ctx(), state, n, os + owned - 1));
        h.post_halos(to_lo, to_hi)?;

        // Phase 2: interior sweep (owned planes whose stencil support is
        // already local) while the halos are in flight.
        let lo_int = os + usize::from(sh.ghosts_lo() > 0);
        let hi_int = os + owned - usize::from(sh.ghosts_hi() > 0);
        h.interior(|ctx| Self::sweep(ctx, state, n, sh, lo_int, hi_int));

        // Phase 3: complete the exchange into the ghost planes of the
        // read buffer.
        let (from_lo, from_hi) = h.recv_halos()?;
        if let Some(data) = from_lo {
            Self::unpack(h.ctx(), state, n, 0, &data);
        }
        if let Some(data) = from_hi {
            Self::unpack(h.ctx(), state, n, le - 1, &data);
        }

        // Phase 4: the ghost-adjacent owned planes.
        h.boundary(|ctx| {
            if sh.ghosts_lo() > 0 {
                Self::sweep(ctx, state, n, sh, os, os + 1);
            }
            if sh.ghosts_hi() > 0 {
                Self::sweep(ctx, state, n, sh, os + owned - 1, os + owned);
            }
        });

        std::mem::swap(&mut state.t0, &mut state.t1);
        Ok(())
    }

    fn dump(&self, ctx: &Context<B>, shard: Shard, state: &Heat3State) -> Vec<f64> {
        let plane = self.n * self.n;
        let host = ctx.to_host3(&state.t0).expect("dump download");
        let os = shard.owned_start();
        host[os * plane..(os + shard.owned()) * plane].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racc_core::SerialBackend;
    use racc_shard::{run_sharded, ShardOptions};
    use std::sync::Arc;

    fn run(devices: usize) -> Vec<f64> {
        run_sharded(
            Arc::new(ShardedHeat3 { n: 10, sweeps: 6 }),
            ShardOptions::devices(devices).checkpoint_every(2),
            |_rank| Context::new(SerialBackend::new()),
        )
        .field
    }

    #[test]
    fn sharded_heat3d_matches_single_device_bitwise() {
        let one = run(1);
        assert_eq!(one.len(), 1000);
        for devices in [2, 3, 5] {
            assert_eq!(one, run(devices), "{devices} devices");
        }
    }

    #[test]
    fn sharded_heat3d_matches_the_unsharded_reference_kernel() {
        // The same sweep written as the plain single-context loop of
        // examples/heat3d.rs, bit-for-bit.
        let (n, sweeps) = (10usize, 6usize);
        let ctx = Context::new(SerialBackend::new());
        let app = ShardedHeat3 {
            n,
            sweeps: sweeps as u64,
        };
        let init = <ShardedHeat3 as ShardApp<SerialBackend>>::initial(&app);
        let mut t0 = ctx.array3_from(n, n, n, &init).unwrap();
        let mut t1 = ctx.array3_from(n, n, n, &init).unwrap();
        let profile = KernelProfile::new("heat3d-jacobi", 8.0, 56.0, 8.0);
        for _ in 0..sweeps {
            let src = t0.view();
            let dst = t1.view_mut();
            ctx.parallel_for_3d((n, n, n), &profile, move |i, j, k| {
                if i == 0 || i == n - 1 {
                    return;
                }
                let jm = j.saturating_sub(1);
                let jp = (j + 1).min(n - 1);
                let km = k.saturating_sub(1);
                let kp = (k + 1).min(n - 1);
                let sum = src.get(i - 1, j, k)
                    + src.get(i + 1, j, k)
                    + src.get(i, jm, k)
                    + src.get(i, jp, k)
                    + src.get(i, j, km)
                    + src.get(i, j, kp);
                dst.set(i, j, k, sum / 6.0);
            });
            std::mem::swap(&mut t0, &mut t1);
        }
        let reference = ctx.to_host3(&t0).unwrap();
        assert_eq!(reference, run(3));
    }
}
