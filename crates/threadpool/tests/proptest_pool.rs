//! Property tests of the worker pool: coverage, reductions vs folds, slice
//! partitioning, and schedule equivalence.

use proptest::prelude::*;
use racc_threadpool::{Schedule, ThreadPool};
use std::sync::atomic::{AtomicUsize, Ordering};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// parallel_for touches every index exactly once for arbitrary n,
    /// thread counts, and schedules.
    #[test]
    fn parallel_for_covers(n in 0usize..5000, threads in 1usize..6, dynamic in any::<bool>(), chunk in 0usize..64) {
        let pool = ThreadPool::new(threads);
        let sched = if dynamic { Schedule::Dynamic { chunk } } else { Schedule::Static };
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(n, sched, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        prop_assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    /// parallel_reduce equals the sequential fold for arbitrary data and
    /// both schedules (sum over integers: exact).
    #[test]
    fn reduce_equals_fold(data in prop::collection::vec(any::<i64>(), 0..4000), threads in 1usize..6) {
        let pool = ThreadPool::new(threads);
        let expect: i64 = data.iter().fold(0i64, |a, b| a.wrapping_add(*b));
        for sched in [Schedule::Static, Schedule::Dynamic { chunk: 7 }] {
            let got = pool.parallel_reduce(data.len(), sched, 0i64, |i| data[i], |a, b| a.wrapping_add(b));
            prop_assert_eq!(got, expect);
        }
    }

    /// parallel_for_slices partitions exactly: every element written once,
    /// offsets consistent.
    #[test]
    fn slices_partition_exactly(n in 0usize..4000, threads in 1usize..7) {
        let pool = ThreadPool::new(threads);
        let mut data = vec![usize::MAX; n];
        pool.parallel_for_slices(&mut data, |offset, block| {
            for (i, x) in block.iter_mut().enumerate() {
                *x = offset + i;
            }
        });
        for (i, x) in data.iter().enumerate() {
            prop_assert_eq!(*x, i);
        }
    }

    /// 2D coverage for arbitrary rectangle shapes.
    #[test]
    fn two_d_covers(m in 0usize..80, n in 0usize..80, threads in 1usize..5) {
        let pool = ThreadPool::new(threads);
        let hits: Vec<AtomicUsize> = (0..m * n).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for_2d(m, n, Schedule::Static, |i, j| {
            hits[j * m + i].fetch_add(1, Ordering::Relaxed);
        });
        prop_assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    /// Max reduction finds the maximum for any data (non-commutative-order
    /// robustness of the combine tree).
    #[test]
    fn reduce_max_finds_max(data in prop::collection::vec(any::<i32>(), 1..2000)) {
        let pool = ThreadPool::new(4);
        let got = pool.parallel_reduce(data.len(), Schedule::Static, i32::MIN, |i| data[i], |a, b| a.max(b));
        prop_assert_eq!(got, *data.iter().max().unwrap());
    }
}
