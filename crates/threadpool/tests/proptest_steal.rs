//! Property tests of the work-stealing dispatch (DESIGN.md §14): stealing
//! must never change reduction bit patterns. Tile boundaries are a pure
//! function of `(n, schedule, participants)`, each tile folds into its own
//! slot, and the combine sweeps the slots in index order — so which worker
//! executes a tile (owner, thief, or the caller draining its own launch)
//! cannot reorder a single floating-point operation.

use proptest::prelude::*;
use racc_threadpool::{Schedule, ThreadPool};

/// A float fold whose result depends on evaluation order: summing values
/// of wildly different magnitudes. Any reassociation shows up in the bits.
fn order_sensitive_value(i: usize) -> f64 {
    let sign = if i.is_multiple_of(3) { -1.0 } else { 1.0 };
    sign * (1.0 + i as f64) * (10.0f64).powi((i % 13) as i32 - 6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Run-to-run bit determinism: the same reduction repeated on the same
    /// pool yields bit-identical f64 results regardless of how stealing
    /// interleaves across runs — for arbitrary sizes, grains, schedules,
    /// and pool widths.
    #[test]
    fn stealing_never_changes_reduction_bits(
        n in 0usize..5000,
        threads in 1usize..6,
        dynamic in any::<bool>(),
        chunk in 0usize..64,
    ) {
        let pool = ThreadPool::new(threads);
        let sched = if dynamic { Schedule::Dynamic { chunk } } else { Schedule::Static };
        let run = || {
            pool.parallel_reduce(n, sched, 0.0f64, order_sensitive_value, |a, b| a + b)
                .to_bits()
        };
        let first = run();
        for _ in 0..8 {
            prop_assert_eq!(run(), first);
        }
    }

    /// Pool-width independence for a fixed schedule: the deterministic
    /// tiling depends on the participant count, so identical pools must
    /// agree bit-for-bit even though their steal interleavings differ.
    #[test]
    fn identical_pools_agree_bit_for_bit(
        n in 0usize..4000,
        threads in 1usize..6,
        chunk in 0usize..48,
    ) {
        let sched = Schedule::Dynamic { chunk };
        let a = ThreadPool::new(threads)
            .parallel_reduce(n, sched, 0.0f64, order_sensitive_value, |x, y| x + y)
            .to_bits();
        let b = ThreadPool::new(threads)
            .parallel_reduce(n, sched, 0.0f64, order_sensitive_value, |x, y| x + y)
            .to_bits();
        prop_assert_eq!(a, b);
    }

    /// Integer reductions are exact: the stolen-tile fold must equal the
    /// straight sequential fold no matter the schedule or pool width.
    #[test]
    fn integer_reduce_equals_serial_fold_under_stealing(
        data in prop::collection::vec(any::<i64>(), 0..4000),
        threads in 1usize..6,
        chunk in 0usize..32,
    ) {
        let pool = ThreadPool::new(threads);
        let expect: i64 = data.iter().fold(0i64, |a, b| a.wrapping_add(*b));
        for sched in [Schedule::Static, Schedule::Dynamic { chunk }] {
            let got = pool.parallel_reduce(
                data.len(),
                sched,
                0i64,
                |i| data[i],
                |a, b| a.wrapping_add(b),
            );
            prop_assert_eq!(got, expect);
        }
    }
}

/// A panic inside a stolen task must propagate to the caller — and the
/// pool must stay usable afterwards (poisoned launches drain; workers
/// return to the idle set).
#[test]
fn stolen_task_panic_propagates_and_pool_survives() {
    use std::sync::atomic::{AtomicUsize, Ordering};

    let pool = ThreadPool::new(4);
    for round in 0..20 {
        let n = 512;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.parallel_for(n, Schedule::Dynamic { chunk: 1 }, |i| {
                if i == 257 {
                    panic!("boom in tile {round}");
                }
            });
        }));
        assert!(
            result.is_err(),
            "panic must reach the caller (round {round})"
        );
    }
    // The pool still schedules correctly after repeated poisonings.
    let hits: Vec<AtomicUsize> = (0..1024).map(|_| AtomicUsize::new(0)).collect();
    pool.parallel_for(hits.len(), Schedule::Dynamic { chunk: 0 }, |i| {
        hits[i].fetch_add(1, Ordering::Relaxed);
    });
    assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
}
