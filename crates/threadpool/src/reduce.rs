//! Parallel reductions over the pool.
//!
//! Each participant folds its share of the index space into a private
//! accumulator (cache-padded to avoid false sharing); the caller then
//! combines the partials **in participant order**, so a static schedule gives
//! bit-reproducible results for a fixed thread count.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::pool::ThreadPool;
use crate::schedule::{static_block, Schedule};
use crate::scratch;

/// One participant's reduction partial, padded to its own pair of cache
/// lines so neighboring accumulators never share a line (false sharing).
#[repr(align(128))]
struct PaddedPartial<T>(UnsafeCell<Option<T>>);

/// Shared view of the partial slots handed to the broadcast closures.
///
/// Safety contract: while the broadcast runs, participant `who` touches only
/// slot `who`; the pool's completion latch orders those writes before the
/// caller's combine loop. That exclusivity is what lets the slots drop the
/// `Mutex` the previous implementation paid for on every access.
struct PartialSlots<T> {
    ptr: *const PaddedPartial<T>,
    len: usize,
}

// SAFETY: per the contract above, no slot is ever accessed from two threads
// concurrently; `T: Send` lets the value itself cross threads.
unsafe impl<T: Send> Sync for PartialSlots<T> {}

impl<T> PartialSlots<T> {
    /// Move slot `who`'s value out.
    ///
    /// # Safety
    /// The caller must hold exclusive logical access to slot `who` (its own
    /// participant slot during a broadcast, or any slot after the latch).
    unsafe fn take(&self, who: usize) -> Option<T> {
        debug_assert!(who < self.len);
        (*(*self.ptr.add(who)).0.get()).take()
    }

    /// Store `value` into slot `who`. Same safety contract as [`Self::take`].
    unsafe fn put(&self, who: usize, value: T) {
        debug_assert!(who < self.len);
        *(*self.ptr.add(who)).0.get() = Some(value);
    }
}

/// Tile width of [`ordered_tiled_fold`]: big enough to amortize the tile
/// loop and let a heavy `map` vectorize, small enough that a tile of
/// partials (256 B for `f64`) stays in registers/L1.
const FOLD_TILE: usize = 32;

/// Fold `map(i)` for `i in start..end` into `acc` **in ascending index
/// order**, tile by tile: each tile first evaluates `map` into a stack
/// buffer, then folds the buffer in order.
///
/// The combine association is *identical* to the naive
/// `for i { acc = combine(acc, map(i)) }` loop — `map` and `combine` are
/// pure, so only the interleaving changes, never the operand order — which
/// keeps every reduction bit-reproducible. The point of the tiling is
/// optimizer robustness: a heavy `map` (a fused matvec+dot row, say) sits
/// in its own loop with no loop-carried dependence, so it can vectorize,
/// instead of being serialized by the scalar `acc` chain. Whether the
/// straight-line fold vectorizes such a body is codegen-unit luck — with
/// the tile split it no longer has to.
///
/// On panic inside `map`/`combine`, already-mapped buffer elements leak
/// (never double-dropped); reductions here are over plain scalars.
pub fn ordered_tiled_fold<T, F, C>(mut acc: T, start: usize, end: usize, map: &F, combine: &C) -> T
where
    F: Fn(usize) -> T,
    C: Fn(T, T) -> T,
{
    let mut buf: [std::mem::MaybeUninit<T>; FOLD_TILE] =
        // SAFETY: an array of `MaybeUninit` needs no initialization.
        unsafe { std::mem::MaybeUninit::uninit().assume_init() };
    let mut i = start;
    while i < end {
        let t = FOLD_TILE.min(end - i);
        for (j, slot) in buf[..t].iter_mut().enumerate() {
            slot.write(map(i + j));
        }
        for slot in &buf[..t] {
            // SAFETY: slots 0..t were just written; each is read exactly once.
            acc = combine(acc, unsafe { slot.assume_init_read() });
        }
        i += t;
    }
    acc
}

/// Clean single-thread fold. Kept out of `parallel_reduce`'s body: there
/// the broadcast closures borrow `map`/`combine`, which takes their address
/// and blocks loop optimization of the serial path.
#[inline(never)]
fn serial_fold<T, F, C>(n: usize, identity: T, map: F, combine: C) -> T
where
    F: Fn(usize) -> T,
    C: Fn(T, T) -> T,
{
    ordered_tiled_fold(identity, 0, n, &map, &combine)
}

impl ThreadPool {
    /// Reduce `map(i)` for `i in 0..n` with the binary operator `combine`,
    /// starting each partial from `identity`.
    ///
    /// `combine` must be associative; with `Schedule::Static` the combine
    /// tree is deterministic for a fixed participant count, with
    /// `Schedule::Dynamic` chunk assignment (and therefore floating-point
    /// rounding) may vary run to run.
    pub fn parallel_reduce<T, F, C>(
        &self,
        n: usize,
        schedule: Schedule,
        identity: T,
        map: F,
        combine: C,
    ) -> T
    where
        T: Send + Clone,
        F: Fn(usize) -> T + Sync,
        C: Fn(T, T) -> T + Sync,
    {
        if n == 0 {
            return identity;
        }
        let p = self.num_threads();
        if p == 1 {
            // Separate frame: see `serial_fold` for why.
            return serial_fold(n, identity, map, combine);
        }
        // Pre-seed one identity per participant so the broadcast closure
        // never touches `identity` itself (avoiding a `T: Sync` requirement).
        // The padded slots live in this thread's reusable scratch buffer, so
        // steady-state reductions perform zero heap allocations.
        scratch::with_thread_scratch(|buf| {
            scratch::with_slots(
                buf,
                p,
                || PaddedPartial(UnsafeCell::new(Some(identity.clone()))),
                |slots| {
                    let partials = PartialSlots {
                        ptr: slots.as_ptr(),
                        len: p,
                    };
                    match schedule {
                        Schedule::Static => {
                            self.broadcast(|who| {
                                let (start, end) = static_block(n, p, who);
                                if start == end {
                                    return;
                                }
                                // SAFETY: `who` is this participant's own slot.
                                let acc = unsafe { partials.take(who) }.expect("partial seeded");
                                let acc = ordered_tiled_fold(acc, start, end, &map, &combine);
                                // SAFETY: same exclusive slot.
                                unsafe { partials.put(who, acc) };
                            });
                        }
                        Schedule::Dynamic { .. } => {
                            let chunk = schedule.dynamic_chunk(n, p);
                            let next = AtomicUsize::new(0);
                            self.broadcast(|who| {
                                // SAFETY: `who` is this participant's own slot.
                                let mut acc =
                                    unsafe { partials.take(who) }.expect("partial seeded");
                                loop {
                                    let start = next.fetch_add(chunk, Ordering::Relaxed);
                                    if start >= n {
                                        break;
                                    }
                                    let end = (start + chunk).min(n);
                                    acc = ordered_tiled_fold(acc, start, end, &map, &combine);
                                }
                                // SAFETY: same exclusive slot.
                                unsafe { partials.put(who, acc) };
                            });
                        }
                    }
                    let mut acc = identity.clone();
                    for who in 0..p {
                        // SAFETY: the broadcast has completed (latch), so the
                        // caller holds exclusive access to every slot.
                        if let Some(part) = unsafe { partials.take(who) } {
                            acc = combine(acc, part);
                        }
                    }
                    acc
                },
            )
        })
    }

    /// 2D reduction over `0..m × 0..n`, distributed column-wise like
    /// [`ThreadPool::parallel_for_2d`].
    pub fn parallel_reduce_2d<T, F, C>(
        &self,
        m: usize,
        n: usize,
        schedule: Schedule,
        identity: T,
        map: F,
        combine: C,
    ) -> T
    where
        T: Send + Sync + Clone,
        F: Fn(usize, usize) -> T + Sync,
        C: Fn(T, T) -> T + Sync,
    {
        if m == 0 {
            return identity;
        }
        self.parallel_reduce(
            n,
            schedule,
            identity.clone(),
            |j| {
                let mut acc = identity.clone();
                for i in 0..m {
                    acc = combine(acc, map(i, j));
                }
                acc
            },
            &combine,
        )
    }

    /// 3D reduction over `0..m × 0..n × 0..l`, distributed over planes like
    /// [`ThreadPool::parallel_for_3d`].
    #[allow(clippy::too_many_arguments)]
    pub fn parallel_reduce_3d<T, F, C>(
        &self,
        m: usize,
        n: usize,
        l: usize,
        schedule: Schedule,
        identity: T,
        map: F,
        combine: C,
    ) -> T
    where
        T: Send + Sync + Clone,
        F: Fn(usize, usize, usize) -> T + Sync,
        C: Fn(T, T) -> T + Sync,
    {
        if m == 0 || n == 0 {
            return identity;
        }
        self.parallel_reduce(
            l,
            schedule,
            identity.clone(),
            |k| {
                let mut acc = identity.clone();
                for j in 0..n {
                    for i in 0..m {
                        acc = combine(acc, map(i, j, k));
                    }
                }
                acc
            },
            &combine,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_matches_closed_form() {
        let pool = ThreadPool::new(4);
        for n in [0usize, 1, 2, 17, 1000, 100_000] {
            let s = pool.parallel_reduce(n, Schedule::Static, 0u64, |i| i as u64, |a, b| a + b);
            assert_eq!(s, (n as u64 * n.saturating_sub(1) as u64) / 2, "n={n}");
        }
    }

    #[test]
    fn dynamic_schedule_same_total() {
        let pool = ThreadPool::new(4);
        let n = 54_321;
        let expected = (n as u64 * (n as u64 - 1)) / 2;
        for chunk in [0usize, 1, 13, 4096] {
            let s = pool.parallel_reduce(
                n,
                Schedule::Dynamic { chunk },
                0u64,
                |i| i as u64,
                |a, b| a + b,
            );
            assert_eq!(s, expected, "chunk={chunk}");
        }
    }

    #[test]
    fn max_reduction() {
        let pool = ThreadPool::new(3);
        let data: Vec<i64> = (0..10_000)
            .map(|i| ((i * 2654435761u64 as usize) % 99991) as i64)
            .collect();
        let expected = *data.iter().max().unwrap();
        let got = pool.parallel_reduce(
            data.len(),
            Schedule::Static,
            i64::MIN,
            |i| data[i],
            |a, b| a.max(b),
        );
        assert_eq!(got, expected);
    }

    #[test]
    fn static_reduce_is_deterministic_for_floats() {
        let pool = ThreadPool::new(4);
        let data: Vec<f64> = (0..100_000).map(|i| (i as f64).sin()).collect();
        let r1 = pool.parallel_reduce(data.len(), Schedule::Static, 0.0, |i| data[i], |a, b| a + b);
        let r2 = pool.parallel_reduce(data.len(), Schedule::Static, 0.0, |i| data[i], |a, b| a + b);
        assert_eq!(r1.to_bits(), r2.to_bits());
    }

    #[test]
    fn reduce_2d_matches_serial() {
        let pool = ThreadPool::new(4);
        let (m, n) = (33, 47);
        let serial: u64 = (0..m * n).map(|x| x as u64).sum();
        let par = pool.parallel_reduce_2d(
            m,
            n,
            Schedule::Static,
            0u64,
            |i, j| (j * m + i) as u64,
            |a, b| a + b,
        );
        assert_eq!(par, serial);
    }

    #[test]
    fn reduce_3d_matches_serial() {
        let pool = ThreadPool::new(4);
        let (m, n, l) = (9, 11, 13);
        let serial: u64 = (0..m * n * l).map(|x| x as u64).sum();
        let par = pool.parallel_reduce_3d(
            m,
            n,
            l,
            Schedule::Static,
            0u64,
            |i, j, k| ((k * n + j) * m + i) as u64,
            |a, b| a + b,
        );
        assert_eq!(par, serial);
    }

    #[test]
    fn degenerate_dimensions() {
        let pool = ThreadPool::new(4);
        assert_eq!(
            pool.parallel_reduce_2d(0, 5, Schedule::Static, 7u64, |_, _| 1, |a, b| a + b),
            7
        );
        assert_eq!(
            pool.parallel_reduce_2d(5, 0, Schedule::Static, 7u64, |_, _| 1, |a, b| a + b),
            7
        );
        assert_eq!(
            pool.parallel_reduce_3d(0, 1, 1, Schedule::Static, 3u64, |_, _, _| 1, |a, b| a + b),
            3
        );
    }

    #[test]
    fn single_thread_reduce() {
        let pool = ThreadPool::new(1);
        let s = pool.parallel_reduce(100, Schedule::Static, 0u64, |i| i as u64, |a, b| a + b);
        assert_eq!(s, 4950);
    }
}
