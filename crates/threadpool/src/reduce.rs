//! Parallel reductions over the pool.
//!
//! Every tile of the launch (see `schedule.rs::Tiling`) folds into its own
//! 128-byte-aligned partial slot, and the caller combines the slots **in
//! ascending tile order** after the join. Tile boundaries depend only on
//! `(n, schedule, participants)` — never on which participant executed which
//! tile — so the combine tree is fixed no matter how tasks are split or
//! stolen: reductions are bit-reproducible run to run for a fixed pool size
//! and schedule, under both `Static` and `Dynamic`.

use std::cell::UnsafeCell;

use crate::pool::ThreadPool;
use crate::schedule::{Schedule, Tiling};
use crate::scratch;

/// One tile's reduction partial, padded to its own pair of cache lines so
/// neighboring accumulators never share a line (false sharing).
#[repr(align(128))]
struct PaddedPartial<T>(UnsafeCell<Option<T>>);

/// Upper bound on reduction tiles: each tile owns a 128-byte slot in the
/// caller's reusable scratch, so a `chunk: 1` reduction over millions of
/// elements must not allocate millions of slots. Grains are raised just
/// enough to respect the cap; boundaries stay a pure function of the inputs,
/// so determinism is unaffected.
const REDUCE_MAX_TILES: usize = 1024;

/// Shared view of the per-tile partial slots handed to the tile executors.
///
/// Safety contract: tile `t` is executed by exactly one task executor (tasks
/// partition the tile space), so slot `t` is never touched concurrently; the
/// launch's `tiles_left` release/acquire protocol orders every slot write
/// before the caller's combine loop. That exclusivity is what lets the slots
/// drop the `Mutex` the original implementation paid for on every access.
struct PartialSlots<T> {
    ptr: *const PaddedPartial<T>,
    len: usize,
}

// Manual impls: derived Clone/Copy would add a spurious `T: Clone` bound.
impl<T> Clone for PartialSlots<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for PartialSlots<T> {}

// SAFETY: per the contract above, no slot is ever accessed from two threads
// concurrently; `T: Send` (enforced at the public entry points) lets the
// value itself cross threads.
unsafe impl<T> Sync for PartialSlots<T> {}
unsafe impl<T> Send for PartialSlots<T> {}

impl<T> PartialSlots<T> {
    /// Move slot `t`'s value out.
    ///
    /// # Safety
    /// The caller must hold exclusive logical access to slot `t` (the
    /// executor of tile `t` during the launch, or the caller after the join).
    unsafe fn take(&self, t: usize) -> Option<T> {
        debug_assert!(t < self.len);
        (*(*self.ptr.add(t)).0.get()).take()
    }

    /// Store `value` into slot `t`. Same safety contract as [`Self::take`].
    unsafe fn put(&self, t: usize, value: T) {
        debug_assert!(t < self.len);
        *(*self.ptr.add(t)).0.get() = Some(value);
    }
}

/// Tile width of [`ordered_tiled_fold`]: big enough to amortize the tile
/// loop and let a heavy `map` vectorize, small enough that a tile of
/// partials (256 B for `f64`) stays in registers/L1.
const FOLD_TILE: usize = 32;

/// Fold `map(i)` for `i in start..end` into `acc` **in ascending index
/// order**, tile by tile: each tile first evaluates `map` into a stack
/// buffer, then folds the buffer in order.
///
/// The combine association is *identical* to the naive
/// `for i { acc = combine(acc, map(i)) }` loop — `map` and `combine` are
/// pure, so only the interleaving changes, never the operand order — which
/// keeps every reduction bit-reproducible. The point of the tiling is
/// optimizer robustness: a heavy `map` (a fused matvec+dot row, say) sits
/// in its own loop with no loop-carried dependence, so it can vectorize,
/// instead of being serialized by the scalar `acc` chain. Whether the
/// straight-line fold vectorizes such a body is codegen-unit luck — with
/// the tile split it no longer has to.
///
/// On panic inside `map`/`combine`, already-mapped buffer elements leak
/// (never double-dropped); reductions here are over plain scalars.
pub fn ordered_tiled_fold<T, F, C>(mut acc: T, start: usize, end: usize, map: &F, combine: &C) -> T
where
    F: Fn(usize) -> T,
    C: Fn(T, T) -> T,
{
    let mut buf: [std::mem::MaybeUninit<T>; FOLD_TILE] =
        // SAFETY: an array of `MaybeUninit` needs no initialization.
        unsafe { std::mem::MaybeUninit::uninit().assume_init() };
    let mut i = start;
    while i < end {
        let t = FOLD_TILE.min(end - i);
        for (j, slot) in buf[..t].iter_mut().enumerate() {
            slot.write(map(i + j));
        }
        for slot in &buf[..t] {
            // SAFETY: slots 0..t were just written; each is read exactly once.
            acc = combine(acc, unsafe { slot.assume_init_read() });
        }
        i += t;
    }
    acc
}

/// Clean single-thread fold. Kept out of `parallel_reduce`'s body: there
/// the erased executor borrows `map`/`combine`, which takes their address
/// and blocks loop optimization of the serial path.
#[inline(never)]
fn serial_fold<T, F, C>(n: usize, identity: T, map: F, combine: C) -> T
where
    F: Fn(usize) -> T,
    C: Fn(T, T) -> T,
{
    ordered_tiled_fold(identity, 0, n, &map, &combine)
}

/// Type-erased payload of a `parallel_reduce` launch.
struct ReduceData<T, F, C> {
    map: *const F,
    combine: *const C,
    tiling: Tiling,
    partials: PartialSlots<T>,
}

/// Tile-range executor for `parallel_reduce`: folds each tile in `[t0, t1)`
/// from its seeded slot value, in ascending index order, back into its slot.
///
/// # Safety
/// `data` must point to a live `ReduceData<T, F, C>` whose referents outlive
/// the call, and tiles `[t0, t1)` must be executed by no other task.
unsafe fn exec_reduce<T, F, C>(data: *const (), t0: usize, t1: usize)
where
    F: Fn(usize) -> T,
    C: Fn(T, T) -> T,
{
    let d = &*(data as *const ReduceData<T, F, C>);
    let map = &*d.map;
    let combine = &*d.combine;
    for t in t0..t1 {
        let (s, e) = d.tiling.tile_range(t);
        // SAFETY: this executor owns tile `t` exclusively (see contract).
        let acc = d.partials.take(t).expect("tile partial seeded");
        let acc = ordered_tiled_fold(acc, s, e, map, combine);
        d.partials.put(t, acc);
    }
}

impl ThreadPool {
    /// Reduce `map(i)` for `i in 0..n` with the binary operator `combine`,
    /// starting each partial from `identity`.
    ///
    /// `combine` must be associative. The combine tree is a pure function of
    /// `(n, schedule, participants)`: each tile folds into its own slot and
    /// the slots combine in tile order, so results are deterministic run to
    /// run for both schedules regardless of how work is stolen. (Floating
    /// point results still differ from the serial association, as any
    /// parallel partition must.)
    pub fn parallel_reduce<T, F, C>(
        &self,
        n: usize,
        schedule: Schedule,
        identity: T,
        map: F,
        combine: C,
    ) -> T
    where
        T: Send + Clone,
        F: Fn(usize) -> T + Sync,
        C: Fn(T, T) -> T + Sync,
    {
        if n == 0 {
            return identity;
        }
        let p = self.num_threads();
        if p == 1 {
            // Separate frame: see `serial_fold` for why.
            return serial_fold(n, identity, map, combine);
        }
        let tiling = Tiling::with_max_tiles(schedule, n, p, REDUCE_MAX_TILES);
        let tiles = tiling.tiles();
        if tiles <= 1 {
            return serial_fold(n, identity, map, combine);
        }
        // Pre-seed one identity per tile so the executors never touch
        // `identity` itself (avoiding a `T: Sync` requirement). The padded
        // slots live in this thread's reusable scratch buffer, so
        // steady-state reductions perform zero heap allocations.
        scratch::with_thread_scratch(|buf| {
            scratch::with_slots(
                buf,
                tiles,
                || PaddedPartial(UnsafeCell::new(Some(identity.clone()))),
                |slots| {
                    let partials = PartialSlots {
                        ptr: slots.as_ptr(),
                        len: tiles,
                    };
                    let data = ReduceData {
                        map: &map as *const F,
                        combine: &combine as *const C,
                        tiling,
                        partials,
                    };
                    // SAFETY: run_tiled is fully synchronous, so every raw
                    // pointer in `data` outlives the launch; exec_reduce's
                    // per-tile slot accesses are exclusive by construction.
                    unsafe {
                        self.run_tiled(
                            tiling,
                            exec_reduce::<T, F, C>,
                            &data as *const ReduceData<T, F, C> as *const (),
                        );
                    }
                    let mut acc = identity.clone();
                    for t in 0..tiles {
                        // SAFETY: the launch has joined, so the caller holds
                        // exclusive access to every slot.
                        if let Some(part) = unsafe { partials.take(t) } {
                            acc = combine(acc, part);
                        }
                    }
                    acc
                },
            )
        })
    }

    /// 2D reduction over `0..m × 0..n`, distributed column-wise like
    /// [`ThreadPool::parallel_for_2d`].
    pub fn parallel_reduce_2d<T, F, C>(
        &self,
        m: usize,
        n: usize,
        schedule: Schedule,
        identity: T,
        map: F,
        combine: C,
    ) -> T
    where
        T: Send + Sync + Clone,
        F: Fn(usize, usize) -> T + Sync,
        C: Fn(T, T) -> T + Sync,
    {
        if m == 0 {
            return identity;
        }
        self.parallel_reduce(
            n,
            schedule,
            identity.clone(),
            |j| {
                let mut acc = identity.clone();
                for i in 0..m {
                    acc = combine(acc, map(i, j));
                }
                acc
            },
            &combine,
        )
    }

    /// 3D reduction over `0..m × 0..n × 0..l`, distributed over planes like
    /// [`ThreadPool::parallel_for_3d`].
    #[allow(clippy::too_many_arguments)]
    pub fn parallel_reduce_3d<T, F, C>(
        &self,
        m: usize,
        n: usize,
        l: usize,
        schedule: Schedule,
        identity: T,
        map: F,
        combine: C,
    ) -> T
    where
        T: Send + Sync + Clone,
        F: Fn(usize, usize, usize) -> T + Sync,
        C: Fn(T, T) -> T + Sync,
    {
        if m == 0 || n == 0 {
            return identity;
        }
        self.parallel_reduce(
            l,
            schedule,
            identity.clone(),
            |k| {
                let mut acc = identity.clone();
                for j in 0..n {
                    for i in 0..m {
                        acc = combine(acc, map(i, j, k));
                    }
                }
                acc
            },
            &combine,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_matches_closed_form() {
        let pool = ThreadPool::new(4);
        for n in [0usize, 1, 2, 17, 1000, 100_000] {
            let s = pool.parallel_reduce(n, Schedule::Static, 0u64, |i| i as u64, |a, b| a + b);
            assert_eq!(s, (n as u64 * n.saturating_sub(1) as u64) / 2, "n={n}");
        }
    }

    #[test]
    fn dynamic_schedule_same_total() {
        let pool = ThreadPool::new(4);
        let n = 54_321;
        let expected = (n as u64 * (n as u64 - 1)) / 2;
        for chunk in [0usize, 1, 13, 4096] {
            let s = pool.parallel_reduce(
                n,
                Schedule::Dynamic { chunk },
                0u64,
                |i| i as u64,
                |a, b| a + b,
            );
            assert_eq!(s, expected, "chunk={chunk}");
        }
    }

    #[test]
    fn max_reduction() {
        let pool = ThreadPool::new(3);
        let data: Vec<i64> = (0..10_000)
            .map(|i| ((i * 2654435761u64 as usize) % 99991) as i64)
            .collect();
        let expected = *data.iter().max().unwrap();
        let got = pool.parallel_reduce(
            data.len(),
            Schedule::Static,
            i64::MIN,
            |i| data[i],
            |a, b| a.max(b),
        );
        assert_eq!(got, expected);
    }

    #[test]
    fn static_reduce_is_deterministic_for_floats() {
        let pool = ThreadPool::new(4);
        let data: Vec<f64> = (0..100_000).map(|i| (i as f64).sin()).collect();
        let r1 = pool.parallel_reduce(data.len(), Schedule::Static, 0.0, |i| data[i], |a, b| a + b);
        let r2 = pool.parallel_reduce(data.len(), Schedule::Static, 0.0, |i| data[i], |a, b| a + b);
        assert_eq!(r1.to_bits(), r2.to_bits());
    }

    #[test]
    fn dynamic_reduce_is_deterministic_for_floats() {
        // New with the work-stealing core: dynamic tiles own fixed slots
        // combined in tile order, so even Dynamic reductions are
        // bit-reproducible run to run (the counter-based core was not).
        let pool = ThreadPool::new(4);
        let data: Vec<f64> = (0..50_000).map(|i| (i as f64).cos()).collect();
        for chunk in [0usize, 13, 1024] {
            let sched = Schedule::Dynamic { chunk };
            let r1 = pool.parallel_reduce(data.len(), sched, 0.0, |i| data[i], |a, b| a + b);
            let r2 = pool.parallel_reduce(data.len(), sched, 0.0, |i| data[i], |a, b| a + b);
            assert_eq!(r1.to_bits(), r2.to_bits(), "chunk={chunk}");
        }
    }

    #[test]
    fn reduce_2d_matches_serial() {
        let pool = ThreadPool::new(4);
        let (m, n) = (33, 47);
        let serial: u64 = (0..m * n).map(|x| x as u64).sum();
        let par = pool.parallel_reduce_2d(
            m,
            n,
            Schedule::Static,
            0u64,
            |i, j| (j * m + i) as u64,
            |a, b| a + b,
        );
        assert_eq!(par, serial);
    }

    #[test]
    fn reduce_3d_matches_serial() {
        let pool = ThreadPool::new(4);
        let (m, n, l) = (9, 11, 13);
        let serial: u64 = (0..m * n * l).map(|x| x as u64).sum();
        let par = pool.parallel_reduce_3d(
            m,
            n,
            l,
            Schedule::Static,
            0u64,
            |i, j, k| ((k * n + j) * m + i) as u64,
            |a, b| a + b,
        );
        assert_eq!(par, serial);
    }

    #[test]
    fn degenerate_dimensions() {
        let pool = ThreadPool::new(4);
        assert_eq!(
            pool.parallel_reduce_2d(0, 5, Schedule::Static, 7u64, |_, _| 1, |a, b| a + b),
            7
        );
        assert_eq!(
            pool.parallel_reduce_2d(5, 0, Schedule::Static, 7u64, |_, _| 1, |a, b| a + b),
            7
        );
        assert_eq!(
            pool.parallel_reduce_3d(0, 1, 1, Schedule::Static, 3u64, |_, _, _| 1, |a, b| a + b),
            3
        );
    }

    #[test]
    fn single_thread_reduce() {
        let pool = ThreadPool::new(1);
        let s = pool.parallel_reduce(100, Schedule::Static, 0u64, |i| i as u64, |a, b| a + b);
        assert_eq!(s, 4950);
    }

    #[test]
    fn reduce_with_panic_leaves_pool_usable() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let pool = ThreadPool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.parallel_reduce(
                10_000,
                Schedule::Dynamic { chunk: 16 },
                0u64,
                |i| {
                    if i == 5_000 {
                        panic!("reduce boom");
                    }
                    i as u64
                },
                |a, b| a + b,
            )
        }));
        assert!(result.is_err());
        let s = pool.parallel_reduce(100, Schedule::Static, 0u64, |i| i as u64, |a, b| a + b);
        assert_eq!(s, 4950);
    }
}
