//! Work-stealing primitives: per-worker Chase–Lev deques, a bounded global
//! FIFO injector, and the per-participant steal telemetry counters.
//!
//! Tasks are plain 3-word records (`[usize; 3]`: launch-header pointer plus a
//! `[t0, t1)` tile range), so both queues store them as triples of
//! `AtomicUsize` words. Storing the words atomically (relaxed) instead of as
//! plain memory is what makes the classic Chase–Lev "torn read" benign: a slow
//! thief may read a slot the owner has since overwritten, but every word read
//! is itself atomic (no UB), and the thief's subsequent CAS on `top` fails, so
//! the stale triple is discarded without ever being dereferenced.
//!
//! # Deque invariants (Chase–Lev, Lê et al. orderings)
//!
//! * Only the owner touches `bottom` (push/pop at the LIFO end); thieves only
//!   advance `top` (FIFO end) via a sequentially-consistent CAS.
//! * The buffer is fixed-size and **never grows**; `push` refuses when
//!   `bottom - top == capacity`. That strict guard means the owner can only
//!   overwrite a slot once `top` has moved past it, which is exactly the case
//!   where any thief still holding the old `top` is guaranteed to fail its
//!   CAS.
//! * `pop` publishes the decremented `bottom` before reading `top`
//!   (seq-cst fence between them), and resolves the one-element race against
//!   thieves with the same CAS the thieves use.
//!
//! # Injector
//!
//! The global queue is a bounded MPMC ring in the style of Vyukov's queue:
//! each slot carries a sequence number that encodes whether it is free for
//! the producer or full for the consumer of a given lap. Producers and
//! consumers claim slots with a CAS on `tail`/`head` and then transfer the
//! payload with release/acquire on the slot's own sequence word, so the
//! payload handoff never races.

use std::sync::atomic::{AtomicIsize, AtomicU64, AtomicUsize, Ordering};

/// A type-erased task: `[header_ptr, t0, t1]`. The header pointer targets the
/// issuing launch's stack frame; validity is guaranteed by the launch
/// protocol in `pool.rs` (a launch cannot return while its tiles are
/// outstanding).
pub(crate) type TaskWords = [usize; 3];

/// Capacity of each per-participant deque (power of two). Lazy binary
/// splitting pushes at most `log2(tiles)` tasks per executed task, so depth
/// stays tiny; overflow falls back to the injector and then to inline
/// execution, never to an error.
const DEQUE_CAP: usize = 256;

/// Capacity of the global injector ring (power of two).
const INJECTOR_CAP: usize = 2048;

/// One deque/injector slot: three atomically-readable words.
#[derive(Default)]
struct WordSlot([AtomicUsize; 3]);

impl WordSlot {
    #[inline]
    fn store(&self, words: TaskWords) {
        self.0[0].store(words[0], Ordering::Relaxed);
        self.0[1].store(words[1], Ordering::Relaxed);
        self.0[2].store(words[2], Ordering::Relaxed);
    }

    #[inline]
    fn load(&self) -> TaskWords {
        [
            self.0[0].load(Ordering::Relaxed),
            self.0[1].load(Ordering::Relaxed),
            self.0[2].load(Ordering::Relaxed),
        ]
    }
}

/// Result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Steal {
    /// A task was taken.
    Success(TaskWords),
    /// The deque looked empty.
    Empty,
    /// Lost a race with the owner or another thief; worth retrying.
    Retry,
}

/// A fixed-capacity Chase–Lev work-stealing deque.
///
/// The owner pushes and pops at `bottom` (LIFO, hot end — best locality for
/// the recursive splitter); thieves steal at `top` (FIFO, cold end — they
/// take the *oldest*, i.e. largest, unsplit range).
pub(crate) struct Deque {
    top: AtomicIsize,
    bottom: AtomicIsize,
    slots: Box<[WordSlot]>,
}

// SAFETY: all slot payloads are read/written through atomics, and the
// top/bottom protocol (see module docs) serializes ownership of each slot.
unsafe impl Sync for Deque {}
unsafe impl Send for Deque {}

impl Deque {
    pub(crate) fn new() -> Self {
        Deque {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            slots: (0..DEQUE_CAP).map(|_| WordSlot::default()).collect(),
        }
    }

    #[inline]
    fn slot(&self, index: isize) -> &WordSlot {
        // DEQUE_CAP is a power of two; indices grow monotonically.
        &self.slots[(index as usize) & (DEQUE_CAP - 1)]
    }

    /// Owner-only: push a task at the LIFO end. Returns `false` when full
    /// (the caller then falls back to the injector or runs inline).
    pub(crate) fn push(&self, words: TaskWords) -> bool {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        if b.wrapping_sub(t) >= DEQUE_CAP as isize {
            return false;
        }
        self.slot(b).store(words);
        // Publish the slot before the new bottom becomes visible to thieves.
        self.bottom.store(b.wrapping_add(1), Ordering::Release);
        true
    }

    /// Owner-only: pop the most recently pushed task.
    pub(crate) fn pop(&self) -> Option<TaskWords> {
        let b = self.bottom.load(Ordering::Relaxed).wrapping_sub(1);
        self.bottom.store(b, Ordering::Relaxed);
        // The decremented bottom must be visible before we read top, and
        // symmetrically for thieves (their fence in `steal`): this pairing is
        // what makes the one-element race resolvable.
        std::sync::atomic::fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t > b {
            // Deque was empty; restore.
            self.bottom.store(b.wrapping_add(1), Ordering::Relaxed);
            return None;
        }
        let words = self.slot(b).load();
        if t == b {
            // Last element: race thieves for it with their own CAS.
            let won = self
                .top
                .compare_exchange(t, t.wrapping_add(1), Ordering::SeqCst, Ordering::Relaxed)
                .is_ok();
            self.bottom.store(b.wrapping_add(1), Ordering::Relaxed);
            return won.then_some(words);
        }
        Some(words)
    }

    /// Thief: take the oldest task. Callable from any thread.
    pub(crate) fn steal(&self) -> Steal {
        let t = self.top.load(Ordering::Acquire);
        std::sync::atomic::fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        // Read before the CAS: the strict push guard means this slot cannot
        // be overwritten until top has advanced past `t`, in which case the
        // CAS below fails and the (possibly torn) read is discarded.
        let words = self.slot(t).load();
        if self
            .top
            .compare_exchange(t, t.wrapping_add(1), Ordering::SeqCst, Ordering::Relaxed)
            .is_err()
        {
            return Steal::Retry;
        }
        Steal::Success(words)
    }

    /// Racy emptiness probe (diagnostics/tests only).
    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        let t = self.top.load(Ordering::Acquire);
        let b = self.bottom.load(Ordering::Acquire);
        t >= b
    }
}

/// One slot of the injector ring: a lap-encoded sequence word plus payload.
struct InjectorSlot {
    seq: AtomicUsize,
    words: WordSlot,
}

/// Bounded MPMC FIFO ring (Vyukov style) used as the global injector: the
/// overflow target for full deques and the submission queue for launches
/// whose calling thread holds no deque (nested launches).
pub(crate) struct Injector {
    head: crossbeam::utils::CachePadded<AtomicUsize>,
    tail: crossbeam::utils::CachePadded<AtomicUsize>,
    slots: Box<[InjectorSlot]>,
}

unsafe impl Sync for Injector {}
unsafe impl Send for Injector {}

impl Injector {
    pub(crate) fn new() -> Self {
        Injector {
            head: crossbeam::utils::CachePadded::new(AtomicUsize::new(0)),
            tail: crossbeam::utils::CachePadded::new(AtomicUsize::new(0)),
            slots: (0..INJECTOR_CAP)
                .map(|i| InjectorSlot {
                    seq: AtomicUsize::new(i),
                    words: WordSlot::default(),
                })
                .collect(),
        }
    }

    /// Enqueue at the tail. Returns `false` when the ring is full.
    pub(crate) fn push(&self, words: TaskWords) -> bool {
        let mask = INJECTOR_CAP - 1;
        let mut pos = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - pos as isize;
            if dif == 0 {
                match self.tail.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        slot.words.store(words);
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                        return true;
                    }
                    Err(now) => pos = now,
                }
            } else if dif < 0 {
                return false; // full for this lap
            } else {
                pos = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    /// Dequeue from the head. Returns `None` when empty.
    pub(crate) fn pop(&self) -> Option<TaskWords> {
        let mask = INJECTOR_CAP - 1;
        let mut pos = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - pos.wrapping_add(1) as isize;
            if dif == 0 {
                match self.head.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let words = slot.words.load();
                        // Free the slot for the producer's next lap.
                        slot.seq
                            .store(pos.wrapping_add(INJECTOR_CAP), Ordering::Release);
                        return Some(words);
                    }
                    Err(now) => pos = now,
                }
            } else if dif < 0 {
                return None; // empty for this lap
            } else {
                pos = self.head.load(Ordering::Relaxed);
            }
        }
    }
}

/// Per-participant steal telemetry, padded so hot-path increments by
/// different participants never share a cache line.
#[repr(align(128))]
#[derive(Default)]
pub(crate) struct WorkerCounters {
    pub(crate) executed: AtomicU64,
    pub(crate) stolen: AtomicU64,
    pub(crate) injected: AtomicU64,
    pub(crate) splits: AtomicU64,
    pub(crate) wakes: AtomicU64,
    pub(crate) parks: AtomicU64,
}

impl WorkerCounters {
    pub(crate) fn snapshot(&self) -> StealCounters {
        StealCounters {
            executed: self.executed.load(Ordering::Relaxed),
            stolen: self.stolen.load(Ordering::Relaxed),
            injected: self.injected.load(Ordering::Relaxed),
            splits: self.splits.load(Ordering::Relaxed),
            wakes: self.wakes.load(Ordering::Relaxed),
            parks: self.parks.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time snapshot of one participant's work-stealing counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StealCounters {
    /// Leaf task ranges this participant executed.
    pub executed: u64,
    /// Tasks taken from another participant's deque.
    pub stolen: u64,
    /// Tasks taken from the global injector.
    pub injected: u64,
    /// Split halves this participant pushed (deque or injector).
    pub splits: u64,
    /// Steal-wakes this participant sent to idle workers.
    pub wakes: u64,
    /// Times this worker went back to idle (workers only; 0 for the caller).
    pub parks: u64,
}

impl StealCounters {
    fn accumulate(&mut self, other: StealCounters) {
        self.executed += other.executed;
        self.stolen += other.stolen;
        self.injected += other.injected;
        self.splits += other.splits;
        self.wakes += other.wakes;
        self.parks += other.parks;
    }
}

/// Cumulative work-stealing telemetry for a pool, one entry per participant
/// (index 0 is the calling-thread slot). Returned by
/// [`ThreadPool::steal_stats`](crate::ThreadPool::steal_stats).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StealStats {
    /// Per-participant counters; index 0 is the caller slot.
    pub participants: Vec<StealCounters>,
}

impl StealStats {
    /// Sum of all participants' counters.
    pub fn total(&self) -> StealCounters {
        let mut acc = StealCounters::default();
        for c in &self.participants {
            acc.accumulate(*c);
        }
        acc
    }
}

impl std::fmt::Display for StealStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let t = self.total();
        write!(
            f,
            "steal: executed {} stolen {} injected {} splits {} wakes {} parks {}",
            t.executed, t.stolen, t.injected, t.splits, t.wakes, t.parks
        )
    }
}

/// Tiny xorshift for seeded victim rotation. Seeded per executor entry from
/// the participant index, so two thieves do not hammer the same victim order.
pub(crate) struct VictimRng(u64);

impl VictimRng {
    pub(crate) fn new(seed: usize) -> Self {
        // Splash the seed so consecutive participant indices diverge; the
        // constant is the 64-bit golden-ratio mix used by splitmix64.
        VictimRng((seed as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    }

    pub(crate) fn next(&mut self) -> usize {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn deque_lifo_for_owner() {
        let d = Deque::new();
        assert!(d.push([1, 0, 0]));
        assert!(d.push([2, 0, 0]));
        assert!(d.push([3, 0, 0]));
        assert_eq!(d.pop(), Some([3, 0, 0]));
        assert_eq!(d.pop(), Some([2, 0, 0]));
        assert_eq!(d.pop(), Some([1, 0, 0]));
        assert_eq!(d.pop(), None);
        assert!(d.is_empty());
    }

    #[test]
    fn deque_fifo_for_thief() {
        let d = Deque::new();
        d.push([1, 0, 0]);
        d.push([2, 0, 0]);
        assert_eq!(d.steal(), Steal::Success([1, 0, 0]));
        assert_eq!(d.pop(), Some([2, 0, 0]));
        assert_eq!(d.steal(), Steal::Empty);
    }

    #[test]
    fn deque_refuses_when_full() {
        let d = Deque::new();
        for i in 0..DEQUE_CAP {
            assert!(d.push([i, 0, 0]), "push {i}");
        }
        assert!(!d.push([usize::MAX, 0, 0]));
        // Draining one makes room again.
        assert_eq!(d.steal(), Steal::Success([0, 0, 0]));
        assert!(d.push([usize::MAX, 0, 0]));
    }

    #[test]
    fn deque_concurrent_steal_owner_pop_each_task_once() {
        let d = Arc::new(Deque::new());
        const N: usize = 10_000;
        let seen = Arc::new((0..N).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>());
        let thieves: Vec<_> = (0..3)
            .map(|_| {
                let d = Arc::clone(&d);
                let seen = Arc::clone(&seen);
                std::thread::spawn(move || loop {
                    match d.steal() {
                        Steal::Success(w) => {
                            if w[0] == usize::MAX {
                                break;
                            }
                            seen[w[0]].fetch_add(1, Ordering::Relaxed);
                        }
                        Steal::Empty | Steal::Retry => std::hint::spin_loop(),
                    }
                })
            })
            .collect();
        let mut i = 0;
        while i < N {
            if d.push([i, 0, 0]) {
                i += 1;
            } else if let Some(w) = d.pop() {
                seen[w[0]].fetch_add(1, Ordering::Relaxed);
            }
        }
        // Drain the rest locally, then post one sentinel per thief.
        while let Some(w) = d.pop() {
            seen[w[0]].fetch_add(1, Ordering::Relaxed);
        }
        let mut sentinels = 0;
        while sentinels < 3 {
            if d.push([usize::MAX, 0, 0]) {
                sentinels += 1;
            }
        }
        for t in thieves {
            t.join().unwrap();
        }
        for (i, s) in seen.iter().enumerate() {
            assert_eq!(s.load(Ordering::Relaxed), 1, "task {i}");
        }
    }

    #[test]
    fn injector_is_fifo_and_bounded() {
        let q = Injector::new();
        assert_eq!(q.pop(), None);
        for i in 0..INJECTOR_CAP {
            assert!(q.push([i, 0, 0]), "push {i}");
        }
        assert!(!q.push([usize::MAX, 0, 0]));
        for i in 0..INJECTOR_CAP {
            assert_eq!(q.pop(), Some([i, 0, 0]));
        }
        assert_eq!(q.pop(), None);
        // Reusable after a full lap.
        assert!(q.push([7, 8, 9]));
        assert_eq!(q.pop(), Some([7, 8, 9]));
    }

    #[test]
    fn injector_concurrent_producers_consumers() {
        let q = Arc::new(Injector::new());
        const PER: usize = 5_000;
        let seen = Arc::new(
            (0..2 * PER)
                .map(|_| AtomicUsize::new(0))
                .collect::<Vec<_>>(),
        );
        let producers: Vec<_> = (0..2)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..PER {
                        let id = p * PER + i;
                        while !q.push([id, 0, 0]) {
                            std::hint::spin_loop();
                        }
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                let seen = Arc::clone(&seen);
                std::thread::spawn(move || {
                    let mut got = 0;
                    while got < PER {
                        if let Some(w) = q.pop() {
                            seen[w[0]].fetch_add(1, Ordering::Relaxed);
                            got += 1;
                        } else {
                            std::hint::spin_loop();
                        }
                    }
                })
            })
            .collect();
        for h in producers.into_iter().chain(consumers) {
            h.join().unwrap();
        }
        for (i, s) in seen.iter().enumerate() {
            assert_eq!(s.load(Ordering::Relaxed), 1, "id {i}");
        }
    }

    #[test]
    fn steal_counters_total() {
        let mut stats = StealStats::default();
        stats.participants.push(StealCounters {
            executed: 3,
            stolen: 1,
            ..Default::default()
        });
        stats.participants.push(StealCounters {
            executed: 2,
            wakes: 4,
            ..Default::default()
        });
        let t = stats.total();
        assert_eq!(t.executed, 5);
        assert_eq!(t.stolen, 1);
        assert_eq!(t.wakes, 4);
        assert!(format!("{stats}").contains("executed 5"));
    }

    #[test]
    fn victim_rng_varies_by_seed() {
        let a: Vec<usize> = {
            let mut r = VictimRng::new(1);
            (0..8).map(|_| r.next() % 7).collect()
        };
        let b: Vec<usize> = {
            let mut r = VictimRng::new(2);
            (0..8).map(|_| r.next() % 7).collect()
        };
        assert_ne!(a, b);
    }
}
