//! A counting latch used to implement the pool's synchronous join.

use parking_lot::{Condvar, Mutex};

/// A latch initialized with a count; waiters block until the count reaches
/// zero. Unlike a barrier it is single-use per count and the decrementers
/// need not be the waiters.
#[derive(Debug)]
pub struct CountLatch {
    remaining: Mutex<usize>,
    cond: Condvar,
}

impl CountLatch {
    /// Create a latch that releases waiters after `count` decrements.
    pub fn new(count: usize) -> Self {
        CountLatch {
            remaining: Mutex::new(count),
            cond: Condvar::new(),
        }
    }

    /// Decrement the count, waking waiters if it reaches zero.
    ///
    /// # Panics
    /// Panics if decremented below zero — that is always a bookkeeping bug.
    pub fn count_down(&self) {
        let mut remaining = self.remaining.lock();
        assert!(*remaining > 0, "CountLatch decremented below zero");
        *remaining -= 1;
        if *remaining == 0 {
            self.cond.notify_all();
        }
    }

    /// Block until the count reaches zero.
    pub fn wait(&self) {
        let mut remaining = self.remaining.lock();
        while *remaining > 0 {
            self.cond.wait(&mut remaining);
        }
    }

    /// Current count (racy; for diagnostics and tests).
    pub fn count(&self) -> usize {
        *self.remaining.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn zero_count_releases_immediately() {
        let latch = CountLatch::new(0);
        latch.wait();
    }

    #[test]
    fn waits_for_all_decrements() {
        let latch = Arc::new(CountLatch::new(4));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let latch = Arc::clone(&latch);
            handles.push(std::thread::spawn(move || latch.count_down()));
        }
        latch.wait();
        assert_eq!(latch.count(), 0);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn multiple_waiters_all_wake() {
        let latch = Arc::new(CountLatch::new(1));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let latch = Arc::clone(&latch);
            handles.push(std::thread::spawn(move || latch.wait()));
        }
        latch.count_down();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "below zero")]
    fn over_decrement_panics() {
        let latch = CountLatch::new(0);
        latch.count_down();
    }
}
