//! A counting latch used to implement the pool's synchronous join.
//!
//! The latch spins briefly before parking: the pool's broadcasts are
//! microsecond-scale (one chunk of a `parallel_for` per worker), and the
//! caller going through a futex sleep/wake per construct used to dominate
//! the fused-launch benchmarks. The count lives in an atomic so both the
//! spin phase and `count_down` stay lock-free; the mutex + condvar pair is
//! only the parking fallback for long-running jobs. Wake-ups cannot be
//! missed: waiters re-check the count *while holding the lock*, and the
//! final decrementer notifies under that same lock.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use parking_lot::{Condvar, Mutex};

/// Spin iterations before a waiter parks on the condvar. Sized so that
/// typical broadcast turnarounds (a few microseconds) finish inside the
/// spin, while genuinely long jobs park within ~tens of microseconds.
///
/// Spinning only pays when the waiter and the threads it waits on can run
/// *simultaneously*: on a single-hardware-thread host the spinner is
/// stealing the very core its peers need to finish, turning microsecond
/// joins into scheduler-quantum stalls. There the spin phase is disabled
/// and waiters park immediately.
pub(crate) fn spin_iters() -> usize {
    static ITERS: OnceLock<usize> = OnceLock::new();
    *ITERS.get_or_init(|| match std::thread::available_parallelism() {
        Ok(n) if n.get() > 1 => 1 << 14,
        _ => 0,
    })
}

/// A latch initialized with a count; waiters block until the count reaches
/// zero. Unlike a barrier it is single-use per count and the decrementers
/// need not be the waiters.
#[derive(Debug)]
pub struct CountLatch {
    remaining: AtomicUsize,
    lock: Mutex<()>,
    cond: Condvar,
}

impl CountLatch {
    /// Create a latch that releases waiters after `count` decrements.
    pub fn new(count: usize) -> Self {
        CountLatch {
            remaining: AtomicUsize::new(count),
            lock: Mutex::new(()),
            cond: Condvar::new(),
        }
    }

    /// Increment the count by `k` before the matching decrements arrive.
    ///
    /// Safe only while the count provably cannot have reached zero with a
    /// waiter already released — the pool's wake-chain protocol guarantees
    /// this by only adding (a) from the issuing caller before it waits, or
    /// (b) from an executor that has not yet decremented the launch's
    /// outstanding-tile count (the caller cannot reach its wait until that
    /// count hits zero).
    pub fn add(&self, k: usize) {
        self.remaining.fetch_add(k, Ordering::AcqRel);
    }

    /// Decrement the count, waking waiters if it reaches zero.
    ///
    /// # Panics
    /// Panics if decremented below zero — that is always a bookkeeping bug.
    pub fn count_down(&self) {
        let old = self.remaining.fetch_sub(1, Ordering::AcqRel);
        assert!(old > 0, "CountLatch decremented below zero");
        if old == 1 {
            // Take the lock so the notify cannot slip between a parked
            // waiter's predicate check and its wait.
            let _guard = self.lock.lock();
            self.cond.notify_all();
        }
    }

    /// Block until the count reaches zero: bounded spin first, then park.
    pub fn wait(&self) {
        for _ in 0..spin_iters() {
            if self.remaining.load(Ordering::Acquire) == 0 {
                return;
            }
            std::hint::spin_loop();
        }
        let mut guard = self.lock.lock();
        while self.remaining.load(Ordering::Acquire) > 0 {
            self.cond.wait(&mut guard);
        }
    }

    /// Current count (racy; for diagnostics and tests).
    pub fn count(&self) -> usize {
        self.remaining.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn zero_count_releases_immediately() {
        let latch = CountLatch::new(0);
        latch.wait();
    }

    #[test]
    fn waits_for_all_decrements() {
        let latch = Arc::new(CountLatch::new(4));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let latch = Arc::clone(&latch);
            handles.push(std::thread::spawn(move || latch.count_down()));
        }
        latch.wait();
        assert_eq!(latch.count(), 0);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn multiple_waiters_all_wake() {
        let latch = Arc::new(CountLatch::new(1));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let latch = Arc::clone(&latch);
            handles.push(std::thread::spawn(move || latch.wait()));
        }
        latch.count_down();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "below zero")]
    fn over_decrement_panics() {
        let latch = CountLatch::new(0);
        latch.count_down();
    }
}
