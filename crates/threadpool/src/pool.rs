//! The persistent worker pool.
//!
//! A `ThreadPool` with `P` participants owns `P - 1` OS worker threads; the
//! calling thread is always participant 0. All entry points are synchronous:
//! they return only after every participant has finished, which is also what
//! makes it sound to run borrowing closures on the workers (the borrowed
//! stack frame cannot die while workers still hold the closure).

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use parking_lot::Mutex;

use crate::latch::CountLatch;
use crate::schedule::{static_block, Schedule};

/// Bounded-spin receive: polls `try_recv` before falling back to the
/// blocking `recv`. Returns `None` when every sender is gone.
///
/// The spin budget matches the latch's ([`crate::latch::spin_iters`]):
/// back-to-back constructs are microseconds apart, so staying on-core
/// between them pays for itself, while an idle pool still sleeps — and on
/// a single-hardware-thread host the budget is zero, because a polling
/// worker there starves the caller that would send it work.
fn recv_spinning<T>(rx: &Receiver<T>) -> Option<T> {
    for _ in 0..crate::latch::spin_iters() {
        match rx.try_recv() {
            Ok(msg) => return Some(msg),
            Err(TryRecvError::Empty) => std::hint::spin_loop(),
            Err(TryRecvError::Disconnected) => return None,
        }
    }
    rx.recv().ok()
}

/// Errors from pool construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// A pool must have at least one participant.
    ZeroThreads,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::ZeroThreads => write!(f, "thread pool needs at least one thread"),
        }
    }
}

impl std::error::Error for PoolError {}

/// Shared state of one in-flight broadcast.
struct JobState {
    latch: CountLatch,
    panicked: AtomicBool,
    payload: Mutex<Option<Box<dyn Any + Send>>>,
}

impl JobState {
    fn record_panic(&self, payload: Box<dyn Any + Send>) {
        self.panicked.store(true, Ordering::Release);
        let mut slot = self.payload.lock();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }
}

/// A type-erased reference to a borrowed job closure plus its state, shipped
/// to a worker. Soundness: the pointers reference the caller's stack frame,
/// and the caller blocks on the latch until every worker has decremented it,
/// which happens strictly after the worker's last dereference.
struct JobRef {
    fun: *const (dyn Fn(usize) + Sync),
    state: *const JobState,
    participant: usize,
}

// SAFETY: the raw pointers are only dereferenced while the issuing call
// keeps the referents alive (enforced by the latch protocol above).
unsafe impl Send for JobRef {}

impl JobRef {
    /// Run the job as this worker's participant, recording panics and always
    /// decrementing the latch.
    ///
    /// # Safety
    /// Must only be called while the issuing broadcast is still blocked on
    /// the latch (the pool protocol guarantees this).
    unsafe fn execute(self) {
        let state = &*self.state;
        let fun = &*self.fun;
        let result = catch_unwind(AssertUnwindSafe(|| fun(self.participant)));
        if let Err(payload) = result {
            state.record_panic(payload);
        }
        state.latch.count_down();
    }
}

enum Message {
    Run(JobRef),
    Shutdown,
}

/// A persistent pool of worker threads; see the crate docs for the model.
pub struct ThreadPool {
    senders: Vec<Sender<Message>>,
    handles: Vec<JoinHandle<()>>,
    participants: usize,
    /// Optional span recorder; when installed and enabled, `parallel_for`
    /// deposits one `WorkerChunk` span per chunk a participant executes.
    #[cfg(feature = "trace")]
    recorder: OnceLock<std::sync::Arc<racc_trace::TraceRecorder>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("participants", &self.participants)
            .finish()
    }
}

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

impl ThreadPool {
    /// Create a pool with `threads` participants (the calling thread plus
    /// `threads - 1` workers).
    ///
    /// # Panics
    /// Panics if `threads == 0`; use [`ThreadPool::try_new`] to handle that
    /// as an error.
    pub fn new(threads: usize) -> Self {
        Self::try_new(threads).expect("invalid thread pool size")
    }

    /// Fallible constructor.
    pub fn try_new(threads: usize) -> Result<Self, PoolError> {
        if threads == 0 {
            return Err(PoolError::ZeroThreads);
        }
        let mut senders = Vec::with_capacity(threads - 1);
        let mut handles = Vec::with_capacity(threads - 1);
        for w in 1..threads {
            let (tx, rx) = unbounded::<Message>();
            senders.push(tx);
            let handle = std::thread::Builder::new()
                .name(format!("racc-worker-{w}"))
                .spawn(move || {
                    // Spin-then-park receive: consecutive broadcasts arrive
                    // microseconds apart, so a bounded `try_recv` spin
                    // avoids a futex sleep/wake per construct; an idle
                    // worker still parks in `recv`.
                    while let Some(msg) = recv_spinning(&rx) {
                        match msg {
                            // SAFETY: the broadcasting call is blocked on the
                            // job latch until we count it down inside
                            // `execute`, keeping the referents alive.
                            Message::Run(job) => unsafe { job.execute() },
                            Message::Shutdown => break,
                        }
                    }
                })
                .expect("failed to spawn pool worker");
            handles.push(handle);
        }
        Ok(ThreadPool {
            senders,
            handles,
            participants: threads,
            #[cfg(feature = "trace")]
            recorder: OnceLock::new(),
        })
    }

    /// Install a span recorder (first installer wins). Subsequent
    /// `parallel_for` calls emit one `WorkerChunk` span per executed chunk
    /// while the recorder is enabled.
    #[cfg(feature = "trace")]
    pub fn install_tracer(&self, recorder: std::sync::Arc<racc_trace::TraceRecorder>) {
        let _ = self.recorder.set(recorder);
    }

    /// The process-wide pool, sized from `RACC_NUM_THREADS` or the machine's
    /// available parallelism.
    pub fn global() -> &'static ThreadPool {
        GLOBAL.get_or_init(|| ThreadPool::new(default_thread_count()))
    }

    /// Number of participants (calling thread included).
    pub fn num_threads(&self) -> usize {
        self.participants
    }

    /// Run `f(participant)` once on every participant (0 = calling thread)
    /// and return when all are done. Panics in any participant propagate to
    /// the caller after all participants have finished.
    pub fn broadcast<F>(&self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let state = JobState {
            latch: CountLatch::new(self.senders.len()),
            panicked: AtomicBool::new(false),
            payload: Mutex::new(None),
        };
        let fun: &(dyn Fn(usize) + Sync) = &f;
        // Erase the lifetime: see JobRef safety comment. The transmute only
        // extends the lifetime of the trait-object pointee to 'static; the
        // latch protocol guarantees no dereference outlives this call.
        let fun: *const (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<*const (dyn Fn(usize) + Sync + '_), *const (dyn Fn(usize) + Sync)>(
                fun as *const _,
            )
        };
        for (i, tx) in self.senders.iter().enumerate() {
            let job = JobRef {
                fun,
                state: &state as *const _,
                participant: i + 1,
            };
            tx.send(Message::Run(job))
                .expect("pool worker disconnected");
        }
        // The caller participates as participant 0. Catch its panic so we
        // still join the workers before unwinding past `state`.
        let caller_result = catch_unwind(AssertUnwindSafe(|| f(0)));
        state.latch.wait();
        if let Err(payload) = caller_result {
            resume_unwind(payload);
        }
        if state.panicked.load(Ordering::Acquire) {
            let payload = state
                .payload
                .lock()
                .take()
                .unwrap_or_else(|| Box::new("pool task panicked"));
            resume_unwind(payload);
        }
    }

    /// Parallel loop over `0..n` under the given schedule. `f` must tolerate
    /// concurrent invocation on distinct indices; every index is invoked
    /// exactly once.
    pub fn parallel_for<F>(&self, n: usize, schedule: Schedule, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if n == 0 {
            return;
        }
        if self.participants == 1 {
            // Moved into a dedicated frame: sharing a body with the
            // broadcast closures below (which borrow `f`) takes the
            // closure's address and measurably blocks loop optimization.
            return serial_for(n, f);
        }
        // Resolved once per launch: `None` (the common case) keeps the chunk
        // loops free of clock reads and span construction.
        #[cfg(feature = "trace")]
        let rec = self.recorder.get().filter(|r| r.is_enabled());
        match schedule {
            Schedule::Static => {
                let p = self.participants;
                self.broadcast(|who| {
                    let (start, end) = static_block(n, p, who);
                    #[cfg(feature = "trace")]
                    let t0 = rec.map(|_| std::time::Instant::now());
                    for i in start..end {
                        f(i);
                    }
                    #[cfg(feature = "trace")]
                    if let Some(r) = rec {
                        if end > start {
                            r.record(chunk_span(who, start, end).real_since(t0));
                        }
                    }
                });
            }
            Schedule::Dynamic { .. } => {
                let chunk = schedule.dynamic_chunk(n, self.participants);
                let next = AtomicUsize::new(0);
                self.broadcast(|who| loop {
                    let start = next.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + chunk).min(n);
                    #[cfg(feature = "trace")]
                    let t0 = rec.map(|_| std::time::Instant::now());
                    for i in start..end {
                        f(i);
                    }
                    #[cfg(feature = "trace")]
                    if let Some(r) = rec {
                        r.record(chunk_span(who, start, end).real_since(t0));
                    }
                    #[cfg(not(feature = "trace"))]
                    let _ = who;
                });
            }
        }
    }

    /// Column-wise 2D parallel loop: the `j` (column) loop is distributed,
    /// the `i` (row) loop runs sequentially inside each task — matching the
    /// coarse-grain column-major decomposition the paper describes for the
    /// Base.Threads back end. Calls `f(i, j)` for every pair in
    /// `0..m × 0..n`.
    pub fn parallel_for_2d<F>(&self, m: usize, n: usize, schedule: Schedule, f: F)
    where
        F: Fn(usize, usize) + Sync,
    {
        self.parallel_for(n, schedule, |j| {
            for i in 0..m {
                f(i, j);
            }
        });
    }

    /// 3D parallel loop: the outermost `k` (plane) loop is distributed.
    /// Calls `f(i, j, k)` for every triple in `0..m × 0..n × 0..l`.
    pub fn parallel_for_3d<F>(&self, m: usize, n: usize, l: usize, schedule: Schedule, f: F)
    where
        F: Fn(usize, usize, usize) + Sync,
    {
        self.parallel_for(l, schedule, |k| {
            for j in 0..n {
                for i in 0..m {
                    f(i, j, k);
                }
            }
        });
    }

    /// Split a mutable slice into one contiguous block per participant and
    /// hand each block to `f(global_offset, block)` in parallel.
    pub fn parallel_for_slices<T, F>(&self, data: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        let n = data.len();
        if n == 0 {
            return;
        }
        let p = self.participants;
        let base = SendPtr(data.as_mut_ptr());
        self.broadcast(|who| {
            let (start, end) = static_block(n, p, who);
            if start == end {
                return;
            }
            // SAFETY: static blocks are disjoint and within bounds, and the
            // underlying slice outlives the broadcast.
            let block =
                unsafe { std::slice::from_raw_parts_mut(base.get().add(start), end - start) };
            f(start, block);
        });
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        for tx in &self.senders {
            // Workers may already be gone if a panic tore things down.
            let _ = tx.send(Message::Shutdown);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Clean single-thread loop (see the call site for why it is separate).
#[inline(never)]
fn serial_for<F: Fn(usize)>(n: usize, f: F) {
    for i in 0..n {
        f(i);
    }
}

/// One per-worker chunk span: grid = participant index, dims/block = chunk
/// length. Modeled time stays 0 — the owning backend's construct span carries
/// the modeled charge; these only expose real load balance.
#[cfg(feature = "trace")]
fn chunk_span(who: usize, start: usize, end: usize) -> racc_trace::Span {
    let len = (end - start) as u64;
    racc_trace::Span::new(
        "threadpool",
        racc_trace::ConstructKind::WorkerChunk,
        "chunk",
    )
    .dims(len, 1, 1)
    .geometry(who as u64, len)
}

/// Raw pointer wrapper that may cross threads; all dereferences are guarded
/// by the disjoint-block argument at the use site.
struct SendPtr<T>(*mut T);

// Manual impls: derived Clone/Copy would add a spurious `T: Copy` bound.
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor taking the whole struct so edition-2021 closures capture the
    /// `SendPtr` (which is `Sync`) rather than the raw pointer field (which
    /// is not).
    fn get(self) -> *mut T {
        self.0
    }
}

/// Thread count for the global pool: `RACC_NUM_THREADS` if set and valid,
/// otherwise the machine's available parallelism.
pub(crate) fn default_thread_count() -> usize {
    if let Ok(v) = std::env::var("RACC_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn try_new_rejects_zero() {
        assert_eq!(ThreadPool::try_new(0).unwrap_err(), PoolError::ZeroThreads);
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        let count = AtomicUsize::new(0);
        pool.parallel_for(100, Schedule::Static, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn broadcast_reaches_every_participant() {
        let pool = ThreadPool::new(4);
        let seen = Mutex::new(HashSet::new());
        pool.broadcast(|who| {
            seen.lock().insert(who);
        });
        assert_eq!(*seen.lock(), HashSet::from([0, 1, 2, 3]));
    }

    #[test]
    fn parallel_for_visits_each_index_once() {
        for sched in [
            Schedule::Static,
            Schedule::Dynamic { chunk: 0 },
            Schedule::Dynamic { chunk: 7 },
        ] {
            let pool = ThreadPool::new(4);
            let n = 10_000;
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            pool.parallel_for(n, sched, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "schedule {sched:?}"
            );
        }
    }

    #[test]
    fn parallel_for_borrows_stack_data() {
        let pool = ThreadPool::new(3);
        let input = vec![2u64; 1000];
        let total = AtomicU64::new(0);
        pool.parallel_for(input.len(), Schedule::Static, |i| {
            total.fetch_add(input[i], Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 2000);
    }

    #[test]
    fn parallel_for_2d_covers_grid_column_major() {
        let pool = ThreadPool::new(4);
        let (m, n) = (37, 53);
        let hits: Vec<AtomicUsize> = (0..m * n).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for_2d(m, n, Schedule::Static, |i, j| {
            hits[j * m + i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_3d_covers_volume() {
        let pool = ThreadPool::new(4);
        let (m, n, l) = (5, 7, 11);
        let hits: Vec<AtomicUsize> = (0..m * n * l).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for_3d(m, n, l, Schedule::Static, |i, j, k| {
            hits[(k * n + j) * m + i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_slices_writes_disjoint_blocks() {
        let pool = ThreadPool::new(5);
        let mut data = vec![0usize; 1234];
        pool.parallel_for_slices(&mut data, |offset, block| {
            for (i, x) in block.iter_mut().enumerate() {
                *x = offset + i;
            }
        });
        for (i, x) in data.iter().enumerate() {
            assert_eq!(*x, i);
        }
    }

    #[test]
    fn empty_ranges_are_noops() {
        let pool = ThreadPool::new(4);
        pool.parallel_for(0, Schedule::Static, |_| panic!("must not run"));
        pool.parallel_for_2d(0, 10, Schedule::Static, |_, _| panic!("must not run"));
        pool.parallel_for_2d(10, 0, Schedule::Static, |_, _| panic!("must not run"));
        let mut empty: Vec<u8> = Vec::new();
        pool.parallel_for_slices(&mut empty, |_, _| panic!("must not run"));
    }

    #[test]
    fn more_threads_than_work() {
        let pool = ThreadPool::new(8);
        let count = AtomicUsize::new(0);
        pool.parallel_for(3, Schedule::Static, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn worker_panic_propagates_with_payload() {
        let pool = ThreadPool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.parallel_for(100, Schedule::Static, |i| {
                if i == 99 {
                    panic!("boom at {i}");
                }
            });
        }));
        let payload = result.unwrap_err();
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("boom"), "payload: {msg:?}");
        // The pool must still be usable afterwards.
        let count = AtomicUsize::new(0);
        pool.parallel_for(10, Schedule::Static, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn caller_panic_still_joins_workers() {
        let pool = ThreadPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.broadcast(|who| {
                if who == 0 {
                    panic!("caller boom");
                }
            });
        }));
        assert!(result.is_err());
        // Reusable afterwards.
        pool.broadcast(|_| {});
    }

    #[test]
    fn global_pool_is_singleton() {
        let a = ThreadPool::global() as *const _;
        let b = ThreadPool::global() as *const _;
        assert_eq!(a, b);
        assert!(ThreadPool::global().num_threads() >= 1);
    }

    #[test]
    fn nested_parallel_for_from_worker_is_serial_safe() {
        // Nested calls on the same pool from inside a task would deadlock by
        // design (synchronous broadcast); instead nest over a different pool.
        let outer = ThreadPool::new(2);
        let total = AtomicUsize::new(0);
        outer.parallel_for(4, Schedule::Static, |_| {
            let inner = ThreadPool::new(2);
            inner.parallel_for(25, Schedule::Static, |_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 100);
    }
}
