//! The persistent worker pool.
//!
//! A `ThreadPool` with `P` participants owns `P - 1` OS worker threads; the
//! calling thread is always participant 0. All entry points are synchronous:
//! they return only after every participant has finished, which is also what
//! makes it sound to run borrowing closures on the workers (the borrowed
//! stack frame cannot die while workers still hold the closure).
//!
//! # Work-stealing dispatch
//!
//! `parallel_for`/`parallel_reduce` launches are task-granular: the index
//! space is lowered to tiles (see [`Tiling`]), and a launch starts as one
//! root task covering every tile. Executors split tasks in half (lazy binary
//! splitting), pushing the upper half onto their own Chase–Lev deque — LIFO
//! for the owner (locality), FIFO for thieves (they take the oldest, largest
//! range). A thread with no deque (a nested launch, or a second concurrent
//! caller) pushes to the bounded global injector instead, and if both are
//! full simply runs the range inline, so overflow degrades to less
//! parallelism, never to an error.
//!
//! Workers are woken lazily, not broadcast: a successful push wakes at most
//! one *idle* worker (claimed by a state CAS, so a busy worker is never a
//! wake target), and woken workers wake further idle workers as they split
//! work in turn. Each wake increments the launch latch before the message is
//! sent and the worker decrements it when it goes back to sleep, so the
//! caller's join (`tiles_left == 0`, then `latch.wait()`) observes every
//! side effect of every stolen task. On an idle pool a small launch costs
//! one channel send instead of `P - 1`.
//!
//! Because an unexecuted task keeps its launch's `tiles_left` above zero and
//! the caller cannot return before that count drains, a task may execute on
//! *any* participant — including one woken for a different launch — without
//! ever dangling. That also makes nested launches on the same pool safe:
//! the nested caller finds the caller deque claimed, submits through the
//! injector, and helps execute whatever it finds (its own tiles or the outer
//! launch's) until its tiles drain.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use parking_lot::Mutex;

use crate::latch::CountLatch;
use crate::schedule::{static_block, Schedule, Tiling};
use crate::steal::{Deque, Injector, Steal, StealStats, TaskWords, VictimRng, WorkerCounters};

/// Bounded-spin receive: polls `try_recv` before falling back to the
/// blocking `recv`. Returns `None` when every sender is gone.
///
/// The spin budget matches the latch's ([`crate::latch::spin_iters`]):
/// back-to-back constructs are microseconds apart, so staying on-core
/// between them pays for itself, while an idle pool still sleeps — and on
/// a single-hardware-thread host the budget is zero, because a polling
/// worker there starves the caller that would send it work.
fn recv_spinning<T>(rx: &Receiver<T>) -> Option<T> {
    for _ in 0..crate::latch::spin_iters() {
        match rx.try_recv() {
            Ok(msg) => return Some(msg),
            Err(TryRecvError::Empty) => std::hint::spin_loop(),
            Err(TryRecvError::Disconnected) => return None,
        }
    }
    rx.recv().ok()
}

/// Errors from pool construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// A pool must have at least one participant.
    ZeroThreads,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::ZeroThreads => write!(f, "thread pool needs at least one thread"),
        }
    }
}

impl std::error::Error for PoolError {}

/// Shared state of one in-flight broadcast.
struct JobState {
    latch: CountLatch,
    panicked: AtomicBool,
    payload: Mutex<Option<Box<dyn Any + Send>>>,
}

impl JobState {
    fn record_panic(&self, payload: Box<dyn Any + Send>) {
        self.panicked.store(true, Ordering::Release);
        let mut slot = self.payload.lock();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }
}

/// A type-erased reference to a borrowed job closure plus its state, shipped
/// to a worker. Soundness: the pointers reference the caller's stack frame,
/// and the caller blocks on the latch until every worker has decremented it,
/// which happens strictly after the worker's last dereference.
struct JobRef {
    fun: *const (dyn Fn(usize) + Sync),
    state: *const JobState,
    participant: usize,
}

// SAFETY: the raw pointers are only dereferenced while the issuing call
// keeps the referents alive (enforced by the latch protocol above).
unsafe impl Send for JobRef {}

impl JobRef {
    /// Run the job as this worker's participant, recording panics and always
    /// decrementing the latch.
    ///
    /// # Safety
    /// Must only be called while the issuing broadcast is still blocked on
    /// the latch (the pool protocol guarantees this).
    unsafe fn execute(self) {
        let state = &*self.state;
        let fun = &*self.fun;
        let result = catch_unwind(AssertUnwindSafe(|| fun(self.participant)));
        if let Err(payload) = result {
            state.record_panic(payload);
        }
        state.latch.count_down();
    }
}

/// Worker wake states. `Idle` = parked at `recv`, claimable by a wake CAS;
/// `Woken` = claimed, a steal message is in flight; `Active` = processing.
const STATE_IDLE: u8 = 0;
const STATE_WOKEN: u8 = 1;
const STATE_ACTIVE: u8 = 2;

/// A pointer to an in-flight launch header, shipped inside a wake message.
struct HeaderRef(*const LaunchHeader);

// SAFETY: the header lives on the issuing caller's stack, and the caller
// cannot return while the wake it paid for (latch.add before send) has not
// been counted down — which the receiving worker does only after its last
// dereference.
unsafe impl Send for HeaderRef {}

enum Message {
    Run(JobRef),
    Steal(HeaderRef),
    Shutdown,
}

/// Everything workers share with the pool handle.
struct PoolShared {
    senders: Vec<Sender<Message>>,
    /// One deque per participant; index 0 is the caller slot, claimed per
    /// launch via `caller_slot`, indices `1..P` belong to the workers.
    deques: Vec<Deque>,
    injector: Injector,
    caller_slot: AtomicBool,
    /// Wake state per worker (index `w - 1` for worker `w`).
    worker_states: Vec<AtomicU8>,
    /// Heuristic count of parked workers; maintained only by the workers
    /// themselves (increment before parking, decrement after waking), so
    /// wake claims can never unbalance it. Gates the wake scan.
    idle_workers: AtomicUsize,
    /// Workers claimed by a wake but not yet past their first successful
    /// task grab ("searchers"). Pushes skip waking while one is
    /// outstanding: the searcher is obligated to sweep every deque and the
    /// injector before parking, so fresh work will be seen, and the chain
    /// re-arms (searchers back to 0) the moment it converts to execution.
    /// This is the steal-then-signal ramp-up: one wake per demand edge
    /// instead of one per split, which keeps small launches from paying
    /// `P - 1` worker round trips when the caller alone finishes first.
    /// The gate is heuristic — two pushers racing it wake two workers,
    /// and a searcher parking just as work is pushed delays pickup until
    /// the owning caller's own drain loop reaches it — never a liveness
    /// issue, because every caller drains its own launch to completion.
    searchers: AtomicUsize,
    /// Steal telemetry, one padded slot per participant.
    counters: Vec<WorkerCounters>,
    participants: usize,
}

/// A persistent pool of worker threads; see the crate docs for the model.
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
    /// Optional span recorder; when installed and enabled, launches deposit
    /// one `WorkerChunk` span per executed leaf range and one `Steal` span
    /// per successful steal.
    #[cfg(feature = "trace")]
    recorder: OnceLock<std::sync::Arc<racc_trace::TraceRecorder>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("participants", &self.shared.participants)
            .finish()
    }
}

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

impl ThreadPool {
    /// Create a pool with `threads` participants (the calling thread plus
    /// `threads - 1` workers).
    ///
    /// # Panics
    /// Panics if `threads == 0`; use [`ThreadPool::try_new`] to handle that
    /// as an error.
    pub fn new(threads: usize) -> Self {
        Self::try_new(threads).expect("invalid thread pool size")
    }

    /// Fallible constructor.
    pub fn try_new(threads: usize) -> Result<Self, PoolError> {
        if threads == 0 {
            return Err(PoolError::ZeroThreads);
        }
        let mut senders = Vec::with_capacity(threads - 1);
        let mut receivers = Vec::with_capacity(threads - 1);
        for _ in 1..threads {
            let (tx, rx) = unbounded::<Message>();
            senders.push(tx);
            receivers.push(rx);
        }
        let shared = Arc::new(PoolShared {
            senders,
            deques: (0..threads).map(|_| Deque::new()).collect(),
            injector: Injector::new(),
            caller_slot: AtomicBool::new(false),
            worker_states: (1..threads).map(|_| AtomicU8::new(STATE_IDLE)).collect(),
            idle_workers: AtomicUsize::new(threads - 1),
            searchers: AtomicUsize::new(0),
            counters: (0..threads).map(|_| WorkerCounters::default()).collect(),
            participants: threads,
        });
        let mut handles = Vec::with_capacity(threads - 1);
        for (i, rx) in receivers.into_iter().enumerate() {
            let w = i + 1;
            let shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("racc-worker-{w}"))
                .spawn(move || worker_main(&shared, w, &rx))
                .expect("failed to spawn pool worker");
            handles.push(handle);
        }
        Ok(ThreadPool {
            shared,
            handles,
            #[cfg(feature = "trace")]
            recorder: OnceLock::new(),
        })
    }

    /// Install a span recorder (first installer wins). Subsequent launches
    /// emit one `WorkerChunk` span per executed leaf range plus one `Steal`
    /// span per successful steal while the recorder is enabled.
    #[cfg(feature = "trace")]
    pub fn install_tracer(&self, recorder: std::sync::Arc<racc_trace::TraceRecorder>) {
        let _ = self.recorder.set(recorder);
    }

    /// The process-wide pool, sized from `RACC_NUM_THREADS` or the machine's
    /// available parallelism.
    pub fn global() -> &'static ThreadPool {
        GLOBAL.get_or_init(|| ThreadPool::new(default_thread_count()))
    }

    /// Number of participants (calling thread included).
    pub fn num_threads(&self) -> usize {
        self.shared.participants
    }

    /// Snapshot the cumulative work-stealing telemetry: per-participant
    /// executed/stolen/injected/split/wake/park counts since pool creation.
    pub fn steal_stats(&self) -> StealStats {
        StealStats {
            participants: self.shared.counters.iter().map(|c| c.snapshot()).collect(),
        }
    }

    /// Run `f(participant)` once on every participant (0 = calling thread)
    /// and return when all are done. Panics in any participant propagate to
    /// the caller after all participants have finished.
    pub fn broadcast<F>(&self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let state = JobState {
            latch: CountLatch::new(self.shared.senders.len()),
            panicked: AtomicBool::new(false),
            payload: Mutex::new(None),
        };
        let fun: &(dyn Fn(usize) + Sync) = &f;
        // Erase the lifetime: see JobRef safety comment. The transmute only
        // extends the lifetime of the trait-object pointee to 'static; the
        // latch protocol guarantees no dereference outlives this call.
        let fun: *const (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<*const (dyn Fn(usize) + Sync + '_), *const (dyn Fn(usize) + Sync)>(
                fun as *const _,
            )
        };
        for (i, tx) in self.shared.senders.iter().enumerate() {
            let job = JobRef {
                fun,
                state: &state as *const _,
                participant: i + 1,
            };
            tx.send(Message::Run(job))
                .expect("pool worker disconnected");
        }
        // The caller participates as participant 0. Catch its panic so we
        // still join the workers before unwinding past `state`.
        let caller_result = catch_unwind(AssertUnwindSafe(|| f(0)));
        state.latch.wait();
        if let Err(payload) = caller_result {
            resume_unwind(payload);
        }
        if state.panicked.load(Ordering::Acquire) {
            let payload = state
                .payload
                .lock()
                .take()
                .unwrap_or_else(|| Box::new("pool task panicked"));
            resume_unwind(payload);
        }
    }

    /// Parallel loop over `0..n` under the given schedule. `f` must tolerate
    /// concurrent invocation on distinct indices; every index is invoked
    /// exactly once.
    pub fn parallel_for<F>(&self, n: usize, schedule: Schedule, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if n == 0 {
            return;
        }
        if self.shared.participants == 1 {
            // Moved into a dedicated frame: sharing a body with the erased
            // executors below (which take the closure's address) measurably
            // blocks loop optimization.
            return serial_for(n, f);
        }
        let tiling = Tiling::new(schedule, n, self.shared.participants);
        if tiling.tiles() <= 1 {
            // A single tile: running it here beats waking anyone.
            return serial_for(n, f);
        }
        let data = ForData {
            f: &f as *const F,
            tiling,
        };
        // SAFETY: run_tiled is fully synchronous, so `data` (and the `f` it
        // points to) outlive every dereference; exec_for::<F> matches the
        // erased payload type.
        unsafe {
            self.run_tiled(
                tiling,
                exec_for::<F>,
                &data as *const ForData<F> as *const (),
            );
        }
    }

    /// Execute a tiled launch on the work-stealing core: one root task over
    /// all tiles, lazy binary splitting, synchronous join, panic
    /// propagation after the join.
    ///
    /// # Safety
    /// `exec(data, t0, t1)` must be sound for any partition of the tile
    /// space into disjoint `[t0, t1)` ranges executed concurrently, and
    /// `data` must stay valid for the duration of the call (guaranteed by
    /// the synchronous join). `tiling.tiles()` must be at least 1.
    pub(crate) unsafe fn run_tiled(
        &self,
        tiling: Tiling,
        exec: unsafe fn(*const (), usize, usize),
        data: *const (),
    ) {
        let tiles = tiling.tiles();
        debug_assert!(tiles > 0);
        debug_assert!(self.shared.participants > 1);
        #[cfg(feature = "trace")]
        let rec: *const racc_trace::TraceRecorder = self
            .recorder
            .get()
            .filter(|r| r.is_enabled())
            .map_or(std::ptr::null(), std::sync::Arc::as_ptr);
        let header = LaunchHeader {
            exec,
            data,
            tiling,
            tiles_left: AtomicUsize::new(tiles),
            latch: CountLatch::new(0),
            poisoned: AtomicBool::new(false),
            payload: Mutex::new(None),
            #[cfg(feature = "trace")]
            rec,
        };
        let shared = &*self.shared;
        // Claim the caller deque if free; a nested or concurrent caller
        // falls back to injector-only submission.
        let claimed = shared
            .caller_slot
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok();
        let me = claimed.then_some(0usize);
        run_task(
            shared,
            me,
            0,
            Task {
                header: &header,
                t0: 0,
                t1: tiles,
            },
        );
        // Keep executing tasks — ours or any concurrent launch's — until
        // every tile of THIS launch has drained. Helping other launches here
        // is what makes same-pool nesting deadlock-free.
        let mut rng = VictimRng::new(usize::MAX);
        let mut idle = 0u32;
        while header.tiles_left.load(Ordering::Acquire) != 0 {
            if let Some(task) = find_task(shared, me, 0, &mut rng) {
                idle = 0;
                run_task(shared, me, 0, task);
            } else if idle < 128 {
                idle += 1;
                std::hint::spin_loop();
            } else {
                // Let workers (or, single-core, anyone) run; cheap because
                // this path only triggers when we found nothing to do.
                std::thread::yield_now();
            }
        }
        // Wait for every woken worker to leave the launch before the header
        // (and the closures it points to) go out of scope.
        header.latch.wait();
        if claimed {
            shared.caller_slot.store(false, Ordering::Release);
        }
        if header.poisoned.load(Ordering::Acquire) {
            let payload = header
                .payload
                .lock()
                .take()
                .unwrap_or_else(|| Box::new("pool task panicked"));
            resume_unwind(payload);
        }
    }

    /// Column-wise 2D parallel loop: the `j` (column) loop is distributed,
    /// the `i` (row) loop runs sequentially inside each task — matching the
    /// coarse-grain column-major decomposition the paper describes for the
    /// Base.Threads back end. Calls `f(i, j)` for every pair in
    /// `0..m × 0..n`.
    pub fn parallel_for_2d<F>(&self, m: usize, n: usize, schedule: Schedule, f: F)
    where
        F: Fn(usize, usize) + Sync,
    {
        self.parallel_for(n, schedule, |j| {
            for i in 0..m {
                f(i, j);
            }
        });
    }

    /// 3D parallel loop: the outermost `k` (plane) loop is distributed.
    /// Calls `f(i, j, k)` for every triple in `0..m × 0..n × 0..l`.
    pub fn parallel_for_3d<F>(&self, m: usize, n: usize, l: usize, schedule: Schedule, f: F)
    where
        F: Fn(usize, usize, usize) + Sync,
    {
        self.parallel_for(l, schedule, |k| {
            for j in 0..n {
                for i in 0..m {
                    f(i, j, k);
                }
            }
        });
    }

    /// Split a mutable slice into one contiguous block per participant and
    /// hand each block to `f(global_offset, block)` in parallel.
    pub fn parallel_for_slices<T, F>(&self, data: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        let n = data.len();
        if n == 0 {
            return;
        }
        let p = self.shared.participants;
        let base = SendPtr(data.as_mut_ptr());
        self.broadcast(|who| {
            let (start, end) = static_block(n, p, who);
            if start == end {
                return;
            }
            // SAFETY: static blocks are disjoint and within bounds, and the
            // underlying slice outlives the broadcast.
            let block =
                unsafe { std::slice::from_raw_parts_mut(base.get().add(start), end - start) };
            f(start, block);
        });
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        for tx in &self.shared.senders {
            // Workers may already be gone if a panic tore things down.
            let _ = tx.send(Message::Shutdown);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// One in-flight tiled launch, living on the issuing caller's stack. A task
/// is `(header, tile range)`; `tiles_left` counts tiles not yet executed (or
/// drained), and the caller cannot return while it is nonzero, which is the
/// liveness guarantee behind every raw pointer here.
struct LaunchHeader {
    exec: unsafe fn(*const (), usize, usize),
    data: *const (),
    /// Read only by the trace path (element spans of executed tile ranges).
    #[cfg_attr(not(feature = "trace"), allow(dead_code))]
    tiling: Tiling,
    tiles_left: AtomicUsize,
    /// Counts outstanding woken workers, *not* tasks: incremented before
    /// each wake message, decremented when the woken worker leaves the
    /// launch.
    latch: CountLatch,
    /// Set on the first panic; remaining tasks drain without executing.
    poisoned: AtomicBool,
    payload: Mutex<Option<Box<dyn Any + Send>>>,
    #[cfg(feature = "trace")]
    rec: *const racc_trace::TraceRecorder,
}

impl LaunchHeader {
    fn record_panic(&self, payload: Box<dyn Any + Send>) {
        self.poisoned.store(true, Ordering::Release);
        let mut slot = self.payload.lock();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }
}

/// A contiguous range of tiles of one launch.
#[derive(Clone, Copy)]
struct Task {
    header: *const LaunchHeader,
    t0: usize,
    t1: usize,
}

impl Task {
    fn to_words(self) -> TaskWords {
        [self.header as usize, self.t0, self.t1]
    }

    fn from_words(w: TaskWords) -> Task {
        Task {
            header: w[0] as *const LaunchHeader,
            t0: w[1],
            t1: w[2],
        }
    }
}

/// The worker main loop: park at `recv`, mark active on any message, run
/// it, and go back to idle. The idle count is maintained exclusively here
/// (balanced increment/decrement around each park) so wake-side claims can
/// never drift it.
fn worker_main(shared: &PoolShared, w: usize, rx: &Receiver<Message>) {
    while let Some(msg) = recv_spinning(rx) {
        shared.worker_states[w - 1].store(STATE_ACTIVE, Ordering::Release);
        shared.idle_workers.fetch_sub(1, Ordering::AcqRel);
        match msg {
            // SAFETY: the broadcasting call is blocked on the job latch
            // until we count it down inside `execute`, keeping the
            // referents alive.
            Message::Run(job) => unsafe { job.execute() },
            Message::Steal(href) => {
                // SAFETY: the issuing launch added our wake to its latch
                // before sending, so it cannot return (and drop the header)
                // until the count_down below.
                let header = unsafe { &*href.0 };
                worker_drain(shared, w, header);
                header.latch.count_down();
            }
            Message::Shutdown => break,
        }
        shared.worker_states[w - 1].store(STATE_IDLE, Ordering::Release);
        shared.idle_workers.fetch_add(1, Ordering::AcqRel);
        shared.counters[w].parks.fetch_add(1, Ordering::Relaxed);
    }
}

/// A woken worker's steal loop: execute tasks (any launch's) until the
/// waking launch completes or nothing is stealable for a spin budget.
fn worker_drain(shared: &PoolShared, w: usize, header: &LaunchHeader) {
    let me = Some(w);
    let mut rng = VictimRng::new(w);
    // Early exit after a bounded idle sweep: a parked worker costs nothing
    // and is re-woken by the next successful push. Zero on single-core
    // hosts, where spinning would starve the thread that has the work.
    let budget: u32 = if crate::latch::spin_iters() == 0 {
        0
    } else {
        512
    };
    let mut idle = 0u32;
    // We entered as the claimed searcher (counted in maybe_wake). The
    // first successful grab converts us to an executor and re-arms the
    // wake gate, so the next push ramps up another worker.
    let mut searching = true;
    while header.tiles_left.load(Ordering::Acquire) != 0 {
        if let Some(task) = find_task(shared, me, w, &mut rng) {
            idle = 0;
            if searching {
                searching = false;
                shared.searchers.fetch_sub(1, Ordering::AcqRel);
            }
            run_task(shared, me, w, task);
        } else if idle < budget {
            idle += 1;
            std::hint::spin_loop();
        } else {
            break;
        }
    }
    if searching {
        shared.searchers.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Find the next task: own deque (LIFO), then the injector, then a steal
/// sweep over victims in seeded-rotation order. `Retry` results re-run the
/// sweep (someone is mid-operation; progress is being made).
fn find_task(
    shared: &PoolShared,
    me: Option<usize>,
    stat: usize,
    rng: &mut VictimRng,
) -> Option<Task> {
    if let Some(d) = me {
        if let Some(w) = shared.deques[d].pop() {
            return Some(Task::from_words(w));
        }
    }
    if let Some(w) = shared.injector.pop() {
        shared.counters[stat]
            .injected
            .fetch_add(1, Ordering::Relaxed);
        return Some(Task::from_words(w));
    }
    let p = shared.deques.len();
    let start = rng.next();
    loop {
        let mut retry = false;
        for k in 0..p {
            let v = (start + k) % p;
            if Some(v) == me {
                continue;
            }
            match shared.deques[v].steal() {
                Steal::Success(w) => {
                    let task = Task::from_words(w);
                    shared.counters[stat].stolen.fetch_add(1, Ordering::Relaxed);
                    #[cfg(feature = "trace")]
                    record_steal(&task, stat, v);
                    return Some(task);
                }
                Steal::Retry => retry = true,
                Steal::Empty => {}
            }
        }
        if !retry {
            return None;
        }
        std::hint::spin_loop();
    }
}

/// Execute one task: drain it if the launch is poisoned, otherwise split
/// down to single tiles (pushing upper halves), run the leaf, record any
/// panic, and retire the executed tiles.
fn run_task(shared: &PoolShared, me: Option<usize>, stat: usize, task: Task) {
    // SAFETY: a task only exists while its launch has outstanding tiles,
    // and the launch cannot return before this function's `tiles_left`
    // decrement (see LaunchHeader docs).
    let header = unsafe { &*task.header };
    let (lo, mut hi) = (task.t0, task.t1);
    if header.poisoned.load(Ordering::Acquire) {
        header.tiles_left.fetch_sub(hi - lo, Ordering::Release);
        return;
    }
    let counters = &shared.counters[stat];
    let mut pushed = false;
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        let words = Task {
            header: task.header,
            t0: mid,
            t1: hi,
        }
        .to_words();
        let ok = match me {
            Some(d) => shared.deques[d].push(words) || shared.injector.push(words),
            None => shared.injector.push(words),
        };
        if !ok {
            // Both queues full: keep the whole range and run it inline.
            break;
        }
        counters.splits.fetch_add(1, Ordering::Relaxed);
        pushed = true;
        hi = mid;
    }
    if pushed {
        maybe_wake(shared, header, stat);
    }
    #[cfg(feature = "trace")]
    let t_start = (!header.rec.is_null()).then(std::time::Instant::now);
    // SAFETY: exec's contract (run_tiled) covers any disjoint tile range.
    let result = catch_unwind(AssertUnwindSafe(|| unsafe {
        (header.exec)(header.data, lo, hi)
    }));
    counters.executed.fetch_add(1, Ordering::Relaxed);
    #[cfg(feature = "trace")]
    if !header.rec.is_null() {
        let (s, e) = header.tiling.elem_span(lo, hi);
        // SAFETY: the recorder Arc is owned by the pool, which outlives the
        // launch.
        unsafe { &*header.rec }.record(chunk_span(stat, s, e).real_since(t_start));
    }
    if let Err(payload) = result {
        header.record_panic(payload);
    }
    header.tiles_left.fetch_sub(hi - lo, Ordering::Release);
}

/// Upper bound on workers awake at once: the machine's spare hardware
/// threads (one core is the caller's), floored at 1 so stealing is still
/// exercised on single-core hosts. Waking past this bound cannot add
/// parallelism — the extra worker only time-slices against threads that
/// already have work queued.
fn wake_cap() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .saturating_sub(1)
            .max(1)
    })
}

/// Wake at most one idle worker for `header`. A worker is claimable only
/// while parked at `recv` (state CAS Idle → Woken), so messages never pile
/// onto busy workers and a launch never waits on a worker that another
/// launch is still using. The latch increment *precedes* the send — and
/// happens while the waker still owes a `tiles_left` decrement — so the
/// caller can neither miss the wake nor return before it drains.
fn maybe_wake(shared: &PoolShared, header: &LaunchHeader, stat: usize) {
    if shared.idle_workers.load(Ordering::Relaxed) == 0 {
        return;
    }
    // Steal-then-signal: while a claimed worker is still searching, it will
    // find this push in its sweep — don't wake a second one yet (see the
    // `searchers` field docs).
    if shared.searchers.load(Ordering::Relaxed) != 0 {
        return;
    }
    // Don't wake more workers than the machine has spare cores: beyond
    // that, an extra awake worker displaces a thread that already has work
    // (the degenerate case is a 1-core host, where every wake past the
    // first is a pure scheduling round trip). The caller occupies one
    // core; at least one worker may always be woken so stealing stays
    // exercised even on 1-core hosts.
    let awake = shared
        .worker_states
        .len()
        .saturating_sub(shared.idle_workers.load(Ordering::Relaxed));
    if awake >= wake_cap() {
        return;
    }
    for (wi, state) in shared.worker_states.iter().enumerate() {
        if state.load(Ordering::Relaxed) == STATE_IDLE
            && state
                .compare_exchange(STATE_IDLE, STATE_WOKEN, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
        {
            shared.searchers.fetch_add(1, Ordering::AcqRel);
            header.latch.add(1);
            shared.counters[stat].wakes.fetch_add(1, Ordering::Relaxed);
            let msg = Message::Steal(HeaderRef(header as *const LaunchHeader));
            if shared.senders[wi].send(msg).is_err() {
                // Worker already torn down (pool drop racing a launch can
                // only happen in tests); undo the latch charge.
                header.latch.count_down();
            }
            return;
        }
    }
}

/// One `Steal` span: dims = stolen tile count, geometry = (thief, victim).
/// Zero duration — it marks the handoff, not the execution (the executed
/// range gets its own `WorkerChunk` span).
#[cfg(feature = "trace")]
fn record_steal(task: &Task, thief: usize, victim: usize) {
    // SAFETY: the task was just taken from a live deque, so its launch still
    // has outstanding tiles and the header is alive.
    let header = unsafe { &*task.header };
    if header.rec.is_null() {
        return;
    }
    let tiles = (task.t1 - task.t0) as u64;
    // SAFETY: recorder outlives the launch (owned by the pool).
    unsafe { &*header.rec }.record(
        racc_trace::Span::new("threadpool", racc_trace::ConstructKind::Steal, "steal")
            .dims(tiles, 1, 1)
            .geometry(thief as u64, victim as u64),
    );
}

/// Type-erased payload of a `parallel_for` launch.
struct ForData<F> {
    f: *const F,
    tiling: Tiling,
}

/// Tile-range executor for `parallel_for`: runs `f` over the element ranges
/// of tiles `[t0, t1)`.
///
/// # Safety
/// `data` must point to a live `ForData<F>` whose closure outlives the call.
unsafe fn exec_for<F: Fn(usize) + Sync>(data: *const (), t0: usize, t1: usize) {
    let d = &*(data as *const ForData<F>);
    let f = &*d.f;
    for t in t0..t1 {
        let (s, e) = d.tiling.tile_range(t);
        for i in s..e {
            f(i);
        }
    }
}

/// Clean single-thread loop (see the call site for why it is separate).
#[inline(never)]
fn serial_for<F: Fn(usize)>(n: usize, f: F) {
    for i in 0..n {
        f(i);
    }
}

/// One per-worker chunk span: grid = participant index, dims/block = chunk
/// length. Modeled time stays 0 — the owning backend's construct span carries
/// the modeled charge; these only expose real load balance.
#[cfg(feature = "trace")]
fn chunk_span(who: usize, start: usize, end: usize) -> racc_trace::Span {
    let len = (end - start) as u64;
    racc_trace::Span::new(
        "threadpool",
        racc_trace::ConstructKind::WorkerChunk,
        "chunk",
    )
    .dims(len, 1, 1)
    .geometry(who as u64, len)
}

/// Raw pointer wrapper that may cross threads; all dereferences are guarded
/// by the disjoint-block argument at the use site.
struct SendPtr<T>(*mut T);

// Manual impls: derived Clone/Copy would add a spurious `T: Copy` bound.
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor taking the whole struct so edition-2021 closures capture the
    /// `SendPtr` (which is `Sync`) rather than the raw pointer field (which
    /// is not).
    fn get(self) -> *mut T {
        self.0
    }
}

/// Thread count for the global pool: `RACC_NUM_THREADS` if set and valid,
/// otherwise the machine's available parallelism.
pub(crate) fn default_thread_count() -> usize {
    if let Ok(v) = std::env::var("RACC_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn try_new_rejects_zero() {
        assert_eq!(ThreadPool::try_new(0).unwrap_err(), PoolError::ZeroThreads);
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        let count = AtomicUsize::new(0);
        pool.parallel_for(100, Schedule::Static, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn broadcast_reaches_every_participant() {
        let pool = ThreadPool::new(4);
        let seen = Mutex::new(HashSet::new());
        pool.broadcast(|who| {
            seen.lock().insert(who);
        });
        assert_eq!(*seen.lock(), HashSet::from([0, 1, 2, 3]));
    }

    #[test]
    fn parallel_for_visits_each_index_once() {
        for sched in [
            Schedule::Static,
            Schedule::Dynamic { chunk: 0 },
            Schedule::Dynamic { chunk: 7 },
        ] {
            let pool = ThreadPool::new(4);
            let n = 10_000;
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            pool.parallel_for(n, sched, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "schedule {sched:?}"
            );
        }
    }

    #[test]
    fn parallel_for_borrows_stack_data() {
        let pool = ThreadPool::new(3);
        let input = vec![2u64; 1000];
        let total = AtomicU64::new(0);
        pool.parallel_for(input.len(), Schedule::Static, |i| {
            total.fetch_add(input[i], Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 2000);
    }

    #[test]
    fn parallel_for_2d_covers_grid_column_major() {
        let pool = ThreadPool::new(4);
        let (m, n) = (37, 53);
        let hits: Vec<AtomicUsize> = (0..m * n).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for_2d(m, n, Schedule::Static, |i, j| {
            hits[j * m + i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_3d_covers_volume() {
        let pool = ThreadPool::new(4);
        let (m, n, l) = (5, 7, 11);
        let hits: Vec<AtomicUsize> = (0..m * n * l).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for_3d(m, n, l, Schedule::Static, |i, j, k| {
            hits[(k * n + j) * m + i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_slices_writes_disjoint_blocks() {
        let pool = ThreadPool::new(5);
        let mut data = vec![0usize; 1234];
        pool.parallel_for_slices(&mut data, |offset, block| {
            for (i, x) in block.iter_mut().enumerate() {
                *x = offset + i;
            }
        });
        for (i, x) in data.iter().enumerate() {
            assert_eq!(*x, i);
        }
    }

    #[test]
    fn empty_ranges_are_noops() {
        let pool = ThreadPool::new(4);
        pool.parallel_for(0, Schedule::Static, |_| panic!("must not run"));
        pool.parallel_for_2d(0, 10, Schedule::Static, |_, _| panic!("must not run"));
        pool.parallel_for_2d(10, 0, Schedule::Static, |_, _| panic!("must not run"));
        let mut empty: Vec<u8> = Vec::new();
        pool.parallel_for_slices(&mut empty, |_, _| panic!("must not run"));
    }

    #[test]
    fn more_threads_than_work() {
        let pool = ThreadPool::new(8);
        let count = AtomicUsize::new(0);
        pool.parallel_for(3, Schedule::Static, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn worker_panic_propagates_with_payload() {
        let pool = ThreadPool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.parallel_for(100, Schedule::Static, |i| {
                if i == 99 {
                    panic!("boom at {i}");
                }
            });
        }));
        let payload = result.unwrap_err();
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("boom"), "payload: {msg:?}");
        // The pool must still be usable afterwards.
        let count = AtomicUsize::new(0);
        pool.parallel_for(10, Schedule::Static, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn panic_in_dynamic_launch_poisons_and_drains() {
        // Many small tiles: some are queued when the panic lands, and must
        // drain (not execute) without wedging the launch.
        let pool = ThreadPool::new(4);
        let executed = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.parallel_for(4096, Schedule::Dynamic { chunk: 1 }, |i| {
                executed.fetch_add(1, Ordering::Relaxed);
                if i == 7 {
                    panic!("stolen boom");
                }
            });
        }));
        let payload = result.unwrap_err();
        let msg = payload
            .downcast_ref::<&'static str>()
            .copied()
            .unwrap_or_default();
        assert_eq!(msg, "stolen boom");
        // Reusable, and every index of a fresh launch still runs once.
        let count = AtomicUsize::new(0);
        pool.parallel_for(100, Schedule::Dynamic { chunk: 1 }, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn caller_panic_still_joins_workers() {
        let pool = ThreadPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.broadcast(|who| {
                if who == 0 {
                    panic!("caller boom");
                }
            });
        }));
        assert!(result.is_err());
        // Reusable afterwards.
        pool.broadcast(|_| {});
    }

    #[test]
    fn global_pool_is_singleton() {
        let a = ThreadPool::global() as *const _;
        let b = ThreadPool::global() as *const _;
        assert_eq!(a, b);
        assert!(ThreadPool::global().num_threads() >= 1);
    }

    #[test]
    fn nested_parallel_for_from_worker_is_serial_safe() {
        // Nesting over a *different* pool has always been supported.
        let outer = ThreadPool::new(2);
        let total = AtomicUsize::new(0);
        outer.parallel_for(4, Schedule::Static, |_| {
            let inner = ThreadPool::new(2);
            inner.parallel_for(25, Schedule::Static, |_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn nested_parallel_for_on_same_pool_completes() {
        // New with the work-stealing core: a nested launch on the SAME pool
        // (which deadlocked the broadcast design) submits via the injector
        // and helps drain, so it completes.
        let pool = ThreadPool::new(4);
        let total = AtomicUsize::new(0);
        pool.parallel_for(8, Schedule::Dynamic { chunk: 1 }, |_| {
            pool.parallel_for(50, Schedule::Dynamic { chunk: 5 }, |_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 400);
    }

    #[test]
    fn concurrent_launches_from_two_threads_share_the_pool() {
        let pool = std::sync::Arc::new(ThreadPool::new(4));
        let total = std::sync::Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let pool = std::sync::Arc::clone(&pool);
            let total = std::sync::Arc::clone(&total);
            handles.push(std::thread::spawn(move || {
                for _ in 0..20 {
                    pool.parallel_for(500, Schedule::Dynamic { chunk: 7 }, |_| {
                        total.fetch_add(1, Ordering::Relaxed);
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), 2 * 20 * 500);
    }

    #[test]
    fn steal_stats_count_executed_tasks() {
        let pool = ThreadPool::new(2);
        let before = pool.steal_stats().total();
        pool.parallel_for(1000, Schedule::Dynamic { chunk: 10 }, |_| {});
        let after = pool.steal_stats().total();
        assert!(
            after.executed > before.executed,
            "before {before:?} after {after:?}"
        );
        assert_eq!(pool.steal_stats().participants.len(), 2);
    }
}
