//! Loop-scheduling policies, chunk arithmetic, and the tile lowering the
//! work-stealing core executes.

use std::sync::OnceLock;

/// How a 1D iteration space is divided among participants.
///
/// `Static` is the OpenMP-style blocked schedule Julia's `Threads.@threads`
/// uses by default; `Dynamic` load-balances via work stealing: the range is
/// split into grain-sized tiles that idle participants steal from busy ones,
/// better for irregular iteration costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Schedule {
    /// Each participant gets one contiguous block of roughly `n / P`
    /// iterations. Blocks may *execute* on any participant (stealing moves
    /// whole blocks), but the block boundaries — and therefore every
    /// reduction's combine order — are fixed by `n` and `P` alone.
    #[default]
    Static,
    /// The range is split into tiles of the given grain that participants
    /// pop locally (LIFO) and steal from each other (FIFO). A grain of 0
    /// picks the `RACC_GRAIN` environment override if set, otherwise a
    /// heuristic (`n / (8 P)` clamped to `[1, 4096]`).
    Dynamic {
        /// Iterations per tile; 0 selects `RACC_GRAIN` or the heuristic.
        chunk: usize,
    },
}

impl Schedule {
    /// Resolve the chunk size a dynamic schedule would use for `n` iterations
    /// across `participants` threads.
    ///
    /// An empty range resolves to 0 for **every** variant: there is nothing
    /// to chunk, matching `chunks(0, c)` yielding no chunks. (Earlier
    /// versions returned `max(1)` for `Static` here, which disagreed with
    /// the chunk iterators and made callers special-case `n == 0`.)
    ///
    /// The auto heuristic (`chunk: 0`) is `n / (8 P)` clamped to
    /// `[1, 4096]`, tuned against the `ablate_sched` bench (EXPERIMENTS.md):
    /// eight chunks per participant amortize the per-tile dispatch overhead
    /// — measured ~4x slower with single-iteration tiles on cheap work —
    /// while the cap bounds the tail imbalance a skewed workload can hit
    /// when `n` is huge. The same heuristic is the work-stealing grain
    /// default (see [`Schedule::grain`]).
    pub fn dynamic_chunk(self, n: usize, participants: usize) -> usize {
        if n == 0 {
            return 0;
        }
        match self {
            Schedule::Static => split_block(n, participants, 0).1.max(1),
            Schedule::Dynamic { chunk: 0 } => auto_grain(n, participants),
            Schedule::Dynamic { chunk } => chunk,
        }
    }

    /// The tile grain the work-stealing core uses for this schedule:
    /// `Dynamic { chunk > 0 }` is honored verbatim; `Dynamic { chunk: 0 }`
    /// takes the `RACC_GRAIN` environment override when set (parsed once per
    /// process), else the tuned heuristic. `Static` resolves to its block
    /// size (the static tiling does not consume a grain, but callers may
    /// still ask). Returns 0 for an empty range.
    pub fn grain(self, n: usize, participants: usize) -> usize {
        if n == 0 {
            return 0;
        }
        match self {
            Schedule::Dynamic { chunk: 0 } => {
                env_grain().unwrap_or_else(|| auto_grain(n, participants))
            }
            other => other.dynamic_chunk(n, participants),
        }
    }
}

/// The tuned default grain: eight tiles per participant, clamped to
/// `[1, 4096]`.
fn auto_grain(n: usize, participants: usize) -> usize {
    (n / (8 * participants.max(1))).clamp(1, 4096)
}

/// `RACC_GRAIN` parsed once per process: a positive integer overrides the
/// auto grain; unset, zero, or garbage leaves the heuristic in charge.
fn env_grain() -> Option<usize> {
    static GRAIN: OnceLock<Option<usize>> = OnceLock::new();
    *GRAIN.get_or_init(|| parse_grain(std::env::var("RACC_GRAIN").ok().as_deref()))
}

/// The testable core of the `RACC_GRAIN` parse: positive integers pass,
/// anything else (unset, 0, garbage) means "no override".
pub fn parse_grain(value: Option<&str>) -> Option<usize> {
    value
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&g| g > 0)
}

/// How a launch's index space is cut into steal-able tiles. Tile boundaries
/// depend only on `(n, schedule, participants)` — never on which participant
/// executes which tile — which is what keeps reductions deterministic under
/// stealing: every tile owns a fixed partial slot and the caller combines
/// slots in ascending tile order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Tiling {
    /// `Static`: `parts` contiguous blocks from [`static_block`], sizes
    /// differing by at most one. Whole blocks move when stolen, preserving
    /// the blocked schedule's combine association exactly.
    Blocks { n: usize, parts: usize },
    /// `Dynamic`: fixed-size tiles of `grain` iterations (last one ragged).
    Grain { n: usize, grain: usize },
}

impl Tiling {
    /// Lower a schedule for a `parallel_for` launch.
    pub(crate) fn new(schedule: Schedule, n: usize, participants: usize) -> Tiling {
        match schedule {
            Schedule::Static => Tiling::Blocks {
                n,
                parts: participants.min(n).max(1),
            },
            dynamic => Tiling::Grain {
                n,
                grain: dynamic.grain(n, participants).max(1),
            },
        }
    }

    /// Lower a schedule for a reduction: like [`Tiling::new`], but the tile
    /// count is clamped to `max_tiles` (each tile owns a 128-byte partial
    /// slot in the caller's scratch, so an unbounded tile count would make a
    /// `chunk: 1` reduction allocate `n` slots).
    pub(crate) fn with_max_tiles(
        schedule: Schedule,
        n: usize,
        participants: usize,
        max_tiles: usize,
    ) -> Tiling {
        match Tiling::new(schedule, n, participants) {
            Tiling::Grain { n, grain } => Tiling::Grain {
                n,
                grain: grain.max(n.div_ceil(max_tiles.max(1))),
            },
            blocks => blocks,
        }
    }

    /// Number of tiles in the launch.
    pub(crate) fn tiles(self) -> usize {
        match self {
            Tiling::Blocks { n, parts } => {
                if n == 0 {
                    0
                } else {
                    parts
                }
            }
            Tiling::Grain { n, grain } => n.div_ceil(grain.max(1)).min(n),
        }
    }

    /// The `[start, end)` element range of tile `t`.
    pub(crate) fn tile_range(self, t: usize) -> (usize, usize) {
        match self {
            Tiling::Blocks { n, parts } => static_block(n, parts, t),
            Tiling::Grain { n, grain } => {
                let start = t * grain;
                (start, (start + grain).min(n))
            }
        }
    }

    /// The contiguous element span covered by tiles `[t0, t1)`. Used by the
    /// trace path (and tests) to label executed ranges in element units.
    #[cfg_attr(not(feature = "trace"), allow(dead_code))]
    pub(crate) fn elem_span(self, t0: usize, t1: usize) -> (usize, usize) {
        debug_assert!(t0 < t1);
        (self.tile_range(t0).0, self.tile_range(t1 - 1).1)
    }
}

/// The `[start, end)` range participant `who` of `participants` handles under
/// the static schedule. Remainder iterations go to the lowest-ranked
/// participants, so block sizes differ by at most one.
pub fn static_block(n: usize, participants: usize, who: usize) -> (usize, usize) {
    debug_assert!(who < participants.max(1));
    let p = participants.max(1);
    let base = n / p;
    let rem = n % p;
    let start = who * base + who.min(rem);
    let len = base + usize::from(who < rem);
    (start, start + len)
}

fn split_block(n: usize, participants: usize, who: usize) -> (usize, usize) {
    let (s, e) = static_block(n, participants.max(1), who);
    (s, e - s)
}

/// Number of chunks of size `chunk` covering `n` iterations.
pub fn chunk_count(n: usize, chunk: usize) -> usize {
    n.div_ceil(chunk.max(1))
}

/// Iterate the `[start, end)` ranges of all chunks of size `chunk` over `n`.
pub fn chunks(n: usize, chunk: usize) -> impl Iterator<Item = (usize, usize)> {
    let chunk = chunk.max(1);
    (0..chunk_count(n, chunk)).map(move |c| {
        let start = c * chunk;
        (start, (start + chunk).min(n))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_blocks_partition_exactly() {
        for n in [0usize, 1, 7, 64, 101] {
            for p in [1usize, 2, 3, 8, 13] {
                let mut covered = 0;
                let mut prev_end = 0;
                for who in 0..p {
                    let (s, e) = static_block(n, p, who);
                    assert_eq!(s, prev_end, "blocks must be contiguous");
                    assert!(e >= s);
                    covered += e - s;
                    prev_end = e;
                }
                assert_eq!(covered, n, "n={n} p={p}");
                assert_eq!(prev_end, n);
            }
        }
    }

    #[test]
    fn static_blocks_balanced_within_one() {
        let p = 7;
        let n = 100;
        let sizes: Vec<usize> = (0..p)
            .map(|w| {
                let (s, e) = static_block(n, p, w);
                e - s
            })
            .collect();
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        assert!(max - min <= 1, "sizes {sizes:?}");
    }

    #[test]
    fn chunks_cover_range() {
        for n in [0usize, 1, 9, 10, 11] {
            for c in [1usize, 3, 10, 100] {
                let mut next = 0;
                for (s, e) in chunks(n, c) {
                    assert_eq!(s, next);
                    assert!(e - s <= c);
                    next = e;
                }
                assert_eq!(next, n);
                assert_eq!(chunks(n, c).count(), chunk_count(n, c));
            }
        }
    }

    #[test]
    fn zero_chunk_treated_as_one() {
        assert_eq!(chunk_count(5, 0), 5);
        assert_eq!(chunks(3, 0).count(), 3);
    }

    #[test]
    fn dynamic_chunk_heuristic() {
        assert_eq!(Schedule::Dynamic { chunk: 0 }.dynamic_chunk(1600, 4), 50);
        assert_eq!(Schedule::Dynamic { chunk: 0 }.dynamic_chunk(3, 4), 1);
        // Huge iteration spaces are capped so skewed workloads keep their
        // load balance (at most 4096 iterations ride on one tile).
        assert_eq!(
            Schedule::Dynamic { chunk: 0 }.dynamic_chunk(1_000_000, 4),
            4096
        );
        assert_eq!(Schedule::Dynamic { chunk: 7 }.dynamic_chunk(1600, 4), 7);
        // Static resolves to the per-participant block size.
        assert_eq!(Schedule::Static.dynamic_chunk(100, 4), 25);
    }

    #[test]
    fn empty_range_resolves_to_zero_for_every_variant() {
        // Unified with `chunks(0, c)` yielding nothing; Static used to
        // return `max(1)` here.
        for sched in [
            Schedule::Static,
            Schedule::Dynamic { chunk: 0 },
            Schedule::Dynamic { chunk: 7 },
        ] {
            assert_eq!(sched.dynamic_chunk(0, 4), 0, "{sched:?}");
            assert_eq!(sched.grain(0, 4), 0, "{sched:?}");
        }
    }

    #[test]
    fn grain_parse_accepts_positive_integers_only() {
        assert_eq!(parse_grain(Some("64")), Some(64));
        assert_eq!(parse_grain(Some(" 8 ")), Some(8));
        assert_eq!(parse_grain(Some("0")), None);
        assert_eq!(parse_grain(Some("")), None);
        assert_eq!(parse_grain(Some("lots")), None);
        assert_eq!(parse_grain(None), None);
    }

    #[test]
    fn explicit_grain_is_honored() {
        assert_eq!(Schedule::Dynamic { chunk: 13 }.grain(1000, 4), 13);
        assert_eq!(Schedule::Dynamic { chunk: 0 }.grain(1600, 4), 50);
    }

    #[test]
    fn tiling_partitions_exactly() {
        for (n, p) in [(0usize, 4usize), (1, 4), (7, 4), (100, 4), (101, 3), (3, 8)] {
            for sched in [
                Schedule::Static,
                Schedule::Dynamic { chunk: 0 },
                Schedule::Dynamic { chunk: 5 },
            ] {
                let tiling = Tiling::new(sched, n, p);
                let tiles = tiling.tiles();
                if n == 0 {
                    assert_eq!(tiles, 0, "{sched:?} n={n}");
                    continue;
                }
                let mut next = 0;
                for t in 0..tiles {
                    let (s, e) = tiling.tile_range(t);
                    assert_eq!(s, next, "{sched:?} n={n} t={t}");
                    assert!(e > s, "{sched:?} n={n} t={t}");
                    next = e;
                }
                assert_eq!(next, n, "{sched:?} n={n}");
                assert_eq!(tiling.elem_span(0, tiles), (0, n));
            }
        }
    }

    #[test]
    fn reduce_tiling_clamps_tile_count() {
        let t = Tiling::with_max_tiles(Schedule::Dynamic { chunk: 1 }, 100_000, 4, 1024);
        assert!(t.tiles() <= 1024, "tiles={}", t.tiles());
        // Static blocks are already bounded by the participant count.
        let t = Tiling::with_max_tiles(Schedule::Static, 100_000, 4, 1024);
        assert_eq!(t.tiles(), 4);
    }
}
