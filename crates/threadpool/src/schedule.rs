//! Loop-scheduling policies and chunk arithmetic.

/// How a 1D iteration space is divided among participants.
///
/// `Static` is the OpenMP-style blocked schedule Julia's `Threads.@threads`
/// uses by default; `Dynamic` is self-scheduling via an atomic chunk counter,
/// better for irregular iteration costs at the price of one atomic RMW per
/// chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Schedule {
    /// Each participant gets one contiguous block of roughly `n / P`
    /// iterations.
    #[default]
    Static,
    /// Participants repeatedly claim chunks of the given size from an atomic
    /// counter. A chunk size of 0 picks a heuristic (`n / (8 P)` clamped to
    /// `[1, 4096]`).
    Dynamic {
        /// Iterations per claimed chunk; 0 selects the heuristic.
        chunk: usize,
    },
}

impl Schedule {
    /// Resolve the chunk size a dynamic schedule will use for `n` iterations
    /// across `participants` threads.
    ///
    /// The auto heuristic (`chunk: 0`) is `n / (8 P)` clamped to
    /// `[1, 4096]`, tuned against the `ablate_sched` bench (EXPERIMENTS.md):
    /// eight chunks per participant amortize the atomic grab — measured
    /// ~4x slower with single-iteration grabs on cheap work — while the cap
    /// bounds the tail imbalance a skewed workload can hit when `n` is huge.
    pub fn dynamic_chunk(self, n: usize, participants: usize) -> usize {
        match self {
            Schedule::Static => split_block(n, participants, 0).1.max(1),
            Schedule::Dynamic { chunk: 0 } => (n / (8 * participants.max(1))).clamp(1, 4096),
            Schedule::Dynamic { chunk } => chunk,
        }
    }
}

/// The `[start, end)` range participant `who` of `participants` handles under
/// the static schedule. Remainder iterations go to the lowest-ranked
/// participants, so block sizes differ by at most one.
pub fn static_block(n: usize, participants: usize, who: usize) -> (usize, usize) {
    debug_assert!(who < participants.max(1));
    let p = participants.max(1);
    let base = n / p;
    let rem = n % p;
    let start = who * base + who.min(rem);
    let len = base + usize::from(who < rem);
    (start, start + len)
}

fn split_block(n: usize, participants: usize, who: usize) -> (usize, usize) {
    let (s, e) = static_block(n, participants.max(1), who);
    (s, e - s)
}

/// Number of chunks of size `chunk` covering `n` iterations.
pub fn chunk_count(n: usize, chunk: usize) -> usize {
    n.div_ceil(chunk.max(1))
}

/// Iterate the `[start, end)` ranges of all chunks of size `chunk` over `n`.
pub fn chunks(n: usize, chunk: usize) -> impl Iterator<Item = (usize, usize)> {
    let chunk = chunk.max(1);
    (0..chunk_count(n, chunk)).map(move |c| {
        let start = c * chunk;
        (start, (start + chunk).min(n))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_blocks_partition_exactly() {
        for n in [0usize, 1, 7, 64, 101] {
            for p in [1usize, 2, 3, 8, 13] {
                let mut covered = 0;
                let mut prev_end = 0;
                for who in 0..p {
                    let (s, e) = static_block(n, p, who);
                    assert_eq!(s, prev_end, "blocks must be contiguous");
                    assert!(e >= s);
                    covered += e - s;
                    prev_end = e;
                }
                assert_eq!(covered, n, "n={n} p={p}");
                assert_eq!(prev_end, n);
            }
        }
    }

    #[test]
    fn static_blocks_balanced_within_one() {
        let p = 7;
        let n = 100;
        let sizes: Vec<usize> = (0..p)
            .map(|w| {
                let (s, e) = static_block(n, p, w);
                e - s
            })
            .collect();
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        assert!(max - min <= 1, "sizes {sizes:?}");
    }

    #[test]
    fn chunks_cover_range() {
        for n in [0usize, 1, 9, 10, 11] {
            for c in [1usize, 3, 10, 100] {
                let mut next = 0;
                for (s, e) in chunks(n, c) {
                    assert_eq!(s, next);
                    assert!(e - s <= c);
                    next = e;
                }
                assert_eq!(next, n);
                assert_eq!(chunks(n, c).count(), chunk_count(n, c));
            }
        }
    }

    #[test]
    fn zero_chunk_treated_as_one() {
        assert_eq!(chunk_count(5, 0), 5);
        assert_eq!(chunks(3, 0).count(), 3);
    }

    #[test]
    fn dynamic_chunk_heuristic() {
        assert_eq!(Schedule::Dynamic { chunk: 0 }.dynamic_chunk(1600, 4), 50);
        assert_eq!(Schedule::Dynamic { chunk: 0 }.dynamic_chunk(3, 4), 1);
        // Huge iteration spaces are capped so skewed workloads keep their
        // load balance (at most 4096 iterations ride on one grab).
        assert_eq!(
            Schedule::Dynamic { chunk: 0 }.dynamic_chunk(1_000_000, 4),
            4096
        );
        assert_eq!(Schedule::Dynamic { chunk: 7 }.dynamic_chunk(1600, 4), 7);
        // Static resolves to the per-participant block size.
        assert_eq!(Schedule::Static.dynamic_chunk(100, 4), 25);
    }
}
