//! # racc-threadpool
//!
//! A from-scratch persistent worker pool providing the execution substrate
//! RACC's CPU backend runs on — the analog of Julia's `Base.Threads`
//! (pthreads on top of LLVM) in the JACC paper.
//!
//! Design points, mirroring what the paper describes for `Base.Threads`:
//!
//! * **Coarse-grain decomposition**: an index space is split into chunks, one
//!   or more per participant, instead of the one-thread-per-element mapping
//!   GPUs use.
//! * **Column-wise 2D decomposition**: multidimensional arrays are
//!   column-major (Julia layout), so the 2D `parallel_for` parallelizes the
//!   *column* loop and keeps the row loop sequential inside each task — each
//!   participant streams over contiguous memory.
//! * **Synchronous semantics**: every call returns only after all
//!   participants are done (`Threads.@sync Threads.@threads`).
//!
//! The pool spawns `P - 1` workers and lets the calling thread participate as
//! the `P`-th, so a `P`-thread pool really uses `P` cores with no idle
//! caller. Closures may borrow stack data: calls block until all workers have
//! finished running the closure, which makes the internal lifetime erasure
//! sound.
//!
//! Dispatch is **work-stealing**: launches are lowered to tiles, executors
//! split task ranges in half onto per-participant Chase–Lev deques (LIFO for
//! the owner, FIFO for thieves) with a bounded global injector as overflow,
//! and idle workers are woken lazily one at a time (see `pool.rs` module
//! docs). The tile grain of `Schedule::Dynamic { chunk: 0 }` launches can be
//! overridden with the `RACC_GRAIN` environment variable (a positive
//! iteration count per tile); reductions stay bit-reproducible under
//! stealing because every tile folds into its own slot and slots combine in
//! tile order. Steal telemetry is available via
//! [`ThreadPool::steal_stats`].
//!
//! ```
//! use racc_threadpool::{Schedule, ThreadPool};
//!
//! let pool = ThreadPool::new(4);
//! let mut data = vec![0u64; 1000];
//! pool.parallel_for_slices(&mut data, |offset, chunk| {
//!     for (i, x) in chunk.iter_mut().enumerate() {
//!         *x = (offset + i) as u64;
//!     }
//! });
//! let total = pool.parallel_reduce(1000, Schedule::default(), 0u64, |i| i as u64, |a, b| a + b);
//! assert_eq!(total, 1000 * 999 / 2);
//! ```

mod latch;
mod pool;
mod reduce;
mod schedule;
pub mod scratch;
mod steal;

pub use latch::CountLatch;
pub use pool::{PoolError, ThreadPool};
pub use reduce::ordered_tiled_fold;
pub use schedule::{chunk_count, chunks, parse_grain, Schedule};
pub use scratch::RawScratch;
pub use steal::{StealCounters, StealStats};
