//! Reusable raw scratch buffers for hot-path code.
//!
//! `parallel_reduce` and the GPU simulator's launch executor both need
//! short-lived per-call arrays (reduction partials, per-thread kernel
//! state). Allocating them fresh puts a malloc/free pair on every launch;
//! [`RawScratch`] is a type-erased, 128-byte-aligned buffer that grows
//! geometrically, never shrinks, and is reused across calls — kept in
//! thread-local storage by [`with_thread_scratch`] — so steady-state hot
//! paths perform zero heap allocations.
//!
//! Typed use goes through [`with_slots`], which placement-initializes `n`
//! values of `T` in the buffer, hands them to a closure as `&mut [T]`, and
//! drops them on exit (including on panic). The backing bytes are retained.

use std::alloc::{alloc, dealloc, handle_alloc_error, Layout};
use std::cell::Cell;
use std::ptr::NonNull;

/// Alignment of every [`RawScratch`] allocation: two cache lines (matching
/// `CachePadded`), so cache-line-padded slots placed at the buffer start
/// stay padded.
pub const SCRATCH_ALIGN: usize = 128;

/// A reusable, type-erased scratch allocation. Grows geometrically via
/// [`RawScratch::reserve`]; never shrinks; freed on drop.
pub struct RawScratch {
    ptr: *mut u8,
    cap: usize,
}

// SAFETY: the buffer is uniquely owned; moving the struct moves ownership.
unsafe impl Send for RawScratch {}

impl RawScratch {
    /// An empty scratch (no allocation until first `reserve`).
    pub const fn new() -> Self {
        RawScratch {
            ptr: std::ptr::null_mut(),
            cap: 0,
        }
    }

    /// Pointer to the buffer start (null while `capacity() == 0`).
    pub fn as_mut_ptr(&mut self) -> *mut u8 {
        self.ptr
    }

    /// Usable bytes currently allocated.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Ensure at least `bytes` of capacity. Existing contents are NOT
    /// preserved — scratch holds no live data between uses.
    pub fn reserve(&mut self, bytes: usize) {
        if bytes <= self.cap {
            return;
        }
        let new_cap = bytes.next_power_of_two().max(256);
        let layout = Layout::from_size_align(new_cap, SCRATCH_ALIGN).expect("scratch layout");
        // SAFETY: layout has non-zero size (at least 256 bytes).
        let new_ptr = unsafe { alloc(layout) };
        if new_ptr.is_null() {
            handle_alloc_error(layout);
        }
        self.release();
        self.ptr = new_ptr;
        self.cap = new_cap;
    }

    fn release(&mut self) {
        if !self.ptr.is_null() {
            // SAFETY: `ptr` was allocated with exactly this layout.
            unsafe {
                dealloc(
                    self.ptr,
                    Layout::from_size_align(self.cap, SCRATCH_ALIGN).expect("scratch layout"),
                )
            };
            self.ptr = std::ptr::null_mut();
            self.cap = 0;
        }
    }
}

impl Default for RawScratch {
    fn default() -> Self {
        RawScratch::new()
    }
}

impl Drop for RawScratch {
    fn drop(&mut self) {
        self.release();
    }
}

/// Run `f` over `n` freshly `init`-ialized slots of `T` placed in `scratch`.
/// The slots are dropped when `f` returns (or panics); the backing memory is
/// retained by `scratch` for the next call.
///
/// Types whose alignment exceeds [`SCRATCH_ALIGN`] fall back to a plain
/// `Vec` (correct, just not allocation-free).
pub fn with_slots<T, R>(
    scratch: &mut RawScratch,
    n: usize,
    mut init: impl FnMut() -> T,
    f: impl FnOnce(&mut [T]) -> R,
) -> R {
    if std::mem::align_of::<T>() > SCRATCH_ALIGN {
        let mut v: Vec<T> = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(init());
        }
        return f(&mut v);
    }

    let size = std::mem::size_of::<T>();
    let ptr: *mut T = if size == 0 || n == 0 {
        // ZSTs and empty slices need no storage; any aligned pointer works.
        NonNull::<T>::dangling().as_ptr()
    } else {
        scratch.reserve(size * n);
        scratch.as_mut_ptr().cast::<T>()
    };

    /// Drops the `len` initialized slots; runs on normal exit and on panic
    /// (from `init` or `f`), so `T: Drop` types never leak.
    struct Guard<T> {
        ptr: *mut T,
        len: usize,
    }
    impl<T> Drop for Guard<T> {
        fn drop(&mut self) {
            for i in 0..self.len {
                // SAFETY: slots `0..len` were initialized and not yet dropped.
                unsafe { std::ptr::drop_in_place(self.ptr.add(i)) };
            }
        }
    }

    let mut guard = Guard { ptr, len: 0 };
    for i in 0..n {
        // SAFETY: `i < n` is within the reserved capacity (or a ZST write).
        unsafe { guard.ptr.add(i).write(init()) };
        guard.len = i + 1;
    }
    // SAFETY: exactly `n` initialized, properly aligned slots; `guard` holds
    // the only other pointer and does not touch them until after `f`.
    f(unsafe { std::slice::from_raw_parts_mut(ptr, n) })
}

thread_local! {
    static TLS_SCRATCH: Cell<Option<RawScratch>> = const { Cell::new(None) };
}

/// Borrow this thread's cached [`RawScratch`] for the duration of `f`.
///
/// Uses a take/restore protocol: a reentrant call (while an outer `f` is
/// still running) finds the cell empty and gets a fresh temporary buffer —
/// correct, just not reusing the cached allocation — and a panic inside `f`
/// simply discards the taken buffer (freed by unwinding, re-created on the
/// next call).
pub fn with_thread_scratch<R>(f: impl FnOnce(&mut RawScratch) -> R) -> R {
    let mut scratch = TLS_SCRATCH.with(|c| c.take()).unwrap_or_default();
    let result = f(&mut scratch);
    TLS_SCRATCH.with(|c| c.set(Some(scratch)));
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn reserve_grows_geometrically_and_reuses() {
        let mut s = RawScratch::new();
        assert_eq!(s.capacity(), 0);
        s.reserve(10);
        let cap1 = s.capacity();
        assert!(cap1 >= 256);
        let p1 = s.as_mut_ptr();
        s.reserve(10); // no-op
        assert_eq!(s.capacity(), cap1);
        assert_eq!(s.as_mut_ptr(), p1);
        s.reserve(cap1 + 1);
        assert!(s.capacity() > cap1);
        assert_eq!(s.as_mut_ptr() as usize % SCRATCH_ALIGN, 0);
    }

    #[test]
    fn slots_initialized_and_dropped() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Probe(u64);
        impl Drop for Probe {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        let mut s = RawScratch::new();
        let sum = with_slots(
            &mut s,
            5,
            || Probe(7),
            |slots| {
                assert_eq!(slots.len(), 5);
                slots[3].0 = 100;
                slots.iter().map(|p| p.0).sum::<u64>()
            },
        );
        assert_eq!(sum, 7 * 4 + 100);
        assert_eq!(DROPS.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn slots_dropped_on_panic() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Probe;
        impl Drop for Probe {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        let mut s = RawScratch::new();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_slots(&mut s, 3, || Probe, |_| panic!("boom"))
        }));
        assert!(caught.is_err());
        assert_eq!(DROPS.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn zst_and_empty_slots_work() {
        let mut s = RawScratch::new();
        let n = with_slots(&mut s, 4, || (), |slots| slots.len());
        assert_eq!(n, 4);
        assert_eq!(s.capacity(), 0, "ZST slots must not allocate");
        let n = with_slots(&mut s, 0, || 1u8, |slots| slots.len());
        assert_eq!(n, 0);
    }

    #[test]
    fn overaligned_types_fall_back_to_vec() {
        #[repr(align(256))]
        struct Big(u8);
        let mut s = RawScratch::new();
        let v = with_slots(&mut s, 2, || Big(9), |slots| slots[1].0);
        assert_eq!(v, 9);
    }

    #[test]
    fn thread_scratch_is_reused_across_calls() {
        let p1 = with_thread_scratch(|s| {
            s.reserve(1024);
            s.as_mut_ptr() as usize
        });
        let p2 = with_thread_scratch(|s| {
            assert!(s.capacity() >= 1024, "capacity must persist across calls");
            s.as_mut_ptr() as usize
        });
        assert_eq!(p1, p2, "same cached buffer expected");
    }

    #[test]
    fn reentrant_thread_scratch_gets_fresh_buffer() {
        with_thread_scratch(|outer| {
            outer.reserve(64);
            let outer_ptr = outer.as_mut_ptr() as usize;
            with_thread_scratch(|inner| {
                inner.reserve(64);
                assert_ne!(outer_ptr, inner.as_mut_ptr() as usize);
            });
        });
    }
}
