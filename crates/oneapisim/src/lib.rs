//! # racc-oneapisim
//!
//! A oneAPI.jl/SYCL-flavored vendor API over the [`racc_gpusim`] simulator —
//! the stand-in for the `oneAPI.jl` package the paper's Intel back end and
//! its device-specific benchmark codes are written against.
//!
//! Flavor notes, mirroring the real stack and the paper's Fig. 7:
//!
//! * launches use **items/groups** vocabulary
//!   (`@oneapi items=items groups=groups kernel(...)`);
//! * kernel indexing goes through [`NdItem::get_global_id`], and for
//!   multidimensional ranges SYCL numbers dimensions **slowest-first**: the
//!   paper's 2D back end reads `j = get_global_id(0); i = get_global_id(1)` —
//!   i.e. dimension 0 is *not* the fast x axis. [`NdItem`] reproduces that
//!   inversion;
//! * the work-group size limit is queried as `maxTotalGroupSize` (Level
//!   Zero's `compute_properties`), see [`OneApi::max_total_group_size`];
//! * block-shared memory is **SLM** (Shared Local Memory);
//! * the default device profile is the **Intel Data Center Max 1550**.

use std::sync::Arc;

use racc_gpusim::{
    profiles, Device, DeviceBuffer, DeviceSlice, DeviceSliceMut, Element, Event, KernelCost,
    LaunchConfig, PhasedKernel, SimError, ThreadCtx,
};

/// Error type of the oneAPI-flavored API.
#[derive(Debug, Clone, PartialEq)]
pub struct OneApiError(pub SimError);

impl std::fmt::Display for OneApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "oneAPI error: {}", self.0)
    }
}

impl std::error::Error for OneApiError {}

impl From<SimError> for OneApiError {
    fn from(e: SimError) -> Self {
        OneApiError(e)
    }
}

impl From<OneApiError> for racc_core::RaccError {
    fn from(e: OneApiError) -> Self {
        e.0.into()
    }
}

/// A device array, the analog of `oneArray{T}`.
pub type OneArray<T> = DeviceBuffer<T>;

/// An event on the device timeline.
pub type OneApiEvent = Event;

/// The SYCL `nd_item` analog handed to kernel bodies: wraps the simulator's
/// thread context and exposes **dimension-inverted** global ids.
#[derive(Debug, Clone, Copy)]
pub struct NdItem<'a> {
    ctx: &'a ThreadCtx,
    /// Number of launch dimensions (1, 2 or 3), fixed at launch.
    rank: u32,
}

impl<'a> NdItem<'a> {
    /// Wrap a simulator thread context for a launch of the given rank.
    pub fn new(ctx: &'a ThreadCtx, rank: u32) -> Self {
        debug_assert!((1..=3).contains(&rank));
        NdItem { ctx, rank }
    }

    /// SYCL-style global id: for rank 2, `get_global_id(0)` is the *slow*
    /// (y) axis and `get_global_id(1)` the fast (x) axis — the inversion the
    /// paper's oneAPI back end handles explicitly.
    #[inline]
    pub fn get_global_id(&self, dim: u32) -> usize {
        assert!(
            dim < self.rank,
            "dimension {dim} out of range for rank {}",
            self.rank
        );
        // Map SYCL dimension (slowest first) onto the simulator's x-fastest
        // coordinates.
        match self.rank - 1 - dim {
            0 => self.ctx.global_id_x(),
            1 => self.ctx.global_id_y(),
            _ => self.ctx.global_id_z(),
        }
    }

    /// Local (within-group) linear id.
    #[inline]
    pub fn get_local_linear_id(&self) -> usize {
        self.ctx.thread_linear()
    }

    /// Group linear id.
    #[inline]
    pub fn get_group_linear_id(&self) -> usize {
        self.ctx.block_linear()
    }

    /// The raw simulator context.
    pub fn ctx(&self) -> &ThreadCtx {
        self.ctx
    }

    /// Simulator-level fast-axis global id (equals `get_global_id(rank-1)`
    /// in SYCL numbering). Convenience for code written generically over
    /// the vendor shims.
    #[inline]
    pub fn global_id_x(&self) -> usize {
        self.ctx.global_id_x()
    }
}

/// The oneAPI-flavored context owning one simulated Intel device.
pub struct OneApi {
    device: Arc<Device>,
}

impl Default for OneApi {
    fn default() -> Self {
        Self::new()
    }
}

impl OneApi {
    /// A context on a simulated Intel Max 1550.
    pub fn new() -> Self {
        OneApi {
            device: Arc::new(Device::new(profiles::intel_max1550())),
        }
    }

    /// A context on a custom device specification.
    pub fn with_spec(spec: racc_gpusim::DeviceSpec) -> Self {
        OneApi {
            device: Arc::new(Device::new(spec)),
        }
    }

    /// Fallible [`OneApi::with_spec`]: a bad specification comes back as an
    /// error (ZE_RESULT_ERROR_UNSUPPORTED analog) instead of a panic.
    pub fn try_with_spec(spec: racc_gpusim::DeviceSpec) -> Result<Self, OneApiError> {
        Ok(OneApi {
            device: Arc::new(Device::try_new(spec)?),
        })
    }

    /// Access the underlying simulator device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Share the device handle.
    pub fn device_arc(&self) -> Arc<Device> {
        Arc::clone(&self.device)
    }

    /// Enable or disable the device sanitizer (the simulator's analogue of
    /// `onetrace`/`gpuinspect` correctness checking).
    pub fn set_sanitizer(&self, enabled: bool) {
        self.device.set_sanitizer(enabled);
    }

    /// Sanitizer findings for this context; `None` while disabled.
    pub fn sanitizer_report(&self) -> Option<racc_gpusim::SanitizerReport> {
        self.device.sanitizer_report()
    }

    /// Arm deterministic fault injection (`racc-chaos`) on the device.
    pub fn set_chaos(&self, plan: racc_gpusim::FaultPlan) {
        self.device.set_chaos(plan);
    }

    /// Every fault injected on the device so far, in injection order.
    pub fn fault_log(&self) -> Vec<racc_gpusim::FaultEvent> {
        self.device.fault_log()
    }

    /// Level Zero's `compute_properties(device()).maxTotalGroupSize`.
    pub fn max_total_group_size(&self) -> usize {
        self.device.spec().max_threads_per_block as usize
    }

    /// Sub-group (SIMD lane) width.
    pub fn sub_group_size(&self) -> usize {
        self.device.spec().simt_width as usize
    }

    /// SLM bytes available per work-group.
    pub fn slm_per_group(&self) -> usize {
        self.device.spec().shared_mem_per_block
    }

    /// `oneArray(host)`: allocate + upload.
    pub fn one_array<T: Element>(&self, host: &[T]) -> Result<OneArray<T>, OneApiError> {
        Ok(self.device.alloc_from(host)?)
    }

    /// `oneAPI.zeros(T, n)`.
    pub fn zeros<T: Element>(&self, n: usize) -> Result<OneArray<T>, OneApiError> {
        Ok(self.device.alloc::<T>(n)?)
    }

    /// Download to host.
    pub fn to_host<T: Element>(&self, arr: &OneArray<T>) -> Result<Vec<T>, OneApiError> {
        Ok(self.device.read_vec(arr)?)
    }

    /// Read one element.
    pub fn read_scalar<T: Element>(&self, arr: &OneArray<T>, i: usize) -> Result<T, OneApiError> {
        Ok(self.device.read_scalar(arr, i)?)
    }

    /// Device-to-device copy.
    pub fn copy<T: Element>(
        &self,
        src: &OneArray<T>,
        dst: &OneArray<T>,
    ) -> Result<(), OneApiError> {
        Ok(self.device.copy(src, dst)?)
    }

    /// Read-only kernel view.
    pub fn view<T: Element>(&self, arr: &OneArray<T>) -> Result<DeviceSlice<T>, OneApiError> {
        Ok(self.device.slice(arr)?)
    }

    /// Writable kernel view.
    pub fn view_mut<T: Element>(
        &self,
        arr: &OneArray<T>,
    ) -> Result<DeviceSliceMut<T>, OneApiError> {
        Ok(self.device.slice_mut(arr)?)
    }

    /// `@oneapi items=items groups=groups kernel(...)`: 1D launch of
    /// `groups` work-groups of `items` work-items; the body receives a SYCL
    /// flavored [`NdItem`].
    ///
    /// Plain 1D launches (no SLM) dispatch through the simulator's
    /// non-cooperative fast path (no per-group arena or phase machinery —
    /// see `DESIGN.md` §6); the `launch_overhead` bench gates its cost.
    pub fn launch<F>(
        &self,
        items: u32,
        groups: u32,
        slm_bytes: usize,
        cost: KernelCost,
        body: F,
    ) -> Result<u64, OneApiError>
    where
        F: Fn(&NdItem<'_>) + Sync,
    {
        let cfg = LaunchConfig::new(groups, items).with_shared_mem(slm_bytes);
        Ok(self
            .device
            .launch(cfg, cost, |t| body(&NdItem::new(t, 1)))?)
    }

    /// 2D launch with `(ix, iy)` item tiles and `(gx, gy)` groups. Kernel
    /// bodies see the SYCL dimension inversion via [`NdItem`].
    pub fn launch_2d<F>(
        &self,
        items: (u32, u32),
        groups: (u32, u32),
        slm_bytes: usize,
        cost: KernelCost,
        body: F,
    ) -> Result<u64, OneApiError>
    where
        F: Fn(&NdItem<'_>) + Sync,
    {
        let cfg = LaunchConfig::new(groups, items).with_shared_mem(slm_bytes);
        Ok(self
            .device
            .launch(cfg, cost, |t| body(&NdItem::new(t, 2)))?)
    }

    /// 3D launch.
    pub fn launch_3d<F>(
        &self,
        items: (u32, u32, u32),
        groups: (u32, u32, u32),
        slm_bytes: usize,
        cost: KernelCost,
        body: F,
    ) -> Result<u64, OneApiError>
    where
        F: Fn(&NdItem<'_>) + Sync,
    {
        let cfg = LaunchConfig::new(groups, items).with_shared_mem(slm_bytes);
        Ok(self
            .device
            .launch(cfg, cost, |t| body(&NdItem::new(t, 3)))?)
    }

    /// Launch a cooperative kernel using SLM and group barriers.
    pub fn launch_cooperative<K>(
        &self,
        items: u32,
        groups: u32,
        slm_bytes: usize,
        cost: KernelCost,
        kernel: &K,
    ) -> Result<u64, OneApiError>
    where
        K: PhasedKernel,
    {
        let cfg = LaunchConfig::new(groups, items).with_shared_mem(slm_bytes);
        Ok(self.device.launch_phased(cfg, cost, kernel)?)
    }

    /// Fill a buffer with a constant (a `fill!`-style memset kernel).
    pub fn fill<T: Element>(&self, arr: &OneArray<T>, value: T) -> Result<(), OneApiError> {
        let n = arr.len();
        if n == 0 {
            return Ok(());
        }
        let v = self.view_mut(arr)?;
        let items = n.clamp(1, self.max_total_group_size()) as u32;
        let groups = n.div_ceil(items as usize) as u32;
        self.launch(
            items,
            groups,
            0,
            KernelCost::memory_bound(0.0, std::mem::size_of::<T>() as f64),
            move |item| {
                let i = item.get_global_id(0);
                if i < n {
                    v.set(i, value);
                }
            },
        )?;
        Ok(())
    }

    /// Create a new (non-default) queue.
    pub fn create_stream(&self) -> racc_gpusim::Stream {
        self.device.create_stream()
    }

    /// Launch asynchronously on a queue; overlapping on the modeled clock.
    pub fn launch_async<F>(
        &self,
        stream: &racc_gpusim::Stream,
        items: u32,
        groups: u32,
        slm_bytes: usize,
        cost: KernelCost,
        body: F,
    ) -> Result<u64, OneApiError>
    where
        F: Fn(&NdItem<'_>) + Sync,
    {
        let cfg = LaunchConfig::new(groups, items).with_shared_mem(slm_bytes);
        Ok(self
            .device
            .launch_async(stream, cfg, cost, |t| body(&NdItem::new(t, 1)))?)
    }

    /// Wait for one queue's modeled completion.
    pub fn sync_stream(&self, stream: &racc_gpusim::Stream) {
        self.device.sync_stream(stream)
    }

    /// Record an event on the device timeline.
    pub fn record_event(&self) -> OneApiEvent {
        self.device.record_event()
    }

    /// `oneAPI.synchronize()`.
    pub fn synchronize(&self) {
        self.device.synchronize()
    }

    /// Current device clock in nanoseconds.
    pub fn clock_ns(&self) -> u64 {
        self.device.clock_ns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_queries_match_max1550() {
        let one = OneApi::new();
        assert_eq!(one.max_total_group_size(), 1024);
        assert_eq!(one.sub_group_size(), 32);
        assert_eq!(one.slm_per_group(), 128 * 1024);
    }

    #[test]
    fn one_d_global_id_matches_x() {
        let one = OneApi::new();
        let n = 500usize;
        let buf = one.zeros::<u32>(n).unwrap();
        let v = one.view_mut(&buf).unwrap();
        one.launch(128, 4, 0, KernelCost::default(), |item| {
            let i = item.get_global_id(0);
            if i < n {
                v.set(i, i as u32);
            }
        })
        .unwrap();
        let host = one.to_host(&buf).unwrap();
        for (i, x) in host.iter().enumerate() {
            assert_eq!(*x, i as u32);
        }
    }

    #[test]
    fn two_d_indices_are_inverted_like_the_paper() {
        // The paper's Fig. 7: j = get_global_id(0), i = get_global_id(1).
        let one = OneApi::new();
        let (m, n) = (32usize, 16usize); // m = fast (x/i), n = slow (y/j)
        let buf = one.zeros::<u32>(m * n).unwrap();
        let v = one.view_mut(&buf).unwrap();
        one.launch_2d((16, 16), (2, 1), 0, KernelCost::default(), |item| {
            let j = item.get_global_id(0); // slow axis
            let i = item.get_global_id(1); // fast axis
            if i < m && j < n {
                v.set(j * m + i, (j * m + i) as u32);
            }
        })
        .unwrap();
        let host = one.to_host(&buf).unwrap();
        for (idx, x) in host.iter().enumerate() {
            assert_eq!(*x, idx as u32);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn global_id_rank_checked() {
        let one = OneApi::new();
        one.launch(16, 1, 0, KernelCost::default(), |item| {
            let _ = item.get_global_id(1); // rank-1 launch has only dim 0
        })
        .unwrap();
    }

    #[test]
    fn linear_ids_exposed() {
        let one = OneApi::new();
        let hits = std::sync::atomic::AtomicUsize::new(0);
        one.launch(32, 4, 0, KernelCost::default(), |item| {
            let _ = item.get_local_linear_id();
            let _ = item.get_group_linear_id();
            hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        })
        .unwrap();
        assert_eq!(hits.load(std::sync::atomic::Ordering::Relaxed), 128);
    }

    #[test]
    fn errors_are_wrapped() {
        let one = OneApi::new();
        let err = one.zeros::<f64>(1 << 40).unwrap_err();
        assert!(err.to_string().contains("oneAPI error"));
    }

    #[test]
    fn fill_sets_every_element() {
        let api = OneApi::new();
        let buf = api.zeros::<f64>(1000).unwrap();
        api.fill(&buf, 3.25).unwrap();
        assert!(api.to_host(&buf).unwrap().iter().all(|&v| v == 3.25));
        let empty = api.zeros::<f64>(0).unwrap();
        api.fill(&empty, 1.0).unwrap();
    }

    #[test]
    fn async_streams_overlap() {
        let api = OneApi::new();
        let s1 = api.create_stream();
        let s2 = api.create_stream();
        let cost = racc_gpusim::KernelCost::memory_bound(64.0, 64.0);
        let n1 = api.launch_async(&s1, 256, 4096, 0, cost, |_| {}).unwrap();
        let n2 = api.launch_async(&s2, 256, 4096, 0, cost, |_| {}).unwrap();
        assert_eq!(api.clock_ns(), 0);
        api.synchronize();
        assert_eq!(api.clock_ns(), n1.max(n2));
        api.sync_stream(&s2);
    }
}
