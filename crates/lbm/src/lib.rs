//! # racc-lbm
//!
//! The lattice-Boltzmann method workload of the paper's §V-B: the D2Q9
//! **2-lattice pull** algorithm used by the HARVEY blood-flow simulator,
//! with BGK collision.
//!
//! The update per site (the paper's Fig. 10 `lbm` function) is:
//!
//! 1. **streaming (pull)**: gather post-collision distributions from the
//!    upwind neighbors, `f[k](x, y) = f1[k](x - cx[k], y - cy[k])`;
//! 2. **moments**: `ρ = Σ f_k`, `ρ u = Σ f_k c_k`;
//! 3. **collision (BGK)**: relax toward the equilibrium
//!    `f_eq = w_k ρ (1 + 3 c·u + 4.5 (c·u)² − 1.5 u²)` with rate `1/τ`,
//!    writing into the second lattice `f2`.
//!
//! Storage matches the paper's indexing `f[(k−1)·S² + x·S + y]` (0-based
//! here: `k·S² + x·S + y`): the `y` coordinate is contiguous while the 2D
//! construct's fast index is `x` — so device accesses are *strided*, which
//! is why the paper's LBM GPU speedups sit far below the pure-bandwidth
//! ratio (see `EXPERIMENTS.md`). [`lbm_profile`] encodes that with a zero
//! coalescing factor.
//!
//! [`portable::LbmSim`] is the RACC implementation (one multidimensional
//! `parallel_for`, as in the paper); [`vendor`] holds the device-specific
//! comparison codes; [`physics`] provides periodic variants and analytic
//! validation (shear-wave decay against the BGK viscosity
//! `ν = (τ − 1/2)/3`).

pub mod cavity;
pub mod lattice;
pub mod physics;
pub mod poiseuille;
pub mod portable;
pub mod reference;
pub mod sharded;
pub mod vendor;

use racc_core::KernelProfile;

/// Kernel profile of one D2Q9 pull-update per site: ~150 FLOPs, 9 gathered
/// reads + 9 writes of f64 plus constant tables, strided (uncoalesced)
/// device access as analysed in the module docs.
pub const fn lbm_profile() -> KernelProfile {
    KernelProfile::new("lbm-d2q9", 150.0, 144.0, 72.0).with_coalescing(0.0)
}
