//! Serial reference implementation — test ground truth and the exact
//! transcription of the paper's Fig. 10 site update.

use crate::lattice::{equilibrium, fidx, CX, CY, Q, W};

/// One site of the paper's `lbm` kernel (Fig. 10), 0-based: pull-stream
/// the 9 upwind distributions from `f1` into the scratch lattice `f`,
/// compute moments, collide into `f2`. Interior sites only
/// (`0 < x < s−1 && 0 < y < s−1`), exactly like the paper's guard.
///
/// The paper's listing writes the equilibrium quadratic term as `cu·cu`;
/// this implementation uses the standard lattice-BGK coefficient `4.5 cu²`
/// (the physics-correct form, required for the viscosity validation).
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn lbm_site(x: usize, y: usize, f: &mut [f64], f1: &[f64], f2: &mut [f64], tau: f64, s: usize) {
    if !(x > 0 && x < s - 1 && y > 0 && y < s - 1) {
        return;
    }
    // Streaming (pull).
    for k in 0..Q {
        let x_stream = (x as isize - CX[k] as isize) as usize;
        let y_stream = (y as isize - CY[k] as isize) as usize;
        f[fidx(k, x, y, s)] = f1[fidx(k, x_stream, y_stream, s)];
    }
    // Moments.
    let mut p = 0.0;
    let mut u = 0.0;
    let mut v = 0.0;
    for k in 0..Q {
        let fk = f[fidx(k, x, y, s)];
        p += fk;
        u += fk * CX[k];
        v += fk * CY[k];
    }
    u /= p;
    v /= p;
    // Collision (BGK).
    for k in 0..Q {
        let feq = equilibrium(k, p, u, v);
        let ind = fidx(k, x, y, s);
        f2[ind] = f[ind] * (1.0 - 1.0 / tau) + feq / tau;
    }
}

/// Periodic variant of the site update (wrap-around streaming, all sites) —
/// used by the physics validation where analytic solutions need periodic
/// boundaries.
#[inline]
pub fn lbm_site_periodic(
    x: usize,
    y: usize,
    f: &mut [f64],
    f1: &[f64],
    f2: &mut [f64],
    tau: f64,
    s: usize,
) {
    for k in 0..Q {
        let x_stream = (x + s).wrapping_sub(CX[k] as isize as usize) % s;
        let y_stream = (y + s).wrapping_sub(CY[k] as isize as usize) % s;
        f[fidx(k, x, y, s)] = f1[fidx(k, x_stream, y_stream, s)];
    }
    let mut p = 0.0;
    let mut u = 0.0;
    let mut v = 0.0;
    for k in 0..Q {
        let fk = f[fidx(k, x, y, s)];
        p += fk;
        u += fk * CX[k];
        v += fk * CY[k];
    }
    u /= p;
    v /= p;
    for k in 0..Q {
        let feq = equilibrium(k, p, u, v);
        let ind = fidx(k, x, y, s);
        f2[ind] = f[ind] * (1.0 - 1.0 / tau) + feq / tau;
    }
}

/// A serial LBM state: the three lattices of the 2-lattice pull scheme
/// (`f` scratch, `f1` current, `f2` next).
#[derive(Debug, Clone)]
pub struct SerialLbm {
    /// Grid edge length.
    pub s: usize,
    /// BGK relaxation time.
    pub tau: f64,
    /// Scratch lattice.
    pub f: Vec<f64>,
    /// Current distributions.
    pub f1: Vec<f64>,
    /// Next distributions.
    pub f2: Vec<f64>,
}

impl SerialLbm {
    /// Initialize every site at the equilibrium of `(rho, ux, uy)`.
    pub fn uniform(s: usize, tau: f64, rho: f64, ux: f64, uy: f64) -> Self {
        Self::from_fields(s, tau, |_, _| (rho, ux, uy))
    }

    /// Initialize from per-site `(rho, ux, uy)` fields.
    pub fn from_fields(
        s: usize,
        tau: f64,
        fields: impl Fn(usize, usize) -> (f64, f64, f64),
    ) -> Self {
        assert!(s >= 3, "grid must be at least 3x3");
        assert!(tau > 0.5, "tau must exceed 1/2 for positive viscosity");
        let mut f1 = vec![0.0; Q * s * s];
        for x in 0..s {
            for y in 0..s {
                let (rho, ux, uy) = fields(x, y);
                for k in 0..Q {
                    f1[fidx(k, x, y, s)] = equilibrium(k, rho, ux, uy);
                }
            }
        }
        SerialLbm {
            s,
            tau,
            f: vec![0.0; Q * s * s],
            f1: f1.clone(),
            f2: f1,
        }
    }

    /// One time step with the paper's interior-only update.
    pub fn step(&mut self) {
        for x in 0..self.s {
            for y in 0..self.s {
                lbm_site(x, y, &mut self.f, &self.f1, &mut self.f2, self.tau, self.s);
            }
        }
        std::mem::swap(&mut self.f1, &mut self.f2);
    }

    /// One periodic time step (all sites, wrap-around streaming).
    pub fn step_periodic(&mut self) {
        for x in 0..self.s {
            for y in 0..self.s {
                lbm_site_periodic(x, y, &mut self.f, &self.f1, &mut self.f2, self.tau, self.s);
            }
        }
        std::mem::swap(&mut self.f1, &mut self.f2);
    }

    /// Density at a site.
    pub fn density(&self, x: usize, y: usize) -> f64 {
        (0..Q).map(|k| self.f1[fidx(k, x, y, self.s)]).sum()
    }

    /// Velocity at a site.
    pub fn velocity(&self, x: usize, y: usize) -> (f64, f64) {
        let mut p = 0.0;
        let mut u = 0.0;
        let mut v = 0.0;
        for k in 0..Q {
            let fk = self.f1[fidx(k, x, y, self.s)];
            p += fk;
            u += fk * CX[k];
            v += fk * CY[k];
        }
        (u / p, v / p)
    }

    /// Total mass over the grid.
    pub fn total_mass(&self) -> f64 {
        self.f1.iter().sum()
    }

    /// A consistency check: every distribution non-negative-ish and finite.
    pub fn is_finite(&self) -> bool {
        self.f1.iter().all(|v| v.is_finite())
    }

    /// Sanity accessor used by the weights test.
    pub fn weights_sum() -> f64 {
        W.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_equilibrium_is_a_fixed_point_periodic() {
        let mut sim = SerialLbm::uniform(16, 0.8, 1.0, 0.0, 0.0);
        let before = sim.f1.clone();
        for _ in 0..5 {
            sim.step_periodic();
        }
        for (a, b) in sim.f1.iter().zip(&before) {
            assert!((a - b).abs() < 1e-14);
        }
    }

    #[test]
    fn periodic_step_conserves_mass() {
        let mut sim = SerialLbm::from_fields(24, 0.7, |x, y| {
            (1.0 + 0.01 * ((x + y) as f64).sin(), 0.01, -0.005)
        });
        let m0 = sim.total_mass();
        for _ in 0..20 {
            sim.step_periodic();
        }
        let m1 = sim.total_mass();
        assert!((m1 - m0).abs() < 1e-9 * m0, "mass {m0} -> {m1}");
        assert!(sim.is_finite());
    }

    #[test]
    fn interior_update_leaves_boundary_untouched() {
        let mut sim = SerialLbm::uniform(8, 0.9, 1.0, 0.02, 0.0);
        let boundary_before: Vec<f64> = (0..8).map(|x| sim.f1[fidx(0, x, 0, 8)]).collect();
        sim.step();
        let boundary_after: Vec<f64> = (0..8).map(|x| sim.f1[fidx(0, x, 0, 8)]).collect();
        assert_eq!(boundary_before, boundary_after);
    }

    #[test]
    fn moving_fluid_advects_momentum() {
        // A rightward-moving blob spreads; total x-momentum in the interior
        // stays positive.
        let mut sim = SerialLbm::from_fields(32, 0.8, |x, y| {
            let cx = (x as f64 - 16.0) / 4.0;
            let cy = (y as f64 - 16.0) / 4.0;
            let bump = (-(cx * cx + cy * cy)).exp();
            (1.0, 0.05 * bump, 0.0)
        });
        for _ in 0..10 {
            sim.step_periodic();
        }
        let mut mom_x = 0.0;
        for x in 0..32 {
            for y in 0..32 {
                let (u, _) = sim.velocity(x, y);
                mom_x += u;
            }
        }
        assert!(mom_x > 0.0);
        assert!(sim.is_finite());
    }

    #[test]
    fn constructor_validation() {
        assert!(std::panic::catch_unwind(|| SerialLbm::uniform(2, 0.8, 1.0, 0.0, 0.0)).is_err());
        assert!(std::panic::catch_unwind(|| SerialLbm::uniform(8, 0.5, 1.0, 0.0, 0.0)).is_err());
    }
}
