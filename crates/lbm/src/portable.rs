//! The portable RACC LBM simulation (the paper's Fig. 10 code).

use racc_core::{Array1, Backend, Context, RaccError};

use crate::lattice::{equilibrium, fidx, CX, CY, Q};

/// Density, x-velocity and y-velocity fields, each of length `s * s`
/// (row `x`, column `y`, linearized as `x * s + y`).
pub type MacroFields = (Vec<f64>, Vec<f64>, Vec<f64>);
use crate::lbm_profile;
use crate::reference::SerialLbm;

/// A D2Q9 simulation running through the RACC constructs: one
/// multidimensional `parallel_for` per time step, the three lattices as
/// `JACC.Array`-style device arrays, any back end.
pub struct LbmSim<'c, B: Backend> {
    ctx: &'c Context<B>,
    s: usize,
    tau: f64,
    /// Scratch lattice (the paper's `f`).
    f: Array1<f64>,
    /// Current lattice (`f1`).
    f1: Array1<f64>,
    /// Next lattice (`f2`).
    f2: Array1<f64>,
}

impl<'c, B: Backend> LbmSim<'c, B> {
    /// Build a simulation with every site initialized at the equilibrium of
    /// per-site `(rho, ux, uy)` fields.
    pub fn new(
        ctx: &'c Context<B>,
        s: usize,
        tau: f64,
        fields: impl Fn(usize, usize) -> (f64, f64, f64),
    ) -> Result<Self, RaccError> {
        assert!(s >= 3, "grid must be at least 3x3");
        assert!(tau > 0.5, "tau must exceed 1/2");
        let mut init = vec![0.0f64; Q * s * s];
        for x in 0..s {
            for y in 0..s {
                let (rho, ux, uy) = fields(x, y);
                for k in 0..Q {
                    init[fidx(k, x, y, s)] = equilibrium(k, rho, ux, uy);
                }
            }
        }
        Ok(LbmSim {
            ctx,
            s,
            tau,
            f: ctx.zeros(Q * s * s)?,
            f1: ctx.array_from(&init)?,
            f2: ctx.array_from(&init)?,
        })
    }

    /// Uniform initial condition.
    pub fn uniform(
        ctx: &'c Context<B>,
        s: usize,
        tau: f64,
        rho: f64,
        ux: f64,
        uy: f64,
    ) -> Result<Self, RaccError> {
        Self::new(ctx, s, tau, |_, _| (rho, ux, uy))
    }

    /// Grid edge length.
    pub fn size(&self) -> usize {
        self.s
    }

    /// Relaxation time.
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// One time step with the paper's interior-only update — this is the
    /// measured kernel of Fig. 11: a single `parallel_for((S, S), lbm, ...)`.
    pub fn step(&mut self) {
        let (s, tau) = (self.s, self.tau);
        let f = self.f.view_mut();
        let f1 = self.f1.view();
        let f2 = self.f2.view_mut();
        self.ctx
            .parallel_for_2d((s, s), &lbm_profile(), move |x, y| {
                if x > 0 && x < s - 1 && y > 0 && y < s - 1 {
                    for k in 0..Q {
                        let xs = (x as isize - CX[k] as isize) as usize;
                        let ys = (y as isize - CY[k] as isize) as usize;
                        f.set(fidx(k, x, y, s), f1.get(fidx(k, xs, ys, s)));
                    }
                    let mut p = 0.0;
                    let mut u = 0.0;
                    let mut v = 0.0;
                    for k in 0..Q {
                        let fk = f.get(fidx(k, x, y, s));
                        p += fk;
                        u += fk * CX[k];
                        v += fk * CY[k];
                    }
                    u /= p;
                    v /= p;
                    for k in 0..Q {
                        let feq = equilibrium(k, p, u, v);
                        let ind = fidx(k, x, y, s);
                        f2.set(ind, f.get(ind) * (1.0 - 1.0 / tau) + feq / tau);
                    }
                }
            });
        std::mem::swap(&mut self.f1, &mut self.f2);
    }

    /// One periodic time step (wrap-around streaming; physics validation).
    pub fn step_periodic(&mut self) {
        let (s, tau) = (self.s, self.tau);
        let f = self.f.view_mut();
        let f1 = self.f1.view();
        let f2 = self.f2.view_mut();
        self.ctx
            .parallel_for_2d((s, s), &lbm_profile(), move |x, y| {
                for k in 0..Q {
                    let xs = (x + s).wrapping_sub(CX[k] as isize as usize) % s;
                    let ys = (y + s).wrapping_sub(CY[k] as isize as usize) % s;
                    f.set(fidx(k, x, y, s), f1.get(fidx(k, xs, ys, s)));
                }
                let mut p = 0.0;
                let mut u = 0.0;
                let mut v = 0.0;
                for k in 0..Q {
                    let fk = f.get(fidx(k, x, y, s));
                    p += fk;
                    u += fk * CX[k];
                    v += fk * CY[k];
                }
                u /= p;
                v /= p;
                for k in 0..Q {
                    let feq = equilibrium(k, p, u, v);
                    let ind = fidx(k, x, y, s);
                    f2.set(ind, f.get(ind) * (1.0 - 1.0 / tau) + feq / tau);
                }
            });
        std::mem::swap(&mut self.f1, &mut self.f2);
    }

    /// One time step launched as a *flattened 1D* `parallel_for` over
    /// `s*s` sites (x fastest) instead of the native 2D construct — the
    /// launch-shape ablation of `DESIGN.md` §7. Functionally identical to
    /// [`LbmSim::step`].
    pub fn step_flat(&mut self) {
        let (s, tau) = (self.s, self.tau);
        let f = self.f.view_mut();
        let f1 = self.f1.view();
        let f2 = self.f2.view_mut();
        self.ctx.parallel_for(s * s, &lbm_profile(), move |idx| {
            let x = idx % s;
            let y = idx / s;
            if x > 0 && x < s - 1 && y > 0 && y < s - 1 {
                for k in 0..Q {
                    let xs = (x as isize - CX[k] as isize) as usize;
                    let ys = (y as isize - CY[k] as isize) as usize;
                    f.set(fidx(k, x, y, s), f1.get(fidx(k, xs, ys, s)));
                }
                let mut p = 0.0;
                let mut u = 0.0;
                let mut v = 0.0;
                for k in 0..Q {
                    let fk = f.get(fidx(k, x, y, s));
                    p += fk;
                    u += fk * CX[k];
                    v += fk * CY[k];
                }
                u /= p;
                v /= p;
                for k in 0..Q {
                    let feq = equilibrium(k, p, u, v);
                    let ind = fidx(k, x, y, s);
                    f2.set(ind, f.get(ind) * (1.0 - 1.0 / tau) + feq / tau);
                }
            }
        });
        std::mem::swap(&mut self.f1, &mut self.f2);
    }

    /// Run `steps` interior-update time steps.
    pub fn run(&mut self, steps: usize) {
        for _ in 0..steps {
            self.step();
        }
    }

    /// Total mass, computed with a RACC reduction on the device.
    pub fn total_mass(&self) -> f64 {
        let n = Q * self.s * self.s;
        let f1 = self.f1.view();
        self.ctx.parallel_reduce(
            n,
            &racc_core::KernelProfile::new("lbm-mass", 1.0, 8.0, 0.0),
            move |i| f1.get(i),
        )
    }

    /// Download the distributions (for checks and visualization).
    pub fn distributions(&self) -> Result<Vec<f64>, RaccError> {
        self.ctx.to_host(&self.f1)
    }

    /// Density and velocity fields computed on the host.
    pub fn macroscopic(&self) -> Result<MacroFields, RaccError> {
        let f1 = self.ctx.to_host(&self.f1)?;
        let s = self.s;
        let mut rho = vec![0.0; s * s];
        let mut ux = vec![0.0; s * s];
        let mut uy = vec![0.0; s * s];
        for x in 0..s {
            for y in 0..s {
                let mut p = 0.0;
                let mut u = 0.0;
                let mut v = 0.0;
                for k in 0..Q {
                    let fk = f1[fidx(k, x, y, s)];
                    p += fk;
                    u += fk * CX[k];
                    v += fk * CY[k];
                }
                rho[x * s + y] = p;
                ux[x * s + y] = u / p;
                uy[x * s + y] = v / p;
            }
        }
        Ok((rho, ux, uy))
    }

    /// Check this simulation against the serial reference after the same
    /// number of steps (test helper): max abs difference of distributions.
    pub fn max_diff_vs(&self, reference: &SerialLbm) -> f64 {
        let mine = self.distributions().expect("download");
        mine.iter()
            .zip(&reference.f1)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racc_core::{SerialBackend, ThreadsBackend};

    #[test]
    fn matches_serial_reference_interior_scheme() {
        let ctx = Context::new(ThreadsBackend::with_threads(4));
        let s = 24;
        let tau = 0.8;
        let fields = |x: usize, y: usize| {
            (
                1.0 + 0.02 * ((x * 3 + y) as f64).sin(),
                0.01 * (y as f64 / s as f64),
                -0.005,
            )
        };
        let mut sim = LbmSim::new(&ctx, s, tau, fields).unwrap();
        let mut refsim = SerialLbm::from_fields(s, tau, fields);
        for _ in 0..10 {
            sim.step();
            refsim.step();
        }
        assert!(sim.max_diff_vs(&refsim) < 1e-13);
    }

    #[test]
    fn matches_serial_reference_periodic_scheme() {
        let ctx = Context::new(SerialBackend::new());
        let s = 16;
        let tau = 0.7;
        let fields = |x: usize, _y: usize| (1.0, 0.03 * (x as f64 / 16.0), 0.0);
        let mut sim = LbmSim::new(&ctx, s, tau, fields).unwrap();
        let mut refsim = SerialLbm::from_fields(s, tau, fields);
        for _ in 0..8 {
            sim.step_periodic();
            refsim.step_periodic();
        }
        assert!(sim.max_diff_vs(&refsim) < 1e-13);
    }

    #[test]
    fn periodic_mass_conserved_via_device_reduction() {
        let ctx = Context::new(ThreadsBackend::with_threads(2));
        let mut sim = LbmSim::new(&ctx, 20, 0.9, |x, y| {
            (1.0 + 0.05 * ((x ^ y) as f64 / 20.0), 0.0, 0.01)
        })
        .unwrap();
        let m0 = sim.total_mass();
        for _ in 0..15 {
            sim.step_periodic();
        }
        let m1 = sim.total_mass();
        assert!((m1 - m0).abs() < 1e-9 * m0);
    }

    #[test]
    fn flat_launch_matches_2d_launch() {
        let ctx2 = Context::new(ThreadsBackend::with_threads(3));
        let ctx1 = Context::new(ThreadsBackend::with_threads(3));
        let s = 20;
        let fields = |x: usize, y: usize| (1.0 + 0.01 * ((x + 2 * y) as f64).sin(), 0.01, 0.0);
        let mut a = LbmSim::new(&ctx2, s, 0.8, fields).unwrap();
        let mut b = LbmSim::new(&ctx1, s, 0.8, fields).unwrap();
        for _ in 0..8 {
            a.step();
            b.step_flat();
        }
        let (da, db) = (a.distributions().unwrap(), b.distributions().unwrap());
        for (x, y) in da.iter().zip(&db) {
            assert_eq!(x, y, "flat and 2D launches must agree exactly");
        }
    }

    #[test]
    fn run_steps_and_accessors() {
        let ctx = Context::new(SerialBackend::new());
        let mut sim = LbmSim::uniform(&ctx, 8, 1.0, 1.0, 0.0, 0.0).unwrap();
        assert_eq!(sim.size(), 8);
        assert_eq!(sim.tau(), 1.0);
        sim.run(3);
        let (rho, ux, uy) = sim.macroscopic().unwrap();
        assert!(rho.iter().all(|&r| (r - 1.0).abs() < 1e-12));
        assert!(ux.iter().all(|&u| u.abs() < 1e-12));
        assert!(uy.iter().all(|&u| u.abs() < 1e-12));
    }
}
