//! D2Q9 lattice constants and indexing.

/// Number of discrete velocities in D2Q9.
pub const Q: usize = 9;

/// Lattice weights `w_k` (rest, 4 axis-aligned, 4 diagonal).
pub const W: [f64; Q] = [
    4.0 / 9.0,
    1.0 / 9.0,
    1.0 / 9.0,
    1.0 / 9.0,
    1.0 / 9.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
];

/// x components of the discrete velocities `c_k`.
pub const CX: [f64; Q] = [0.0, 1.0, 0.0, -1.0, 0.0, 1.0, -1.0, -1.0, 1.0];

/// y components of the discrete velocities `c_k`.
pub const CY: [f64; Q] = [0.0, 0.0, 1.0, 0.0, -1.0, 1.0, 1.0, -1.0, -1.0];

/// Index of the opposite direction of `k` (for bounce-back boundaries).
pub const OPPOSITE: [usize; Q] = [0, 3, 4, 1, 2, 7, 8, 5, 6];

/// Linear index of distribution `k` at site `(x, y)` on an `s × s` grid,
/// matching the paper's `ind = (k-1)*SIZE*SIZE + x*SIZE + y` (0-based).
#[inline]
pub fn fidx(k: usize, x: usize, y: usize, s: usize) -> usize {
    (k * s + x) * s + y
}

/// The BGK equilibrium distribution for direction `k` at density `rho` and
/// velocity `(ux, uy)`.
#[inline]
pub fn equilibrium(k: usize, rho: f64, ux: f64, uy: f64) -> f64 {
    let cu = CX[k] * ux + CY[k] * uy;
    W[k] * rho * (1.0 + 3.0 * cu + 4.5 * cu * cu - 1.5 * (ux * ux + uy * uy))
}

/// Kinematic viscosity of the BGK collision operator at relaxation time
/// `tau` (lattice units): `ν = (τ − 1/2) / 3`.
#[inline]
pub fn viscosity(tau: f64) -> f64 {
    (tau - 0.5) / 3.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_one() {
        let sum: f64 = W.iter().sum();
        assert!((sum - 1.0).abs() < 1e-15);
    }

    #[test]
    fn velocities_sum_to_zero() {
        assert_eq!(CX.iter().sum::<f64>(), 0.0);
        assert_eq!(CY.iter().sum::<f64>(), 0.0);
    }

    #[test]
    fn lattice_isotropy_second_moment() {
        // Σ w_k c_kα c_kβ = c_s² δ_αβ with c_s² = 1/3.
        let mut xx = 0.0;
        let mut yy = 0.0;
        let mut xy = 0.0;
        for k in 0..Q {
            xx += W[k] * CX[k] * CX[k];
            yy += W[k] * CY[k] * CY[k];
            xy += W[k] * CX[k] * CY[k];
        }
        assert!((xx - 1.0 / 3.0).abs() < 1e-15);
        assert!((yy - 1.0 / 3.0).abs() < 1e-15);
        assert!(xy.abs() < 1e-15);
    }

    #[test]
    fn opposite_directions_negate() {
        for k in 0..Q {
            assert_eq!(CX[OPPOSITE[k]], -CX[k]);
            assert_eq!(CY[OPPOSITE[k]], -CY[k]);
            assert_eq!(OPPOSITE[OPPOSITE[k]], k);
        }
    }

    #[test]
    fn equilibrium_moments_recover_inputs() {
        let (rho, ux, uy) = (1.2, 0.05, -0.03);
        let mut m0 = 0.0;
        let mut mx = 0.0;
        let mut my = 0.0;
        for k in 0..Q {
            let fe = equilibrium(k, rho, ux, uy);
            m0 += fe;
            mx += fe * CX[k];
            my += fe * CY[k];
        }
        assert!((m0 - rho).abs() < 1e-12);
        assert!((mx - rho * ux).abs() < 1e-12);
        assert!((my - rho * uy).abs() < 1e-12);
    }

    #[test]
    fn fidx_is_bijective_on_grid() {
        let s = 7;
        let mut seen = vec![false; Q * s * s];
        for k in 0..Q {
            for x in 0..s {
                for y in 0..s {
                    let i = fidx(k, x, y, s);
                    assert!(!seen[i], "collision at ({k},{x},{y})");
                    seen[i] = true;
                }
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn viscosity_formula() {
        assert!((viscosity(1.0) - 1.0 / 6.0).abs() < 1e-15);
        assert!((viscosity(0.5)).abs() < 1e-15);
    }
}
