//! Body-force-driven channel (Poiseuille) flow — the second analytic
//! validation scenario.
//!
//! A channel periodic in `x`, bounded by no-slip walls at `y = 0` and
//! `y = s−1`, driven by a constant body force `g` in `x`. The steady
//! velocity profile is the parabola
//!
//! ```text
//! u_x(y) = g / (2 ν) · y' (H − y')      with y' measured from the wall
//! ```
//!
//! (halfway bounce-back places the physical walls half a cell outside the
//! first/last fluid nodes, so the channel width is `H = s` cells and
//! `y' = y + 1/2`). The force enters the collision with the first-order
//! term `3 w_k (c_k · g)`, adequate at the low Mach numbers used here.

use racc_core::{Array1, Backend, Context, RaccError};

use crate::lattice::{equilibrium, fidx, viscosity, CX, CY, OPPOSITE, Q, W};
use crate::lbm_profile;

/// A Poiseuille channel simulation through the RACC constructs.
pub struct PoiseuilleSim<'c, B: Backend> {
    ctx: &'c Context<B>,
    s: usize,
    tau: f64,
    force: f64,
    f: Array1<f64>,
    f1: Array1<f64>,
    f2: Array1<f64>,
}

impl<'c, B: Backend> PoiseuilleSim<'c, B> {
    /// A channel at rest with density 1, relaxation `tau`, and body force
    /// `force` (lattice units; keep `force * s^2 / (8 nu)` well below the
    /// lattice sound speed).
    pub fn new(ctx: &'c Context<B>, s: usize, tau: f64, force: f64) -> Result<Self, RaccError> {
        assert!(s >= 8, "channel needs at least 8 lattice rows");
        assert!(tau > 0.5, "tau must exceed 1/2");
        let peak = force * (s * s) as f64 / (8.0 * viscosity(tau));
        assert!(
            peak < 0.15,
            "predicted peak velocity {peak} too large for a stable lattice Mach number"
        );
        let mut init = vec![0.0f64; Q * s * s];
        for x in 0..s {
            for y in 0..s {
                for k in 0..Q {
                    init[fidx(k, x, y, s)] = equilibrium(k, 1.0, 0.0, 0.0);
                }
            }
        }
        Ok(PoiseuilleSim {
            ctx,
            s,
            tau,
            force,
            f: ctx.zeros(Q * s * s)?,
            f1: ctx.array_from(&init)?,
            f2: ctx.array_from(&init)?,
        })
    }

    /// Channel width in cells.
    pub fn size(&self) -> usize {
        self.s
    }

    /// One time step: periodic-in-x streaming with bounce-back at the two
    /// walls, then BGK collision with the body-force term.
    pub fn step(&mut self) {
        let (s, tau, g) = (self.s, self.tau, self.force);
        let f = self.f.view_mut();
        let f1 = self.f1.view();
        let f2 = self.f2.view_mut();
        self.ctx
            .parallel_for_2d((s, s), &lbm_profile(), move |x, y| {
                for k in 0..Q {
                    // Periodic in x.
                    let sx = (x + s).wrapping_sub(CX[k] as isize as usize) % s;
                    let sy = y as isize - CY[k] as isize;
                    let value = if sy >= 0 && sy < s as isize {
                        f1.get(fidx(k, sx, sy as usize, s))
                    } else {
                        // Wall: halfway bounce-back at this site.
                        f1.get(fidx(OPPOSITE[k], x, y, s))
                    };
                    f.set(fidx(k, x, y, s), value);
                }
                let mut p = 0.0;
                let mut u = 0.0;
                let mut v = 0.0;
                for k in 0..Q {
                    let fk = f.get(fidx(k, x, y, s));
                    p += fk;
                    u += fk * CX[k];
                    v += fk * CY[k];
                }
                u /= p;
                v /= p;
                for k in 0..Q {
                    let feq = equilibrium(k, p, u, v);
                    let forcing = 3.0 * W[k] * CX[k] * g;
                    let ind = fidx(k, x, y, s);
                    f2.set(ind, f.get(ind) * (1.0 - 1.0 / tau) + feq / tau + forcing);
                }
            });
        std::mem::swap(&mut self.f1, &mut self.f2);
    }

    /// Run `steps` time steps.
    pub fn run(&mut self, steps: usize) {
        for _ in 0..steps {
            self.step();
        }
    }

    /// The x-velocity profile across the channel, averaged over x.
    pub fn velocity_profile(&self) -> Result<Vec<f64>, RaccError> {
        let f1 = self.ctx.to_host(&self.f1)?;
        let s = self.s;
        let mut profile = vec![0.0; s];
        for (y, entry) in profile.iter_mut().enumerate() {
            let mut u_avg = 0.0;
            for x in 0..s {
                let mut p = 0.0;
                let mut u = 0.0;
                for k in 0..Q {
                    let fk = f1[fidx(k, x, y, s)];
                    p += fk;
                    u += fk * CX[k];
                }
                u_avg += u / p;
            }
            *entry = u_avg / s as f64;
        }
        Ok(profile)
    }

    /// The analytic steady profile at row `y` (halfway-wall convention).
    pub fn analytic_profile(&self, y: usize) -> f64 {
        let h = self.s as f64;
        let yp = y as f64 + 0.5;
        self.force / (2.0 * viscosity(self.tau)) * yp * (h - yp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racc_core::{SerialBackend, ThreadsBackend};

    #[test]
    fn converges_to_the_parabolic_profile() {
        let ctx = Context::new(ThreadsBackend::with_threads(4));
        let s = 24;
        let tau = 0.9;
        let g = 1e-6;
        let mut sim = PoiseuilleSim::new(&ctx, s, tau, g).unwrap();
        sim.run(6000);
        let profile = sim.velocity_profile().unwrap();
        // Compare the center region against the analytic parabola.
        #[allow(clippy::needless_range_loop)]
        for y in 2..s - 2 {
            let analytic = sim.analytic_profile(y);
            let rel = (profile[y] - analytic).abs() / analytic;
            assert!(
                rel < 0.05,
                "row {y}: {} vs analytic {analytic} (rel {rel:.3})",
                profile[y]
            );
        }
        // Symmetry about the centerline.
        for y in 0..s / 2 {
            let a = profile[y];
            let b = profile[s - 1 - y];
            assert!((a - b).abs() < 1e-9 * a.abs().max(1e-12), "{a} vs {b}");
        }
    }

    #[test]
    fn walls_stay_slow_and_center_is_fastest() {
        let ctx = Context::new(SerialBackend::new());
        let mut sim = PoiseuilleSim::new(&ctx, 16, 0.8, 2e-6).unwrap();
        sim.run(1500);
        let profile = sim.velocity_profile().unwrap();
        let center = profile[8];
        assert!(center > 0.0);
        assert!(
            profile[0] < center * 0.3,
            "wall row {} vs center {center}",
            profile[0]
        );
        let max = profile.iter().cloned().fold(0.0f64, f64::max);
        assert!((max - profile[7]).abs() < 1e-12 || (max - profile[8]).abs() < 1e-12);
    }

    #[test]
    fn zero_force_stays_at_rest() {
        let ctx = Context::new(SerialBackend::new());
        let mut sim = PoiseuilleSim::new(&ctx, 12, 0.8, 0.0).unwrap();
        sim.run(100);
        let profile = sim.velocity_profile().unwrap();
        assert!(profile.iter().all(|u| u.abs() < 1e-14));
    }

    #[test]
    fn constructor_guards_unstable_parameters() {
        let ctx = Context::new(SerialBackend::new());
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            PoiseuilleSim::new(&ctx, 64, 0.51, 1e-2).unwrap()
        }))
        .is_err());
    }
}
