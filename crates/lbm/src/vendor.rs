//! Device-specific LBM implementations — the comparison codes of Fig. 11.
//!
//! One implementation per vendor API plus the direct thread-pool CPU code.
//! Each `step()` returns the modeled nanoseconds of the time step.

use racc_core::cpumodel::CpuSpec;
use racc_gpusim::KernelCost;
use racc_threadpool::{Schedule, ThreadPool};

use crate::lattice::{equilibrium, fidx, CX, CY, Q};
use crate::lbm_profile;
use crate::reference::SerialLbm;

fn lbm_cost() -> KernelCost {
    let p = lbm_profile();
    KernelCost::new(
        p.flops_per_iter,
        p.bytes_read_per_iter,
        p.bytes_written_per_iter,
        p.coalescing,
    )
}

/// Initial equilibrium distributions for a uniform `(rho, ux, uy)` state.
pub fn uniform_init(s: usize, rho: f64, ux: f64, uy: f64) -> Vec<f64> {
    let mut init = vec![0.0; Q * s * s];
    for k in 0..Q {
        for x in 0..s {
            for y in 0..s {
                init[fidx(k, x, y, s)] = equilibrium(k, rho, ux, uy);
            }
        }
    }
    init
}

/// CUDA-specific LBM (16×16 thread tiles, paper Fig. 10 indexing).
pub struct CudaLbm {
    cuda: racc_cudasim::Cuda,
    s: usize,
    tau: f64,
    f: racc_cudasim::CuArray<f64>,
    f1: racc_cudasim::CuArray<f64>,
    f2: racc_cudasim::CuArray<f64>,
    flip: bool,
}

impl CudaLbm {
    /// Build on a fresh simulated A100 from initial distributions.
    pub fn new(s: usize, tau: f64, init: &[f64]) -> Self {
        assert_eq!(init.len(), Q * s * s);
        let cuda = racc_cudasim::Cuda::new();
        let f = cuda.zeros::<f64>(Q * s * s).expect("scratch");
        let f1 = cuda.cu_array(init).expect("f1");
        let f2 = cuda.cu_array(init).expect("f2");
        CudaLbm {
            cuda,
            s,
            tau,
            f,
            f1,
            f2,
            flip: false,
        }
    }

    /// One time step; returns modeled nanoseconds.
    pub fn step(&mut self) -> u64 {
        let (s, tau) = (self.s, self.tau);
        let (cur, next) = if self.flip {
            (&self.f2, &self.f1)
        } else {
            (&self.f1, &self.f2)
        };
        let f = self.cuda.view_mut(&self.f).expect("own");
        let f1 = self.cuda.view(cur).expect("own");
        let f2 = self.cuda.view_mut(next).expect("own");
        let tiles = 16u32;
        let gx = s.div_ceil(tiles as usize) as u32;
        let gy = s.div_ceil(tiles as usize) as u32;
        let e0 = self.cuda.record_event();
        self.cuda
            .launch_2d((tiles, tiles), (gx, gy), 0, lbm_cost(), |t| {
                let (x, y) = (t.global_id_x(), t.global_id_y());
                site_update_slices(x, y, s, tau, &f, &f1, &f2);
            })
            .expect("lbm launch");
        let e1 = self.cuda.record_event();
        self.flip = !self.flip;
        e0.elapsed_ns(&e1)
    }

    /// Download the current distributions.
    pub fn distributions(&self) -> Vec<f64> {
        let cur = if self.flip { &self.f2 } else { &self.f1 };
        self.cuda.to_host(cur).expect("download")
    }
}

/// HIP-specific LBM on the simulated MI100.
pub struct HipLbm {
    hip: racc_hipsim::Hip,
    s: usize,
    tau: f64,
    f: racc_hipsim::RocArray<f64>,
    f1: racc_hipsim::RocArray<f64>,
    f2: racc_hipsim::RocArray<f64>,
    flip: bool,
}

impl HipLbm {
    /// Build on a fresh simulated MI100.
    pub fn new(s: usize, tau: f64, init: &[f64]) -> Self {
        assert_eq!(init.len(), Q * s * s);
        let hip = racc_hipsim::Hip::new();
        let f = hip.zeros::<f64>(Q * s * s).expect("scratch");
        let f1 = hip.roc_array(init).expect("f1");
        let f2 = hip.roc_array(init).expect("f2");
        HipLbm {
            hip,
            s,
            tau,
            f,
            f1,
            f2,
            flip: false,
        }
    }

    /// One time step; returns modeled nanoseconds.
    pub fn step(&mut self) -> u64 {
        let (s, tau) = (self.s, self.tau);
        let (cur, next) = if self.flip {
            (&self.f2, &self.f1)
        } else {
            (&self.f1, &self.f2)
        };
        let f = self.hip.view_mut(&self.f).expect("own");
        let f1 = self.hip.view(cur).expect("own");
        let f2 = self.hip.view_mut(next).expect("own");
        let tiles = 16u32;
        let gx = s.div_ceil(tiles as usize) as u32;
        let gy = s.div_ceil(tiles as usize) as u32;
        let e0 = self.hip.record_event();
        self.hip
            .launch_2d((tiles, tiles), (gx, gy), 0, lbm_cost(), |t| {
                let (x, y) = (t.global_id_x(), t.global_id_y());
                site_update_slices(x, y, s, tau, &f, &f1, &f2);
            })
            .expect("lbm launch");
        let e1 = self.hip.record_event();
        self.flip = !self.flip;
        e0.elapsed_ns(&e1)
    }

    /// Download the current distributions.
    pub fn distributions(&self) -> Vec<f64> {
        let cur = if self.flip { &self.f2 } else { &self.f1 };
        self.hip.to_host(cur).expect("download")
    }
}

/// oneAPI-specific LBM on the simulated Max 1550 (SYCL inverted ids).
pub struct OneApiLbm {
    one: racc_oneapisim::OneApi,
    s: usize,
    tau: f64,
    f: racc_oneapisim::OneArray<f64>,
    f1: racc_oneapisim::OneArray<f64>,
    f2: racc_oneapisim::OneArray<f64>,
    flip: bool,
}

impl OneApiLbm {
    /// Build on a fresh simulated Max 1550.
    pub fn new(s: usize, tau: f64, init: &[f64]) -> Self {
        assert_eq!(init.len(), Q * s * s);
        let one = racc_oneapisim::OneApi::new();
        let f = one.zeros::<f64>(Q * s * s).expect("scratch");
        let f1 = one.one_array(init).expect("f1");
        let f2 = one.one_array(init).expect("f2");
        OneApiLbm {
            one,
            s,
            tau,
            f,
            f1,
            f2,
            flip: false,
        }
    }

    /// One time step; returns modeled nanoseconds.
    pub fn step(&mut self) -> u64 {
        let (s, tau) = (self.s, self.tau);
        let (cur, next) = if self.flip {
            (&self.f2, &self.f1)
        } else {
            (&self.f1, &self.f2)
        };
        let f = self.one.view_mut(&self.f).expect("own");
        let f1 = self.one.view(cur).expect("own");
        let f2 = self.one.view_mut(next).expect("own");
        let tiles = 16u32;
        let gx = s.div_ceil(tiles as usize) as u32;
        let gy = s.div_ceil(tiles as usize) as u32;
        let e0 = self.one.record_event();
        self.one
            .launch_2d((tiles, tiles), (gx, gy), 0, lbm_cost(), |item| {
                // Fig. 7 inversion: dim 0 is the slow axis.
                let y = item.get_global_id(0);
                let x = item.get_global_id(1);
                site_update_slices(x, y, s, tau, &f, &f1, &f2);
            })
            .expect("lbm launch");
        let e1 = self.one.record_event();
        self.flip = !self.flip;
        e0.elapsed_ns(&e1)
    }

    /// Download the current distributions.
    pub fn distributions(&self) -> Vec<f64> {
        let cur = if self.flip { &self.f2 } else { &self.f1 };
        self.one.to_host(cur).expect("download")
    }
}

/// The interior site update against simulator slices (shared by the three
/// GPU vendor codes; each passes its own vendor-obtained views).
#[inline]
fn site_update_slices(
    x: usize,
    y: usize,
    s: usize,
    tau: f64,
    f: &racc_gpusim::DeviceSliceMut<f64>,
    f1: &racc_gpusim::DeviceSlice<f64>,
    f2: &racc_gpusim::DeviceSliceMut<f64>,
) {
    if !(x > 0 && x < s.saturating_sub(1) && y > 0 && y < s - 1) {
        return;
    }
    for k in 0..Q {
        let xs = (x as isize - CX[k] as isize) as usize;
        let ys = (y as isize - CY[k] as isize) as usize;
        f.set(fidx(k, x, y, s), f1.get(fidx(k, xs, ys, s)));
    }
    let mut p = 0.0;
    let mut u = 0.0;
    let mut v = 0.0;
    for k in 0..Q {
        let fk = f.get(fidx(k, x, y, s));
        p += fk;
        u += fk * CX[k];
        v += fk * CY[k];
    }
    u /= p;
    v /= p;
    for k in 0..Q {
        let feq = equilibrium(k, p, u, v);
        let ind = fidx(k, x, y, s);
        f2.set(ind, f.get(ind) * (1.0 - 1.0 / tau) + feq / tau);
    }
}

/// CPU device-specific LBM: direct thread-pool code with the column-wise
/// decomposition, timed by the CPU machine model.
pub struct ThreadsLbm {
    pool: ThreadPool,
    cpu: CpuSpec,
    s: usize,
    tau: f64,
    f: Vec<f64>,
    f1: Vec<f64>,
    f2: Vec<f64>,
    flip: bool,
}

impl ThreadsLbm {
    /// Build over a fresh pool with `threads` participants.
    pub fn new(threads: usize, s: usize, tau: f64, init: &[f64]) -> Self {
        assert_eq!(init.len(), Q * s * s);
        ThreadsLbm {
            pool: ThreadPool::new(threads),
            cpu: CpuSpec::epyc_7742_rome(),
            s,
            tau,
            f: vec![0.0; Q * s * s],
            f1: init.to_vec(),
            f2: init.to_vec(),
            flip: false,
        }
    }

    /// One time step; returns modeled nanoseconds.
    pub fn step(&mut self) -> u64 {
        let (s, tau) = (self.s, self.tau);
        let (cur, next) = if self.flip {
            (&self.f2, &self.f1)
        } else {
            (&self.f1, &self.f2)
        };
        let fp = SendMut(self.f.as_ptr() as *mut f64);
        let f2p = SendMut(next.as_ptr() as *mut f64);
        let f1s: &[f64] = cur;
        self.pool.parallel_for(s, Schedule::Static, |x| {
            for y in 0..s {
                if !(x > 0 && x < s - 1 && y > 0 && y < s - 1) {
                    continue;
                }
                // SAFETY: site (x, y) is written only by this task (x is
                // the distributed loop, the scratch/next entries for a site
                // are unique to it).
                unsafe {
                    let f = fp.get();
                    let f2 = f2p.get();
                    for k in 0..Q {
                        let xs = (x as isize - CX[k] as isize) as usize;
                        let ys = (y as isize - CY[k] as isize) as usize;
                        *f.add(fidx(k, x, y, s)) = f1s[fidx(k, xs, ys, s)];
                    }
                    let mut p = 0.0;
                    let mut u = 0.0;
                    let mut v = 0.0;
                    for k in 0..Q {
                        let fk = *f.add(fidx(k, x, y, s));
                        p += fk;
                        u += fk * CX[k];
                        v += fk * CY[k];
                    }
                    u /= p;
                    v /= p;
                    for k in 0..Q {
                        let feq = equilibrium(k, p, u, v);
                        let ind = fidx(k, x, y, s);
                        *f2.add(ind) = *f.add(ind) * (1.0 - 1.0 / tau) + feq / tau;
                    }
                }
            }
        });
        self.flip = !self.flip;
        self.cpu.kernel_time_ns(s * s, &lbm_profile()) as u64
    }

    /// The current distributions.
    pub fn distributions(&self) -> &[f64] {
        if self.flip {
            &self.f2
        } else {
            &self.f1
        }
    }
}

struct SendMut(*mut f64);
unsafe impl Send for SendMut {}
unsafe impl Sync for SendMut {}
impl SendMut {
    fn get(&self) -> *mut f64 {
        self.0
    }
}

/// Run a serial reference for `steps` and return its distributions
/// (test helper shared by the cross-implementation tests).
pub fn reference_after(s: usize, tau: f64, init_rho: f64, init_ux: f64, steps: usize) -> Vec<f64> {
    let mut r = SerialLbm::from_fields(s, tau, |x, y| {
        (
            init_rho + 0.01 * ((x * 7 + y * 3) as f64).sin(),
            init_ux,
            0.0,
        )
    });
    for _ in 0..steps {
        r.step();
    }
    r.f1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn init_fields(s: usize) -> Vec<f64> {
        let r = SerialLbm::from_fields(s, 0.8, |x, y| {
            (1.0 + 0.01 * ((x * 7 + y * 3) as f64).sin(), 0.02, 0.0)
        });
        r.f1
    }

    fn reference_steps(s: usize, init: &[f64], steps: usize) -> Vec<f64> {
        let mut r = SerialLbm {
            s,
            tau: 0.8,
            f: vec![0.0; init.len()],
            f1: init.to_vec(),
            f2: init.to_vec(),
        };
        for _ in 0..steps {
            r.step();
        }
        r.f1
    }

    fn assert_close(a: &[f64], b: &[f64]) {
        let max = a
            .iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max);
        assert!(max < 1e-13, "max diff {max}");
    }

    #[test]
    fn cuda_lbm_matches_reference() {
        let s = 20;
        let init = init_fields(s);
        let mut sim = CudaLbm::new(s, 0.8, &init);
        for _ in 0..5 {
            assert!(sim.step() > 0);
        }
        assert_close(&sim.distributions(), &reference_steps(s, &init, 5));
    }

    #[test]
    fn hip_lbm_matches_reference() {
        let s = 20;
        let init = init_fields(s);
        let mut sim = HipLbm::new(s, 0.8, &init);
        for _ in 0..5 {
            sim.step();
        }
        assert_close(&sim.distributions(), &reference_steps(s, &init, 5));
    }

    #[test]
    fn oneapi_lbm_matches_reference() {
        let s = 20;
        let init = init_fields(s);
        let mut sim = OneApiLbm::new(s, 0.8, &init);
        for _ in 0..5 {
            sim.step();
        }
        assert_close(&sim.distributions(), &reference_steps(s, &init, 5));
    }

    #[test]
    fn threads_lbm_matches_reference() {
        let s = 20;
        let init = init_fields(s);
        let mut sim = ThreadsLbm::new(4, s, 0.8, &init);
        for _ in 0..5 {
            assert!(sim.step() > 0);
        }
        assert_close(sim.distributions(), &reference_steps(s, &init, 5));
    }
}
