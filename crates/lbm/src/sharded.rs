//! Sharded D2Q9 LBM: the portable interior-update scheme of
//! [`crate::portable::LbmSim`] split along `x` across simulated devices.
//!
//! The canonical snapshot stores one slab per `x` row: all `Q * s`
//! distribution values of that row in `(k, y)` order, so any shard count
//! re-partitions the same global state. Per step each shard packs its
//! owned edge rows of the current lattice, posts them, streams + collides
//! the interior rows while the exchange is in flight, unpacks the ghosts,
//! and finishes the ghost-adjacent rows. Every site evaluates exactly the
//! expression of the single-device kernel, so distributions are
//! bit-identical at any shard count.

use racc_core::{Array1, Backend, Context, KernelProfile};
use racc_shard::{Shard, ShardApp, ShardError, ShardHandle, Topology};

use crate::lattice::{equilibrium, CX, CY, Q};
use crate::lbm_profile;

/// Local lattice index: distribution `k` at local row `xl`, column `y`,
/// on a shard holding `le` rows of an `s`-wide grid.
#[inline]
fn lidx(k: usize, xl: usize, y: usize, le: usize, s: usize) -> usize {
    (k * le + xl) * s + y
}

/// The sharded LBM mini-app: a shear-wave-like deterministic initial
/// condition on an `s × s` grid, stepped with the interior-only scheme
/// (global edge rows and columns stay frozen).
#[derive(Debug, Clone)]
pub struct ShardedLbm {
    /// Grid edge length.
    pub s: usize,
    /// BGK relaxation time (> 0.5).
    pub tau: f64,
    /// Time steps to run.
    pub steps: u64,
}

/// Per-shard device state: scratch, current and next lattices over the
/// local rows (ghosts included), plus one staging row for pack/unpack.
pub struct LbmState {
    f: Array1<f64>,
    f1: Array1<f64>,
    f2: Array1<f64>,
    stage: Array1<f64>,
}

impl ShardedLbm {
    /// Deterministic initial macroscopic fields at global `(x, y)`.
    fn fields(&self, x: usize, y: usize) -> (f64, f64, f64) {
        let s = self.s as f64;
        (
            1.0 + 0.02 * ((x * 3 + y) as f64).sin(),
            0.01 * (y as f64 / s),
            -0.005,
        )
    }

    fn stage_profile() -> KernelProfile {
        KernelProfile::new("lbm-halo-pack", 0.0, 8.0, 8.0)
    }

    /// Pack local row `xl` of `f1` into the staging vector and download it.
    fn pack<B: Backend>(
        ctx: &Context<B>,
        state: &LbmState,
        le: usize,
        s: usize,
        xl: usize,
    ) -> Vec<f64> {
        let fv = state.f1.view();
        let gv = state.stage.view_mut();
        ctx.parallel_for(Q * s, &Self::stage_profile(), move |idx| {
            let (k, y) = (idx / s, idx % s);
            gv.set(idx, fv.get(lidx(k, xl, y, le, s)));
        });
        ctx.to_host(&state.stage).expect("lbm halo pack")
    }

    /// Upload a received row into local row `xl` of `f1`.
    fn unpack<B: Backend>(
        ctx: &Context<B>,
        state: &LbmState,
        le: usize,
        s: usize,
        xl: usize,
        data: &[f64],
    ) {
        ctx.copy_to(&state.stage, data).expect("lbm halo upload");
        let gv = state.stage.view();
        let fv = state.f1.view_mut();
        ctx.parallel_for(Q * s, &Self::stage_profile(), move |idx| {
            let (k, y) = (idx / s, idx % s);
            fv.set(lidx(k, xl, y, le, s), gv.get(idx));
        });
    }

    /// Stream + collide local rows `[x_from, x_to)` — the exact per-site
    /// arithmetic of [`crate::portable::LbmSim::step`], with the
    /// interior-only guard applied at *global* coordinates. The launch
    /// covers exactly the requested rows so the modeled cost tracks the
    /// work actually done.
    fn update<B: Backend>(
        ctx: &Context<B>,
        state: &LbmState,
        shard: Shard,
        s: usize,
        tau: f64,
        x_from: usize,
        x_to: usize,
    ) {
        let le = shard.local_extent();
        let (glo, os) = (shard.lo, shard.owned_start());
        let f = state.f.view_mut();
        let f1 = state.f1.view();
        let f2 = state.f2.view_mut();
        ctx.parallel_for_2d((x_to - x_from, s), &lbm_profile(), move |xi, y| {
            let xl = x_from + xi;
            let x = glo + xl - os; // global row
            if x > 0 && x < s - 1 && y > 0 && y < s - 1 {
                for k in 0..Q {
                    let xs = (x as isize - CX[k] as isize) as usize;
                    let ys = (y as isize - CY[k] as isize) as usize;
                    // The source row is local: xl ± the same offset.
                    let xsl = (xl as isize - (x as isize - xs as isize)) as usize;
                    f.set(lidx(k, xl, y, le, s), f1.get(lidx(k, xsl, ys, le, s)));
                }
                let mut p = 0.0;
                let mut u = 0.0;
                let mut v = 0.0;
                for k in 0..Q {
                    let fk = f.get(lidx(k, xl, y, le, s));
                    p += fk;
                    u += fk * CX[k];
                    v += fk * CY[k];
                }
                u /= p;
                v /= p;
                for k in 0..Q {
                    let feq = equilibrium(k, p, u, v);
                    let ind = lidx(k, xl, y, le, s);
                    f2.set(ind, f.get(ind) * (1.0 - 1.0 / tau) + feq / tau);
                }
            }
        });
    }
}

impl<B: Backend> ShardApp<B> for ShardedLbm {
    type State = LbmState;

    fn extent(&self) -> usize {
        self.s
    }
    fn slab_len(&self) -> usize {
        Q * self.s
    }
    fn radius(&self) -> usize {
        1
    }
    fn total_steps(&self) -> u64 {
        self.steps
    }
    fn topology(&self) -> Topology {
        Topology::Open
    }

    fn initial(&self) -> Vec<f64> {
        let s = self.s;
        let mut snapshot = Vec::with_capacity(Q * s * s);
        for x in 0..s {
            for k in 0..Q {
                for y in 0..s {
                    let (rho, ux, uy) = self.fields(x, y);
                    snapshot.push(equilibrium(k, rho, ux, uy));
                }
            }
        }
        snapshot
    }

    fn init(&self, ctx: &Context<B>, shard: Shard, snapshot: &[f64]) -> LbmState {
        let s = self.s;
        let le = shard.local_extent();
        let slab = Q * s;
        let mut local = vec![0.0f64; Q * le * s];
        for xl in 0..le {
            let g = shard.global_of(xl);
            let row = &snapshot[g * slab..(g + 1) * slab];
            for k in 0..Q {
                for y in 0..s {
                    local[lidx(k, xl, y, le, s)] = row[k * s + y];
                }
            }
        }
        // `f2` starts as a copy: the frozen global edge rows/columns are
        // never rewritten, and the snapshot carries their authoritative
        // values. `f` is pure scratch (written before read at every
        // updated site).
        LbmState {
            f: ctx.zeros(Q * le * s).expect("f alloc"),
            f1: ctx.array_from(&local).expect("f1 alloc"),
            f2: ctx.array_from(&local).expect("f2 alloc"),
            stage: ctx.zeros(slab).expect("stage alloc"),
        }
    }

    fn step(
        &self,
        h: &mut ShardHandle<'_, B>,
        state: &mut LbmState,
        _step: u64,
    ) -> Result<(), ShardError> {
        let (s, tau) = (self.s, self.tau);
        let sh = h.shard();
        let (os, owned, le) = (sh.owned_start(), sh.owned(), sh.local_extent());

        let to_lo = (sh.ghosts_lo() > 0).then(|| Self::pack(h.ctx(), state, le, s, os));
        let to_hi = (sh.ghosts_hi() > 0).then(|| Self::pack(h.ctx(), state, le, s, os + owned - 1));
        h.post_halos(to_lo, to_hi)?;

        let lo_int = os + usize::from(sh.ghosts_lo() > 0);
        let hi_int = os + owned - usize::from(sh.ghosts_hi() > 0);
        h.interior(|ctx| Self::update(ctx, state, sh, s, tau, lo_int, hi_int));

        let (from_lo, from_hi) = h.recv_halos()?;
        if let Some(data) = from_lo {
            Self::unpack(h.ctx(), state, le, s, 0, &data);
        }
        if let Some(data) = from_hi {
            Self::unpack(h.ctx(), state, le, s, le - 1, &data);
        }

        h.boundary(|ctx| {
            if sh.ghosts_lo() > 0 {
                Self::update(ctx, state, sh, s, tau, os, os + 1);
            }
            if sh.ghosts_hi() > 0 {
                Self::update(ctx, state, sh, s, tau, os + owned - 1, os + owned);
            }
        });

        std::mem::swap(&mut state.f1, &mut state.f2);
        Ok(())
    }

    fn dump(&self, ctx: &Context<B>, shard: Shard, state: &LbmState) -> Vec<f64> {
        let s = self.s;
        let le = shard.local_extent();
        let host = ctx.to_host(&state.f1).expect("lbm dump");
        let mut out = Vec::with_capacity(shard.owned() * Q * s);
        for xl in shard.owned_start()..shard.owned_start() + shard.owned() {
            for k in 0..Q {
                for y in 0..s {
                    out.push(host[lidx(k, xl, y, le, s)]);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::portable::LbmSim;
    use racc_core::{SerialBackend, ThreadsBackend};
    use racc_shard::{run_sharded, ShardOptions};
    use std::sync::Arc;

    fn run(devices: usize) -> Vec<f64> {
        run_sharded(
            Arc::new(ShardedLbm {
                s: 18,
                tau: 0.8,
                steps: 8,
            }),
            ShardOptions::devices(devices).checkpoint_every(3),
            |_rank| Context::new(SerialBackend::new()),
        )
        .field
    }

    #[test]
    fn sharded_lbm_matches_single_device_bitwise() {
        let one = run(1);
        for devices in [2, 4] {
            assert_eq!(one, run(devices), "{devices} devices");
        }
    }

    #[test]
    fn sharded_lbm_matches_the_unsharded_simulation_bitwise() {
        let app = ShardedLbm {
            s: 18,
            tau: 0.8,
            steps: 8,
        };
        let ctx = Context::new(ThreadsBackend::with_threads(2));
        let mut sim = LbmSim::new(&ctx, app.s, app.tau, |x, y| app.fields(x, y)).unwrap();
        for _ in 0..app.steps {
            sim.step();
        }
        let flat = sim.distributions().unwrap();
        // Re-order the row-major canonical snapshot into the plain
        // simulation's `fidx` layout for comparison.
        let s = app.s;
        let sharded = run(3);
        let mut canonical = vec![0.0f64; Q * s * s];
        for x in 0..s {
            for k in 0..Q {
                for y in 0..s {
                    canonical[crate::lattice::fidx(k, x, y, s)] = sharded[x * Q * s + k * s + y];
                }
            }
        }
        assert_eq!(
            flat, canonical,
            "sharded LBM must match the plain kernel bitwise"
        );
    }
}
