//! Physics validation: analytic checks of the BGK dynamics.
//!
//! The key quantitative check is **shear-wave decay**: a transverse
//! velocity perturbation `u_x(y) = u₀ sin(2πy/L)` on a periodic domain
//! decays as `exp(−ν k² t)` with `k = 2π/L` and the BGK viscosity
//! `ν = (τ − 1/2)/3`. Matching that rate validates streaming, moments and
//! collision together.

use crate::lattice::viscosity;
use crate::reference::SerialLbm;

/// Build the shear-wave initial condition on an `s × s` periodic grid.
pub fn shear_wave(s: usize, tau: f64, u0: f64) -> SerialLbm {
    SerialLbm::from_fields(s, tau, |_x, y| {
        let k = 2.0 * std::f64::consts::PI / s as f64;
        (1.0, u0 * (k * y as f64).sin(), 0.0)
    })
}

/// Amplitude of the `sin(2πy/L)` mode of `u_x` (discrete sine transform of
/// the column-averaged profile).
pub fn shear_amplitude(sim: &SerialLbm) -> f64 {
    let s = sim.s;
    let k = 2.0 * std::f64::consts::PI / s as f64;
    let mut num = 0.0;
    let mut den = 0.0;
    for y in 0..s {
        // Average u_x over x for this y.
        let mut u_avg = 0.0;
        for x in 0..s {
            u_avg += sim.velocity(x, y).0;
        }
        u_avg /= s as f64;
        let sy = (k * y as f64).sin();
        num += u_avg * sy;
        den += sy * sy;
    }
    num / den
}

/// Run `steps` periodic steps and return the measured exponential decay
/// rate of the shear mode, `-ln(A(t)/A(0)) / t`.
pub fn measured_decay_rate(sim: &mut SerialLbm, steps: usize) -> f64 {
    let a0 = shear_amplitude(sim);
    for _ in 0..steps {
        sim.step_periodic();
    }
    let a1 = shear_amplitude(sim);
    -((a1 / a0).ln()) / steps as f64
}

/// The analytic decay rate `ν k²` for grid size `s` and relaxation `tau`.
pub fn analytic_decay_rate(s: usize, tau: f64) -> f64 {
    let k = 2.0 * std::f64::consts::PI / s as f64;
    viscosity(tau) * k * k
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shear_wave_decay_matches_bgk_viscosity() {
        for &tau in &[0.8, 1.0, 1.5] {
            let s = 48;
            let mut sim = shear_wave(s, tau, 1e-4);
            let measured = measured_decay_rate(&mut sim, 200);
            let analytic = analytic_decay_rate(s, tau);
            let rel = (measured - analytic).abs() / analytic;
            assert!(
                rel < 0.03,
                "tau={tau}: measured {measured:.3e} vs analytic {analytic:.3e} (rel {rel:.3})"
            );
        }
    }

    #[test]
    fn amplitude_of_initial_condition_is_u0() {
        let sim = shear_wave(32, 0.9, 2e-3);
        let a = shear_amplitude(&sim);
        assert!((a - 2e-3).abs() < 1e-5);
    }

    #[test]
    fn decay_is_monotonic() {
        let mut sim = shear_wave(24, 0.8, 1e-3);
        let mut last = shear_amplitude(&sim);
        for _ in 0..5 {
            for _ in 0..10 {
                sim.step_periodic();
            }
            let a = shear_amplitude(&sim);
            assert!(a < last, "amplitude must decay: {a} !< {last}");
            last = a;
        }
    }

    #[test]
    fn higher_tau_decays_faster() {
        let s = 32;
        let rate_low = {
            let mut sim = shear_wave(s, 0.7, 1e-4);
            measured_decay_rate(&mut sim, 100)
        };
        let rate_high = {
            let mut sim = shear_wave(s, 1.4, 1e-4);
            measured_decay_rate(&mut sim, 100)
        };
        assert!(rate_high > rate_low);
    }
}
