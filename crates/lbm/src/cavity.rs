//! Lid-driven cavity: the classic wall-bounded LBM benchmark, as the
//! HARVEY-style extension of the paper's kernel.
//!
//! The cavity adds real boundary conditions to the D2Q9 pull scheme:
//!
//! * **halfway bounce-back** on the three solid walls (no-slip), and
//! * a **moving lid** at the top (`y = s−1`) implemented as bounce-back
//!   with a momentum correction `f_k̄ = f_k − 6 w_k ρ (c_k · u_lid)`,
//!
//! producing the canonical recirculating vortex. The update is one RACC
//! `parallel_for` over the grid — the same portable construct as the
//! paper's kernel, with the boundary logic inside the kernel body.

use racc_core::{Array1, Backend, Context, RaccError};

use crate::lattice::{equilibrium, fidx, CX, CY, OPPOSITE, Q};
use crate::lbm_profile;

/// A lid-driven cavity simulation on an `s × s` grid.
pub struct CavitySim<'c, B: Backend> {
    ctx: &'c Context<B>,
    s: usize,
    tau: f64,
    lid_velocity: f64,
    f: Array1<f64>,
    f1: Array1<f64>,
    f2: Array1<f64>,
    steps: usize,
}

impl<'c, B: Backend> CavitySim<'c, B> {
    /// Build a cavity at rest with density 1 and the given lid velocity
    /// (lattice units; keep well below c_s ≈ 0.577 for stability —
    /// typically 0.05–0.1).
    pub fn new(
        ctx: &'c Context<B>,
        s: usize,
        tau: f64,
        lid_velocity: f64,
    ) -> Result<Self, RaccError> {
        assert!(s >= 8, "cavity needs at least an 8x8 grid");
        assert!(tau > 0.5, "tau must exceed 1/2");
        assert!(
            lid_velocity.abs() < 0.3,
            "lid velocity {lid_velocity} too large for a stable lattice Mach number"
        );
        let mut init = vec![0.0f64; Q * s * s];
        for x in 0..s {
            for y in 0..s {
                for k in 0..Q {
                    init[fidx(k, x, y, s)] = equilibrium(k, 1.0, 0.0, 0.0);
                }
            }
        }
        Ok(CavitySim {
            ctx,
            s,
            tau,
            lid_velocity,
            f: ctx.zeros(Q * s * s)?,
            f1: ctx.array_from(&init)?,
            f2: ctx.array_from(&init)?,
            steps: 0,
        })
    }

    /// Grid edge length.
    pub fn size(&self) -> usize {
        self.s
    }

    /// Time steps taken so far.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// The lid velocity.
    pub fn lid_velocity(&self) -> f64 {
        self.lid_velocity
    }

    /// One time step: pull-streaming with bounce-back at the walls and the
    /// moving-lid correction at the top, then BGK collision.
    pub fn step(&mut self) {
        let (s, tau, u_lid) = (self.s, self.tau, self.lid_velocity);
        let f = self.f.view_mut();
        let f1 = self.f1.view();
        let f2 = self.f2.view_mut();
        self.ctx
            .parallel_for_2d((s, s), &lbm_profile(), move |x, y| {
                // Streaming with boundary handling: for each direction,
                // pull from the upwind site; if that site is outside the
                // cavity, the particle came off a wall: bounce it back
                // (reverse direction at this site), adding the lid's
                // momentum when the wall is the moving top lid.
                for k in 0..Q {
                    let sx = x as isize - CX[k] as isize;
                    let sy = y as isize - CY[k] as isize;
                    let value = if sx >= 0 && sx < s as isize && sy >= 0 && sy < s as isize {
                        f1.get(fidx(k, sx as usize, sy as usize, s))
                    } else {
                        // Came through a wall: take the opposite-direction
                        // population leaving this site.
                        let ko = OPPOSITE[k];
                        let mut v = f1.get(fidx(ko, x, y, s));
                        if sy >= s as isize {
                            // The moving lid (top wall): halfway bounce-back
                            // with momentum injection, rho_w ~ 1.
                            v -= 6.0 * crate::lattice::W[ko] * (CX[ko] * u_lid);
                        }
                        v
                    };
                    f.set(fidx(k, x, y, s), value);
                }
                // Moments.
                let mut p = 0.0;
                let mut u = 0.0;
                let mut v = 0.0;
                for k in 0..Q {
                    let fk = f.get(fidx(k, x, y, s));
                    p += fk;
                    u += fk * CX[k];
                    v += fk * CY[k];
                }
                u /= p;
                v /= p;
                // Collision.
                for k in 0..Q {
                    let feq = equilibrium(k, p, u, v);
                    let ind = fidx(k, x, y, s);
                    f2.set(ind, f.get(ind) * (1.0 - 1.0 / tau) + feq / tau);
                }
            });
        std::mem::swap(&mut self.f1, &mut self.f2);
        self.steps += 1;
    }

    /// Run `steps` time steps.
    pub fn run(&mut self, steps: usize) {
        for _ in 0..steps {
            self.step();
        }
    }

    /// Velocity field `(ux, uy)` per site, linearized `x * s + y`.
    pub fn velocity_field(&self) -> Result<(Vec<f64>, Vec<f64>), RaccError> {
        let f1 = self.ctx.to_host(&self.f1)?;
        let s = self.s;
        let mut ux = vec![0.0; s * s];
        let mut uy = vec![0.0; s * s];
        for x in 0..s {
            for y in 0..s {
                let mut p = 0.0;
                let mut u = 0.0;
                let mut v = 0.0;
                for k in 0..Q {
                    let fk = f1[fidx(k, x, y, s)];
                    p += fk;
                    u += fk * CX[k];
                    v += fk * CY[k];
                }
                ux[x * s + y] = u / p;
                uy[x * s + y] = v / p;
            }
        }
        Ok((ux, uy))
    }

    /// Total mass (conserved by bounce-back walls).
    pub fn total_mass(&self) -> Result<f64, RaccError> {
        Ok(self.ctx.to_host(&self.f1)?.iter().sum())
    }

    /// The circulation proxy: the sum of `∂uy/∂x − ∂ux/∂y` over the
    /// interior (negative for a clockwise vortex under a rightward lid).
    pub fn total_vorticity(&self) -> Result<f64, RaccError> {
        let (ux, uy) = self.velocity_field()?;
        let s = self.s;
        let at = |f: &[f64], x: usize, y: usize| f[x * s + y];
        let mut total = 0.0;
        for x in 1..s - 1 {
            for y in 1..s - 1 {
                let duy_dx = (at(&uy, x + 1, y) - at(&uy, x - 1, y)) / 2.0;
                let dux_dy = (at(&ux, x, y + 1) - at(&ux, x, y - 1)) / 2.0;
                total += duy_dx - dux_dy;
            }
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racc_core::{SerialBackend, ThreadsBackend};

    #[test]
    fn lid_drives_flow_near_the_top() {
        let ctx = Context::new(ThreadsBackend::with_threads(2));
        let s = 24;
        let mut sim = CavitySim::new(&ctx, s, 0.8, 0.08).unwrap();
        sim.run(200);
        let (ux, _) = sim.velocity_field().unwrap();
        // Mean x-velocity in the row just below the lid follows the lid.
        let row: f64 = (1..s - 1).map(|x| ux[x * s + (s - 2)]).sum::<f64>() / (s - 2) as f64;
        assert!(row > 0.01, "near-lid flow {row} must follow the lid");
        // Bottom row stays nearly still.
        let bottom: f64 = (1..s - 1).map(|x| ux[x * s + 1].abs()).sum::<f64>() / (s - 2) as f64;
        assert!(bottom < row / 2.0, "bottom {bottom} vs top {row}");
    }

    #[test]
    fn a_single_vortex_forms() {
        let ctx = Context::new(ThreadsBackend::with_threads(2));
        let mut sim = CavitySim::new(&ctx, 32, 0.8, 0.08).unwrap();
        sim.run(400);
        // Rightward lid at the top drives a clockwise vortex: in the
        // convention here that is net negative vorticity.
        let w = sim.total_vorticity().unwrap();
        assert!(w < -1e-3, "expected clockwise circulation, got {w}");
    }

    #[test]
    fn stable_and_mass_conserving_long_run() {
        let ctx = Context::new(SerialBackend::new());
        let mut sim = CavitySim::new(&ctx, 16, 0.7, 0.05).unwrap();
        let m0 = sim.total_mass().unwrap();
        sim.run(500);
        let m1 = sim.total_mass().unwrap();
        // The moving lid injects a little momentum but only O(u_lid) mass
        // asymmetry; drift must stay small and fields finite.
        assert!((m1 - m0).abs() / m0 < 1e-2, "mass {m0} -> {m1}");
        let (ux, uy) = sim.velocity_field().unwrap();
        assert!(ux.iter().chain(uy.iter()).all(|v| v.is_finite()));
        assert!(ux.iter().all(|v| v.abs() < 0.2), "velocities bounded");
        assert_eq!(sim.steps(), 500);
    }

    #[test]
    fn zero_lid_velocity_stays_at_rest() {
        let ctx = Context::new(SerialBackend::new());
        let mut sim = CavitySim::new(&ctx, 12, 0.9, 0.0).unwrap();
        sim.run(50);
        let (ux, uy) = sim.velocity_field().unwrap();
        let max = ux
            .iter()
            .chain(uy.iter())
            .map(|v| v.abs())
            .fold(0.0f64, f64::max);
        assert!(
            max < 1e-12,
            "cavity at rest must stay at rest, max |u| = {max}"
        );
    }

    #[test]
    fn same_flow_on_serial_and_threads() {
        fn flow<B: Backend>(ctx: &Context<B>) -> Vec<f64> {
            let mut sim = CavitySim::new(ctx, 16, 0.8, 0.06).unwrap();
            sim.run(60);
            sim.velocity_field().unwrap().0
        }
        let a = flow(&Context::new(SerialBackend::new()));
        let b = flow(&Context::new(ThreadsBackend::with_threads(3)));
        let c = flow(&Context::new(racc_backend_cuda::CudaBackend::new()));
        for ((x, y), z) in a.iter().zip(&b).zip(&c) {
            assert!((x - y).abs() < 1e-13);
            assert!((x - z).abs() < 1e-13);
        }
    }

    #[test]
    fn constructor_validation() {
        let ctx = Context::new(SerialBackend::new());
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            CavitySim::new(&ctx, 4, 0.8, 0.05).unwrap()
        }))
        .is_err());
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            CavitySim::new(&ctx, 16, 0.5, 0.05).unwrap()
        }))
        .is_err());
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            CavitySim::new(&ctx, 16, 0.8, 0.5).unwrap()
        }))
        .is_err());
    }
}
