//! # racc-backend-oneapi
//!
//! The RACC back end for (simulated) Intel GPUs — the analog of JACC's
//! oneAPI.jl back end (paper Fig. 7). A thin wrapper around
//! [`racc_backend_common::SimBackend`] configured with:
//!
//! * the Data Center Max 1550 device profile (Aurora's accelerator),
//! * items/groups geometry with `maxTotalGroupSize`-bounded 1D launches and
//!   the paper's 16x16 2D item tiles (the SYCL dimension inversion the
//!   paper handles in Fig. 7 is an indexing concern inside the vendor shim;
//!   the RACC mapping of `i` onto the fast axis is identical across back
//!   ends, which is the whole point of the portability layer),
//! * a 1.35x modeled penalty on reductions, reproducing the ~35% overhead
//!   the paper reports for JACC DOT on the Intel GPU (section V-A).

use std::sync::Arc;

use racc_backend_common::{SimBackend, SimBackendConfig};
use racc_core::{
    AccScalar, Backend, DeviceToken, FaultEvent, FaultPlan, KernelProfile, RaccError, ReduceOp,
    RetryPolicy, Timeline,
};
use racc_gpusim::Device;
use racc_oneapisim::OneApi;

/// The oneAPI-flavored RACC back end.
pub struct OneApiBackend {
    inner: SimBackend,
}

impl Default for OneApiBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl OneApiBackend {
    /// A backend on a fresh simulated Max 1550.
    pub fn new() -> Self {
        Self::from_oneapi(&OneApi::new())
    }

    /// Share a device with existing oneAPI-flavored code.
    pub fn from_oneapi(one: &OneApi) -> Self {
        Self::from_device(one.device_arc())
    }

    /// Wrap an arbitrary simulator device.
    pub fn from_device(device: Arc<Device>) -> Self {
        OneApiBackend {
            inner: SimBackend::new(device, Self::config()),
        }
    }

    /// The oneAPI back-end configuration.
    pub fn config() -> SimBackendConfig {
        SimBackendConfig {
            key: "oneapisim",
            tile_2d: (16, 16),
            tile_3d: (8, 8, 4),
            reduce_block: 512,
            racc_launch_extra_ns: 1_500.0,
            reduce_time_factor: 1.35,
        }
    }

    /// The underlying simulator device.
    pub fn device(&self) -> &Arc<Device> {
        self.inner.device()
    }
}

impl Backend for OneApiBackend {
    fn name(&self) -> String {
        self.inner.name()
    }
    fn key(&self) -> &'static str {
        self.inner.key()
    }
    fn is_accelerator(&self) -> bool {
        true
    }
    fn timeline(&self) -> &Timeline {
        self.inner.timeline()
    }
    fn set_sanitizer(&self, enabled: bool) -> bool {
        self.inner.set_sanitizer(enabled)
    }
    fn sanitizer_report(&self) -> Option<String> {
        self.inner.sanitizer_report()
    }
    fn steal_stats(&self) -> Option<racc_core::StealStats> {
        self.inner.steal_stats()
    }
    fn set_chaos(&self, plan: FaultPlan) -> bool {
        self.inner.set_chaos(plan)
    }
    fn set_retry(&self, policy: RetryPolicy) -> bool {
        self.inner.set_retry(policy)
    }
    fn fault_log(&self) -> Vec<FaultEvent> {
        self.inner.fault_log()
    }
    fn self_check(&self) -> Result<(), RaccError> {
        self.inner.self_check()
    }
    fn on_alloc(&self, bytes: usize, upload: bool) -> Result<DeviceToken, RaccError> {
        self.inner.on_alloc(bytes, upload)
    }
    fn on_download(&self, bytes: usize) {
        self.inner.on_download(bytes)
    }
    fn parallel_for_1d<F: Fn(usize) + Sync>(&self, n: usize, p: &KernelProfile, f: F) {
        self.inner.parallel_for_1d(n, p, f)
    }
    fn parallel_for_2d<F: Fn(usize, usize) + Sync>(
        &self,
        m: usize,
        n: usize,
        p: &KernelProfile,
        f: F,
    ) {
        self.inner.parallel_for_2d(m, n, p, f)
    }
    fn parallel_for_3d<F: Fn(usize, usize, usize) + Sync>(
        &self,
        m: usize,
        n: usize,
        l: usize,
        p: &KernelProfile,
        f: F,
    ) {
        self.inner.parallel_for_3d(m, n, l, p, f)
    }
    fn parallel_reduce_1d<T, F, O>(&self, n: usize, p: &KernelProfile, f: F, op: O) -> T
    where
        T: AccScalar,
        F: Fn(usize) -> T + Sync,
        O: ReduceOp<T>,
    {
        self.inner.parallel_reduce_1d(n, p, f, op)
    }
    fn parallel_reduce_2d<T, F, O>(&self, m: usize, n: usize, p: &KernelProfile, f: F, op: O) -> T
    where
        T: AccScalar,
        F: Fn(usize, usize) -> T + Sync,
        O: ReduceOp<T>,
    {
        self.inner.parallel_reduce_2d(m, n, p, f, op)
    }
    fn parallel_reduce_3d<T, F, O>(
        &self,
        m: usize,
        n: usize,
        l: usize,
        p: &KernelProfile,
        f: F,
        op: O,
    ) -> T
    where
        T: AccScalar,
        F: Fn(usize, usize, usize) -> T + Sync,
        O: ReduceOp<T>,
    {
        self.inner.parallel_reduce_3d(m, n, l, p, f, op)
    }
    fn prim_scan_1d<T, F, W, O>(
        &self,
        n: usize,
        inclusive: bool,
        p: &KernelProfile,
        read: F,
        write: W,
        op: O,
    ) where
        T: AccScalar,
        F: Fn(usize) -> T + Sync,
        W: Fn(usize, T) + Sync,
        O: ReduceOp<T>,
    {
        self.inner.prim_scan_1d(n, inclusive, p, read, write, op)
    }
    fn prim_histogram_1d<F, W>(&self, n: usize, bins: usize, p: &KernelProfile, key: F, write: W)
    where
        F: Fn(usize) -> usize + Sync,
        W: Fn(usize, u64) + Sync,
    {
        self.inner.prim_histogram_1d(n, bins, p, key, write)
    }
    fn prim_sort_pairs_1d<F, W>(&self, n: usize, key_bits: u32, p: &KernelProfile, key: F, write: W)
    where
        F: Fn(usize) -> u64 + Sync,
        W: Fn(usize, usize) + Sync,
    {
        self.inner.prim_sort_pairs_1d(n, key_bits, p, key, write)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racc_core::Context;

    #[test]
    fn identity() {
        let b = OneApiBackend::new();
        assert_eq!(b.key(), "oneapisim");
        assert!(b.is_accelerator());
        assert!(b.name().contains("Max 1550"));
    }

    #[test]
    fn same_racc_code_runs_unchanged() {
        // Portability: the identical closure used on other back ends.
        let ctx = Context::new(OneApiBackend::new());
        let n = 10_000usize;
        let x = ctx.array_from_fn(n, |i| i as f64).unwrap();
        let y = ctx.array_from_fn(n, |_| 1.0f64).unwrap();
        let (xv, yv) = (x.view_mut(), y.view());
        ctx.parallel_for(n, &KernelProfile::axpy(), move |i| {
            xv.set(i, xv.get(i) + 2.0 * yv.get(i));
        });
        let host = ctx.to_host(&x).unwrap();
        assert_eq!(host[10], 12.0);
    }

    #[test]
    fn reduce_penalty_is_modeled() {
        // The Intel back end charges 1.35x on the reduction kernels; for the
        // same size, its modeled DOT must cost more relative to its AXPY
        // than on the CUDA back end.
        let one = Context::new(OneApiBackend::new());
        let cuda = Context::new(racc_backend_cuda::CudaBackend::new());
        let n = 1 << 20;
        let ratio = |ctx: &dyn Fn() -> (u64, u64)| ctx();
        let measure = |key: &str| -> f64 {
            let (ctx_for, ctx_red) = match key {
                "one" => {
                    one.reset_timeline();
                    one.parallel_for(n, &KernelProfile::axpy(), |_| {});
                    let t_for = one.modeled_ns();
                    one.reset_timeline();
                    let _: f64 = one.parallel_reduce(n, &KernelProfile::dot(), |_| 1.0);
                    (t_for, one.modeled_ns())
                }
                _ => {
                    cuda.reset_timeline();
                    cuda.parallel_for(n, &KernelProfile::axpy(), |_| {});
                    let t_for = cuda.modeled_ns();
                    cuda.reset_timeline();
                    let _: f64 = cuda.parallel_reduce(n, &KernelProfile::dot(), |_| 1.0);
                    (t_for, cuda.modeled_ns())
                }
            };
            let _ = ratio;
            ctx_red as f64 / ctx_for as f64
        };
        assert!(measure("one") > measure("cuda"));
    }
}
