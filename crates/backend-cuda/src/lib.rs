//! # racc-backend-cuda
//!
//! The RACC back end for (simulated) NVIDIA GPUs — the analog of JACC's
//! CUDA.jl back end (paper Fig. 6). A thin wrapper around
//! [`racc_backend_common::SimBackend`] configured with:
//!
//! * the A100 device profile (Perlmutter's accelerator),
//! * the paper's launch geometry: 1D blocks of
//!   `min(N, maxPossibleThreads)` threads, 16x16 2D tiles,
//! * 512-thread two-kernel reductions (Fig. 3).

use std::sync::Arc;

use racc_backend_common::{SimBackend, SimBackendConfig};
use racc_core::{
    AccScalar, Backend, DeviceToken, FaultEvent, FaultPlan, KernelProfile, RaccError, ReduceOp,
    RetryPolicy, Timeline,
};
use racc_cudasim::Cuda;
use racc_gpusim::Device;

/// The CUDA-flavored RACC back end.
pub struct CudaBackend {
    inner: SimBackend,
}

impl Default for CudaBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl CudaBackend {
    /// A backend on a fresh simulated A100.
    pub fn new() -> Self {
        Self::from_cuda(&Cuda::new())
    }

    /// Share a device with existing CUDA-flavored code (device-specific
    /// benchmark kernels and RACC constructs then accumulate on one clock).
    pub fn from_cuda(cuda: &Cuda) -> Self {
        Self::from_device(cuda.device_arc())
    }

    /// Wrap an arbitrary simulator device.
    pub fn from_device(device: Arc<Device>) -> Self {
        CudaBackend {
            inner: SimBackend::new(device, Self::config()),
        }
    }

    /// The CUDA back-end configuration.
    pub fn config() -> SimBackendConfig {
        SimBackendConfig {
            key: "cudasim",
            tile_2d: (16, 16),
            tile_3d: (8, 8, 4),
            reduce_block: 512,
            racc_launch_extra_ns: 1_200.0,
            reduce_time_factor: 1.0,
        }
    }

    /// The underlying simulator device.
    pub fn device(&self) -> &Arc<Device> {
        self.inner.device()
    }
}

impl Backend for CudaBackend {
    fn name(&self) -> String {
        self.inner.name()
    }
    fn key(&self) -> &'static str {
        self.inner.key()
    }
    fn is_accelerator(&self) -> bool {
        true
    }
    fn timeline(&self) -> &Timeline {
        self.inner.timeline()
    }
    fn set_sanitizer(&self, enabled: bool) -> bool {
        self.inner.set_sanitizer(enabled)
    }
    fn sanitizer_report(&self) -> Option<String> {
        self.inner.sanitizer_report()
    }
    fn steal_stats(&self) -> Option<racc_core::StealStats> {
        self.inner.steal_stats()
    }
    fn set_chaos(&self, plan: FaultPlan) -> bool {
        self.inner.set_chaos(plan)
    }
    fn set_retry(&self, policy: RetryPolicy) -> bool {
        self.inner.set_retry(policy)
    }
    fn fault_log(&self) -> Vec<FaultEvent> {
        self.inner.fault_log()
    }
    fn self_check(&self) -> Result<(), RaccError> {
        self.inner.self_check()
    }
    fn on_alloc(&self, bytes: usize, upload: bool) -> Result<DeviceToken, RaccError> {
        self.inner.on_alloc(bytes, upload)
    }
    fn on_download(&self, bytes: usize) {
        self.inner.on_download(bytes)
    }
    fn parallel_for_1d<F: Fn(usize) + Sync>(&self, n: usize, p: &KernelProfile, f: F) {
        self.inner.parallel_for_1d(n, p, f)
    }
    fn parallel_for_2d<F: Fn(usize, usize) + Sync>(
        &self,
        m: usize,
        n: usize,
        p: &KernelProfile,
        f: F,
    ) {
        self.inner.parallel_for_2d(m, n, p, f)
    }
    fn parallel_for_3d<F: Fn(usize, usize, usize) + Sync>(
        &self,
        m: usize,
        n: usize,
        l: usize,
        p: &KernelProfile,
        f: F,
    ) {
        self.inner.parallel_for_3d(m, n, l, p, f)
    }
    fn parallel_reduce_1d<T, F, O>(&self, n: usize, p: &KernelProfile, f: F, op: O) -> T
    where
        T: AccScalar,
        F: Fn(usize) -> T + Sync,
        O: ReduceOp<T>,
    {
        self.inner.parallel_reduce_1d(n, p, f, op)
    }
    fn parallel_reduce_2d<T, F, O>(&self, m: usize, n: usize, p: &KernelProfile, f: F, op: O) -> T
    where
        T: AccScalar,
        F: Fn(usize, usize) -> T + Sync,
        O: ReduceOp<T>,
    {
        self.inner.parallel_reduce_2d(m, n, p, f, op)
    }
    fn parallel_reduce_3d<T, F, O>(
        &self,
        m: usize,
        n: usize,
        l: usize,
        p: &KernelProfile,
        f: F,
        op: O,
    ) -> T
    where
        T: AccScalar,
        F: Fn(usize, usize, usize) -> T + Sync,
        O: ReduceOp<T>,
    {
        self.inner.parallel_reduce_3d(m, n, l, p, f, op)
    }
    fn prim_scan_1d<T, F, W, O>(
        &self,
        n: usize,
        inclusive: bool,
        p: &KernelProfile,
        read: F,
        write: W,
        op: O,
    ) where
        T: AccScalar,
        F: Fn(usize) -> T + Sync,
        W: Fn(usize, T) + Sync,
        O: ReduceOp<T>,
    {
        self.inner.prim_scan_1d(n, inclusive, p, read, write, op)
    }
    fn prim_histogram_1d<F, W>(&self, n: usize, bins: usize, p: &KernelProfile, key: F, write: W)
    where
        F: Fn(usize) -> usize + Sync,
        W: Fn(usize, u64) + Sync,
    {
        self.inner.prim_histogram_1d(n, bins, p, key, write)
    }
    fn prim_sort_pairs_1d<F, W>(&self, n: usize, key_bits: u32, p: &KernelProfile, key: F, write: W)
    where
        F: Fn(usize) -> u64 + Sync,
        W: Fn(usize, usize) + Sync,
    {
        self.inner.prim_sort_pairs_1d(n, key_bits, p, key, write)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racc_core::Context;

    #[test]
    fn identity() {
        let b = CudaBackend::new();
        assert_eq!(b.key(), "cudasim");
        assert!(b.is_accelerator());
        assert!(b.name().contains("A100"));
    }

    #[test]
    fn axpy_dot_through_context() {
        let ctx = Context::new(CudaBackend::new());
        let n = 50_000usize;
        let x = ctx.array_from_fn(n, |i| i as f64).unwrap();
        let y = ctx.array_from_fn(n, |_| 2.0f64).unwrap();
        let (xv, yv) = (x.view_mut(), y.view());
        ctx.parallel_for(n, &KernelProfile::axpy(), move |i| {
            xv.set(i, xv.get(i) + 0.5 * yv.get(i));
        });
        let xv = x.view();
        let total: f64 = ctx.parallel_reduce(n, &KernelProfile::dot(), move |i| xv.get(i));
        let expect = (0..n).map(|i| i as f64 + 1.0).sum::<f64>();
        assert!((total - expect).abs() < 1e-6);
    }

    #[test]
    fn shares_device_with_vendor_api() {
        let cuda = Cuda::new();
        let b = CudaBackend::from_cuda(&cuda);
        let clock0 = cuda.clock_ns();
        let ctx = Context::new(b);
        ctx.parallel_for(1024, &KernelProfile::axpy(), |_| {});
        assert!(
            cuda.clock_ns() > clock0,
            "RACC launch advances the shared vendor clock"
        );
    }
}
