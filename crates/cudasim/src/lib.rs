//! # racc-cudasim
//!
//! A CUDA.jl-flavored vendor API over the [`racc_gpusim`] simulator — the
//! stand-in for the `CUDA.jl` package the paper's NVIDIA back end and its
//! device-specific benchmark codes are written against.
//!
//! The API mirrors the shapes that appear in the paper's listings:
//!
//! * [`CuArray`] — device arrays (`CuArray(x)`, `CUDA.zeros(Float64, n)`);
//! * [`Cuda::launch`] — `@cuda threads=.. blocks=.. shmem=..`;
//! * [`Cuda::attribute`] — `attribute(device(), CUDA.DEVICE_ATTRIBUTE_...)`;
//! * [`CuEvent`] — `CUDA.@elapsed`-style timing off the device clock;
//! * warp size 32 and an A100 device profile by default.
//!
//! Thread indexing is **0-based** (native CUDA), unlike the 1-based Julia
//! wrappers in the paper's listings.
//!
//! ```
//! use racc_cudasim::{Cuda, CudaError};
//! use racc_gpusim::KernelCost;
//!
//! # fn main() -> Result<(), CudaError> {
//! let cuda = Cuda::new();
//! let x = cuda.cu_array(&vec![1.0f64; 256])?;
//! let xs = cuda.view_mut(&x)?;
//! cuda.launch(256, 1, 0, KernelCost::memory_bound(8.0, 8.0), |t| {
//!     let i = t.global_id_x();
//!     xs.set(i, xs.get(i) + 1.0);
//! })?;
//! assert_eq!(cuda.to_host(&x)?[0], 2.0);
//! # Ok(())
//! # }
//! ```

use std::sync::Arc;

use racc_gpusim::{
    profiles, Device, DeviceBuffer, DeviceSlice, DeviceSliceMut, Element, Event, KernelCost,
    LaunchConfig, PhasedKernel, SimError, ThreadCtx,
};

/// Error type of the CUDA-flavored API.
#[derive(Debug, Clone, PartialEq)]
pub struct CudaError(pub SimError);

impl std::fmt::Display for CudaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CUDA error: {}", self.0)
    }
}

impl std::error::Error for CudaError {}

impl From<SimError> for CudaError {
    fn from(e: SimError) -> Self {
        CudaError(e)
    }
}

impl From<CudaError> for racc_core::RaccError {
    fn from(e: CudaError) -> Self {
        e.0.into()
    }
}

/// Device attributes, mirroring `CUdevice_attribute` queries used by the
/// paper's back end (Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceAttribute {
    /// `CU_DEVICE_ATTRIBUTE_MAX_BLOCK_DIM_X`.
    MaxBlockDimX,
    /// `CU_DEVICE_ATTRIBUTE_MAX_THREADS_PER_BLOCK`.
    MaxThreadsPerBlock,
    /// `CU_DEVICE_ATTRIBUTE_MULTIPROCESSOR_COUNT`.
    MultiprocessorCount,
    /// `CU_DEVICE_ATTRIBUTE_WARP_SIZE`.
    WarpSize,
    /// `CU_DEVICE_ATTRIBUTE_MAX_SHARED_MEMORY_PER_BLOCK`.
    MaxSharedMemoryPerBlock,
}

/// A device array, the analog of `CuArray{T}`.
pub type CuArray<T> = DeviceBuffer<T>;

/// An event on the device timeline (`CuEvent`).
pub type CuEvent = Event;

/// The CUDA-flavored context owning one simulated NVIDIA device.
pub struct Cuda {
    device: Arc<Device>,
}

impl Default for Cuda {
    fn default() -> Self {
        Self::new()
    }
}

impl Cuda {
    /// A context on a simulated NVIDIA A100.
    pub fn new() -> Self {
        Cuda {
            device: Arc::new(Device::new(profiles::nvidia_a100())),
        }
    }

    /// A context on a custom device specification.
    pub fn with_spec(spec: racc_gpusim::DeviceSpec) -> Self {
        Cuda {
            device: Arc::new(Device::new(spec)),
        }
    }

    /// Fallible [`Cuda::with_spec`]: a bad specification comes back as an
    /// error (cudaErrorInvalidDevice analog) instead of a panic.
    pub fn try_with_spec(spec: racc_gpusim::DeviceSpec) -> Result<Self, CudaError> {
        Ok(Cuda {
            device: Arc::new(Device::try_new(spec)?),
        })
    }

    /// Access the underlying simulator device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Share the device handle (e.g. with a portability back end).
    pub fn device_arc(&self) -> Arc<Device> {
        Arc::clone(&self.device)
    }

    /// Enable or disable the device sanitizer (`compute-sanitizer`
    /// equivalent: OOB/UAF/race/barrier/leak checking on the simulator).
    pub fn set_sanitizer(&self, enabled: bool) {
        self.device.set_sanitizer(enabled);
    }

    /// Sanitizer findings for this context; `None` while disabled.
    pub fn sanitizer_report(&self) -> Option<racc_gpusim::SanitizerReport> {
        self.device.sanitizer_report()
    }

    /// Arm deterministic fault injection (`racc-chaos`) on the device.
    pub fn set_chaos(&self, plan: racc_gpusim::FaultPlan) {
        self.device.set_chaos(plan);
    }

    /// Every fault injected on the device so far, in injection order.
    pub fn fault_log(&self) -> Vec<racc_gpusim::FaultEvent> {
        self.device.fault_log()
    }

    /// Query a device attribute.
    pub fn attribute(&self, attr: DeviceAttribute) -> usize {
        let spec = self.device.spec();
        match attr {
            DeviceAttribute::MaxBlockDimX => spec.max_block_dim_x as usize,
            DeviceAttribute::MaxThreadsPerBlock => spec.max_threads_per_block as usize,
            DeviceAttribute::MultiprocessorCount => spec.compute_units as usize,
            DeviceAttribute::WarpSize => spec.simt_width as usize,
            DeviceAttribute::MaxSharedMemoryPerBlock => spec.shared_mem_per_block,
        }
    }

    /// `CuArray(host)`: allocate + upload.
    pub fn cu_array<T: Element>(&self, host: &[T]) -> Result<CuArray<T>, CudaError> {
        Ok(self.device.alloc_from(host)?)
    }

    /// `CUDA.zeros(T, n)`.
    pub fn zeros<T: Element>(&self, n: usize) -> Result<CuArray<T>, CudaError> {
        Ok(self.device.alloc::<T>(n)?)
    }

    /// Download to host (`Array(dx)`).
    pub fn to_host<T: Element>(&self, arr: &CuArray<T>) -> Result<Vec<T>, CudaError> {
        Ok(self.device.read_vec(arr)?)
    }

    /// Read one element (the scalar result readback after a reduction).
    pub fn read_scalar<T: Element>(&self, arr: &CuArray<T>, i: usize) -> Result<T, CudaError> {
        Ok(self.device.read_scalar(arr, i)?)
    }

    /// Device-to-device copy (`copyto!`).
    pub fn copy<T: Element>(&self, src: &CuArray<T>, dst: &CuArray<T>) -> Result<(), CudaError> {
        Ok(self.device.copy(src, dst)?)
    }

    /// Read-only kernel view.
    pub fn view<T: Element>(&self, arr: &CuArray<T>) -> Result<DeviceSlice<T>, CudaError> {
        Ok(self.device.slice(arr)?)
    }

    /// Writable kernel view.
    pub fn view_mut<T: Element>(&self, arr: &CuArray<T>) -> Result<DeviceSliceMut<T>, CudaError> {
        Ok(self.device.slice_mut(arr)?)
    }

    /// `@cuda threads=threads blocks=blocks shmem=shmem kernel(...)`:
    /// launch a non-cooperative kernel over a 1D grid. Synchronous, like the
    /// `CUDA.@sync` pattern the paper's back end uses.
    ///
    /// With `shmem == 0` this dispatches through the simulator's
    /// non-cooperative fast path (no per-block arena or phase machinery —
    /// see `DESIGN.md` §6); the `launch_overhead` bench gates its cost.
    pub fn launch<F>(
        &self,
        threads: u32,
        blocks: u32,
        shmem: usize,
        cost: KernelCost,
        body: F,
    ) -> Result<u64, CudaError>
    where
        F: Fn(&ThreadCtx) + Sync,
    {
        let cfg = LaunchConfig::new(blocks, threads).with_shared_mem(shmem);
        Ok(self.device.launch(cfg, cost, body)?)
    }

    /// 2D launch with `(tx, ty)` thread tiles and `(bx, by)` blocks.
    pub fn launch_2d<F>(
        &self,
        threads: (u32, u32),
        blocks: (u32, u32),
        shmem: usize,
        cost: KernelCost,
        body: F,
    ) -> Result<u64, CudaError>
    where
        F: Fn(&ThreadCtx) + Sync,
    {
        let cfg = LaunchConfig::new(blocks, threads).with_shared_mem(shmem);
        Ok(self.device.launch(cfg, cost, body)?)
    }

    /// 3D launch.
    pub fn launch_3d<F>(
        &self,
        threads: (u32, u32, u32),
        blocks: (u32, u32, u32),
        shmem: usize,
        cost: KernelCost,
        body: F,
    ) -> Result<u64, CudaError>
    where
        F: Fn(&ThreadCtx) + Sync,
    {
        let cfg = LaunchConfig::new(blocks, threads).with_shared_mem(shmem);
        Ok(self.device.launch(cfg, cost, body)?)
    }

    /// Launch a cooperative kernel (one that needs `__syncthreads`), e.g.
    /// the shared-memory tree reduction of the paper's Fig. 3.
    pub fn launch_cooperative<K>(
        &self,
        threads: u32,
        blocks: u32,
        shmem: usize,
        cost: KernelCost,
        kernel: &K,
    ) -> Result<u64, CudaError>
    where
        K: PhasedKernel,
    {
        let cfg = LaunchConfig::new(blocks, threads).with_shared_mem(shmem);
        Ok(self.device.launch_phased(cfg, cost, kernel)?)
    }

    /// Create a new (non-default) stream.
    pub fn create_stream(&self) -> racc_gpusim::Stream {
        self.device.create_stream()
    }

    /// Launch asynchronously on a stream (`@cuda ... stream=s` without the
    /// trailing `CUDA.@sync`): kernels on different streams overlap on the
    /// modeled clock; call [`Cuda::sync_stream`] or [`Cuda::synchronize`]
    /// to join.
    pub fn launch_async<F>(
        &self,
        stream: &racc_gpusim::Stream,
        threads: u32,
        blocks: u32,
        shmem: usize,
        cost: KernelCost,
        body: F,
    ) -> Result<u64, CudaError>
    where
        F: Fn(&ThreadCtx) + Sync,
    {
        let cfg = LaunchConfig::new(blocks, threads).with_shared_mem(shmem);
        Ok(self.device.launch_async(stream, cfg, cost, body)?)
    }

    /// Wait for one stream's modeled completion.
    pub fn sync_stream(&self, stream: &racc_gpusim::Stream) {
        self.device.sync_stream(stream)
    }

    /// Fill a buffer with a constant (a memset-style kernel).
    pub fn fill<T: Element>(&self, arr: &CuArray<T>, value: T) -> Result<(), CudaError> {
        let n = arr.len();
        if n == 0 {
            return Ok(());
        }
        let v = self.view_mut(arr)?;
        let threads = n.clamp(1, 256) as u32;
        let blocks = n.div_ceil(threads as usize) as u32;
        self.launch(
            threads,
            blocks,
            0,
            KernelCost::memory_bound(0.0, std::mem::size_of::<T>() as f64),
            move |t| {
                let i = t.global_id_x();
                if i < n {
                    v.set(i, value);
                }
            },
        )?;
        Ok(())
    }

    /// Record an event on the device timeline.
    pub fn record_event(&self) -> CuEvent {
        self.device.record_event()
    }

    /// `CUDA.synchronize()`.
    pub fn synchronize(&self) {
        self.device.synchronize()
    }

    /// Current device clock in nanoseconds (simulation-level observability).
    pub fn clock_ns(&self) -> u64 {
        self.device.clock_ns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attributes_match_a100() {
        let cuda = Cuda::new();
        assert_eq!(cuda.attribute(DeviceAttribute::WarpSize), 32);
        assert_eq!(cuda.attribute(DeviceAttribute::MultiprocessorCount), 108);
        assert_eq!(cuda.attribute(DeviceAttribute::MaxThreadsPerBlock), 1024);
        assert_eq!(cuda.attribute(DeviceAttribute::MaxBlockDimX), 1024);
        assert!(cuda.attribute(DeviceAttribute::MaxSharedMemoryPerBlock) >= 96 * 1024);
    }

    #[test]
    fn array_round_trip_and_zeros() {
        let cuda = Cuda::new();
        let host: Vec<f64> = (0..100).map(f64::from).collect();
        let dx = cuda.cu_array(&host).unwrap();
        assert_eq!(cuda.to_host(&dx).unwrap(), host);
        let z = cuda.zeros::<f64>(10).unwrap();
        assert!(cuda.to_host(&z).unwrap().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn paper_style_axpy() {
        // The AXPY from the paper, written the device-specific way.
        let cuda = Cuda::new();
        let n = 10_000usize;
        let alpha = 2.5f64;
        let hx = vec![1.0f64; n];
        let hy = vec![3.0f64; n];
        let dx = cuda.cu_array(&hx).unwrap();
        let dy = cuda.cu_array(&hy).unwrap();
        let max_threads = cuda.attribute(DeviceAttribute::MaxBlockDimX);
        let threads = n.min(max_threads) as u32;
        let blocks = n.div_ceil(threads as usize) as u32;
        let x = cuda.view_mut(&dx).unwrap();
        let y = cuda.view(&dy).unwrap();
        cuda.launch(
            threads,
            blocks,
            0,
            KernelCost::new(2.0, 16.0, 8.0, 1.0),
            |t| {
                let i = t.global_id_x();
                if i < n {
                    x.set(i, x.get(i) + alpha * y.get(i));
                }
            },
        )
        .unwrap();
        let out = cuda.to_host(&dx).unwrap();
        assert!(out.iter().all(|&v| (v - 8.5).abs() < 1e-12));
    }

    #[test]
    fn events_time_kernels() {
        let cuda = Cuda::new();
        let e0 = cuda.record_event();
        cuda.launch(256, 1024, 0, KernelCost::default(), |_| {})
            .unwrap();
        cuda.synchronize();
        let e1 = cuda.record_event();
        assert!(e0.elapsed_ns(&e1) as f64 >= cuda.device().spec().launch_overhead_ns);
    }

    #[test]
    fn launch_2d_and_3d_shapes() {
        let cuda = Cuda::new();
        let (m, n) = (64usize, 32usize);
        let buf = cuda.zeros::<u32>(m * n).unwrap();
        let v = cuda.view_mut(&buf).unwrap();
        cuda.launch_2d((16, 16), (4, 2), 0, KernelCost::default(), |t| {
            let (i, j) = (t.global_id_x(), t.global_id_y());
            v.set(j * m + i, 1);
        })
        .unwrap();
        assert!(cuda.to_host(&buf).unwrap().iter().all(|&x| x == 1));

        let vol = cuda.zeros::<u32>(4 * 4 * 4).unwrap();
        let v = cuda.view_mut(&vol).unwrap();
        cuda.launch_3d((4, 4, 4), (1, 1, 1), 0, KernelCost::default(), |t| {
            let idx = (t.global_id_z() * 4 + t.global_id_y()) * 4 + t.global_id_x();
            v.set(idx, idx as u32);
        })
        .unwrap();
        let host = cuda.to_host(&vol).unwrap();
        for (i, x) in host.iter().enumerate() {
            assert_eq!(*x, i as u32);
        }
    }

    #[test]
    fn errors_are_wrapped() {
        let cuda = Cuda::new();
        let err = cuda
            .launch(2048, 1, 0, KernelCost::default(), |_| {})
            .unwrap_err();
        assert!(err.to_string().contains("CUDA error"));
    }

    #[test]
    fn fill_sets_every_element() {
        let api = Cuda::new();
        let buf = api.zeros::<f64>(1000).unwrap();
        api.fill(&buf, 3.25).unwrap();
        assert!(api.to_host(&buf).unwrap().iter().all(|&v| v == 3.25));
        let empty = api.zeros::<f64>(0).unwrap();
        api.fill(&empty, 1.0).unwrap();
    }

    #[test]
    fn stream_overlap_through_the_vendor_api() {
        let cuda = Cuda::new();
        let s1 = cuda.create_stream();
        let s2 = cuda.create_stream();
        let cost = KernelCost::memory_bound(64.0, 64.0);
        let n1 = cuda.launch_async(&s1, 256, 4096, 0, cost, |_| {}).unwrap();
        let n2 = cuda.launch_async(&s2, 256, 4096, 0, cost, |_| {}).unwrap();
        assert_eq!(cuda.clock_ns(), 0);
        cuda.synchronize();
        assert_eq!(cuda.clock_ns(), n1.max(n2));
        cuda.sync_stream(&s1); // idempotent after synchronize
    }
}
