//! Property tests: any store the writer can emit parses back identically.

use proptest::prelude::*;
use racc_prefs::{Preferences, Value};

fn arb_scalar() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Integer),
        // Finite floats only: NaN is not storable by design.
        any::<f64>()
            .prop_filter("finite", |x| x.is_finite())
            .prop_map(Value::Float),
        any::<bool>().prop_map(Value::Bool),
        // Strings including escapes-worthy characters.
        "[ -~\\n\\t]{0,24}".prop_map(Value::String),
    ]
}

fn arb_value() -> impl Strategy<Value = Value> {
    arb_scalar().prop_recursive(2, 16, 4, |inner| {
        prop::collection::vec(inner, 0..4).prop_map(Value::Array)
    })
}

fn arb_name() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9_-]{1,12}"
}

proptest! {
    #[test]
    fn document_round_trips(entries in prop::collection::vec(
        (arb_name(), arb_name(), arb_value()), 0..12))
    {
        let mut p = Preferences::new();
        for (table, key, value) in &entries {
            p.set(table, key, value.clone());
        }
        let text = p.to_toml();
        let q = Preferences::from_toml(&text).unwrap();
        prop_assert_eq!(p.len(), q.len());
        for (t, k, v) in p.iter() {
            prop_assert_eq!(q.get(t, k), Some(v));
        }
    }

    #[test]
    fn arbitrary_strings_round_trip(s in "\\PC{0,64}") {
        let mut p = Preferences::new();
        p.set("t", "k", s.clone());
        let q = Preferences::from_toml(&p.to_toml()).unwrap();
        prop_assert_eq!(q.get_str("t", "k"), Some(s.as_str()));
    }

    #[test]
    fn parser_never_panics(text in "\\PC{0,128}") {
        let _ = Preferences::from_toml(&text);
    }
}
