//! The file-backed preferences store.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use crate::error::PrefsError;
use crate::parser::parse_document;
use crate::value::Value;
use crate::writer::write_document;

/// Default file name, the analog of Julia's `LocalPreferences.toml`.
pub const PREFS_FILE_NAME: &str = "RaccPreferences.toml";

/// Prefix for environment-variable overrides. A preference `[racc].backend`
/// can be overridden with `RACC_PREF_RACC_BACKEND=...`; the dedicated
/// `RACC_BACKEND` shortcut is handled by the front end itself.
pub const PREFS_ENV_PREFIX: &str = "RACC_PREF_";

/// An in-memory preferences document, optionally bound to a backing file.
///
/// Structure is two-level, like `LocalPreferences.toml`: named tables (one
/// per package/component) holding `key = value` pairs. Keys set before any
/// table header live in the root table `""`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Preferences {
    tables: BTreeMap<String, BTreeMap<String, Value>>,
    path: Option<PathBuf>,
}

impl Preferences {
    /// Create an empty, unbound store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parse a store from document text.
    pub fn from_toml(text: &str) -> Result<Self, PrefsError> {
        let mut prefs = Preferences::new();
        for (table, key, value) in parse_document(text)? {
            prefs.tables.entry(table).or_default().insert(key, value);
        }
        Ok(prefs)
    }

    /// Load from a file, binding the store to that path. A missing file
    /// yields an empty store (so first-run works), still bound to the path.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, PrefsError> {
        let path = path.as_ref();
        let mut prefs = match fs::read_to_string(path) {
            Ok(text) => Self::from_toml(&text)?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Preferences::new(),
            Err(e) => return Err(e.into()),
        };
        prefs.path = Some(path.to_owned());
        Ok(prefs)
    }

    /// Load `RaccPreferences.toml` from `dir`.
    pub fn load_dir(dir: impl AsRef<Path>) -> Result<Self, PrefsError> {
        Self::load(dir.as_ref().join(PREFS_FILE_NAME))
    }

    /// Serialize to document text.
    pub fn to_toml(&self) -> String {
        write_document(&self.tables)
    }

    /// Save to the bound path (or the given path, which also rebinds).
    pub fn save_to(&mut self, path: impl AsRef<Path>) -> Result<(), PrefsError> {
        let path = path.as_ref();
        fs::write(path, self.to_toml())?;
        self.path = Some(path.to_owned());
        Ok(())
    }

    /// Save to the path this store was loaded from.
    ///
    /// # Panics
    /// Panics if the store is not bound to a path; use [`Self::save_to`].
    pub fn save(&mut self) -> Result<(), PrefsError> {
        let path = self
            .path
            .clone()
            .expect("Preferences::save on an unbound store; use save_to");
        self.save_to(path)
    }

    /// The backing path, if any.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Set `[table].key = value`.
    pub fn set(&mut self, table: &str, key: &str, value: impl Into<Value>) {
        self.tables
            .entry(table.to_owned())
            .or_default()
            .insert(key.to_owned(), value.into());
    }

    /// Remove `[table].key`, returning the previous value.
    pub fn remove(&mut self, table: &str, key: &str) -> Option<Value> {
        let entries = self.tables.get_mut(table)?;
        let old = entries.remove(key);
        if entries.is_empty() {
            self.tables.remove(table);
        }
        old
    }

    /// Look up `[table].key`, consulting the `RACC_PREF_<TABLE>_<KEY>`
    /// environment override first (parsed as a bare string value).
    pub fn get(&self, table: &str, key: &str) -> Option<&Value> {
        self.tables.get(table)?.get(key)
    }

    /// Look up with the environment override applied. Environment values are
    /// returned as owned strings since they are not part of the document.
    pub fn get_with_env(&self, table: &str, key: &str) -> Option<Value> {
        if let Some(v) = env_override(table, key) {
            return Some(Value::String(v));
        }
        self.get(table, key).cloned()
    }

    /// Typed accessor: string.
    pub fn get_str(&self, table: &str, key: &str) -> Option<&str> {
        self.get(table, key)?.as_str()
    }

    /// Typed accessor: integer.
    pub fn get_int(&self, table: &str, key: &str) -> Option<i64> {
        self.get(table, key)?.as_int()
    }

    /// Typed accessor: float (integers widen).
    pub fn get_float(&self, table: &str, key: &str) -> Option<f64> {
        self.get(table, key)?.as_float()
    }

    /// Typed accessor: bool.
    pub fn get_bool(&self, table: &str, key: &str) -> Option<bool> {
        self.get(table, key)?.as_bool()
    }

    /// Typed accessor that errors (rather than returning `None`) when the key
    /// exists with the wrong type — catching config typos loudly.
    pub fn require_str(&self, table: &str, key: &str) -> Result<Option<&str>, PrefsError> {
        match self.get(table, key) {
            None => Ok(None),
            Some(Value::String(s)) => Ok(Some(s)),
            Some(other) => Err(PrefsError::TypeMismatch {
                table: table.to_owned(),
                key: key.to_owned(),
                expected: "string",
                found: other.type_name(),
            }),
        }
    }

    /// Iterate over all `(table, key, value)` triples in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str, &Value)> {
        self.tables.iter().flat_map(|(t, entries)| {
            entries
                .iter()
                .map(move |(k, v)| (t.as_str(), k.as_str(), v))
        })
    }

    /// Total number of stored preferences.
    pub fn len(&self) -> usize {
        self.tables.values().map(|t| t.len()).sum()
    }

    /// True if no preferences are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn env_override(table: &str, key: &str) -> Option<String> {
    let name = format!(
        "{PREFS_ENV_PREFIX}{}_{}",
        sanitize_env(table),
        sanitize_env(key)
    );
    std::env::var(name).ok()
}

fn sanitize_env(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_uppercase()
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_remove() {
        let mut p = Preferences::new();
        assert!(p.is_empty());
        p.set("racc", "backend", "threads");
        p.set("racc", "threads", 8i64);
        p.set("", "root_key", true);
        assert_eq!(p.len(), 3);
        assert_eq!(p.get_str("racc", "backend"), Some("threads"));
        assert_eq!(p.get_int("racc", "threads"), Some(8));
        assert_eq!(p.get_bool("", "root_key"), Some(true));
        assert_eq!(p.get_float("racc", "threads"), Some(8.0));
        assert_eq!(
            p.remove("racc", "backend"),
            Some(Value::String("threads".into()))
        );
        assert_eq!(p.get("racc", "backend"), None);
        assert_eq!(p.remove("racc", "backend"), None);
    }

    #[test]
    fn round_trip_through_text() {
        let mut p = Preferences::new();
        p.set("racc", "backend", "cudasim");
        p.set("racc", "pinned", vec![0i64, 2, 4]);
        p.set("racc-gpusim", "bandwidth_gbs", 1555.0);
        p.set("", "verbose", false);
        p.set("odd table", "odd key", "v");
        let text = p.to_toml();
        let q = Preferences::from_toml(&text).unwrap();
        assert_eq!(p.iter().count(), q.iter().count());
        for (t, k, v) in p.iter() {
            assert_eq!(q.get(t, k), Some(v), "at [{t}].{k}");
        }
    }

    #[test]
    fn later_duplicates_win() {
        let p = Preferences::from_toml("[a]\nk = 1\nk = 2\n").unwrap();
        assert_eq!(p.get_int("a", "k"), Some(2));
    }

    #[test]
    fn file_round_trip_and_missing_file() {
        let dir = std::env::temp_dir().join(format!("racc-prefs-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // Missing file loads as empty but bound.
        let mut p = Preferences::load_dir(&dir).unwrap();
        assert!(p.is_empty());
        assert!(p.path().is_some());
        p.set("racc", "backend", "hipsim");
        p.save().unwrap();
        let q = Preferences::load_dir(&dir).unwrap();
        assert_eq!(q.get_str("racc", "backend"), Some("hipsim"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn require_str_type_mismatch() {
        let mut p = Preferences::new();
        p.set("racc", "backend", 3i64);
        let err = p.require_str("racc", "backend").unwrap_err();
        assert!(err.to_string().contains("expected string"));
        assert!(p.require_str("racc", "missing").unwrap().is_none());
    }

    #[test]
    fn env_override_wins() {
        let table = "envtest";
        let key = format!("k{}", std::process::id());
        let var = format!(
            "{PREFS_ENV_PREFIX}{}_{}",
            sanitize_env(table),
            sanitize_env(&key)
        );
        let mut p = Preferences::new();
        p.set(table, &key, "from-file");
        std::env::set_var(&var, "from-env");
        assert_eq!(
            p.get_with_env(table, &key),
            Some(Value::String("from-env".into()))
        );
        std::env::remove_var(&var);
        assert_eq!(
            p.get_with_env(table, &key),
            Some(Value::String("from-file".into()))
        );
    }
}
