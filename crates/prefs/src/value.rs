//! The value model for the TOML subset used by the preferences store.

use std::fmt;

/// A preference value.
///
/// This mirrors the subset of TOML value types the store supports. Arrays are
/// heterogeneous at the type level but the writer only ever emits homogeneous
/// arrays, matching what `Preferences.jl` produces in practice.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A UTF-8 string, serialized with basic-string escaping.
    String(String),
    /// A 64-bit signed integer.
    Integer(i64),
    /// A 64-bit float. NaN is not representable in TOML and is rejected by
    /// the writer.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// An array of values.
    Array(Vec<Value>),
}

impl Value {
    /// Returns the string payload if this is a [`Value::String`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the integer payload if this is a [`Value::Integer`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Integer(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the float payload, widening integers, if numeric.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Integer(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Returns the boolean payload if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the array payload if this is a [`Value::Array`].
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// A short name for the value's type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::String(_) => "string",
            Value::Integer(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
            Value::Array(_) => "array",
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Integer(i)
    }
}

impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Integer(i as i64)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::writer::write_value(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_variants() {
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::from(3i64).as_int(), Some(3));
        assert_eq!(Value::from(3i64).as_float(), Some(3.0));
        assert_eq!(Value::from(2.5).as_float(), Some(2.5));
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert!(Value::from("x").as_int().is_none());
        assert!(Value::from(1i64).as_str().is_none());
        assert!(Value::from(false).as_float().is_none());
    }

    #[test]
    fn array_conversion_preserves_order() {
        let v = Value::from(vec![1i64, 2, 3]);
        let arr = v.as_array().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].as_int(), Some(3));
    }

    #[test]
    fn type_names() {
        assert_eq!(Value::from("x").type_name(), "string");
        assert_eq!(Value::from(1i64).type_name(), "integer");
        assert_eq!(Value::from(1.0).type_name(), "float");
        assert_eq!(Value::from(true).type_name(), "boolean");
        assert_eq!(Value::Array(vec![]).type_name(), "array");
    }
}
