//! Serialization of a preferences store back to the TOML subset.

use std::collections::BTreeMap;
use std::fmt;

use crate::value::Value;

/// Write a single value in TOML syntax.
pub(crate) fn write_value(value: &Value, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match value {
        Value::String(s) => write_string(s, f),
        Value::Integer(i) => write!(f, "{i}"),
        Value::Float(x) => write_float(*x, f),
        Value::Bool(b) => write!(f, "{b}"),
        Value::Array(items) => {
            write!(f, "[")?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write_value(item, f)?;
            }
            write!(f, "]")
        }
    }
}

fn write_string(s: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\t' => write!(f, "\\t")?,
            '\r' => write!(f, "\\r")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04X}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

/// Floats are written so that they parse back as floats (always including a
/// decimal point or exponent). NaN panics: it is not representable in TOML
/// and storing it as a preference is a caller bug.
fn write_float(x: f64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    assert!(!x.is_nan(), "NaN preferences are not representable");
    if x.is_infinite() {
        // Not standard TOML, but round-trips through our parser via exponent
        // overflow being rejected; encode as a huge literal instead.
        return write!(f, "{}1e999", if x < 0.0 { "-" } else { "" });
    }
    let s = format!("{x}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        write!(f, "{s}")
    } else {
        write!(f, "{s}.0")
    }
}

/// Serialize a map of tables to a document string. Tables and keys are
/// emitted in sorted order so output is deterministic.
pub fn write_document(tables: &BTreeMap<String, BTreeMap<String, Value>>) -> String {
    struct Doc<'a>(&'a BTreeMap<String, BTreeMap<String, Value>>);
    impl fmt::Display for Doc<'_> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            let mut first = true;
            // Root table ("") first, then named tables.
            for (table, entries) in self.0 {
                if entries.is_empty() {
                    continue;
                }
                if !first {
                    writeln!(f)?;
                }
                first = false;
                if !table.is_empty() {
                    write!(f, "[")?;
                    write_table_name(table, f)?;
                    writeln!(f, "]")?;
                }
                for (key, value) in entries {
                    write_key(key, f)?;
                    write!(f, " = ")?;
                    write_value(value, f)?;
                    writeln!(f)?;
                }
            }
            Ok(())
        }
    }
    format!("{}", Doc(tables))
}

/// Table headers support dotted names: `[tenant.alice]` round-trips bare
/// as long as every dot-separated component is a bare key (the form the
/// parser validates); anything else falls back to a quoted name.
fn write_table_name(table: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let bare_dotted = table.split('.').all(|part| {
        !part.is_empty()
            && part
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    });
    if bare_dotted {
        write!(f, "{table}")
    } else {
        write_string(table, f)
    }
}

fn write_key(key: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let bare = !key.is_empty()
        && key
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-');
    if bare {
        write!(f, "{key}")
    } else {
        write_string(key, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_scalars() {
        assert_eq!(Value::from(3i64).to_string(), "3");
        assert_eq!(Value::from(2.5).to_string(), "2.5");
        assert_eq!(Value::from(2.0).to_string(), "2.0");
        assert_eq!(Value::from(true).to_string(), "true");
        assert_eq!(Value::from("a\"b\\c\nd").to_string(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn display_arrays() {
        let v = Value::from(vec![1i64, 2]);
        assert_eq!(v.to_string(), "[1, 2]");
        assert_eq!(Value::Array(vec![]).to_string(), "[]");
    }

    #[test]
    fn floats_round_trip_as_floats() {
        for x in [0.0, -1.5, 1e-9, 3.0, 1234567.0, f64::MAX] {
            let text = format!("a = {}", Value::from(x));
            let parsed = crate::parser::parse_document(&text).unwrap();
            assert_eq!(parsed[0].2, Value::Float(x), "for {x}");
        }
    }

    #[test]
    fn control_characters_escape() {
        let v = Value::from("\u{1}");
        assert_eq!(v.to_string(), "\"\\u0001\"");
        let text = format!("a = {v}");
        let parsed = crate::parser::parse_document(&text).unwrap();
        assert_eq!(parsed[0].2, Value::String("\u{1}".into()));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_panics() {
        let _ = Value::from(f64::NAN).to_string();
    }
}
