//! # racc-prefs
//!
//! A small, dependency-free preferences substrate for the RACC programming model.
//!
//! JACC (the system this workspace reproduces) selects its back end through
//! Julia's `Preferences.jl` package, which persists the choice in a
//! `LocalPreferences.toml` file next to the project before precompilation.
//! RACC mirrors that flow: the [`Preferences`] store reads and writes a
//! `RaccPreferences.toml` file, and the front end consults it (after an
//! environment-variable override) when constructing its default context.
//!
//! The file format is a practical subset of TOML:
//!
//! * `[table]` and `[dotted.table]` headers,
//! * `key = value` pairs with string, integer, float, boolean and
//!   homogeneous-array values,
//! * `#` comments and blank lines.
//!
//! The subset is round-trippable: everything [`Preferences::save`] writes,
//! [`Preferences::load`] parses back to an identical store.
//!
//! ```
//! use racc_prefs::{Preferences, Value};
//!
//! let mut prefs = Preferences::new();
//! prefs.set("racc", "backend", "cudasim");
//! prefs.set("racc", "threads", 64i64);
//! let text = prefs.to_toml();
//! let back = Preferences::from_toml(&text).unwrap();
//! assert_eq!(back.get_str("racc", "backend"), Some("cudasim"));
//! assert_eq!(back.get("racc", "threads"), Some(&Value::Integer(64)));
//! ```

mod error;
mod parser;
mod store;
mod tenant;
mod value;
mod writer;

pub use error::{ParseError, PrefsError};
pub use parser::parse_document;
pub use store::{Preferences, PREFS_ENV_PREFIX, PREFS_FILE_NAME};
pub use tenant::{TenantPrefs, TENANT_TABLE_PREFIX};
pub use value::Value;
pub use writer::write_document;
