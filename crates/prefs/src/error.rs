//! Error types for the preferences substrate.

use std::fmt;
use std::io;

/// An error produced while parsing a preferences document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number where the error occurred.
    pub line: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl ParseError {
    pub(crate) fn new(line: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Any error produced by the preferences store.
#[derive(Debug)]
pub enum PrefsError {
    /// The document failed to parse.
    Parse(ParseError),
    /// An I/O error while reading or writing the backing file.
    Io(io::Error),
    /// A value existed but had an unexpected type.
    TypeMismatch {
        /// Table the key lives in.
        table: String,
        /// The key that was looked up.
        key: String,
        /// Name of the expected type.
        expected: &'static str,
        /// Name of the type actually found.
        found: &'static str,
    },
}

impl fmt::Display for PrefsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrefsError::Parse(e) => write!(f, "{e}"),
            PrefsError::Io(e) => write!(f, "preferences I/O error: {e}"),
            PrefsError::TypeMismatch {
                table,
                key,
                expected,
                found,
            } => write!(
                f,
                "preference [{table}].{key}: expected {expected}, found {found}"
            ),
        }
    }
}

impl std::error::Error for PrefsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PrefsError::Parse(e) => Some(e),
            PrefsError::Io(e) => Some(e),
            PrefsError::TypeMismatch { .. } => None,
        }
    }
}

impl From<ParseError> for PrefsError {
    fn from(e: ParseError) -> Self {
        PrefsError::Parse(e)
    }
}

impl From<io::Error> for PrefsError {
    fn from(e: io::Error) -> Self {
        PrefsError::Io(e)
    }
}
