//! Typed `[tenant.<name>]` tables: per-tenant serving knobs.
//!
//! The multi-tenant server (`racc-serve`) reads its admission and fairness
//! configuration from the same preferences file as the backend choice. Each
//! tenant gets one dotted table:
//!
//! ```toml
//! [tenant.alice]
//! weight = 3          # weighted-fair share (default 1)
//! max_in_flight = 2   # modeled in-flight cap (default unlimited)
//! queue_depth = 16    # per-tenant admission bound (default 64)
//! ```
//!
//! Every key is optional; the server fills in its defaults for missing ones.
//! [`Preferences::tenants`] returns the typed view, [`Preferences::set_tenant`]
//! writes one back — and because the underlying store round-trips, so do
//! tenant tables.

use crate::store::Preferences;

/// Prefix of the dotted tables holding tenant configuration.
pub const TENANT_TABLE_PREFIX: &str = "tenant.";

/// One tenant's serving knobs, as written in `[tenant.<name>]`. All fields
/// optional; `None` means "use the server default".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantPrefs {
    /// Weighted-fair share relative to other tenants (>= 1).
    pub weight: Option<u32>,
    /// Cap on modeled in-flight jobs the scheduler allows this tenant.
    pub max_in_flight: Option<usize>,
    /// Per-tenant submission-queue bound for admission control.
    pub queue_depth: Option<usize>,
}

fn positive(prefs: &Preferences, table: &str, key: &str) -> Option<u64> {
    prefs
        .get_int(table, key)
        .and_then(|v| u64::try_from(v).ok())
        .filter(|&v| v > 0)
}

impl Preferences {
    /// Every `[tenant.<name>]` table as a typed view, sorted by name.
    /// Non-positive or mistyped values are treated as unset (a bad knob
    /// must not panic a server; the caller's defaults apply instead).
    pub fn tenants(&self) -> Vec<(String, TenantPrefs)> {
        let mut out = Vec::new();
        let mut seen: Option<&str> = None;
        for (table, _, _) in self.iter() {
            let Some(name) = table.strip_prefix(TENANT_TABLE_PREFIX) else {
                continue;
            };
            if name.is_empty() || seen == Some(name) {
                continue;
            }
            seen = Some(name);
            out.push((name.to_string(), self.tenant(name)));
        }
        out
    }

    /// The typed view of one `[tenant.<name>]` table (all-`None` when the
    /// table is absent).
    pub fn tenant(&self, name: &str) -> TenantPrefs {
        let table = format!("{TENANT_TABLE_PREFIX}{name}");
        TenantPrefs {
            weight: positive(self, &table, "weight").and_then(|v| u32::try_from(v).ok()),
            max_in_flight: positive(self, &table, "max_in_flight").map(|v| v as usize),
            queue_depth: positive(self, &table, "queue_depth").map(|v| v as usize),
        }
    }

    /// Write one tenant's knobs as `[tenant.<name>]`, skipping `None`
    /// fields and clearing previously-set ones.
    pub fn set_tenant(&mut self, name: &str, tenant: &TenantPrefs) {
        let table = format!("{TENANT_TABLE_PREFIX}{name}");
        for (key, value) in [
            ("weight", tenant.weight.map(|v| v as i64)),
            ("max_in_flight", tenant.max_in_flight.map(|v| v as i64)),
            ("queue_depth", tenant.queue_depth.map(|v| v as i64)),
        ] {
            match value {
                Some(v) => self.set(&table, key, v),
                None => {
                    self.remove(&table, key);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_tables_round_trip_through_text() {
        let mut p = Preferences::new();
        p.set_tenant(
            "alice",
            &TenantPrefs {
                weight: Some(3),
                max_in_flight: Some(2),
                queue_depth: Some(16),
            },
        );
        p.set_tenant(
            "bob",
            &TenantPrefs {
                weight: Some(1),
                max_in_flight: None,
                queue_depth: Some(4),
            },
        );
        p.set("racc", "backend", "cudasim");
        let text = p.to_toml();
        assert!(text.contains("[tenant.alice]"), "{text}");
        let q = Preferences::from_toml(&text).unwrap();
        assert_eq!(q.tenants(), p.tenants());
        let alice = q.tenant("alice");
        assert_eq!(alice.weight, Some(3));
        assert_eq!(alice.max_in_flight, Some(2));
        assert_eq!(alice.queue_depth, Some(16));
        let bob = q.tenant("bob");
        assert_eq!(bob.weight, Some(1));
        assert_eq!(bob.max_in_flight, None);
        assert_eq!(bob.queue_depth, Some(4));
    }

    #[test]
    fn tenants_lists_only_tenant_tables_sorted() {
        let text = "[tenant.zoe]\nweight = 2\n\n[racc]\nbackend = \"serial\"\n\n[tenant.ann]\nqueue_depth = 8\n";
        let p = Preferences::from_toml(text).unwrap();
        let names: Vec<String> = p.tenants().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["ann", "zoe"]);
    }

    #[test]
    fn bad_values_read_as_unset() {
        let text = "[tenant.odd]\nweight = 0\nmax_in_flight = -3\nqueue_depth = \"lots\"\n";
        let p = Preferences::from_toml(text).unwrap();
        assert_eq!(p.tenant("odd"), TenantPrefs::default());
        assert_eq!(p.tenant("absent"), TenantPrefs::default());
    }

    #[test]
    fn set_tenant_clears_dropped_fields() {
        let mut p = Preferences::new();
        p.set_tenant(
            "t",
            &TenantPrefs {
                weight: Some(2),
                max_in_flight: Some(4),
                queue_depth: Some(8),
            },
        );
        p.set_tenant(
            "t",
            &TenantPrefs {
                weight: Some(5),
                max_in_flight: None,
                queue_depth: None,
            },
        );
        let t = p.tenant("t");
        assert_eq!(t.weight, Some(5));
        assert_eq!(t.max_in_flight, None);
        assert_eq!(t.queue_depth, None);
    }
}
