//! A line-oriented parser for the TOML subset used by the preferences store.
//!
//! Supported syntax:
//!
//! * blank lines and `#` comments,
//! * `[table]` / `[dotted.table.name]` headers,
//! * `key = value` and `"quoted key" = value` pairs,
//! * basic strings with `\" \\ \n \t \r \u{XXXX}`-style escapes (TOML's
//!   `\uXXXX`), integers (with `_` separators), floats, booleans, and
//!   (possibly nested) arrays.
//!
//! The parser is deliberately strict: unknown syntax is an error rather than
//! silently ignored, because a typo in a backend preference should surface
//! loudly at startup.

use crate::error::ParseError;
use crate::value::Value;

/// A parsed `(table, key, value)` triple. Keys appearing before any table
/// header belong to the root table, named `""`.
pub type Entry = (String, String, Value);

/// Parse an entire preferences document into a flat list of entries in
/// document order. Later duplicates override earlier ones when folded into a
/// [`crate::Preferences`] store.
pub fn parse_document(text: &str) -> Result<Vec<Entry>, ParseError> {
    let mut entries = Vec::new();
    let mut current_table = String::new();
    for (idx, raw_line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let inner = rest
                .strip_suffix(']')
                .ok_or_else(|| ParseError::new(lineno, "unterminated table header"))?
                .trim();
            if inner.is_empty() {
                return Err(ParseError::new(lineno, "empty table name"));
            }
            if let Some(stripped) = inner.strip_prefix('"') {
                let quoted = stripped
                    .strip_suffix('"')
                    .ok_or_else(|| ParseError::new(lineno, "unterminated quoted table name"))?;
                current_table = unescape(quoted, lineno)?;
            } else {
                validate_table_name(inner, lineno)?;
                current_table = inner.to_owned();
            }
        } else {
            let (key, value) = parse_key_value(line, lineno)?;
            entries.push((current_table.clone(), key, value));
        }
    }
    Ok(entries)
}

/// Remove a trailing comment, respecting `#` characters inside strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn validate_table_name(name: &str, lineno: usize) -> Result<(), ParseError> {
    for part in name.split('.') {
        if part.is_empty() {
            return Err(ParseError::new(lineno, "empty table name component"));
        }
        if !part
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            return Err(ParseError::new(
                lineno,
                format!("invalid table name component {part:?}"),
            ));
        }
    }
    Ok(())
}

fn parse_key_value(line: &str, lineno: usize) -> Result<(String, Value), ParseError> {
    let (key_part, value_part) =
        split_assignment(line).ok_or_else(|| ParseError::new(lineno, "expected `key = value`"))?;
    let key = parse_key(key_part.trim(), lineno)?;
    let mut cursor = Cursor::new(value_part.trim(), lineno);
    let value = cursor.parse_value()?;
    cursor.skip_ws();
    if !cursor.at_end() {
        return Err(ParseError::new(
            lineno,
            format!("trailing characters after value: {:?}", cursor.rest()),
        ));
    }
    Ok((key, value))
}

/// Split at the first `=` that is not inside a quoted key.
fn split_assignment(line: &str) -> Option<(&str, &str)> {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            '=' if !in_string => return Some((&line[..i], &line[i + 1..])),
            _ => {}
        }
    }
    None
}

fn parse_key(key: &str, lineno: usize) -> Result<String, ParseError> {
    if key.is_empty() {
        return Err(ParseError::new(lineno, "empty key"));
    }
    if let Some(stripped) = key.strip_prefix('"') {
        let inner = stripped
            .strip_suffix('"')
            .ok_or_else(|| ParseError::new(lineno, "unterminated quoted key"))?;
        unescape(inner, lineno)
    } else {
        if !key
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            return Err(ParseError::new(lineno, format!("invalid bare key {key:?}")));
        }
        Ok(key.to_owned())
    }
}

fn unescape(s: &str, lineno: usize) -> Result<String, ParseError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                if hex.len() != 4 {
                    return Err(ParseError::new(lineno, "truncated \\u escape"));
                }
                let code = u32::from_str_radix(&hex, 16)
                    .map_err(|_| ParseError::new(lineno, "invalid \\u escape"))?;
                out.push(
                    char::from_u32(code)
                        .ok_or_else(|| ParseError::new(lineno, "invalid unicode scalar"))?,
                );
            }
            other => {
                return Err(ParseError::new(
                    lineno,
                    format!("invalid escape sequence \\{}", other.unwrap_or(' ')),
                ))
            }
        }
    }
    Ok(out)
}

/// A small character cursor over a single value expression.
struct Cursor<'a> {
    text: &'a str,
    pos: usize,
    lineno: usize,
}

impl<'a> Cursor<'a> {
    fn new(text: &'a str, lineno: usize) -> Self {
        Cursor {
            text,
            pos: 0,
            lineno,
        }
    }

    fn rest(&self) -> &'a str {
        &self.text[self.pos..]
    }

    fn at_end(&self) -> bool {
        self.pos >= self.text.len()
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.bump();
        }
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(self.lineno, msg)
    }

    fn parse_value(&mut self) -> Result<Value, ParseError> {
        self.skip_ws();
        match self.peek() {
            None => Err(self.err("missing value")),
            Some('"') => self.parse_string(),
            Some('[') => self.parse_array(),
            Some('t') | Some('f') => self.parse_bool(),
            Some(c) if c == '+' || c == '-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(self.err(format!("unexpected character {c:?} in value"))),
        }
    }

    fn parse_string(&mut self) -> Result<Value, ParseError> {
        let quote = self.bump();
        debug_assert_eq!(quote, Some('"'));
        let start = self.pos;
        let mut escaped = false;
        while let Some(c) = self.peek() {
            if escaped {
                escaped = false;
                self.bump();
                continue;
            }
            match c {
                '\\' => {
                    escaped = true;
                    self.bump();
                }
                '"' => {
                    let raw = &self.text[start..self.pos];
                    self.bump();
                    return Ok(Value::String(unescape(raw, self.lineno)?));
                }
                _ => {
                    self.bump();
                }
            }
        }
        Err(self.err("unterminated string"))
    }

    fn parse_bool(&mut self) -> Result<Value, ParseError> {
        if self.rest().starts_with("true") && !continues_word(self.rest(), 4) {
            self.pos += 4;
            Ok(Value::Bool(true))
        } else if self.rest().starts_with("false") && !continues_word(self.rest(), 5) {
            self.pos += 5;
            Ok(Value::Bool(false))
        } else {
            Err(self.err("expected `true` or `false`"))
        }
    }

    fn parse_number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(c) if c.is_ascii_digit()
                || matches!(c, '+' | '-' | '.' | '_' | 'e' | 'E')
        ) {
            self.bump();
        }
        let raw: String = self.text[start..self.pos]
            .chars()
            .filter(|&c| c != '_')
            .collect();
        if raw.contains('.') || raw.contains('e') || raw.contains('E') {
            raw.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err(format!("invalid float literal {raw:?}")))
        } else {
            raw.parse::<i64>()
                .map(Value::Integer)
                .map_err(|_| self.err(format!("invalid integer literal {raw:?}")))
        }
    }

    fn parse_array(&mut self) -> Result<Value, ParseError> {
        let bracket = self.bump();
        debug_assert_eq!(bracket, Some('['));
        let mut items = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                None => return Err(self.err("unterminated array")),
                Some(']') => {
                    self.bump();
                    return Ok(Value::Array(items));
                }
                _ => {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(',') => {
                            self.bump();
                        }
                        Some(']') => {}
                        _ => return Err(self.err("expected `,` or `]` in array")),
                    }
                }
            }
        }
    }
}

fn continues_word(s: &str, after: usize) -> bool {
    s[after..]
        .chars()
        .next()
        .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(text: &str) -> Entry {
        let mut entries = parse_document(text).expect("parse");
        assert_eq!(entries.len(), 1, "expected one entry from {text:?}");
        entries.pop().unwrap()
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(one("a = 1").2, Value::Integer(1));
        assert_eq!(one("a = -42").2, Value::Integer(-42));
        assert_eq!(one("a = 1_000_000").2, Value::Integer(1_000_000));
        assert_eq!(one("a = 2.5").2, Value::Float(2.5));
        assert_eq!(one("a = 1e3").2, Value::Float(1000.0));
        assert_eq!(one("a = true").2, Value::Bool(true));
        assert_eq!(one("a = false").2, Value::Bool(false));
        assert_eq!(one(r#"a = "hi""#).2, Value::String("hi".into()));
    }

    #[test]
    fn parses_string_escapes() {
        assert_eq!(
            one(r#"a = "line\nbreak \"q\" \\ A""#).2,
            Value::String("line\nbreak \"q\" \\ A".into())
        );
    }

    #[test]
    fn parses_tables_and_dotted_tables() {
        let entries =
            parse_document("x = 1\n[racc]\nbackend = \"threads\"\n[racc.gpu]\nid = 0\n").unwrap();
        assert_eq!(entries[0].0, "");
        assert_eq!(entries[1].0, "racc");
        assert_eq!(entries[1].1, "backend");
        assert_eq!(entries[2].0, "racc.gpu");
    }

    #[test]
    fn parses_arrays_and_nested_arrays() {
        assert_eq!(
            one("a = [1, 2, 3]").2,
            Value::Array(vec![1i64.into(), 2i64.into(), 3i64.into()])
        );
        assert_eq!(
            one(r#"a = [[1], ["x"]]"#).2,
            Value::Array(vec![
                Value::Array(vec![1i64.into()]),
                Value::Array(vec!["x".into()]),
            ])
        );
        assert_eq!(one("a = []").2, Value::Array(vec![]));
        // trailing comma allowed
        assert_eq!(one("a = [1,]").2, Value::Array(vec![1i64.into()]));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let entries =
            parse_document("# header\n\na = 1 # trailing\nb = \"with # inside\"\n").unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[1].2, Value::String("with # inside".into()));
    }

    #[test]
    fn quoted_keys() {
        let e = one(r#""weird key" = 1"#);
        assert_eq!(e.1, "weird key");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_document("[unterminated").is_err());
        assert!(parse_document("[]").is_err());
        assert!(parse_document("[a..b]").is_err());
        assert!(parse_document("no_equals").is_err());
        assert!(parse_document("a = ").is_err());
        assert!(parse_document("a = \"unterminated").is_err());
        assert!(parse_document("a = [1, 2").is_err());
        assert!(parse_document("a = 1 2").is_err());
        assert!(parse_document("a = truex").is_err());
        assert!(parse_document("a = 1.2.3").is_err());
        assert!(parse_document("bad key = 1").is_err());
    }

    #[test]
    fn error_reports_line_number() {
        let err = parse_document("a = 1\nb = ?\n").unwrap_err();
        assert_eq!(err.line, 2);
    }
}
