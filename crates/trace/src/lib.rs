//! # racc-trace
//!
//! Launch-level observability for RACC. Every backend construct — each
//! `parallel_for`, each two-kernel reduction, each allocation and transfer —
//! deposits one fixed-size [`Span`] into a lock-free ring buffer
//! ([`TraceRecorder`]). Sinks then turn the recorded spans into:
//!
//! * a chrome://tracing JSON timeline ([`chrome::chrome_trace`]),
//! * a per-kernel text summary with achieved GB/s / GFLOP/s against the
//!   device's peaks — a mini roofline ([`summary::kernel_summary`]).
//!
//! ## Cost model
//!
//! Recording is wait-free for writers: one `fetch_add` to claim a slot plus
//! two release stores around a plain 96-byte write. There is **no**
//! allocation, locking, or formatting on the hot path; all rendering happens
//! in the sinks. When a recorder is present but disabled
//! ([`TraceRecorder::set_enabled`]), `record` is a single relaxed load and a
//! branch. When the `trace` cargo feature of `racc-core` is off, the
//! emission call sites compile out entirely.
//!
//! ## Consistency
//!
//! The buffer is a ring: once more than `capacity` spans have been recorded,
//! the oldest are overwritten (see [`TraceRecorder::dropped`]). Each slot is
//! protected by a per-slot sequence stamp (seqlock), so a concurrent reader
//! can never observe a torn span; it either gets a complete span or skips
//! the slot. Readers are intended to run after the traced region quiesces.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

pub mod chrome;
pub mod json;
pub mod summary;

pub use summary::RooflinePeaks;

/// What kind of construct a [`Span`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ConstructKind {
    /// 1D `parallel_for`.
    For1d,
    /// 2D `parallel_for`.
    For2d,
    /// 3D `parallel_for`.
    For3d,
    /// 1D `parallel_reduce` (on GPUs: the whole two-kernel sequence).
    Reduce1d,
    /// 2D `parallel_reduce`.
    Reduce2d,
    /// 3D `parallel_reduce`.
    Reduce3d,
    /// Array allocation (`bytes` is the allocation size).
    Alloc,
    /// Host-to-device transfer (`bytes` is the payload).
    H2d,
    /// Device-to-host transfer (`bytes` is the payload).
    D2h,
    /// A `racc-comm` collective operation.
    Collective,
    /// One worker's chunk of a CPU `parallel_for` (threadpool detail lane).
    WorkerChunk,
    /// A sanitizer (`simsan`) report snapshot: `dims.0` is allocations
    /// tracked, `bytes` is bytes outstanding (leaked) at snapshot time.
    Sanitizer,
    /// A fused expression group (`racc-fuse`): one launch standing in for a
    /// whole chain of elementwise statements, optionally ending in a
    /// reduction. Carries the *summed* profile of the fused statements.
    Fused,
    /// An injected fault (`racc-chaos`) or a recovery action taken for
    /// one: the name is the fault-site label (`h2d`, `launch`, …) or
    /// `fallback`; `modeled_ns` is the retry backoff charged, if any.
    Fault,
    /// A fused-plan compilation (`racc-fuse`): planning + lowering one
    /// lazy program into its cached executable form on a plan-cache miss.
    /// Host-side work — `real_ns` is the measured compile time and
    /// `modeled_ns` is 0, so the modeled timeline stays untouched;
    /// `dims.0` is the number of fused groups produced.
    Compile,
    /// One successful work-steal in the threadpool's deque core: `dims.0`
    /// is the number of tiles taken, `geometry` is `(thief, victim)`
    /// participant indices. Zero-duration marker — the stolen range's
    /// execution gets its own `WorkerChunk` span.
    Steal,
    /// One sharded step (or reshard event) in `racc-shard`: `dims` is
    /// `(step, shard index, epoch)`, `geometry` is `(rank, shard count)`,
    /// `modeled_ns` the overlap-accounted step cost on this shard's clock.
    Shard,
    /// One completed halo exchange for a sharded step: `payload` is the
    /// total ghost bytes moved both ways, `modeled_ns` the exchange-side
    /// (pack/unpack/transfer) cost the step could overlap with interior
    /// compute.
    Halo,
    /// One job dispatched by the multi-tenant server (`racc-serve`):
    /// `dims` is `(job id, tenant index, batch size)`, `geometry` is
    /// `(device index, pool width)`, `payload` the modeled queueing delay
    /// and `modeled_ns` the admission-to-completion latency on the
    /// server's modeled clock.
    Serve,
    /// One portable device primitive (`racc-prim`): a whole `scan`,
    /// `histogram` or `sort_by_key` invocation — block-local phases plus
    /// the cross-block combine — recorded as a single span. `dims.0` is
    /// the element count, `dims.1` the bins / radix passes where that
    /// applies, and `modeled_ns` the summed cost of the internal launches.
    Prim,
}

impl ConstructKind {
    /// Number of construct kinds. Sinks that size per-kind state (e.g. the
    /// chrome exporter's lane arrays) must derive it from here so adding a
    /// kind cannot silently go out of bounds again.
    pub const COUNT: usize = ConstructKind::ALL.len();

    /// Every kind, in declaration order. Kept next to the enum; the
    /// `all_kinds_listed_exactly_once` test below pins exhaustiveness.
    pub const ALL: [ConstructKind; 20] = [
        ConstructKind::For1d,
        ConstructKind::For2d,
        ConstructKind::For3d,
        ConstructKind::Reduce1d,
        ConstructKind::Reduce2d,
        ConstructKind::Reduce3d,
        ConstructKind::Alloc,
        ConstructKind::H2d,
        ConstructKind::D2h,
        ConstructKind::Collective,
        ConstructKind::WorkerChunk,
        ConstructKind::Sanitizer,
        ConstructKind::Fused,
        ConstructKind::Fault,
        ConstructKind::Compile,
        ConstructKind::Steal,
        ConstructKind::Shard,
        ConstructKind::Halo,
        ConstructKind::Serve,
        ConstructKind::Prim,
    ];
    /// The lowercase label used in sinks (`for1d`, `reduce2d`, `h2d`, ...).
    pub fn label(self) -> &'static str {
        match self {
            ConstructKind::For1d => "for1d",
            ConstructKind::For2d => "for2d",
            ConstructKind::For3d => "for3d",
            ConstructKind::Reduce1d => "reduce1d",
            ConstructKind::Reduce2d => "reduce2d",
            ConstructKind::Reduce3d => "reduce3d",
            ConstructKind::Alloc => "alloc",
            ConstructKind::H2d => "h2d",
            ConstructKind::D2h => "d2h",
            ConstructKind::Collective => "collective",
            ConstructKind::WorkerChunk => "chunk",
            ConstructKind::Sanitizer => "sanitizer",
            ConstructKind::Fused => "fused",
            ConstructKind::Fault => "fault",
            ConstructKind::Compile => "compile",
            ConstructKind::Steal => "steal",
            ConstructKind::Shard => "shard",
            ConstructKind::Halo => "halo",
            ConstructKind::Serve => "serve",
            ConstructKind::Prim => "prim",
        }
    }

    /// The `parallel_for` kind of the given rank (1, 2 or 3).
    pub fn for_rank(rank: usize) -> Self {
        match rank {
            1 => ConstructKind::For1d,
            2 => ConstructKind::For2d,
            _ => ConstructKind::For3d,
        }
    }

    /// The `parallel_reduce` kind of the given rank (1, 2 or 3).
    pub fn reduce_rank(rank: usize) -> Self {
        match rank {
            1 => ConstructKind::Reduce1d,
            2 => ConstructKind::Reduce2d,
            _ => ConstructKind::Reduce3d,
        }
    }
}

/// One recorded construct. Fixed-size and `Copy` so ring-buffer writes are
/// plain stores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// Global record index (assigned by the recorder; dense, increasing).
    pub seq: u64,
    /// Backend key that executed the construct (`"serial"`, `"cudasim"`,
    /// ...; `"comm"` for collectives, `"threadpool"` for worker chunks).
    pub backend: &'static str,
    /// Construct kind.
    pub kind: ConstructKind,
    /// Kernel/profile name (`"axpy"`, `"dot"`, ...) or operation label.
    pub name: &'static str,
    /// Iteration-space dimensions (unused trailing dims are 1; transfers
    /// and allocations use `[0, 0, 0]`).
    pub dims: [u64; 3],
    /// Launch geometry: blocks on GPUs, participating workers on CPUs.
    pub grid: u64,
    /// Launch geometry: threads per block on GPUs, iterations per worker on
    /// CPUs.
    pub block: u64,
    /// `KernelProfile::flops_per_iter` of the construct (0 for transfers).
    pub flops_per_iter: f64,
    /// Total profile bytes per iteration (read + written).
    pub bytes_per_iter: f64,
    /// Payload bytes for `Alloc`/`H2d`/`D2h`/`Collective` spans.
    pub bytes: u64,
    /// Modeled duration, quantized exactly like the backend `Timeline`
    /// charge, so per-span sums reconcile with `TimelineSnapshot`.
    pub modeled_ns: u64,
    /// Measured wall-clock duration where real execution happens (CPU
    /// backends, collectives, worker chunks); 0 on simulated-GPU spans.
    pub real_ns: u64,
}

impl Default for Span {
    fn default() -> Self {
        Span::new("", ConstructKind::For1d, "")
    }
}

impl Span {
    /// A span with the identifying fields set and everything else zeroed.
    pub const fn new(backend: &'static str, kind: ConstructKind, name: &'static str) -> Self {
        Span {
            seq: 0,
            backend,
            kind,
            name,
            dims: [1, 1, 1],
            grid: 0,
            block: 0,
            flops_per_iter: 0.0,
            bytes_per_iter: 0.0,
            bytes: 0,
            modeled_ns: 0,
            real_ns: 0,
        }
    }

    /// Sets the iteration-space dimensions.
    pub fn dims(mut self, m: u64, n: u64, l: u64) -> Self {
        self.dims = [m, n, l];
        self
    }

    /// Sets the launch geometry.
    pub fn geometry(mut self, grid: u64, block: u64) -> Self {
        self.grid = grid;
        self.block = block;
        self
    }

    /// Sets the per-iteration cost profile.
    pub fn profile(mut self, flops_per_iter: f64, bytes_per_iter: f64) -> Self {
        self.flops_per_iter = flops_per_iter;
        self.bytes_per_iter = bytes_per_iter;
        self
    }

    /// Sets the transfer payload size.
    pub fn payload(mut self, bytes: u64) -> Self {
        self.bytes = bytes;
        self
    }

    /// Sets the modeled duration (already quantized to whole ns).
    pub fn modeled(mut self, ns: u64) -> Self {
        self.modeled_ns = ns;
        self
    }

    /// Sets the measured duration from an optional start instant (the
    /// `None` case is the tracing-inactive fast path).
    pub fn real_since(mut self, start: Option<Instant>) -> Self {
        if let Some(t0) = start {
            self.real_ns = t0.elapsed().as_nanos() as u64;
        }
        self
    }

    /// Total iterations of the span's index space.
    pub fn iterations(&self) -> u64 {
        self.dims[0] * self.dims[1] * self.dims[2]
    }
}

struct Slot {
    /// 0 = never written; odd = write in progress; even `2·seq+2` = span
    /// with index `seq` committed.
    stamp: AtomicU64,
    span: UnsafeCell<Span>,
}

/// Lock-free multi-producer span ring buffer. See the crate docs for the
/// cost and consistency model.
pub struct TraceRecorder {
    enabled: AtomicBool,
    head: AtomicU64,
    mask: u64,
    slots: Box<[Slot]>,
}

// SAFETY: the UnsafeCell in each slot is published through the seqlock
// stamp; readers validate the stamp around every copy and discard torn data.
unsafe impl Sync for TraceRecorder {}
unsafe impl Send for TraceRecorder {}

/// Default ring capacity: 16 Ki spans (~1.8 MiB), comfortably above the
/// span count of any single paper-figure experiment.
pub const DEFAULT_CAPACITY: usize = 16 * 1024;

impl Default for TraceRecorder {
    fn default() -> Self {
        TraceRecorder::new(DEFAULT_CAPACITY)
    }
}

impl TraceRecorder {
    /// A recorder holding the most recent `capacity` spans (rounded up to a
    /// power of two). Starts enabled.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(2).next_power_of_two();
        let slots = (0..capacity)
            .map(|_| Slot {
                stamp: AtomicU64::new(0),
                span: UnsafeCell::new(Span::default()),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        TraceRecorder {
            enabled: AtomicBool::new(true),
            head: AtomicU64::new(0),
            mask: capacity as u64 - 1,
            slots,
        }
    }

    /// Runtime switch; a disabled recorder makes `record` a load + branch.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether spans are currently being accepted.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Deposits one span. Wait-free; never allocates.
    #[inline]
    pub fn record(&self, mut span: Span) {
        if !self.is_enabled() {
            return;
        }
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        span.seq = seq;
        let slot = &self.slots[(seq & self.mask) as usize];
        slot.stamp.store(2 * seq + 1, Ordering::Release);
        // SAFETY: the odd stamp marks the write in progress; readers skip
        // the slot until the matching even stamp is published below.
        unsafe {
            *slot.span.get() = span;
        }
        slot.stamp.store(2 * seq + 2, Ordering::Release);
    }

    /// Total spans ever recorded (including any overwritten in the ring).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Spans lost to ring wrap-around so far.
    pub fn dropped(&self) -> u64 {
        self.recorded().saturating_sub(self.slots.len() as u64)
    }

    /// Copies out the retained spans, ordered by sequence number. Intended
    /// to run after the traced region quiesces; concurrent writes are
    /// tolerated (torn slots are skipped) but the result is then only a
    /// sample.
    pub fn spans(&self) -> Vec<Span> {
        let head = self.recorded();
        let mut out = Vec::with_capacity(self.slots.len().min(head as usize));
        for slot in self.slots.iter() {
            for _attempt in 0..8 {
                let before = slot.stamp.load(Ordering::Acquire);
                if before == 0 || before % 2 == 1 {
                    break; // empty or mid-write
                }
                // SAFETY: stamp re-validation below rejects torn copies.
                let span = unsafe { *slot.span.get() };
                if slot.stamp.load(Ordering::Acquire) == before {
                    if span.seq < head {
                        out.push(span);
                    }
                    break;
                }
            }
        }
        out.sort_by_key(|s| s.seq);
        out
    }

    /// Forgets all recorded spans (counters and slots); keeps the enabled
    /// state. Call only while no construct is executing.
    pub fn reset(&self) {
        for slot in self.slots.iter() {
            slot.stamp.store(0, Ordering::Relaxed);
        }
        self.head.store(0, Ordering::Release);
    }
}

impl std::fmt::Debug for TraceRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRecorder")
            .field("enabled", &self.is_enabled())
            .field("capacity", &self.capacity())
            .field("recorded", &self.recorded())
            .field("dropped", &self.dropped())
            .finish()
    }
}

/// Sums the modeled nanoseconds over spans — the quantity that must equal
/// `TimelineSnapshot::modeled_ns` when nothing was dropped.
pub fn total_modeled_ns(spans: &[Span]) -> u64 {
    spans.iter().map(|s| s.modeled_ns).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn span(i: u64) -> Span {
        Span::new("serial", ConstructKind::For1d, "axpy")
            .dims(i, 1, 1)
            .modeled(i)
    }

    #[test]
    fn records_in_order() {
        let rec = TraceRecorder::new(64);
        for i in 0..10 {
            rec.record(span(i));
        }
        let spans = rec.spans();
        assert_eq!(spans.len(), 10);
        assert_eq!(rec.recorded(), 10);
        assert_eq!(rec.dropped(), 0);
        for (i, s) in spans.iter().enumerate() {
            assert_eq!(s.seq, i as u64);
            assert_eq!(s.dims[0], i as u64);
        }
        assert_eq!(total_modeled_ns(&spans), 45);
    }

    #[test]
    fn ring_keeps_most_recent() {
        let rec = TraceRecorder::new(8);
        for i in 0..20 {
            rec.record(span(i));
        }
        let spans = rec.spans();
        assert_eq!(spans.len(), 8);
        assert_eq!(rec.dropped(), 12);
        assert_eq!(spans.first().unwrap().seq, 12);
        assert_eq!(spans.last().unwrap().seq, 19);
    }

    #[test]
    fn disabled_recorder_drops_everything() {
        let rec = TraceRecorder::new(8);
        rec.set_enabled(false);
        rec.record(span(1));
        assert_eq!(rec.recorded(), 0);
        assert!(rec.spans().is_empty());
        rec.set_enabled(true);
        rec.record(span(2));
        assert_eq!(rec.recorded(), 1);
    }

    #[test]
    fn concurrent_producers_lose_nothing_within_capacity() {
        let rec = Arc::new(TraceRecorder::new(4096));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let rec = Arc::clone(&rec);
                std::thread::spawn(move || {
                    for i in 0..256 {
                        rec.record(span((t * 1000 + i) as u64));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let spans = rec.spans();
        assert_eq!(spans.len(), 8 * 256);
        // Dense, unique sequence numbers.
        for (i, s) in spans.iter().enumerate() {
            assert_eq!(s.seq, i as u64);
        }
    }

    #[test]
    fn reset_clears_but_keeps_enabled_state() {
        let rec = TraceRecorder::new(8);
        rec.record(span(1));
        rec.reset();
        assert_eq!(rec.recorded(), 0);
        assert!(rec.spans().is_empty());
        assert!(rec.is_enabled());
    }

    #[test]
    fn kind_labels_and_ranks() {
        assert_eq!(ConstructKind::for_rank(2), ConstructKind::For2d);
        assert_eq!(ConstructKind::reduce_rank(3), ConstructKind::Reduce3d);
        assert_eq!(ConstructKind::H2d.label(), "h2d");
        assert_eq!(ConstructKind::Fused.label(), "fused");
    }

    #[test]
    fn all_kinds_listed_exactly_once() {
        // `ALL` (and hence `COUNT`) must stay in sync with the enum. Labels
        // are unique per kind, so a duplicated or missing entry shows up as
        // a duplicate/missing label here; a brand-new variant that was not
        // added to `ALL` fails the non-exhaustive-match lint at the `label`
        // match instead.
        let mut labels: Vec<&str> = ConstructKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), ConstructKind::COUNT);
        assert_eq!(ConstructKind::ALL.len(), ConstructKind::COUNT);
    }
}
