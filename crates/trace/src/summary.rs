//! Per-kernel text summary — the "mini roofline" sink.
//!
//! Groups spans by (backend, kind, kernel name) and reports counts, modeled
//! time, and achieved arithmetic/memory rates derived from the spans'
//! `KernelProfile` costs. When the caller supplies the device's peak rates,
//! each row also shows the achieved fraction of peak, which is exactly the
//! roofline position of that kernel under the model.

use std::collections::BTreeMap;

use crate::{ConstructKind, Span};

/// Device peak rates for roofline columns.
#[derive(Debug, Clone, Copy)]
pub struct RooflinePeaks {
    /// Peak arithmetic rate, GFLOP/s.
    pub gflops: f64,
    /// Peak memory bandwidth, GB/s.
    pub gbs: f64,
}

#[derive(Default)]
struct Row {
    count: u64,
    modeled_ns: u64,
    real_ns: u64,
    iterations: u64,
    flops: f64,
    profile_bytes: f64,
    payload_bytes: u64,
}

/// Renders the per-kernel summary table for one span set.
pub fn kernel_summary(spans: &[Span], peaks: Option<RooflinePeaks>) -> String {
    let mut rows: BTreeMap<(&str, ConstructKind, &str), Row> = BTreeMap::new();
    for s in spans {
        let row = rows.entry((s.backend, s.kind, s.name)).or_default();
        row.count += 1;
        row.modeled_ns += s.modeled_ns;
        row.real_ns += s.real_ns;
        row.iterations += s.iterations();
        row.flops += s.flops_per_iter * s.iterations() as f64;
        row.profile_bytes += s.bytes_per_iter * s.iterations() as f64;
        row.payload_bytes += s.bytes;
    }

    let mut out = String::new();
    out.push_str(&format!(
        "{:<10} {:<10} {:<12} {:>6} {:>14} {:>12} {:>10} {:>10}{}\n",
        "backend",
        "construct",
        "kernel",
        "count",
        "modeled total",
        "mean",
        "GFLOP/s",
        "GB/s",
        if peaks.is_some() { "   % peak" } else { "" },
    ));
    for ((backend, kind, name), row) in &rows {
        let secs = row.modeled_ns as f64 / 1e9;
        // Transfers have no profile cost; rate their payload instead.
        let moved_bytes = row.profile_bytes + row.payload_bytes as f64;
        let (gflops, gbs) = if secs > 0.0 {
            (row.flops / secs / 1e9, moved_bytes / secs / 1e9)
        } else {
            (0.0, 0.0)
        };
        let peak_col = match peaks {
            Some(p) => {
                // A kernel's roofline position: its achieved fraction of
                // whichever peak binds it harder.
                let frac = (gflops / p.gflops).max(gbs / p.gbs) * 100.0;
                format!("   {frac:6.1}%")
            }
            None => String::new(),
        };
        let mean_ns = row.modeled_ns as f64 / row.count.max(1) as f64;
        out.push_str(&format!(
            "{:<10} {:<10} {:<12} {:>6} {:>14} {:>12} {:>10.2} {:>10.2}{}\n",
            backend,
            kind.label(),
            if name.is_empty() { "-" } else { name },
            row.count,
            format_ns(row.modeled_ns as f64),
            format_ns(mean_ns),
            gflops,
            gbs,
            peak_col,
        ));
    }
    if spans.iter().any(|s| s.real_ns > 0) {
        let real_total: u64 = spans.iter().map(|s| s.real_ns).sum();
        out.push_str(&format!(
            "(real wall-clock recorded on CPU spans: {} total)\n",
            format_ns(real_total as f64)
        ));
    }
    out
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_rates() {
        let spans = vec![
            Span::new("cudasim", ConstructKind::For1d, "axpy")
                .dims(1_000_000, 1, 1)
                .profile(2.0, 24.0)
                .modeled(100_000), // 20 GFLOP/s, 240 GB/s
            Span::new("cudasim", ConstructKind::For1d, "axpy")
                .dims(1_000_000, 1, 1)
                .profile(2.0, 24.0)
                .modeled(100_000),
            Span::new("cudasim", ConstructKind::H2d, "upload")
                .payload(8_000_000)
                .modeled(1_000_000),
        ];
        let text = kernel_summary(&spans, None);
        assert!(text.contains("axpy"), "{text}");
        assert!(text.contains("h2d"), "{text}");
        // Two axpy launches grouped into one row.
        assert!(text.contains(" 2 "), "{text}");
        assert!(text.contains("20.00"), "{text}");
        assert!(text.contains("240.00"), "{text}");
        // Transfer rate: 8 MB / 1 ms = 8 GB/s.
        assert!(text.contains("8.00"), "{text}");
    }

    #[test]
    fn roofline_fraction_against_peaks() {
        let spans = vec![Span::new("cudasim", ConstructKind::For1d, "axpy")
            .dims(1_000_000, 1, 1)
            .profile(2.0, 24.0)
            .modeled(100_000)];
        let text = kernel_summary(
            &spans,
            Some(RooflinePeaks {
                gflops: 9700.0,
                gbs: 1555.0,
            }),
        );
        // Memory-bound: 240/1555 ≈ 15.4% of peak bandwidth binds.
        assert!(text.contains("15.4%"), "{text}");
        assert!(text.contains("% peak"), "{text}");
    }

    #[test]
    fn real_time_footer_only_when_present() {
        let modeled_only = vec![Span::new("cudasim", ConstructKind::For1d, "x").modeled(10)];
        assert!(!kernel_summary(&modeled_only, None).contains("wall-clock"));
        let mut with_real = modeled_only;
        with_real[0].real_ns = 42;
        assert!(kernel_summary(&with_real, None).contains("wall-clock"));
    }
}
