//! Minimal JSON utilities: string escaping for the chrome exporter and a
//! strict validator used by the golden tests (no external dependencies).

/// Escapes `s` as the body of a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Validates that `input` is one complete JSON value (RFC 8259 syntax).
/// Returns the byte offset and message of the first error.
pub fn validate(input: &str) -> Result<(), (usize, String)> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err((pos, "trailing characters after JSON value".into()));
    }
    Ok(())
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), (usize, String)> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err((*pos, format!("expected '{}'", c as char)))
    }
}

fn value(bytes: &[u8], pos: &mut usize) -> Result<(), (usize, String)> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err((*pos, "unexpected end of input".into())),
        Some(b'{') => object(bytes, pos),
        Some(b'[') => array(bytes, pos),
        Some(b'"') => string(bytes, pos),
        Some(b't') => literal(bytes, pos, b"true"),
        Some(b'f') => literal(bytes, pos, b"false"),
        Some(b'n') => literal(bytes, pos, b"null"),
        Some(b'-' | b'0'..=b'9') => number(bytes, pos),
        Some(&c) => Err((*pos, format!("unexpected byte 0x{c:02x}"))),
    }
}

fn literal(bytes: &[u8], pos: &mut usize, word: &[u8]) -> Result<(), (usize, String)> {
    if bytes[*pos..].starts_with(word) {
        *pos += word.len();
        Ok(())
    } else {
        Err((*pos, format!("invalid literal, expected {word:?}")))
    }
}

fn object(bytes: &[u8], pos: &mut usize) -> Result<(), (usize, String)> {
    expect(bytes, pos, b'{')?;
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err((*pos, "expected ',' or '}' in object".into())),
        }
    }
}

fn array(bytes: &[u8], pos: &mut usize) -> Result<(), (usize, String)> {
    expect(bytes, pos, b'[')?;
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err((*pos, "expected ',' or ']' in array".into())),
        }
    }
}

fn string(bytes: &[u8], pos: &mut usize) -> Result<(), (usize, String)> {
    expect(bytes, pos, b'"')?;
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match bytes.get(*pos) {
                                Some(h) if h.is_ascii_hexdigit() => *pos += 1,
                                _ => return Err((*pos, "invalid \\u escape".into())),
                            }
                        }
                    }
                    _ => return Err((*pos, "invalid escape".into())),
                }
            }
            0x00..=0x1F => return Err((*pos, "raw control character in string".into())),
            _ => *pos += 1,
        }
    }
    Err((*pos, "unterminated string".into()))
}

fn number(bytes: &[u8], pos: &mut usize) -> Result<(), (usize, String)> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    match bytes.get(*pos) {
        Some(b'0') => *pos += 1,
        Some(b'1'..=b'9') => {
            while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
                *pos += 1;
            }
        }
        _ => return Err((start, "invalid number".into())),
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            return Err((*pos, "digits required after decimal point".into()));
        }
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            return Err((*pos, "digits required in exponent".into()));
        }
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            "{}",
            "[]",
            "null",
            "-12.5e+3",
            r#"{"a": [1, 2, {"b": "c\nd"}], "e": true}"#,
            r#""é""#,
        ] {
            assert!(validate(doc).is_ok(), "{doc}");
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "01",
            "1.",
            "\"unterminated",
            "{} extra",
            "{'single': 1}",
        ] {
            assert!(validate(doc).is_err(), "{doc}");
        }
    }

    #[test]
    fn escape_round_trips_through_validation() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let doc = format!("{{\"k\": \"{}\"}}", escape(nasty));
        assert!(validate(&doc).is_ok(), "{doc}");
    }
}
