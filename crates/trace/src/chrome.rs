//! chrome://tracing exporter.
//!
//! Produces the Trace Event Format (JSON object form) understood by
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev): one complete
//! (`"ph": "X"`) event per span. Spans carry durations on the modeled
//! clock, not timestamps, so each lane lays its spans out back-to-back —
//! the result is a faithful *modeled* timeline per backend, not a measured
//! interleaving.
//!
//! Processes (`pid`) map to caller-defined groups (e.g. one per
//! architecture); threads (`tid`) map to span kinds within the group, so
//! kernels, reductions, and transfers land on separate lanes.

use crate::json::escape;
use crate::{ConstructKind, Span};

/// Lane assignment within a process: kernels, reductions, transfers, comm.
fn lane(kind: ConstructKind) -> (u32, &'static str) {
    match kind {
        ConstructKind::For1d | ConstructKind::For2d | ConstructKind::For3d => (0, "kernels"),
        ConstructKind::Reduce1d | ConstructKind::Reduce2d | ConstructKind::Reduce3d => {
            (1, "reductions")
        }
        ConstructKind::Alloc | ConstructKind::H2d | ConstructKind::D2h => (2, "memory"),
        ConstructKind::Collective => (3, "collectives"),
        ConstructKind::WorkerChunk => (4, "workers"),
        ConstructKind::Sanitizer => (5, "sanitizer"),
    }
}

fn push_event(out: &mut String, span: &Span, pid: usize, tid: u32, ts_us: f64) {
    let dur_us = span.modeled_ns as f64 / 1e3;
    out.push_str(&format!(
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{ts_us:.3},\
         \"dur\":{dur_us:.3},\"pid\":{pid},\"tid\":{tid},\"args\":{{\
         \"backend\":\"{}\",\"seq\":{},\"dims\":[{},{},{}],\"grid\":{},\
         \"block\":{},\"bytes\":{},\"modeled_ns\":{},\"real_ns\":{}}}}}",
        escape(span.name),
        span.kind.label(),
        escape(span.backend),
        span.seq,
        span.dims[0],
        span.dims[1],
        span.dims[2],
        span.grid,
        span.block,
        span.bytes,
        span.modeled_ns,
        span.real_ns,
    ));
}

fn push_meta(out: &mut String, name: &str, field: &str, pid: usize, tid: Option<u32>) {
    let tid_part = tid.map(|t| format!(",\"tid\":{t}")).unwrap_or_default();
    out.push_str(&format!(
        "{{\"name\":\"{field}\",\"ph\":\"M\",\"pid\":{pid}{tid_part},\
         \"args\":{{\"name\":\"{}\"}}}}",
        escape(name)
    ));
}

/// Renders one JSON document covering several span groups; each `(label,
/// spans)` pair becomes one chrome process. Typical use: one group per
/// architecture of a portability experiment.
pub fn chrome_trace(groups: &[(&str, &[Span])]) -> String {
    let mut events: Vec<String> = Vec::new();
    for (pid, (label, spans)) in groups.iter().enumerate() {
        let mut one = String::new();
        push_meta(&mut one, label, "process_name", pid, None);
        events.push(one);
        // Back-to-back layout per lane on the modeled clock.
        let mut lane_cursor_us = [0.0f64; 6];
        let mut lanes_used = [false; 6];
        for span in spans.iter() {
            let (tid, _) = lane(span.kind);
            lanes_used[tid as usize] = true;
            let mut one = String::new();
            push_event(&mut one, span, pid, tid, lane_cursor_us[tid as usize]);
            events.push(one);
            lane_cursor_us[tid as usize] += span.modeled_ns as f64 / 1e3;
        }
        for (tid, used) in lanes_used.iter().enumerate() {
            if *used {
                let name = match tid {
                    0 => "kernels",
                    1 => "reductions",
                    2 => "memory",
                    3 => "collectives",
                    4 => "workers",
                    _ => "sanitizer",
                };
                let mut one = String::new();
                push_meta(&mut one, name, "thread_name", pid, Some(tid as u32));
                events.push(one);
            }
        }
    }
    format!(
        "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ns\"}}",
        events.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;

    fn sample() -> Vec<Span> {
        vec![
            Span::new("cudasim", ConstructKind::H2d, "upload")
                .payload(4096)
                .modeled(900),
            Span::new("cudasim", ConstructKind::For1d, "axpy")
                .dims(1024, 1, 1)
                .geometry(1, 1024)
                .profile(2.0, 24.0)
                .modeled(3000),
            Span::new("cudasim", ConstructKind::Reduce1d, "dot")
                .dims(1024, 1, 1)
                .geometry(2, 512)
                .profile(2.0, 16.0)
                .modeled(9000),
        ]
    }

    #[test]
    fn export_is_valid_json() {
        let spans = sample();
        let doc = chrome_trace(&[("a100", &spans)]);
        validate(&doc).unwrap_or_else(|(at, msg)| panic!("invalid JSON at {at}: {msg}"));
        assert!(doc.contains("\"traceEvents\""));
        assert!(doc.contains("\"axpy\""));
        assert!(doc.contains("\"process_name\""));
    }

    #[test]
    fn lanes_lay_out_back_to_back() {
        let spans = vec![
            Span::new("serial", ConstructKind::For1d, "a").modeled(1000),
            Span::new("serial", ConstructKind::For1d, "b").modeled(2000),
        ];
        let doc = chrome_trace(&[("cpu", &spans)]);
        // Second kernel starts where the first ended: ts = 1.000 (µs).
        assert!(doc.contains("\"ts\":0.000"), "{doc}");
        assert!(doc.contains("\"ts\":1.000"), "{doc}");
    }

    #[test]
    fn sanitizer_spans_land_on_their_own_lane() {
        let spans = vec![
            Span::new("cudasim", ConstructKind::For1d, "axpy").modeled(1000),
            Span::new("cudasim", ConstructKind::Sanitizer, "sancheck")
                .dims(3, 0, 0)
                .payload(4096),
        ];
        let doc = chrome_trace(&[("a100", &spans)]);
        validate(&doc).unwrap_or_else(|(at, msg)| panic!("invalid JSON at {at}: {msg}"));
        assert!(doc.contains("\"tid\":5"), "{doc}");
        assert!(doc.contains("\"sancheck\""));
    }

    #[test]
    fn multiple_groups_get_distinct_pids() {
        let spans = sample();
        let doc = chrome_trace(&[("a100", &spans), ("mi100", &spans)]);
        validate(&doc).unwrap();
        assert!(doc.contains("\"pid\":0"));
        assert!(doc.contains("\"pid\":1"));
    }
}
