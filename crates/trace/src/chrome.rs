//! chrome://tracing exporter.
//!
//! Produces the Trace Event Format (JSON object form) understood by
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev): one complete
//! (`"ph": "X"`) event per span. Spans carry durations on the modeled
//! clock, not timestamps, so each lane lays its spans out back-to-back —
//! the result is a faithful *modeled* timeline per backend, not a measured
//! interleaving.
//!
//! Processes (`pid`) map to caller-defined groups (e.g. one per
//! architecture); threads (`tid`) map to span kinds within the group, so
//! kernels, reductions, and transfers land on separate lanes.

use crate::json::escape;
use crate::{ConstructKind, Span};

/// Lane assignment within a process: kernels, reductions, transfers, comm.
const fn lane(kind: ConstructKind) -> (u32, &'static str) {
    match kind {
        ConstructKind::For1d | ConstructKind::For2d | ConstructKind::For3d => (0, "kernels"),
        ConstructKind::Reduce1d | ConstructKind::Reduce2d | ConstructKind::Reduce3d => {
            (1, "reductions")
        }
        ConstructKind::Alloc | ConstructKind::H2d | ConstructKind::D2h => (2, "memory"),
        ConstructKind::Collective => (3, "collectives"),
        ConstructKind::WorkerChunk => (4, "workers"),
        ConstructKind::Sanitizer => (5, "sanitizer"),
        ConstructKind::Fused => (6, "fused"),
        ConstructKind::Fault => (7, "faults"),
        ConstructKind::Compile => (8, "compile"),
        ConstructKind::Steal => (9, "steals"),
        ConstructKind::Shard => (10, "shards"),
        ConstructKind::Halo => (11, "halos"),
        ConstructKind::Serve => (12, "serve"),
        ConstructKind::Prim => (13, "prims"),
    }
}

/// Number of lanes, derived from the lane map over `ConstructKind::ALL` so
/// that adding a kind (this bit PR 3 when `Sanitizer` arrived) can never
/// leave the per-lane arrays below under-sized again.
const NUM_LANES: usize = {
    let mut i = 0;
    let mut max = 0;
    while i < ConstructKind::COUNT {
        let (l, _) = lane(ConstructKind::ALL[i]);
        if l as usize > max {
            max = l as usize;
        }
        i += 1;
    }
    max + 1
};

/// The display name of a lane index, derived from the same map.
fn lane_name(tid: usize) -> &'static str {
    ConstructKind::ALL
        .iter()
        .find_map(|k| {
            let (l, name) = lane(*k);
            (l as usize == tid).then_some(name)
        })
        .unwrap_or("unknown")
}

fn push_event(out: &mut String, span: &Span, pid: usize, tid: u32, ts_us: f64) {
    let dur_us = span.modeled_ns as f64 / 1e3;
    out.push_str(&format!(
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{ts_us:.3},\
         \"dur\":{dur_us:.3},\"pid\":{pid},\"tid\":{tid},\"args\":{{\
         \"backend\":\"{}\",\"seq\":{},\"dims\":[{},{},{}],\"grid\":{},\
         \"block\":{},\"bytes\":{},\"modeled_ns\":{},\"real_ns\":{}}}}}",
        escape(span.name),
        span.kind.label(),
        escape(span.backend),
        span.seq,
        span.dims[0],
        span.dims[1],
        span.dims[2],
        span.grid,
        span.block,
        span.bytes,
        span.modeled_ns,
        span.real_ns,
    ));
}

fn push_meta(out: &mut String, name: &str, field: &str, pid: usize, tid: Option<u32>) {
    let tid_part = tid.map(|t| format!(",\"tid\":{t}")).unwrap_or_default();
    out.push_str(&format!(
        "{{\"name\":\"{field}\",\"ph\":\"M\",\"pid\":{pid}{tid_part},\
         \"args\":{{\"name\":\"{}\"}}}}",
        escape(name)
    ));
}

/// Renders one JSON document covering several span groups; each `(label,
/// spans)` pair becomes one chrome process. Typical use: one group per
/// architecture of a portability experiment.
pub fn chrome_trace(groups: &[(&str, &[Span])]) -> String {
    let mut events: Vec<String> = Vec::new();
    for (pid, (label, spans)) in groups.iter().enumerate() {
        let mut one = String::new();
        push_meta(&mut one, label, "process_name", pid, None);
        events.push(one);
        // Back-to-back layout per lane on the modeled clock.
        let mut lane_cursor_us = [0.0f64; NUM_LANES];
        let mut lanes_used = [false; NUM_LANES];
        for span in spans.iter() {
            let (tid, _) = lane(span.kind);
            lanes_used[tid as usize] = true;
            let mut one = String::new();
            push_event(&mut one, span, pid, tid, lane_cursor_us[tid as usize]);
            events.push(one);
            lane_cursor_us[tid as usize] += span.modeled_ns as f64 / 1e3;
        }
        for (tid, used) in lanes_used.iter().enumerate() {
            if *used {
                let mut one = String::new();
                push_meta(
                    &mut one,
                    lane_name(tid),
                    "thread_name",
                    pid,
                    Some(tid as u32),
                );
                events.push(one);
            }
        }
    }
    format!(
        "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ns\"}}",
        events.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;

    fn sample() -> Vec<Span> {
        vec![
            Span::new("cudasim", ConstructKind::H2d, "upload")
                .payload(4096)
                .modeled(900),
            Span::new("cudasim", ConstructKind::For1d, "axpy")
                .dims(1024, 1, 1)
                .geometry(1, 1024)
                .profile(2.0, 24.0)
                .modeled(3000),
            Span::new("cudasim", ConstructKind::Reduce1d, "dot")
                .dims(1024, 1, 1)
                .geometry(2, 512)
                .profile(2.0, 16.0)
                .modeled(9000),
        ]
    }

    #[test]
    fn export_is_valid_json() {
        let spans = sample();
        let doc = chrome_trace(&[("a100", &spans)]);
        validate(&doc).unwrap_or_else(|(at, msg)| panic!("invalid JSON at {at}: {msg}"));
        assert!(doc.contains("\"traceEvents\""));
        assert!(doc.contains("\"axpy\""));
        assert!(doc.contains("\"process_name\""));
    }

    #[test]
    fn lanes_lay_out_back_to_back() {
        let spans = vec![
            Span::new("serial", ConstructKind::For1d, "a").modeled(1000),
            Span::new("serial", ConstructKind::For1d, "b").modeled(2000),
        ];
        let doc = chrome_trace(&[("cpu", &spans)]);
        // Second kernel starts where the first ended: ts = 1.000 (µs).
        assert!(doc.contains("\"ts\":0.000"), "{doc}");
        assert!(doc.contains("\"ts\":1.000"), "{doc}");
    }

    #[test]
    fn sanitizer_spans_land_on_their_own_lane() {
        let spans = vec![
            Span::new("cudasim", ConstructKind::For1d, "axpy").modeled(1000),
            Span::new("cudasim", ConstructKind::Sanitizer, "sancheck")
                .dims(3, 0, 0)
                .payload(4096),
        ];
        let doc = chrome_trace(&[("a100", &spans)]);
        validate(&doc).unwrap_or_else(|(at, msg)| panic!("invalid JSON at {at}: {msg}"));
        assert!(doc.contains("\"tid\":5"), "{doc}");
        assert!(doc.contains("\"sancheck\""));
    }

    #[test]
    fn shard_and_halo_spans_get_their_own_lanes() {
        // The PR-3 regression shape: a freshly added kind whose lane index
        // exceeds a stale hand-sized array. `Shard`/`Halo` are the newest
        // kinds; exporting them must emit their named lanes, not panic or
        // silently fold them into lane 0.
        let spans = vec![
            Span::new("cudasim", ConstructKind::Shard, "step").modeled(500),
            Span::new("cudasim", ConstructKind::Halo, "exchange")
                .payload(4096)
                .modeled(200),
        ];
        let doc = chrome_trace(&[("cudasim", &spans)]);
        assert!(doc.contains("\"shards\""), "shard lane missing: {doc}");
        assert!(doc.contains("\"halos\""), "halo lane missing: {doc}");
        let (shard_tid, _) = lane(ConstructKind::Shard);
        let (halo_tid, _) = lane(ConstructKind::Halo);
        assert_ne!(shard_tid, halo_tid);
        assert!((shard_tid as usize) < NUM_LANES);
        assert!((halo_tid as usize) < NUM_LANES);
    }

    #[test]
    fn lane_map_is_exhaustive_and_in_bounds() {
        // Every construct kind must map to a lane inside the derived array
        // size, and every lane index must resolve to the same name `lane`
        // assigns it. This is the guard the hand-sized `[_; 6]` arrays
        // lacked when `ConstructKind` grew from 5 to 6 kinds.
        for kind in ConstructKind::ALL {
            let (tid, name) = lane(kind);
            assert!(
                (tid as usize) < NUM_LANES,
                "{kind:?} lane {tid} out of bounds ({NUM_LANES} lanes)"
            );
            assert_eq!(lane_name(tid as usize), name, "{kind:?}");
        }
        // Lanes are dense: no index below NUM_LANES is unnamed.
        for tid in 0..NUM_LANES {
            assert_ne!(lane_name(tid), "unknown", "lane {tid} has no kind");
        }
    }

    #[test]
    fn fused_spans_land_on_their_own_lane() {
        let spans = vec![
            Span::new("cudasim", ConstructKind::For1d, "axpy").modeled(1000),
            Span::new("cudasim", ConstructKind::Fused, "fused")
                .dims(1024, 1, 1)
                .profile(5.0, 48.0)
                .modeled(2500),
        ];
        let doc = chrome_trace(&[("a100", &spans)]);
        validate(&doc).unwrap_or_else(|(at, msg)| panic!("invalid JSON at {at}: {msg}"));
        assert!(doc.contains("\"tid\":6"), "{doc}");
        assert!(doc.contains("\"fused\""));
    }

    #[test]
    fn multiple_groups_get_distinct_pids() {
        let spans = sample();
        let doc = chrome_trace(&[("a100", &spans), ("mi100", &spans)]);
        validate(&doc).unwrap();
        assert!(doc.contains("\"pid\":0"));
        assert!(doc.contains("\"pid\":1"));
    }
}
