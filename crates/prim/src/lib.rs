//! # racc-prim
//!
//! Portable device primitives for the RACC front end: inclusive/exclusive
//! **scan**, **histogram**, and **sort-by-key**, running on every back end
//! (serial, threads, and the three simulated GPUs) through the
//! [`racc_core::Backend`] primitive entry points.
//!
//! The contract that makes them composable:
//!
//! * **Bit-identical everywhere.** Every backend follows the canonical
//!   fixed-tile association of [`racc_core::prim`] (re-exported here as
//!   [`reference`](mod@reference)), so results agree *bitwise* across backends and
//!   run-to-run — including `f32` scans under work stealing, and
//!   including NaN payloads (see the `ReduceOp` NaN contract in
//!   `racc-core`).
//! * **Validated inputs.** [`PrimExt::histogram`] checks every key against
//!   the bin count and reports the first offender as a typed
//!   [`PrimError::BinOutOfRange`] instead of library-level UB.
//!   [`PrimExt::histogram_by_unchecked`] skips the check — on the
//!   simulator back ends an out-of-range key then dies in the device
//!   bounds checks (`simsan`), which is exactly what its negative tests
//!   assert.
//! * **Empty extents are defined.** `n == 0` scans/sorts return empty
//!   arrays; histograms always write every one of `bins` counts (zeros
//!   included).
//!
//! ```
//! use racc_core::{Context, SerialBackend};
//! use racc_prim::PrimExt;
//!
//! let ctx = Context::new(SerialBackend::new());
//! let x = ctx.array_from(&[1.0f64, 2.0, 3.0]).unwrap();
//! let s = ctx.inclusive_scan(&x).unwrap();
//! assert_eq!(ctx.to_host(&s).unwrap(), vec![1.0, 3.0, 6.0]);
//! ```

use racc_core::{
    AccScalar, Array1, Backend, Context, KernelProfile, Min, Numeric, RaccError, ReduceOp, Sum,
};

/// The canonical sequential reference implementations every backend must
/// match bitwise (re-export of [`racc_core::prim`]).
pub use racc_core::prim as reference;

/// Cost annotation for scan launches: two passes over the input, one
/// output write per element.
pub const SCAN_PROFILE: KernelProfile = KernelProfile::new("prim_scan", 1.0, 16.0, 8.0);

/// Cost annotation for histogram launches: one key read and one counter
/// update per element.
pub const HISTOGRAM_PROFILE: KernelProfile = KernelProfile::new("prim_histogram", 1.0, 8.0, 8.0);

/// Cost annotation for sort launches: key + payload traffic per element
/// per pass.
pub const SORT_PROFILE: KernelProfile = KernelProfile::new("prim_sort", 2.0, 16.0, 16.0);

/// Cost annotation for the histogram key-validation sweep.
const VALIDATE_PROFILE: KernelProfile = KernelProfile::new("prim_validate", 1.0, 8.0, 0.0);

/// Error type of the validated primitive wrappers.
#[derive(Debug, Clone, PartialEq)]
pub enum PrimError {
    /// A histogram key mapped outside `0..bins`. `index` is the smallest
    /// offending element index (deterministic), `bin` its out-of-range
    /// value.
    BinOutOfRange {
        /// Smallest element index whose key is out of range.
        index: usize,
        /// The offending bin value `key(index)`.
        bin: usize,
        /// The histogram's bin count.
        bins: usize,
    },
    /// `sort_by_key` was given keys and values of different lengths.
    LengthMismatch {
        /// Key array length.
        keys: usize,
        /// Value array length.
        values: usize,
    },
    /// The backend failed (allocation, fault budget, ...).
    Backend(RaccError),
}

impl std::fmt::Display for PrimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrimError::BinOutOfRange { index, bin, bins } => write!(
                f,
                "histogram key at index {index} maps to bin {bin}, outside 0..{bins}"
            ),
            PrimError::LengthMismatch { keys, values } => write!(
                f,
                "sort_by_key requires equal lengths (keys: {keys}, values: {values})"
            ),
            PrimError::Backend(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PrimError {}

impl From<RaccError> for PrimError {
    fn from(e: RaccError) -> Self {
        PrimError::Backend(e)
    }
}

/// A sortable key type: maps to `u64` bits whose unsigned order equals the
/// type's ascending order (total order; for floats the IEEE-754 bit trick,
/// which orders `-NaN < -inf < ... < +inf < +NaN`). `KEY_BITS` bounds the
/// significant low bits so the simulators size their radix passes.
pub trait SortKey: AccScalar {
    /// Significant low bits of [`sort_bits`](Self::sort_bits).
    const KEY_BITS: u32;
    /// The order-preserving bit encoding.
    fn sort_bits(self) -> u64;
}

macro_rules! unsigned_sort_key {
    ($($t:ty),*) => {$(
        impl SortKey for $t {
            const KEY_BITS: u32 = <$t>::BITS;
            #[inline]
            fn sort_bits(self) -> u64 {
                self as u64
            }
        }
    )*};
}
unsigned_sort_key!(u8, u16, u32, u64, usize);

macro_rules! signed_sort_key {
    ($($t:ty => $u:ty),*) => {$(
        impl SortKey for $t {
            const KEY_BITS: u32 = <$t>::BITS;
            #[inline]
            fn sort_bits(self) -> u64 {
                // Flip the sign bit: negative values sort below positives.
                ((self as $u) ^ (1 << (<$t>::BITS - 1))) as u64
            }
        }
    )*};
}
signed_sort_key!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SortKey for f32 {
    const KEY_BITS: u32 = 32;
    #[inline]
    fn sort_bits(self) -> u64 {
        let bits = self.to_bits();
        // IEEE total order: negatives reverse (complement), positives get
        // the sign bit set so they sort above all negatives.
        (if bits >> 31 == 1 {
            !bits
        } else {
            bits ^ 0x8000_0000
        }) as u64
    }
}

impl SortKey for f64 {
    const KEY_BITS: u32 = 64;
    #[inline]
    fn sort_bits(self) -> u64 {
        let bits = self.to_bits();
        if bits >> 63 == 1 {
            !bits
        } else {
            bits ^ 0x8000_0000_0000_0000
        }
    }
}

/// Device primitives on a [`Context`]. Implemented for `Context<B>` over
/// any backend; `racc::Ctx` (enum dispatch) gets it transitively.
pub trait PrimExt {
    /// Inclusive prefix sum: `out[i] = in[0] + ... + in[i]`, with
    /// `out[0] == in[0]` bitwise.
    fn inclusive_scan<T: Numeric>(&self, input: &Array1<T>) -> Result<Array1<T>, PrimError>;

    /// Exclusive prefix sum: `out[0] = 0`, `out[i] = in[0] + ... + in[i-1]`.
    fn exclusive_scan<T: Numeric>(&self, input: &Array1<T>) -> Result<Array1<T>, PrimError>;

    /// Inclusive scan under an arbitrary [`ReduceOp`].
    fn inclusive_scan_with<T: AccScalar, O: ReduceOp<T>>(
        &self,
        input: &Array1<T>,
        op: O,
    ) -> Result<Array1<T>, PrimError>;

    /// Exclusive scan under an arbitrary [`ReduceOp`] (`out[0]` is the
    /// operator identity).
    fn exclusive_scan_with<T: AccScalar, O: ReduceOp<T>>(
        &self,
        input: &Array1<T>,
        op: O,
    ) -> Result<Array1<T>, PrimError>;

    /// Count `keys` into `bins` buckets. Every key is validated against
    /// `bins` first; the smallest offending index is reported as
    /// [`PrimError::BinOutOfRange`]. The output always has exactly `bins`
    /// counts (zeros included).
    fn histogram(&self, keys: &Array1<u32>, bins: usize) -> Result<Array1<u64>, PrimError>;

    /// [`histogram`](Self::histogram) with a computed key: counts
    /// `key(i)` for `i in 0..n`, validated the same way.
    fn histogram_by<F>(&self, n: usize, bins: usize, key: F) -> Result<Array1<u64>, PrimError>
    where
        F: Fn(usize) -> usize + Sync;

    /// [`histogram_by`](Self::histogram_by) **without** key validation.
    /// An out-of-range key is library-level UB: on the simulator back
    /// ends it panics in the device bounds checks (which `simsan`
    /// reports), on CPU back ends in the output-array bounds check. Only
    /// for keys already proven in range.
    fn histogram_by_unchecked<F>(
        &self,
        n: usize,
        bins: usize,
        key: F,
    ) -> Result<Array1<u64>, PrimError>
    where
        F: Fn(usize) -> usize + Sync;

    /// The permutation that stably sorts `keys` ascending: element `rank`
    /// of the result is the original index of the rank-th smallest key
    /// (ties keep their original order). The permutation is unique, so
    /// every backend returns identical bits.
    fn sort_permutation<K: SortKey>(&self, keys: &Array1<K>) -> Result<Array1<u64>, PrimError>;

    /// Stable ascending sort of `(keys, values)` pairs by key; returns the
    /// reordered keys and values as new arrays.
    fn sort_by_key<K: SortKey, V: AccScalar>(
        &self,
        keys: &Array1<K>,
        values: &Array1<V>,
    ) -> Result<(Array1<K>, Array1<V>), PrimError>;
}

impl<B: Backend> PrimExt for Context<B> {
    fn inclusive_scan<T: Numeric>(&self, input: &Array1<T>) -> Result<Array1<T>, PrimError> {
        self.inclusive_scan_with(input, Sum)
    }

    fn exclusive_scan<T: Numeric>(&self, input: &Array1<T>) -> Result<Array1<T>, PrimError> {
        self.exclusive_scan_with(input, Sum)
    }

    fn inclusive_scan_with<T: AccScalar, O: ReduceOp<T>>(
        &self,
        input: &Array1<T>,
        op: O,
    ) -> Result<Array1<T>, PrimError> {
        scan_impl(self, input, true, op)
    }

    fn exclusive_scan_with<T: AccScalar, O: ReduceOp<T>>(
        &self,
        input: &Array1<T>,
        op: O,
    ) -> Result<Array1<T>, PrimError> {
        scan_impl(self, input, false, op)
    }

    fn histogram(&self, keys: &Array1<u32>, bins: usize) -> Result<Array1<u64>, PrimError> {
        let kv = keys.view();
        self.histogram_by(keys.len(), bins, move |i| kv.get(i) as usize)
    }

    fn histogram_by<F>(&self, n: usize, bins: usize, key: F) -> Result<Array1<u64>, PrimError>
    where
        F: Fn(usize) -> usize + Sync,
    {
        // Validation sweep: the *smallest* offending index (a Min
        // reduction — deterministic on every backend) so the error is
        // reproducible, not racy.
        let first_bad: u64 = self.parallel_reduce_with(n, &VALIDATE_PROFILE, Min, |i| {
            if key(i) < bins {
                u64::MAX
            } else {
                i as u64
            }
        });
        if first_bad != u64::MAX {
            let index = first_bad as usize;
            return Err(PrimError::BinOutOfRange {
                index,
                bin: key(index),
                bins,
            });
        }
        self.histogram_by_unchecked(n, bins, key)
    }

    fn histogram_by_unchecked<F>(
        &self,
        n: usize,
        bins: usize,
        key: F,
    ) -> Result<Array1<u64>, PrimError>
    where
        F: Fn(usize) -> usize + Sync,
    {
        let out = self.zeros::<u64>(bins)?;
        let ov = out.view_mut();
        self.backend()
            .prim_histogram_1d(n, bins, &HISTOGRAM_PROFILE, key, move |bin, count| {
                ov.set(bin, count)
            });
        bump(self, |c| &c.histograms, n);
        Ok(out)
    }

    fn sort_permutation<K: SortKey>(&self, keys: &Array1<K>) -> Result<Array1<u64>, PrimError> {
        let n = keys.len();
        let out = self.zeros::<u64>(n)?;
        let kv = keys.view();
        let ov = out.view_mut();
        self.backend().prim_sort_pairs_1d(
            n,
            K::KEY_BITS,
            &SORT_PROFILE,
            move |i| kv.get(i).sort_bits(),
            move |rank, original| ov.set(rank, original as u64),
        );
        bump(self, |c| &c.sorts, n);
        Ok(out)
    }

    fn sort_by_key<K: SortKey, V: AccScalar>(
        &self,
        keys: &Array1<K>,
        values: &Array1<V>,
    ) -> Result<(Array1<K>, Array1<V>), PrimError> {
        let n = keys.len();
        if n != values.len() {
            return Err(PrimError::LengthMismatch {
                keys: n,
                values: values.len(),
            });
        }
        // Output slots are placeholders only: the sort writes a
        // permutation, so every slot is overwritten exactly once.
        let out_keys = self.zeros::<K>(n)?;
        let out_values = self.zeros::<V>(n)?;
        let (kv, vv) = (keys.view(), values.view());
        let kv_for_keys = keys.view();
        let (ko, vo) = (out_keys.view_mut(), out_values.view_mut());
        self.backend().prim_sort_pairs_1d(
            n,
            K::KEY_BITS,
            &SORT_PROFILE,
            move |i| kv_for_keys.get(i).sort_bits(),
            move |rank, original| {
                ko.set(rank, kv.get(original));
                vo.set(rank, vv.get(original));
            },
        );
        bump(self, |c| &c.sorts, n);
        Ok((out_keys, out_values))
    }
}

fn scan_impl<B: Backend, T: AccScalar, O: ReduceOp<T>>(
    ctx: &Context<B>,
    input: &Array1<T>,
    inclusive: bool,
    op: O,
) -> Result<Array1<T>, PrimError> {
    let n = input.len();
    let out = ctx.zeros::<T>(n)?;
    let iv = input.view();
    let ov = out.view_mut();
    ctx.backend().prim_scan_1d(
        n,
        inclusive,
        &SCAN_PROFILE,
        move |i| iv.get(i),
        move |i, v| ov.set(i, v),
        op,
    );
    bump(ctx, |c| &c.scans, n);
    Ok(out)
}

/// Bump one of the context's primitive counters (plus the shared element
/// counter) for `ctx.stats()`.
fn bump<B: Backend>(
    ctx: &Context<B>,
    which: impl Fn(&racc_core::PrimCounters) -> &std::sync::atomic::AtomicU64,
    elements: usize,
) {
    use std::sync::atomic::Ordering::Relaxed;
    let counters = ctx.prim_counters();
    which(counters).fetch_add(1, Relaxed);
    counters.elements.fetch_add(elements as u64, Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use racc_core::{Max, SerialBackend, ThreadsBackend};

    fn serial() -> Context<SerialBackend> {
        Context::new(SerialBackend::new())
    }

    #[test]
    fn inclusive_and_exclusive_scan() {
        let ctx = serial();
        let x = ctx.array_from(&[3u64, 1, 4, 1, 5]).unwrap();
        let inc = ctx.inclusive_scan(&x).unwrap();
        assert_eq!(ctx.to_host(&inc).unwrap(), vec![3, 4, 8, 9, 14]);
        let exc = ctx.exclusive_scan(&x).unwrap();
        assert_eq!(ctx.to_host(&exc).unwrap(), vec![0, 3, 4, 8, 9]);
    }

    #[test]
    fn scan_with_max_operator() {
        let ctx = serial();
        let x = ctx.array_from(&[2i64, -5, 7, 1, 9, 0]).unwrap();
        let m = ctx.inclusive_scan_with(&x, Max).unwrap();
        assert_eq!(ctx.to_host(&m).unwrap(), vec![2, 2, 7, 7, 9, 9]);
    }

    #[test]
    fn scan_first_element_is_bitwise_input() {
        // Tile 0 must not combine with an identity: -0.0 stays -0.0.
        let ctx = serial();
        let x = ctx.array_from(&[-0.0f64, 1.0]).unwrap();
        let s = ctx.inclusive_scan(&x).unwrap();
        assert_eq!(ctx.to_host(&s).unwrap()[0].to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn empty_scan_and_sort() {
        let ctx = serial();
        let x = ctx.array_from(&[] as &[f64]).unwrap();
        assert_eq!(ctx.inclusive_scan(&x).unwrap().len(), 0);
        let p = ctx.sort_permutation(&x).unwrap();
        assert_eq!(p.len(), 0);
    }

    #[test]
    fn histogram_counts_and_zero_bins() {
        let ctx = serial();
        let keys = ctx.array_from(&[1u32, 1, 3, 1]).unwrap();
        let h = ctx.histogram(&keys, 5).unwrap();
        assert_eq!(ctx.to_host(&h).unwrap(), vec![0, 3, 0, 1, 0]);
        // n == 0 still defines every bin.
        let empty = ctx.array_from(&[] as &[u32]).unwrap();
        let h = ctx.histogram(&empty, 4).unwrap();
        assert_eq!(ctx.to_host(&h).unwrap(), vec![0, 0, 0, 0]);
    }

    #[test]
    fn histogram_out_of_range_is_a_typed_error() {
        let ctx = serial();
        let keys = ctx.array_from(&[0u32, 2, 9, 1, 9]).unwrap();
        let err = ctx.histogram(&keys, 3).unwrap_err();
        assert_eq!(
            err,
            PrimError::BinOutOfRange {
                index: 2,
                bin: 9,
                bins: 3
            }
        );
        let msg = err.to_string();
        assert!(msg.contains("index 2") && msg.contains("bin 9"), "{msg}");
    }

    #[test]
    fn sort_by_key_is_stable() {
        #[derive(Clone, Copy, Debug, PartialEq)]
        struct Particle {
            id: u32,
            w: f32,
        }
        let ctx = serial();
        let keys = ctx.array_from(&[2u32, 0, 2, 1, 0]).unwrap();
        let vals: Vec<Particle> = (0..5).map(|i| Particle { id: i, w: i as f32 }).collect();
        let values = ctx.array_from(&vals).unwrap();
        let (sk, sv) = ctx.sort_by_key(&keys, &values).unwrap();
        assert_eq!(ctx.to_host(&sk).unwrap(), vec![0, 0, 1, 2, 2]);
        let ids: Vec<u32> = ctx.to_host(&sv).unwrap().iter().map(|p| p.id).collect();
        // Equal keys keep original order: index 1 before 4, 0 before 2.
        assert_eq!(ids, vec![1, 4, 3, 0, 2]);
    }

    #[test]
    fn sort_by_key_length_mismatch() {
        let ctx = serial();
        let keys = ctx.array_from(&[1u32, 2]).unwrap();
        let values = ctx.array_from(&[1.0f64]).unwrap();
        assert_eq!(
            ctx.sort_by_key(&keys, &values).unwrap_err(),
            PrimError::LengthMismatch { keys: 2, values: 1 }
        );
    }

    #[test]
    fn float_sort_keys_preserve_order() {
        let ctx = serial();
        let data = [
            3.5f32,
            -0.0,
            0.0,
            -7.25,
            f32::INFINITY,
            f32::NEG_INFINITY,
            1.0e-10,
        ];
        let keys = ctx.array_from(&data).unwrap();
        let perm = ctx.sort_permutation(&keys).unwrap();
        let perm = ctx.to_host(&perm).unwrap();
        let sorted: Vec<f32> = perm.iter().map(|&i| data[i as usize]).collect();
        let mut expect = data.to_vec();
        expect.sort_by(f32::total_cmp);
        // -0.0 < 0.0 in the total order, and the bit encodings agree.
        assert_eq!(
            sorted.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            expect.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn signed_sort_keys_order_negatives_first() {
        let ctx = serial();
        let data = [5i32, -3, 0, i32::MIN, i32::MAX, -3];
        let keys = ctx.array_from(&data).unwrap();
        let (sk, _) = ctx
            .sort_by_key(&keys, &ctx.array_from(&[0u8; 6]).unwrap())
            .unwrap();
        assert_eq!(
            ctx.to_host(&sk).unwrap(),
            vec![i32::MIN, -3, -3, 0, 5, i32::MAX]
        );
    }

    #[test]
    fn stats_report_prim_counters() {
        let ctx = Context::new(ThreadsBackend::new());
        let x = ctx.array_from(&[1.0f64, 2.0, 3.0]).unwrap();
        let _ = ctx.inclusive_scan(&x).unwrap();
        let keys = ctx.array_from(&[0u32, 1, 0]).unwrap();
        let _ = ctx.histogram(&keys, 2).unwrap();
        let _ = ctx.sort_permutation(&keys).unwrap();
        let stats = ctx.stats();
        let prim = stats.prim.expect("prim counters must surface");
        assert_eq!((prim.scans, prim.histograms, prim.sorts), (1, 1, 1));
        assert_eq!(prim.elements, 9);
        assert!(format!("{stats}").contains("prim: 1 scans"), "{stats}");
    }

    #[test]
    fn threads_match_serial_bitwise() {
        let sctx = serial();
        let tctx = Context::new(ThreadsBackend::new());
        let n = 10_000usize;
        let data: Vec<f32> = (0..n).map(|i| ((i as f32) * 0.61).cos()).collect();
        let sx = sctx.array_from(&data).unwrap();
        let tx = tctx.array_from(&data).unwrap();
        let s = sctx.to_host(&sctx.inclusive_scan(&sx).unwrap()).unwrap();
        let t = tctx.to_host(&tctx.inclusive_scan(&tx).unwrap()).unwrap();
        for i in 0..n {
            assert_eq!(s[i].to_bits(), t[i].to_bits(), "i={i}");
        }
    }
}
