//! Property tests of the simulator: launch coverage, memory round-trips,
//! cooperative reductions, and perf-model monotonicity.

use proptest::prelude::*;
use racc_gpusim::{
    perf, profiles, Device, DeviceSlice, DeviceSliceMut, Dim3, KernelCost, LaunchConfig,
    PhasedKernel, SharedMem, ThreadCtx,
};
use std::sync::atomic::{AtomicUsize, Ordering};

fn test_device() -> Device {
    Device::new(profiles::test_device())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every thread of an arbitrary valid 3D launch runs exactly once.
    #[test]
    fn launches_execute_every_thread_once(
        gx in 1u32..6, gy in 1u32..5, gz in 1u32..4,
        bx in 1u32..8, by in 1u32..4, bz in 1u32..3,
    ) {
        prop_assume!((bx * by * bz) <= 64 && bz <= 8);
        let dev = test_device();
        let cfg = LaunchConfig::new(Dim3::xyz(gx, gy, gz), Dim3::xyz(bx, by, bz));
        let total = cfg.total_threads();
        let hits: Vec<AtomicUsize> = (0..total).map(|_| AtomicUsize::new(0)).collect();
        dev.launch(cfg, KernelCost::default(), |t| {
            hits[t.global_linear()].fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
        prop_assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    /// Upload/download round-trips arbitrary data exactly.
    #[test]
    fn memory_round_trips(data in prop::collection::vec(any::<f64>(), 0..2000)) {
        let dev = test_device();
        let buf = dev.alloc_from(&data).unwrap();
        let back = dev.read_vec(&buf).unwrap();
        // Bitwise equality (NaN-safe).
        prop_assert_eq!(data.len(), back.len());
        for (a, b) in data.iter().zip(&back) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// The cooperative block-tree reduction sums arbitrary data correctly
    /// for arbitrary (power-of-two) block sizes.
    #[test]
    fn phased_tree_reduction_is_exactly_a_sum(
        data in prop::collection::vec(-1e3f64..1e3, 1..1500),
        block_pow in 2u32..6,
    ) {
        struct TreeSum {
            n: usize,
            block: usize,
            x: DeviceSlice<f64>,
            out: DeviceSliceMut<f64>,
        }
        impl PhasedKernel for TreeSum {
            type State = ();
            fn num_phases(&self) -> usize {
                2 + self.block.trailing_zeros() as usize
            }
            fn phase(&self, phase: usize, ctx: &ThreadCtx, _s: &mut (), sh: &SharedMem) {
                let ti = ctx.thread_linear();
                let steps = self.block.trailing_zeros() as usize;
                if phase == 0 {
                    let i = ctx.global_id_x();
                    sh.set::<f64>(ti, if i < self.n { self.x.get(i) } else { 0.0 });
                } else if phase <= steps {
                    let half = self.block >> phase;
                    if ti < half {
                        sh.set::<f64>(ti, sh.get::<f64>(ti) + sh.get::<f64>(ti + half));
                    }
                } else if ti == 0 {
                    self.out.set(ctx.block_linear(), sh.get::<f64>(0));
                }
            }
        }
        let dev = test_device();
        let n = data.len();
        let block = 1usize << block_pow; // 4..=32, within the 64 limit
        let blocks = n.div_ceil(block);
        let x = dev.alloc_from(&data).unwrap();
        let out = dev.alloc::<f64>(blocks).unwrap();
        let kernel = TreeSum {
            n,
            block,
            x: dev.slice(&x).unwrap(),
            out: dev.slice_mut(&out).unwrap(),
        };
        let cfg = LaunchConfig::new(blocks as u32, block as u32).with_shared_mem(block * 8);
        dev.launch_phased(cfg, KernelCost::default(), &kernel).unwrap();
        let total: f64 = dev.read_vec(&out).unwrap().iter().sum();
        let expect: f64 = data.iter().sum();
        prop_assert!((total - expect).abs() < 1e-9 * expect.abs().max(1.0));
    }

    /// Kernel time is monotone in thread count and never below the launch
    /// overhead, for every shipped profile.
    #[test]
    fn perf_model_is_monotone_and_floored(threads_pow in 4u32..22) {
        for spec in profiles::all() {
            let cost = KernelCost::new(2.0, 16.0, 8.0, 1.0);
            let t_at = |p: u32| {
                let n = 1usize << p;
                let block = spec.max_threads_per_block.min(256);
                perf::kernel_time_ns(&spec, Dim3::x(n.div_ceil(block as usize) as u32),
                    Dim3::x(block), &cost)
            };
            let small = t_at(threads_pow);
            let large = t_at(threads_pow + 2);
            prop_assert!(large >= small, "{}", spec.name);
            prop_assert!(small >= spec.launch_overhead_ns);
        }
    }

    /// Transfer time is additive-ish: t(2b) <= 2 t(b) (latency amortizes),
    /// and monotone.
    #[test]
    fn transfer_model_is_sane(bytes in 1usize..(1 << 26)) {
        for spec in profiles::all() {
            let t1 = perf::transfer_time_ns(&spec, bytes);
            let t2 = perf::transfer_time_ns(&spec, bytes * 2);
            prop_assert!(t2 >= t1);
            prop_assert!(t2 <= 2.0 * t1 + 1.0);
            prop_assert!(t1 >= spec.link_latency_ns);
        }
    }

    /// Device memory accounting is exact under arbitrary alloc/free orders.
    #[test]
    fn heap_accounting_balances(sizes in prop::collection::vec(0usize..4096, 1..24)) {
        let dev = test_device();
        let mut live = Vec::new();
        let mut expected = 0usize;
        for (i, &s) in sizes.iter().enumerate() {
            let buf = dev.alloc::<u8>(s).unwrap();
            expected += s;
            live.push(buf);
            prop_assert_eq!(dev.used_bytes(), expected);
            if i % 3 == 2 {
                let dropped = live.remove(0);
                expected -= dropped.len();
                drop(dropped);
                prop_assert_eq!(dev.used_bytes(), expected);
            }
        }
        drop(live);
        prop_assert_eq!(dev.used_bytes(), 0);
    }
}

/// Differential tests for the executor hot path: the arena/fast-path
/// executor (`Device::launch_phased` → `execute_grid`) must produce
/// **bit-identical** results to the pre-arena reference executor
/// (`Device::execute_grid_reference`, which allocates a fresh `SharedMem`
/// and state `Vec` per block), across grid/block shapes including partial
/// blocks.
mod arena_vs_reference {
    use super::*;

    /// Non-cooperative AXPY-shaped kernel: single phase, zero-sized state,
    /// no shared memory — exactly the fast-path conditions.
    struct NonCoop {
        n: usize,
        x: DeviceSlice<f64>,
        y: DeviceSlice<f64>,
        out: DeviceSliceMut<f64>,
    }
    impl PhasedKernel for NonCoop {
        type State = ();
        fn num_phases(&self) -> usize {
            1
        }
        fn phase(&self, _p: usize, ctx: &ThreadCtx, _s: &mut (), _sh: &SharedMem) {
            let i = ctx.global_linear();
            if i < self.n {
                self.out.set(i, 2.5 * self.x.get(i) + self.y.get(i));
            }
        }
    }

    /// Cooperative shared-memory tree-reduction DOT (the paper's Fig. 3
    /// shape): multi-phase, per-block shared memory — the arena path.
    struct TreeDot {
        n: usize,
        block: usize,
        x: DeviceSlice<f64>,
        y: DeviceSlice<f64>,
        partials: DeviceSliceMut<f64>,
    }
    impl PhasedKernel for TreeDot {
        type State = ();
        fn num_phases(&self) -> usize {
            2 + self.block.trailing_zeros() as usize
        }
        fn phase(&self, phase: usize, ctx: &ThreadCtx, _s: &mut (), sh: &SharedMem) {
            let ti = ctx.thread_linear();
            let steps = self.block.trailing_zeros() as usize;
            if phase == 0 {
                let i = ctx.global_id_x();
                let v = if i < self.n {
                    self.x.get(i) * self.y.get(i)
                } else {
                    0.0
                };
                sh.set::<f64>(ti, v);
            } else if phase <= steps {
                let half = self.block >> phase;
                if ti < half {
                    sh.set::<f64>(ti, sh.get::<f64>(ti) + sh.get::<f64>(ti + half));
                }
            } else if ti == 0 {
                self.partials.set(ctx.block_linear(), sh.get::<f64>(0));
            }
        }
    }

    /// Non-zero-sized `State` carried across a barrier, no shared memory:
    /// exercises the arena's placement-initialized state slots.
    struct StatefulSquare {
        n: usize,
        x: DeviceSlice<f64>,
        out: DeviceSliceMut<f64>,
    }
    impl PhasedKernel for StatefulSquare {
        type State = f64;
        fn num_phases(&self) -> usize {
            2
        }
        fn phase(&self, phase: usize, ctx: &ThreadCtx, state: &mut f64, _sh: &SharedMem) {
            let i = ctx.global_linear();
            if phase == 0 {
                *state = if i < self.n { self.x.get(i) } else { 0.0 };
            } else if i < self.n {
                self.out.set(i, *state * *state);
            }
        }
    }

    fn bits(dev: &Device, buf: &racc_gpusim::DeviceBuffer<f64>) -> Vec<u64> {
        dev.read_vec(buf)
            .unwrap()
            .iter()
            .map(|v| v.to_bits())
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Fast path vs reference, arbitrary 2D grids and (possibly
        /// non-power-of-two) block shapes, with a partial last block.
        #[test]
        fn non_cooperative_bit_identical(
            data in prop::collection::vec(-1e6f64..1e6, 1..800),
            bx in 1u32..33, by in 1u32..3, gy in 1u32..4,
        ) {
            let dev = test_device();
            let n = data.len();
            let block = Dim3::xy(bx, by);
            prop_assume!(block.count() <= 64);
            let gx = n.div_ceil(block.count() * gy as usize).max(1) as u32;
            let cfg = LaunchConfig::new(Dim3::xy(gx, gy), block);
            let x = dev.alloc_from(&data).unwrap();
            let y = dev.alloc_from(&data).unwrap();
            let out_fast = dev.alloc::<f64>(n).unwrap();
            let out_ref = dev.alloc::<f64>(n).unwrap();
            let mk = |out: &racc_gpusim::DeviceBuffer<f64>| NonCoop {
                n,
                x: dev.slice(&x).unwrap(),
                y: dev.slice(&y).unwrap(),
                out: dev.slice_mut(out).unwrap(),
            };
            dev.launch_phased(cfg, KernelCost::default(), &mk(&out_fast)).unwrap();
            dev.execute_grid_reference(cfg, &mk(&out_ref));
            prop_assert_eq!(bits(&dev, &out_fast), bits(&dev, &out_ref));
        }

        /// Cooperative DOT vs reference: same block partials, bit for bit.
        #[test]
        fn cooperative_dot_bit_identical(
            data in prop::collection::vec(-1e3f64..1e3, 1..1200),
            block_pow in 2u32..7,
        ) {
            let dev = test_device();
            let n = data.len();
            let block = 1usize << block_pow; // 4..=64, includes partial blocks
            let blocks = n.div_ceil(block);
            let x = dev.alloc_from(&data).unwrap();
            let y = dev.alloc_from(&data).unwrap();
            let out_fast = dev.alloc::<f64>(blocks).unwrap();
            let out_ref = dev.alloc::<f64>(blocks).unwrap();
            let cfg = LaunchConfig::new(blocks as u32, block as u32)
                .with_shared_mem(block * 8);
            let mk = |out: &racc_gpusim::DeviceBuffer<f64>| TreeDot {
                n,
                block,
                x: dev.slice(&x).unwrap(),
                y: dev.slice(&y).unwrap(),
                partials: dev.slice_mut(out).unwrap(),
            };
            dev.launch_phased(cfg, KernelCost::default(), &mk(&out_fast)).unwrap();
            dev.execute_grid_reference(cfg, &mk(&out_ref));
            prop_assert_eq!(bits(&dev, &out_fast), bits(&dev, &out_ref));
        }

        /// Non-ZST state across a barrier: arena state slots vs per-block Vec.
        #[test]
        fn stateful_kernel_bit_identical(
            data in prop::collection::vec(-1e3f64..1e3, 1..700),
            bx in 1u32..65,
        ) {
            let dev = test_device();
            let n = data.len();
            let gx = n.div_ceil(bx as usize) as u32;
            let cfg = LaunchConfig::new(gx, bx);
            let x = dev.alloc_from(&data).unwrap();
            let out_fast = dev.alloc::<f64>(n).unwrap();
            let out_ref = dev.alloc::<f64>(n).unwrap();
            let mk = |out: &racc_gpusim::DeviceBuffer<f64>| StatefulSquare {
                n,
                x: dev.slice(&x).unwrap(),
                out: dev.slice_mut(out).unwrap(),
            };
            dev.launch_phased(cfg, KernelCost::default(), &mk(&out_fast)).unwrap();
            dev.execute_grid_reference(cfg, &mk(&out_ref));
            prop_assert_eq!(bits(&dev, &out_fast), bits(&dev, &out_ref));
        }
    }
}

/// A Hillis–Steele inclusive block scan: each doubling step is split into a
/// read phase and a write phase, with the per-thread value carried across
/// the barrier in the kernel `State` — exercising the simulated register
/// file that survives `__syncthreads`.
mod block_scan {
    use super::*;

    struct InclusiveScan {
        n: usize,
        block: usize,
        x: DeviceSlice<f64>,
        out: DeviceSliceMut<f64>,
    }

    impl PhasedKernel for InclusiveScan {
        /// The value this thread will write in the next write phase.
        type State = f64;

        fn num_phases(&self) -> usize {
            // load + (read, write) per doubling step + store
            2 + 2 * self.block.trailing_zeros() as usize
        }

        fn phase(&self, phase: usize, ctx: &ThreadCtx, carry: &mut f64, sh: &SharedMem) {
            let ti = ctx.thread_linear();
            let steps = self.block.trailing_zeros() as usize;
            if phase == 0 {
                let i = ctx.global_id_x();
                sh.set::<f64>(ti, if i < self.n { self.x.get(i) } else { 0.0 });
            } else if phase <= 2 * steps {
                let step = (phase - 1) / 2;
                let offset = 1usize << step;
                if phase % 2 == 1 {
                    // Read phase: compute into the register, no writes.
                    *carry = if ti >= offset {
                        sh.get::<f64>(ti) + sh.get::<f64>(ti - offset)
                    } else {
                        sh.get::<f64>(ti)
                    };
                } else {
                    // Write phase: publish the carried value.
                    sh.set::<f64>(ti, *carry);
                }
            } else {
                let i = ctx.global_id_x();
                if i < self.n {
                    self.out.set(i, sh.get::<f64>(ti));
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn block_scan_matches_prefix_sums(data in prop::collection::vec(-100.0f64..100.0, 1..64)) {
            // One block covering the data (test device limit: 64 threads).
            let dev = test_device();
            let n = data.len();
            let block = n.next_power_of_two().max(2);
            prop_assume!(block <= 64);
            let x = dev.alloc_from(&data).unwrap();
            let out = dev.alloc::<f64>(n).unwrap();
            let kernel = InclusiveScan {
                n,
                block,
                x: dev.slice(&x).unwrap(),
                out: dev.slice_mut(&out).unwrap(),
            };
            let cfg = LaunchConfig::new(1u32, block as u32).with_shared_mem(block * 8);
            dev.launch_phased(cfg, KernelCost::default(), &kernel).unwrap();
            let got = dev.read_vec(&out).unwrap();
            let mut acc = 0.0;
            for (i, v) in data.iter().enumerate() {
                acc += v;
                prop_assert!((got[i] - acc).abs() < 1e-9, "at {i}: {} vs {acc}", got[i]);
            }
        }
    }
}
