//! Counting-allocator proof of the executor's zero-allocation claim: once
//! arenas and the op log are warm, `execute_grid` performs **zero** heap
//! allocations per launch — fast path and cooperative path alike — so the
//! allocation count cannot scale with the block count either.
//!
//! Uses a pool of one participant: the block loop then runs inline on the
//! caller (no cross-thread job hand-off), which makes the zero-allocation
//! assertion exact. Wider pools add only the pool's per-broadcast messaging,
//! never per-block allocations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use racc_gpusim::perf::OpKind;
use racc_gpusim::{
    profiles, Device, DeviceSlice, DeviceSliceMut, KernelCost, LaunchConfig, PhasedKernel,
    SharedMem, ThreadCtx,
};
use racc_threadpool::ThreadPool;

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

/// Cooperative tree-sum kernel (shared memory + multi phase): the arena path.
struct TreeSum {
    n: usize,
    block: usize,
    x: DeviceSlice<f64>,
    out: DeviceSliceMut<f64>,
}

impl PhasedKernel for TreeSum {
    type State = ();
    fn num_phases(&self) -> usize {
        2 + self.block.trailing_zeros() as usize
    }
    fn phase(&self, phase: usize, ctx: &ThreadCtx, _s: &mut (), sh: &SharedMem) {
        let ti = ctx.thread_linear();
        let steps = self.block.trailing_zeros() as usize;
        if phase == 0 {
            let i = ctx.global_id_x();
            sh.set::<f64>(ti, if i < self.n { self.x.get(i) } else { 0.0 });
        } else if phase <= steps {
            let half = self.block >> phase;
            if ti < half {
                sh.set::<f64>(ti, sh.get::<f64>(ti) + sh.get::<f64>(ti + half));
            }
        } else if ti == 0 {
            self.out.set(ctx.block_linear(), sh.get::<f64>(0));
        }
    }
}

// One #[test] so nothing else in this process races the global counter.
#[test]
fn execute_grid_steady_state_is_allocation_free() {
    // This test asserts the chaos-OFF guarantee (armed chaos appends to the
    // fault log, which allocates); keep it meaningful even when the suite
    // runs under the CI's RACC_CHAOS soak.
    std::env::remove_var("RACC_CHAOS");
    let dev = Device::with_pool(profiles::test_device(), Arc::new(ThreadPool::new(1)));
    // This test asserts the sanitizer-OFF guarantee; keep it meaningful even
    // when the suite runs under RACC_SANITIZER=1.
    dev.set_sanitizer(false);
    let n = 4096 * 64;
    let x = dev.alloc_from(&vec![1.0f64; n]).unwrap();
    let out = dev.alloc::<f64>(n).unwrap();
    let partials = dev.alloc::<f64>(4096).unwrap();
    let (xv, outv) = (dev.slice(&x).unwrap(), dev.slice_mut(&out).unwrap());

    // Fill the op log to its retention cap so `charge` runs in ring mode
    // (pop + push, no growth), the launch steady state.
    for _ in 0..5000 {
        dev.charge(OpKind::Kernel, 0, 0, 0.0);
    }

    let fast_cfg = |blocks: u32| LaunchConfig::new(blocks, 64u32);
    let run_fast = |blocks: u32| {
        dev.launch(fast_cfg(blocks), KernelCost::default(), |t| {
            let i = t.global_linear();
            outv.set(i, xv.get(i) + 1.0);
        })
        .unwrap();
    };
    let coop_cfg = LaunchConfig::new(4096u32, 64u32).with_shared_mem(64 * 8);
    let coop = TreeSum {
        n,
        block: 64,
        x: dev.slice(&x).unwrap(),
        out: dev.slice_mut(&partials).unwrap(),
    };
    let run_coop = || {
        dev.launch_phased(coop_cfg, KernelCost::default(), &coop)
            .unwrap();
    };

    // Warm-up: grows the worker arena (shared-mem capacity, state scratch)
    // once; everything after must be allocation-free.
    run_fast(64);
    run_fast(4096);
    run_coop();

    // Fast path, small grid.
    let before = allocs();
    for _ in 0..4 {
        run_fast(64);
    }
    let small = allocs() - before;
    assert_eq!(small, 0, "fast path (64 blocks) must not allocate");

    // Fast path, 64x the blocks: still zero, so per-block cost is exactly 0
    // allocations (the pre-arena executor paid ~2 per block).
    let before = allocs();
    for _ in 0..4 {
        run_fast(4096);
    }
    let large = allocs() - before;
    assert_eq!(large, 0, "fast path (4096 blocks) must not allocate");

    // Cooperative path: shared memory re-zeroed and states re-initialized
    // per block out of the arena, still zero allocations.
    let before = allocs();
    for _ in 0..4 {
        run_coop();
    }
    let coop_allocs = allocs() - before;
    assert_eq!(coop_allocs, 0, "cooperative arena path must not allocate");

    // Results still correct after all the reuse.
    assert_eq!(dev.read_scalar(&out, 7).unwrap(), 2.0);
    assert_eq!(dev.read_scalar(&partials, 0).unwrap(), 64.0);

    // The portable-front-end fast path with the fusion knob off: a
    // `Context<CudaBackend>` `parallel_for` must also be allocation-free in
    // steady state — the knob is consulted outside the launch path, so
    // turning fusion machinery into the tree must not cost the eager path
    // anything.
    let ctx = racc_core::Context::builder(racc_backend_cuda::CudaBackend::new())
        .sanitizer(false)
        .fusion(false)
        .build();
    assert!(!ctx.fusion_enabled());
    let a = ctx.array_from(&vec![1.0f64; 4096]).unwrap();
    let profile = racc_core::KernelProfile::axpy();
    let run_ctx = || {
        let av = a.view_mut();
        ctx.parallel_for(4096, &profile, move |i| {
            av.set(i, av.get(i) + 1.0);
        });
    };
    // Warm-up (arena growth, op-log fill happened above on a different
    // device; this context owns a fresh one).
    for _ in 0..5000 {
        run_ctx();
    }
    let before = allocs();
    for _ in 0..4 {
        run_ctx();
    }
    let ctx_allocs = allocs() - before;
    assert_eq!(
        ctx_allocs, 0,
        "Context parallel_for with fusion off must not allocate in steady state"
    );

    // The compiled-plan cache-hit path: once a lazy program's plan is
    // cached, re-evaluating it must be allocation-free end to end —
    // scratch comes from the thread-local pool, ingest reuses its
    // retained buffers, the cache lookup clones an `Arc`, and the tape
    // executor keeps per-element slots on the stack. The expression is
    // pre-built (cloning it is an `Rc` bump, not an allocation) and uses
    // `store` rather than `assign` (which would mint a `Forward` node per
    // call). Map-only on purpose: the simulator's reduction kernels
    // allocate their partials buffer per launch by design.
    use racc_fuse::LazyExt;
    let expr = racc_fuse::load(&a) + racc_fuse::lit(1.0);
    let run_lazy = || {
        let mut l = ctx.lazy();
        l.store(&a, expr.clone());
        l.eval();
    };
    // Warm-up: first call plans, compiles, and inserts; later calls hit.
    for _ in 0..8 {
        run_lazy();
    }
    let before = allocs();
    for _ in 0..4 {
        run_lazy();
    }
    let lazy_allocs = allocs() - before;
    assert_eq!(
        lazy_allocs, 0,
        "cached-plan re-evaluation must not allocate in steady state"
    );
}
