//! Device architecture descriptors.

/// Architectural and calibration parameters of a simulated accelerator.
///
/// The structural fields (limits, compute-unit counts) gate launches exactly
/// like the attribute queries the paper's back ends perform
/// (`CUDA.DEVICE_ATTRIBUTE_MAX_BLOCK_DIM_X`, `maxTotalGroupSize`, ...). The
/// throughput fields drive the analytic performance model; see
/// [`crate::profiles`] for the calibrated instances and the calibration
/// notes in `EXPERIMENTS.md`.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name, e.g. `"NVIDIA A100"`.
    pub name: &'static str,
    /// Short identifier used in tables, e.g. `"a100"`.
    pub key: &'static str,
    /// Number of compute units (SMs / CUs / Xe cores).
    pub compute_units: u32,
    /// SIMT width (warp 32 / wavefront 64 / sub-group 16-32).
    pub simt_width: u32,
    /// Maximum threads per block (work-group).
    pub max_threads_per_block: u32,
    /// Maximum extent of the x dimension of a block.
    pub max_block_dim_x: u32,
    /// Maximum extent of the y dimension of a block.
    pub max_block_dim_y: u32,
    /// Maximum extent of the z dimension of a block.
    pub max_block_dim_z: u32,
    /// Maximum number of resident blocks per compute unit.
    pub max_blocks_per_cu: u32,
    /// Shared-memory (LDS/SLM) bytes available per block.
    pub shared_mem_per_block: usize,
    /// Device memory capacity in bytes.
    pub memory_bytes: usize,
    /// Peak device-memory bandwidth, bytes per second.
    pub mem_bw_bytes_per_sec: f64,
    /// Fraction of peak bandwidth simple streaming kernels achieve (0..=1).
    pub mem_efficiency: f64,
    /// Peak double-precision throughput, FLOP per second.
    pub fp64_flops_per_sec: f64,
    /// Fixed cost of one kernel launch, nanoseconds (driver + dispatch).
    pub launch_overhead_ns: f64,
    /// Host-device link bandwidth, bytes per second (PCIe / fabric).
    pub link_bw_bytes_per_sec: f64,
    /// Host-device link latency per transfer, nanoseconds.
    pub link_latency_ns: f64,
    /// Multiplier (>= 1) applied to the final pass of reductions: captures
    /// the extra device-to-host result read plus driver synchronization the
    /// paper's two-kernel DOT exhibits. Calibrated per device.
    pub reduce_sync_penalty: f64,
    /// Penalty factor (<= 1) applied to achieved bandwidth for fully
    /// uncoalesced access; interpolated by a kernel's coalescing factor.
    pub uncoalesced_efficiency: f64,
}

impl DeviceSpec {
    /// Validate internal consistency; used by tests and `Device::new`.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn validate(&self) -> Result<(), String> {
        macro_rules! ensure {
            ($cond:expr, $msg:expr) => {
                if !$cond {
                    return Err(format!("{}: {}", self.name, $msg));
                }
            };
        }
        ensure!(self.compute_units > 0, "compute_units must be positive");
        ensure!(self.simt_width > 0, "simt_width must be positive");
        ensure!(
            self.max_threads_per_block > 0,
            "max_threads_per_block must be positive"
        );
        ensure!(
            self.max_block_dim_x > 0 && self.max_block_dim_y > 0 && self.max_block_dim_z > 0,
            "block dim limits must be positive"
        );
        ensure!(self.memory_bytes > 0, "memory_bytes must be positive");
        ensure!(
            self.mem_bw_bytes_per_sec > 0.0,
            "memory bandwidth must be positive"
        );
        ensure!(
            (0.0..=1.0).contains(&self.mem_efficiency) && self.mem_efficiency > 0.0,
            "mem_efficiency must be in (0, 1]"
        );
        ensure!(
            self.fp64_flops_per_sec > 0.0,
            "fp64 throughput must be positive"
        );
        ensure!(
            self.launch_overhead_ns >= 0.0,
            "launch overhead must be non-negative"
        );
        ensure!(
            self.link_bw_bytes_per_sec > 0.0,
            "link bandwidth must be positive"
        );
        ensure!(
            self.link_latency_ns >= 0.0,
            "link latency must be non-negative"
        );
        ensure!(
            self.reduce_sync_penalty >= 1.0,
            "reduce_sync_penalty must be >= 1"
        );
        ensure!(
            (0.0..=1.0).contains(&self.uncoalesced_efficiency) && self.uncoalesced_efficiency > 0.0,
            "uncoalesced_efficiency must be in (0, 1]"
        );
        Ok(())
    }

    /// Achieved streaming bandwidth in bytes/ns for a kernel with the given
    /// coalescing factor in `[0, 1]` (1 = perfectly coalesced).
    pub fn achieved_bw_bytes_per_ns(&self, coalescing: f64) -> f64 {
        let c = coalescing.clamp(0.0, 1.0);
        let eff = self.uncoalesced_efficiency + (1.0 - self.uncoalesced_efficiency) * c;
        self.mem_bw_bytes_per_sec * self.mem_efficiency * eff / 1e9
    }

    /// Peak FP64 throughput in FLOP/ns.
    pub fn flops_per_ns(&self) -> f64 {
        self.fp64_flops_per_sec / 1e9
    }

    /// Host link bandwidth in bytes/ns.
    pub fn link_bw_bytes_per_ns(&self) -> f64 {
        self.link_bw_bytes_per_sec / 1e9
    }

    /// Maximum number of simultaneously resident blocks on the device.
    pub fn resident_blocks(&self) -> u64 {
        self.compute_units as u64 * self.max_blocks_per_cu as u64
    }
}

#[cfg(test)]
mod tests {
    use crate::profiles;

    #[test]
    fn shipped_profiles_validate() {
        for spec in profiles::all() {
            spec.validate()
                .expect("profile must be internally consistent");
        }
    }

    #[test]
    fn validation_catches_bad_fields() {
        let mut spec = profiles::nvidia_a100();
        spec.compute_units = 0;
        assert!(spec.validate().is_err());

        let mut spec = profiles::nvidia_a100();
        spec.mem_efficiency = 1.5;
        assert!(spec.validate().is_err());

        let mut spec = profiles::nvidia_a100();
        spec.reduce_sync_penalty = 0.5;
        assert!(spec.validate().is_err());
    }

    #[test]
    fn achieved_bandwidth_interpolates_with_coalescing() {
        let spec = profiles::nvidia_a100();
        let full = spec.achieved_bw_bytes_per_ns(1.0);
        let none = spec.achieved_bw_bytes_per_ns(0.0);
        let half = spec.achieved_bw_bytes_per_ns(0.5);
        assert!(none < half && half < full);
        let expected_none =
            spec.mem_bw_bytes_per_sec * spec.mem_efficiency * spec.uncoalesced_efficiency / 1e9;
        assert!((none - expected_none).abs() < 1e-12);
        // Out-of-range factors clamp.
        assert_eq!(spec.achieved_bw_bytes_per_ns(2.0), full);
        assert_eq!(spec.achieved_bw_bytes_per_ns(-1.0), none);
    }
}
