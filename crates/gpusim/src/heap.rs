//! The device memory heap: allocations, typed buffers, and kernel-side
//! slices.
//!
//! Device memory is modeled as real host allocations owned by the simulated
//! device, **distinct from the caller's data**: the only way data crosses the
//! boundary is through the device's upload/download methods, which charge the
//! link-transfer cost — exactly the discipline a discrete GPU imposes.
//!
//! Under the sanitizer (see [`crate::Device::set_sanitizer`]) every
//! allocation additionally carries [`AllocMeta`]: live/freed state, canary
//! regions flanking the payload, and an allocation-site backtrace, so
//! out-of-bounds accesses, use-after-free through stale slices, and leaks
//! produce diagnostics naming the allocation.

use std::alloc::{alloc_zeroed, dealloc, Layout};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::racecheck::RaceTracker;
use crate::sanitizer::{AllocMeta, CANARY_BYTES, CANARY_PATTERN};

/// Cold, outlined bounds failure (keeps formatting out of hot accessors).
#[cold]
#[inline(never)]
fn oob(i: usize, len: usize) -> ! {
    panic!("device access {i} out of bounds (len {len})");
}

/// Bounds failure naming the sanitized allocation.
#[cold]
#[inline(never)]
fn oob_named(i: usize, len: usize, meta: &AllocMeta) -> ! {
    panic!(
        "simsan: device access {i} out of bounds (len {len}) for {}",
        meta.label()
    );
}

/// Use-after-free through a slice whose owning buffer has dropped.
#[cold]
#[inline(never)]
fn use_after_free(meta: &AllocMeta) -> ! {
    panic!(
        "simsan: use-after-free: access through a stale slice of freed {}",
        meta.label()
    );
}

/// Marker trait for element types storable in device memory. Blanket-implemented
/// for all `Copy + Send + Sync + 'static` types.
pub trait Element: Copy + Send + Sync + 'static {}
impl<T: Copy + Send + Sync + 'static> Element for T {}

/// One raw allocation on the device heap. Deallocates itself (and returns
/// its bytes to the heap accounting) when the last handle drops.
pub(crate) struct Allocation {
    /// Payload pointer (the canary region precedes it when sanitized).
    ptr: *mut u8,
    /// Base of the real host allocation; null when nothing was allocated
    /// (zero-byte payloads are truly dangling).
    raw: *mut u8,
    /// Payload bytes charged to the device heap.
    bytes: usize,
    /// Layout of the real allocation behind `raw`.
    layout: Layout,
    used_counter: Arc<AtomicUsize>,
    /// Sanitizer metadata; present iff the allocation has canary regions.
    meta: Option<Arc<AllocMeta>>,
}

// SAFETY: access to the allocation's memory is coordinated by the launch
// protocol (disjoint writes per simulated thread); the pointer itself may be
// shared freely.
unsafe impl Send for Allocation {}
unsafe impl Sync for Allocation {}

impl Allocation {
    /// Allocate `bytes` zeroed bytes, charging `used_counter`. Zero-byte
    /// allocations perform **no** host allocation: they hold a dangling,
    /// well-aligned pointer and charge 0, so accounting matches reality.
    pub(crate) fn new(bytes: usize, used_counter: Arc<AtomicUsize>) -> Self {
        let layout = Layout::from_size_align(bytes.max(1), 64).expect("valid layout");
        let (raw, ptr) = if bytes == 0 {
            (std::ptr::null_mut(), std::ptr::without_provenance_mut(64))
        } else {
            // SAFETY: layout has non-zero size.
            let p = unsafe { alloc_zeroed(layout) };
            assert!(!p.is_null(), "host allocation for device heap failed");
            (p, p)
        };
        used_counter.fetch_add(bytes, Ordering::Relaxed);
        Allocation {
            ptr,
            raw,
            bytes,
            layout,
            used_counter,
            meta: None,
        }
    }

    /// Allocate a sanitized payload flanked by [`CANARY_BYTES`] canary
    /// regions on both sides. Only the payload is charged to the heap
    /// accounting (the canaries are checker overhead, not user memory).
    pub(crate) fn new_sanitized(
        bytes: usize,
        used_counter: Arc<AtomicUsize>,
        meta: Arc<AllocMeta>,
    ) -> Self {
        if bytes == 0 {
            let mut a = Self::new(0, used_counter);
            a.meta = Some(meta);
            return a;
        }
        let layout = Layout::from_size_align(bytes + 2 * CANARY_BYTES, 64).expect("valid layout");
        // SAFETY: layout has non-zero size.
        let raw = unsafe { alloc_zeroed(layout) };
        assert!(!raw.is_null(), "host allocation for device heap failed");
        // SAFETY: the allocation spans 2 * CANARY_BYTES + bytes; both canary
        // regions are in bounds.
        unsafe {
            std::ptr::write_bytes(raw, CANARY_PATTERN, CANARY_BYTES);
            std::ptr::write_bytes(raw.add(CANARY_BYTES + bytes), CANARY_PATTERN, CANARY_BYTES);
        }
        used_counter.fetch_add(bytes, Ordering::Relaxed);
        Allocation {
            // SAFETY: CANARY_BYTES is within the allocation; 64-byte offset
            // keeps 64-byte alignment.
            ptr: unsafe { raw.add(CANARY_BYTES) },
            raw,
            bytes,
            layout,
            used_counter,
            meta: Some(meta),
        }
    }

    pub(crate) fn ptr(&self) -> *mut u8 {
        self.ptr
    }

    pub(crate) fn meta(&self) -> Option<&Arc<AllocMeta>> {
        self.meta.as_ref()
    }

    /// Check both canary regions; `Some(description)` on corruption. Only
    /// sanitized, non-empty allocations have canaries.
    pub(crate) fn verify_canaries(&self) -> Option<String> {
        let meta = self.meta.as_ref()?;
        if self.raw.is_null() {
            return None;
        }
        for k in 0..CANARY_BYTES {
            // SAFETY: both canary regions are within the allocation.
            let before = unsafe { *self.raw.add(k) };
            if before != CANARY_PATTERN {
                return Some(format!(
                    "{}: canary before the payload corrupted {} B before the start \
                     (wild out-of-bounds write)",
                    meta.label(),
                    CANARY_BYTES - k
                ));
            }
            let after = unsafe { *self.raw.add(CANARY_BYTES + self.bytes + k) };
            if after != CANARY_PATTERN {
                return Some(format!(
                    "{}: canary after the payload corrupted {} B past the end \
                     (wild out-of-bounds write)",
                    meta.label(),
                    k
                ));
            }
        }
        None
    }
}

impl Drop for Allocation {
    fn drop(&mut self) {
        // Last chance to catch wild writes on allocations that die between
        // launch-end sweeps. Never panic while already unwinding.
        if let Some(desc) = self.verify_canaries() {
            if std::thread::panicking() {
                eprintln!("simsan: heap corruption (detected during unwind): {desc}");
            } else {
                // Deallocate first so the panic does not leak the block.
                // SAFETY: allocated with this exact layout in `new_sanitized`.
                unsafe { dealloc(self.raw, self.layout) };
                self.used_counter.fetch_sub(self.bytes, Ordering::Relaxed);
                panic!("simsan: heap corruption: {desc}");
            }
        }
        self.used_counter.fetch_sub(self.bytes, Ordering::Relaxed);
        if !self.raw.is_null() {
            // SAFETY: allocated with this exact layout in `new`/`new_sanitized`.
            unsafe { dealloc(self.raw, self.layout) };
        }
    }
}

/// An owning, typed handle to device memory, created by
/// [`crate::Device::alloc`] / [`crate::Device::alloc_from`].
///
/// Dropping the buffer releases the memory once no [`DeviceSlice`]s remain.
/// The handle is tied to its device: passing it to another device is an
/// error, as with real driver handles.
pub struct DeviceBuffer<T: Element> {
    pub(crate) alloc: Arc<Allocation>,
    pub(crate) len: usize,
    pub(crate) device_id: u64,
    pub(crate) _marker: PhantomData<T>,
}

impl<T: Element> DeviceBuffer<T> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Size in bytes (saturating: a buffer this size can never actually be
    /// allocated — `Device::alloc` rejects overflowing requests).
    pub fn size_bytes(&self) -> usize {
        self.len.saturating_mul(std::mem::size_of::<T>())
    }

    /// Id of the owning device.
    pub fn device_id(&self) -> u64 {
        self.device_id
    }
}

impl<T: Element> Drop for DeviceBuffer<T> {
    fn drop(&mut self) {
        // Under the sanitizer, mark the allocation freed: the memory stays
        // alive while slices pin it, but any access through a stale slice
        // after this point is a use-after-free under the driver model.
        if let Some(meta) = self.alloc.meta() {
            meta.freed.store(true, Ordering::Release);
        }
    }
}

impl<T: Element> std::fmt::Debug for DeviceBuffer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceBuffer")
            .field("len", &self.len)
            .field("device_id", &self.device_id)
            .finish()
    }
}

/// A read-only kernel-side view of a device buffer. Cheap to clone; keeps
/// the allocation alive.
pub struct DeviceSlice<T: Element> {
    alloc: Arc<Allocation>,
    ptr: *const T,
    len: usize,
    /// Present when the device tracks reads (sanitizer mode).
    tracker: Option<Arc<RaceTracker>>,
    /// Present when the allocation is sanitized.
    meta: Option<Arc<AllocMeta>>,
}

// SAFETY: reads from device memory race-freely per the launch contract.
unsafe impl<T: Element> Send for DeviceSlice<T> {}
unsafe impl<T: Element> Sync for DeviceSlice<T> {}

impl<T: Element> Clone for DeviceSlice<T> {
    fn clone(&self) -> Self {
        DeviceSlice {
            alloc: Arc::clone(&self.alloc),
            ptr: self.ptr,
            len: self.len,
            tracker: self.tracker.clone(),
            meta: self.meta.clone(),
        }
    }
}

impl<T: Element> std::fmt::Debug for DeviceSlice<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceSlice")
            .field("len", &self.len)
            .finish()
    }
}

impl<T: Element> DeviceSlice<T> {
    pub(crate) fn new(buffer: &DeviceBuffer<T>) -> Self {
        Self::new_tracked(buffer, None, None)
    }

    pub(crate) fn new_tracked(
        buffer: &DeviceBuffer<T>,
        tracker: Option<Arc<RaceTracker>>,
        meta: Option<Arc<AllocMeta>>,
    ) -> Self {
        DeviceSlice {
            alloc: Arc::clone(&buffer.alloc),
            ptr: buffer.alloc.ptr() as *const T,
            len: buffer.len,
            tracker,
            meta,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bounds-checked element read.
    #[inline]
    pub fn get(&self, i: usize) -> T {
        if i >= self.len {
            match &self.meta {
                Some(m) => oob_named(i, self.len, m),
                None => oob(i, self.len),
            }
        }
        if let Some(m) = &self.meta {
            if m.freed.load(Ordering::Acquire) {
                use_after_free(m);
            }
        }
        if let Some(t) = &self.tracker {
            t.record_read(self.ptr as usize, i);
        }
        // SAFETY: index checked; allocation alive via `alloc`.
        unsafe { *self.ptr.add(i) }
    }

    /// Unchecked element read for hot inner loops (bypasses the sanitizer;
    /// canary sweeps still catch writes that stray past the allocation).
    ///
    /// # Safety
    /// `i` must be `< self.len()`.
    #[inline]
    pub unsafe fn get_unchecked(&self, i: usize) -> T {
        debug_assert!(i < self.len);
        *self.ptr.add(i)
    }
}

/// A mutable kernel-side view of a device buffer.
///
/// Writes use interior mutability under the SIMT contract: **distinct
/// simulated threads must write distinct elements** within one launch.
/// Enable the device's race checker ([`crate::Device::set_racecheck`]) to
/// verify that contract dynamically, or the full sanitizer
/// ([`crate::Device::set_sanitizer`]) to also track reads, freed state, and
/// bounds canaries.
pub struct DeviceSliceMut<T: Element> {
    alloc: Arc<Allocation>,
    ptr: *mut T,
    len: usize,
    tracker: Option<Arc<RaceTracker>>,
    /// Present when the allocation is sanitized.
    meta: Option<Arc<AllocMeta>>,
}

// SAFETY: the disjoint-writes contract (optionally dynamically enforced)
// makes concurrent use sound.
unsafe impl<T: Element> Send for DeviceSliceMut<T> {}
unsafe impl<T: Element> Sync for DeviceSliceMut<T> {}

impl<T: Element> Clone for DeviceSliceMut<T> {
    fn clone(&self) -> Self {
        DeviceSliceMut {
            alloc: Arc::clone(&self.alloc),
            ptr: self.ptr,
            len: self.len,
            tracker: self.tracker.clone(),
            meta: self.meta.clone(),
        }
    }
}

impl<T: Element> std::fmt::Debug for DeviceSliceMut<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceSliceMut")
            .field("len", &self.len)
            .finish()
    }
}

impl<T: Element> DeviceSliceMut<T> {
    pub(crate) fn new_tracked(
        buffer: &DeviceBuffer<T>,
        tracker: Option<Arc<RaceTracker>>,
        meta: Option<Arc<AllocMeta>>,
    ) -> Self {
        DeviceSliceMut {
            alloc: Arc::clone(&buffer.alloc),
            ptr: buffer.alloc.ptr() as *mut T,
            len: buffer.len,
            tracker,
            meta,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bounds-checked element read.
    #[inline]
    pub fn get(&self, i: usize) -> T {
        if i >= self.len {
            match &self.meta {
                Some(m) => oob_named(i, self.len, m),
                None => oob(i, self.len),
            }
        }
        if let Some(m) = &self.meta {
            if m.freed.load(Ordering::Acquire) {
                use_after_free(m);
            }
        }
        if let Some(t) = &self.tracker {
            t.record_read(self.ptr as usize, i);
        }
        // SAFETY: index checked; allocation alive via `alloc`.
        unsafe { *(self.ptr as *const T).add(i) }
    }

    /// Bounds-checked element write.
    #[inline]
    pub fn set(&self, i: usize, value: T) {
        if i >= self.len {
            match &self.meta {
                Some(m) => oob_named(i, self.len, m),
                None => oob(i, self.len),
            }
        }
        if let Some(m) = &self.meta {
            if m.freed.load(Ordering::Acquire) {
                use_after_free(m);
            }
        }
        if let Some(tracker) = &self.tracker {
            tracker.record_write(self.ptr as usize, i);
        }
        // SAFETY: index checked; disjoint-writes contract gives exclusive
        // access to this element within the launch.
        unsafe { *self.ptr.add(i) = value };
    }

    /// Unchecked element read.
    ///
    /// # Safety
    /// `i` must be `< self.len()`.
    #[inline]
    pub unsafe fn get_unchecked(&self, i: usize) -> T {
        debug_assert!(i < self.len);
        *(self.ptr as *const T).add(i)
    }

    /// Unchecked element write (skips the race tracker and sanitizer).
    ///
    /// # Safety
    /// `i` must be `< self.len()` and no other simulated thread may touch
    /// element `i` in this launch.
    #[inline]
    pub unsafe fn set_unchecked(&self, i: usize, value: T) {
        debug_assert!(i < self.len);
        *self.ptr.add(i) = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_buffer<T: Element>(len: usize) -> DeviceBuffer<T> {
        let used = Arc::new(AtomicUsize::new(0));
        let alloc = Arc::new(Allocation::new(len * std::mem::size_of::<T>(), used));
        DeviceBuffer {
            alloc,
            len,
            device_id: 0,
            _marker: PhantomData,
        }
    }

    fn make_sanitized_buffer<T: Element>(len: usize) -> DeviceBuffer<T> {
        let used = Arc::new(AtomicUsize::new(0));
        let bytes = len * std::mem::size_of::<T>();
        let san = crate::sanitizer::Sanitizer::new(true);
        let meta = san.new_meta::<T>(len, bytes);
        let alloc = Arc::new(Allocation::new_sanitized(bytes, used, meta));
        DeviceBuffer {
            alloc,
            len,
            device_id: 0,
            _marker: PhantomData,
        }
    }

    #[test]
    fn allocation_charges_and_releases_counter() {
        let used = Arc::new(AtomicUsize::new(0));
        let a = Allocation::new(1024, Arc::clone(&used));
        assert_eq!(used.load(Ordering::Relaxed), 1024);
        let b = Allocation::new(512, Arc::clone(&used));
        assert_eq!(used.load(Ordering::Relaxed), 1536);
        drop(a);
        assert_eq!(used.load(Ordering::Relaxed), 512);
        drop(b);
        assert_eq!(used.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn zero_byte_allocation_is_dangling_and_uncharged() {
        let used = Arc::new(AtomicUsize::new(0));
        let a = Allocation::new(0, Arc::clone(&used));
        assert_eq!(used.load(Ordering::Relaxed), 0, "zero bytes charge nothing");
        assert!(!a.ptr().is_null(), "pointer is dangling but non-null");
        assert_eq!(a.ptr() as usize % 64, 0, "and well-aligned");
        drop(a);
        assert_eq!(used.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn allocations_are_zeroed() {
        let buf = make_buffer::<f64>(100);
        let s = DeviceSlice::new(&buf);
        for i in 0..100 {
            assert_eq!(s.get(i), 0.0);
        }
    }

    #[test]
    fn slice_read_write_round_trip() {
        let buf = make_buffer::<u32>(16);
        let w = DeviceSliceMut::new_tracked(&buf, None, None);
        for i in 0..16 {
            w.set(i, (i * i) as u32);
        }
        let r = DeviceSlice::new(&buf);
        for i in 0..16 {
            assert_eq!(r.get(i), (i * i) as u32);
            assert_eq!(w.get(i), (i * i) as u32);
        }
    }

    #[test]
    fn slices_keep_allocation_alive() {
        let used = Arc::new(AtomicUsize::new(0));
        let alloc = Arc::new(Allocation::new(8 * 4, Arc::clone(&used)));
        let buf = DeviceBuffer::<f32> {
            alloc,
            len: 8,
            device_id: 0,
            _marker: PhantomData,
        };
        let slice = DeviceSlice::new(&buf);
        drop(buf);
        assert_eq!(used.load(Ordering::Relaxed), 32, "slice still pins memory");
        assert_eq!(slice.get(0), 0.0);
        drop(slice);
        assert_eq!(used.load(Ordering::Relaxed), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn read_out_of_bounds_panics() {
        let buf = make_buffer::<f64>(4);
        let s = DeviceSlice::new(&buf);
        let _ = s.get(4);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn write_out_of_bounds_panics() {
        let buf = make_buffer::<f64>(4);
        let w = DeviceSliceMut::new_tracked(&buf, None, None);
        w.set(10, 1.0);
    }

    #[test]
    fn zero_length_buffer_is_safe() {
        let buf = make_buffer::<f64>(0);
        assert!(buf.is_empty());
        assert_eq!(buf.size_bytes(), 0);
        let s = DeviceSlice::new(&buf);
        assert!(s.is_empty());
    }

    #[test]
    fn size_bytes_saturates_instead_of_wrapping() {
        let buf = make_buffer::<f64>(0);
        let huge = DeviceBuffer::<f64> {
            alloc: Arc::clone(&buf.alloc),
            len: usize::MAX / 2,
            device_id: 0,
            _marker: PhantomData,
        };
        assert_eq!(huge.size_bytes(), usize::MAX);
    }

    #[test]
    fn sanitized_allocation_round_trips_and_verifies() {
        let buf = make_sanitized_buffer::<u64>(16);
        let w = DeviceSliceMut::new_tracked(&buf, None, buf.alloc.meta().cloned());
        for i in 0..16 {
            w.set(i, i as u64);
        }
        assert!(buf.alloc.verify_canaries().is_none(), "canaries intact");
        let r = DeviceSlice::new_tracked(&buf, None, buf.alloc.meta().cloned());
        for i in 0..16 {
            assert_eq!(r.get(i), i as u64);
        }
    }

    #[test]
    fn canary_catches_unchecked_write_past_the_end() {
        let buf = make_sanitized_buffer::<u64>(8);
        let base = buf.alloc.ptr() as *mut u64;
        // SAFETY(test): a deliberate one-past-the-end write; it lands in the
        // trailing canary region, which is inside the same host allocation.
        unsafe { base.add(8).write(0xDEAD) };
        let desc = buf.alloc.verify_canaries().expect("corruption detected");
        assert!(desc.contains("past the end"), "{desc}");
        assert!(desc.contains("allocation #"), "{desc}");
        // Repair before drop so Allocation::drop does not panic the test.
        unsafe { base.add(8).write(u64::from_ne_bytes([CANARY_PATTERN; 8])) };
        assert!(buf.alloc.verify_canaries().is_none());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn sanitized_oob_names_the_allocation() {
        let buf = make_sanitized_buffer::<f64>(4);
        let s = DeviceSlice::new_tracked(&buf, None, buf.alloc.meta().cloned());
        let _ = s.get(4);
    }

    #[test]
    #[should_panic(expected = "use-after-free")]
    fn stale_slice_access_is_use_after_free() {
        let buf = make_sanitized_buffer::<f64>(4);
        let s = DeviceSlice::new_tracked(&buf, None, buf.alloc.meta().cloned());
        drop(buf); // DeviceBuffer::drop marks the allocation freed
        let _ = s.get(0);
    }
}
