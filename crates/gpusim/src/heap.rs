//! The device memory heap: allocations, typed buffers, and kernel-side
//! slices.
//!
//! Device memory is modeled as real host allocations owned by the simulated
//! device, **distinct from the caller's data**: the only way data crosses the
//! boundary is through the device's upload/download methods, which charge the
//! link-transfer cost — exactly the discipline a discrete GPU imposes.

use std::alloc::{alloc_zeroed, dealloc, Layout};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::racecheck::RaceTracker;

/// Cold, outlined bounds failure (keeps formatting out of hot accessors).
#[cold]
#[inline(never)]
fn oob(i: usize, len: usize) -> ! {
    panic!("device access {i} out of bounds (len {len})");
}

/// Marker trait for element types storable in device memory. Blanket-implemented
/// for all `Copy + Send + Sync + 'static` types.
pub trait Element: Copy + Send + Sync + 'static {}
impl<T: Copy + Send + Sync + 'static> Element for T {}

/// One raw allocation on the device heap. Deallocates itself (and returns
/// its bytes to the heap accounting) when the last handle drops.
pub(crate) struct Allocation {
    ptr: *mut u8,
    bytes: usize,
    layout: Layout,
    used_counter: Arc<AtomicUsize>,
}

// SAFETY: access to the allocation's memory is coordinated by the launch
// protocol (disjoint writes per simulated thread); the pointer itself may be
// shared freely.
unsafe impl Send for Allocation {}
unsafe impl Sync for Allocation {}

impl Allocation {
    /// Allocate `bytes` zeroed bytes, charging `used_counter`.
    pub(crate) fn new(bytes: usize, used_counter: Arc<AtomicUsize>) -> Self {
        // Zero-sized allocations keep a dangling, well-aligned pointer.
        let layout = Layout::from_size_align(bytes.max(1), 64).expect("valid layout");
        // SAFETY: layout has non-zero size.
        let ptr = unsafe { alloc_zeroed(layout) };
        assert!(!ptr.is_null(), "host allocation for device heap failed");
        used_counter.fetch_add(bytes, Ordering::Relaxed);
        Allocation {
            ptr,
            bytes,
            layout,
            used_counter,
        }
    }

    pub(crate) fn ptr(&self) -> *mut u8 {
        self.ptr
    }
}

impl Drop for Allocation {
    fn drop(&mut self) {
        self.used_counter.fetch_sub(self.bytes, Ordering::Relaxed);
        // SAFETY: allocated with this exact layout in `new`.
        unsafe { dealloc(self.ptr, self.layout) };
    }
}

/// An owning, typed handle to device memory, created by
/// [`crate::Device::alloc`] / [`crate::Device::alloc_from`].
///
/// Dropping the buffer releases the memory once no [`DeviceSlice`]s remain.
/// The handle is tied to its device: passing it to another device is an
/// error, as with real driver handles.
pub struct DeviceBuffer<T: Element> {
    pub(crate) alloc: Arc<Allocation>,
    pub(crate) len: usize,
    pub(crate) device_id: u64,
    pub(crate) _marker: PhantomData<T>,
}

impl<T: Element> DeviceBuffer<T> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.len * std::mem::size_of::<T>()
    }

    /// Id of the owning device.
    pub fn device_id(&self) -> u64 {
        self.device_id
    }
}

impl<T: Element> std::fmt::Debug for DeviceBuffer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceBuffer")
            .field("len", &self.len)
            .field("device_id", &self.device_id)
            .finish()
    }
}

/// A read-only kernel-side view of a device buffer. Cheap to clone; keeps
/// the allocation alive.
pub struct DeviceSlice<T: Element> {
    alloc: Arc<Allocation>,
    ptr: *const T,
    len: usize,
}

// SAFETY: reads from device memory race-freely per the launch contract.
unsafe impl<T: Element> Send for DeviceSlice<T> {}
unsafe impl<T: Element> Sync for DeviceSlice<T> {}

impl<T: Element> Clone for DeviceSlice<T> {
    fn clone(&self) -> Self {
        DeviceSlice {
            alloc: Arc::clone(&self.alloc),
            ptr: self.ptr,
            len: self.len,
        }
    }
}

impl<T: Element> std::fmt::Debug for DeviceSlice<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceSlice")
            .field("len", &self.len)
            .finish()
    }
}

impl<T: Element> DeviceSlice<T> {
    pub(crate) fn new(buffer: &DeviceBuffer<T>) -> Self {
        DeviceSlice {
            alloc: Arc::clone(&buffer.alloc),
            ptr: buffer.alloc.ptr() as *const T,
            len: buffer.len,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bounds-checked element read.
    #[inline]
    pub fn get(&self, i: usize) -> T {
        if i >= self.len {
            oob(i, self.len);
        }
        // SAFETY: index checked; allocation alive via `alloc`.
        unsafe { *self.ptr.add(i) }
    }

    /// Unchecked element read for hot inner loops.
    ///
    /// # Safety
    /// `i` must be `< self.len()`.
    #[inline]
    pub unsafe fn get_unchecked(&self, i: usize) -> T {
        debug_assert!(i < self.len);
        *self.ptr.add(i)
    }
}

/// A mutable kernel-side view of a device buffer.
///
/// Writes use interior mutability under the SIMT contract: **distinct
/// simulated threads must write distinct elements** within one launch.
/// Enable the device's race checker ([`crate::Device::set_racecheck`]) to
/// verify that contract dynamically.
pub struct DeviceSliceMut<T: Element> {
    alloc: Arc<Allocation>,
    ptr: *mut T,
    len: usize,
    tracker: Option<Arc<RaceTracker>>,
}

// SAFETY: the disjoint-writes contract (optionally dynamically enforced)
// makes concurrent use sound.
unsafe impl<T: Element> Send for DeviceSliceMut<T> {}
unsafe impl<T: Element> Sync for DeviceSliceMut<T> {}

impl<T: Element> Clone for DeviceSliceMut<T> {
    fn clone(&self) -> Self {
        DeviceSliceMut {
            alloc: Arc::clone(&self.alloc),
            ptr: self.ptr,
            len: self.len,
            tracker: self.tracker.clone(),
        }
    }
}

impl<T: Element> std::fmt::Debug for DeviceSliceMut<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceSliceMut")
            .field("len", &self.len)
            .finish()
    }
}

impl<T: Element> DeviceSliceMut<T> {
    pub(crate) fn new(buffer: &DeviceBuffer<T>, tracker: Option<Arc<RaceTracker>>) -> Self {
        DeviceSliceMut {
            alloc: Arc::clone(&buffer.alloc),
            ptr: buffer.alloc.ptr() as *mut T,
            len: buffer.len,
            tracker,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bounds-checked element read.
    #[inline]
    pub fn get(&self, i: usize) -> T {
        if i >= self.len {
            oob(i, self.len);
        }
        // SAFETY: index checked; allocation alive via `alloc`.
        unsafe { *(self.ptr as *const T).add(i) }
    }

    /// Bounds-checked element write.
    #[inline]
    pub fn set(&self, i: usize, value: T) {
        if i >= self.len {
            oob(i, self.len);
        }
        if let Some(tracker) = &self.tracker {
            tracker.record_write(self.ptr as usize, i);
        }
        // SAFETY: index checked; disjoint-writes contract gives exclusive
        // access to this element within the launch.
        unsafe { *self.ptr.add(i) = value };
    }

    /// Unchecked element read.
    ///
    /// # Safety
    /// `i` must be `< self.len()`.
    #[inline]
    pub unsafe fn get_unchecked(&self, i: usize) -> T {
        debug_assert!(i < self.len);
        *(self.ptr as *const T).add(i)
    }

    /// Unchecked element write (skips the race tracker).
    ///
    /// # Safety
    /// `i` must be `< self.len()` and no other simulated thread may touch
    /// element `i` in this launch.
    #[inline]
    pub unsafe fn set_unchecked(&self, i: usize, value: T) {
        debug_assert!(i < self.len);
        *self.ptr.add(i) = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_buffer<T: Element>(len: usize) -> DeviceBuffer<T> {
        let used = Arc::new(AtomicUsize::new(0));
        let alloc = Arc::new(Allocation::new(len * std::mem::size_of::<T>(), used));
        DeviceBuffer {
            alloc,
            len,
            device_id: 0,
            _marker: PhantomData,
        }
    }

    #[test]
    fn allocation_charges_and_releases_counter() {
        let used = Arc::new(AtomicUsize::new(0));
        let a = Allocation::new(1024, Arc::clone(&used));
        assert_eq!(used.load(Ordering::Relaxed), 1024);
        let b = Allocation::new(512, Arc::clone(&used));
        assert_eq!(used.load(Ordering::Relaxed), 1536);
        drop(a);
        assert_eq!(used.load(Ordering::Relaxed), 512);
        drop(b);
        assert_eq!(used.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn allocations_are_zeroed() {
        let buf = make_buffer::<f64>(100);
        let s = DeviceSlice::new(&buf);
        for i in 0..100 {
            assert_eq!(s.get(i), 0.0);
        }
    }

    #[test]
    fn slice_read_write_round_trip() {
        let buf = make_buffer::<u32>(16);
        let w = DeviceSliceMut::new(&buf, None);
        for i in 0..16 {
            w.set(i, (i * i) as u32);
        }
        let r = DeviceSlice::new(&buf);
        for i in 0..16 {
            assert_eq!(r.get(i), (i * i) as u32);
            assert_eq!(w.get(i), (i * i) as u32);
        }
    }

    #[test]
    fn slices_keep_allocation_alive() {
        let used = Arc::new(AtomicUsize::new(0));
        let alloc = Arc::new(Allocation::new(8 * 4, Arc::clone(&used)));
        let buf = DeviceBuffer::<f32> {
            alloc,
            len: 8,
            device_id: 0,
            _marker: PhantomData,
        };
        let slice = DeviceSlice::new(&buf);
        drop(buf);
        assert_eq!(used.load(Ordering::Relaxed), 32, "slice still pins memory");
        assert_eq!(slice.get(0), 0.0);
        drop(slice);
        assert_eq!(used.load(Ordering::Relaxed), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn read_out_of_bounds_panics() {
        let buf = make_buffer::<f64>(4);
        let s = DeviceSlice::new(&buf);
        let _ = s.get(4);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn write_out_of_bounds_panics() {
        let buf = make_buffer::<f64>(4);
        let w = DeviceSliceMut::new(&buf, None);
        w.set(10, 1.0);
    }

    #[test]
    fn zero_length_buffer_is_safe() {
        let buf = make_buffer::<f64>(0);
        assert!(buf.is_empty());
        assert_eq!(buf.size_bytes(), 0);
        let s = DeviceSlice::new(&buf);
        assert!(s.is_empty());
    }
}
